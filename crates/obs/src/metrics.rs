//! Process-global metrics: counters, gauges, and log-bucketed latency
//! histograms behind an interning registry.
//!
//! Hot-path mutation is a relaxed atomic op on a per-thread striped
//! shard — no locks, no contention between threads pinned to different
//! shards. Reads (`snapshot`) merge the shards; they are racy in the
//! benign sense (a snapshot taken mid-increment may miss in-flight
//! ops) which is the standard contract for monitoring counters.
//!
//! Histograms are HDR-style log-linear: values `0..32` get exact unit
//! buckets, and each subsequent power-of-two octave is split into 32
//! linear sub-buckets, bounding relative quantile error at `1/32`
//! (~3.1%) across the full `u64` range with 1920 buckets total.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Number of striped shards per counter/histogram.
const N_SHARDS: usize = 8;

/// Total histogram buckets: 32 exact + 59 octaves x 32 sub-buckets.
pub const BUCKETS: usize = 32 + 59 * 32;

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Globally enables or disables metrics mutation. Disabled metrics
/// cost one relaxed load per call site; existing values are retained.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether metrics mutation is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Stable per-thread shard assignment (round-robin at first use).
fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % N_SHARDS;
    }
    SHARD.with(|s| *s)
}

/// One cache line per shard so striped increments never false-share.
#[repr(align(64))]
#[derive(Debug)]
struct PadCell(AtomicU64);

impl PadCell {
    fn new() -> PadCell {
        PadCell(AtomicU64::new(0))
    }
}

/// A monotonically increasing striped counter.
#[derive(Debug)]
pub struct Counter {
    shards: [PadCell; N_SHARDS],
}

impl Counter {
    fn new() -> Counter {
        Counter {
            shards: std::array::from_fn(|_| PadCell::new()),
        }
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` to this thread's shard.
    pub fn add(&self, n: u64) {
        if enabled() {
            self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Sum across shards.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A settable signed gauge (single cell: gauges are set, not summed).
#[derive(Debug)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    fn new() -> Gauge {
        Gauge {
            value: AtomicI64::new(0),
        }
    }

    /// Overwrites the gauge.
    pub fn set(&self, v: i64) {
        if enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Adds `d` (may be negative).
    pub fn add(&self, d: i64) {
        if enabled() {
            self.value.fetch_add(d, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Maps a value to its log-linear bucket index.
pub fn bucket_index(v: u64) -> usize {
    if v < 32 {
        v as usize
    } else {
        let e = 63 - v.leading_zeros() as usize; // 5..=63
        let sub = ((v >> (e - 5)) & 31) as usize;
        32 + (e - 5) * 32 + sub
    }
}

/// Inclusive `(lo, hi)` value bounds of bucket `idx`.
pub fn bucket_bounds(idx: usize) -> (u64, u64) {
    if idx < 32 {
        (idx as u64, idx as u64)
    } else {
        let e = (idx - 32) / 32 + 5;
        let sub = ((idx - 32) % 32) as u64;
        let lo = (32 + sub) << (e - 5);
        let hi = lo + ((1u64 << (e - 5)) - 1);
        (lo, hi)
    }
}

#[derive(Debug)]
struct HistShard {
    counts: Vec<AtomicU64>, // len BUCKETS
    total: AtomicU64,
    sum: AtomicU64,
}

impl HistShard {
    fn new() -> HistShard {
        HistShard {
            counts: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            total: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A striped log-bucketed histogram of `u64` samples (latencies in ns).
#[derive(Debug)]
pub struct Histogram {
    shards: Vec<HistShard>, // len N_SHARDS
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            shards: (0..N_SHARDS).map(|_| HistShard::new()).collect(),
        }
    }

    /// Records one sample into this thread's shard.
    pub fn record(&self, v: u64) {
        if !enabled() {
            return;
        }
        let shard = &self.shards[shard_index()];
        shard.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        shard.total.fetch_add(1, Ordering::Relaxed);
        shard.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Merges all shards into an owned snapshot.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut snap = HistSnapshot::new();
        for shard in &self.shards {
            for (i, c) in shard.counts.iter().enumerate() {
                snap.counts[i] += c.load(Ordering::Relaxed);
            }
            snap.count += shard.total.load(Ordering::Relaxed);
            snap.sum += shard.sum.load(Ordering::Relaxed);
        }
        snap
    }
}

/// An owned, mergeable histogram snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket sample counts (`BUCKETS` entries).
    pub counts: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all recorded values (wrapping add on overflow).
    pub sum: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        Self::new()
    }
}

impl HistSnapshot {
    /// An empty snapshot.
    pub fn new() -> HistSnapshot {
        HistSnapshot {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// Records a sample directly (test/reference use).
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
    }

    /// Adds `other`'s buckets into `self`. Associative and commutative.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// Inclusive `(lo, hi)` bounds of the bucket holding the q-quantile
    /// (the `max(1, ceil(q * count))`-th smallest sample), or `None`
    /// when empty. The true sample value lies within the bounds.
    pub fn quantile_bounds(&self, q: f64) -> Option<(u64, u64)> {
        if self.count == 0 {
            return None;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Some(bucket_bounds(i));
            }
        }
        None
    }

    /// Upper bound of the q-quantile bucket (0 when empty).
    pub fn quantile(&self, q: f64) -> u64 {
        self.quantile_bounds(q).map(|(_, hi)| hi).unwrap_or(0)
    }

    /// Mean of recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Interning registry: `counter("a.b")` always returns the same cell.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, &'static Counter>>,
    gauges: Mutex<BTreeMap<String, &'static Gauge>>,
    histograms: Mutex<BTreeMap<String, &'static Histogram>>,
}

impl Registry {
    /// Returns (interning on first use) the counter named `name`.
    pub fn counter(&self, name: &str) -> &'static Counter {
        let mut map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(name.to_string())
            .or_insert_with(|| Box::leak(Box::new(Counter::new())))
    }

    /// Returns (interning on first use) the gauge named `name`.
    pub fn gauge(&self, name: &str) -> &'static Gauge {
        let mut map = self.gauges.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(name.to_string())
            .or_insert_with(|| Box::leak(Box::new(Gauge::new())))
    }

    /// Returns (interning on first use) the histogram named `name`.
    pub fn histogram(&self, name: &str) -> &'static Histogram {
        let mut map = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(name.to_string())
            .or_insert_with(|| Box::leak(Box::new(Histogram::new())))
    }

    /// A point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> Snapshot {
        let counters = {
            let map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
            map.iter().map(|(k, c)| (k.clone(), c.get())).collect()
        };
        let gauges = {
            let map = self.gauges.lock().unwrap_or_else(|e| e.into_inner());
            map.iter().map(|(k, g)| (k.clone(), g.get())).collect()
        };
        let histograms = {
            let map = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
            map.iter().map(|(k, h)| (k.clone(), h.snapshot())).collect()
        };
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// The process-global registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// An owned point-in-time view of the registry, renderable as
/// Prometheus text exposition format.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// `(name, value)` for every counter, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, name-sorted.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` for every histogram, name-sorted.
    pub histograms: Vec<(String, HistSnapshot)>,
}

/// Maps a dotted metric name onto the Prometheus grammar.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("dqec_");
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

impl Snapshot {
    /// Renders the snapshot in Prometheus text exposition format:
    /// counters and gauges as scalars, histograms as summaries with
    /// `quantile` labels plus `_sum`/`_count`.
    pub fn prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} counter\n{n} {v}");
        }
        for (name, v) in &self.gauges {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} gauge\n{n} {v}");
        }
        for (name, h) in &self.histograms {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} summary");
            for (label, q) in [("0.5", 0.5), ("0.99", 0.99), ("0.999", 0.999)] {
                let _ = writeln!(out, "{n}{{quantile=\"{label}\"}} {}", h.quantile(q));
            }
            let _ = writeln!(out, "{n}_sum {}\n{n}_count {}", h.sum, h.count);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_bounds_agree() {
        for v in (0u64..4096).chain([u64::MAX, u64::MAX - 1, 1 << 40, (1 << 40) + 12345]) {
            let idx = bucket_index(v);
            assert!(idx < BUCKETS, "index {idx} out of range for {v}");
            let (lo, hi) = bucket_bounds(idx);
            assert!(lo <= v && v <= hi, "{v} outside bucket [{lo}, {hi}]");
        }
    }

    #[test]
    fn bucket_relative_error_is_bounded() {
        for idx in 32..BUCKETS {
            let (lo, hi) = bucket_bounds(idx);
            let width = hi - lo;
            assert!(
                (width as f64) <= lo as f64 / 32.0,
                "bucket {idx} [{lo}, {hi}] wider than lo/32"
            );
        }
    }

    #[test]
    fn registry_interns_and_snapshots() {
        let reg = Registry::default();
        let c = reg.counter("test.counter");
        c.add(3);
        reg.counter("test.counter").inc();
        assert_eq!(c.get(), 4);
        reg.gauge("test.gauge").set(-7);
        reg.histogram("test.hist").record(100);

        let snap = reg.snapshot();
        assert_eq!(snap.counters, vec![("test.counter".to_string(), 4)]);
        assert_eq!(snap.gauges, vec![("test.gauge".to_string(), -7)]);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].1.count, 1);

        let text = snap.prometheus();
        assert!(text.contains("dqec_test_counter 4"), "{text}");
        assert!(text.contains("dqec_test_gauge -7"), "{text}");
        assert!(text.contains("dqec_test_hist{quantile=\"0.5\"}"), "{text}");
        assert!(text.contains("dqec_test_hist_count 1"), "{text}");
    }

    #[test]
    fn disabled_metrics_freeze() {
        let reg = Registry::default();
        let c = reg.counter("x");
        c.inc();
        set_enabled(false);
        c.inc();
        reg.histogram("h").record(5);
        set_enabled(true);
        assert_eq!(c.get(), 1);
        assert_eq!(reg.histogram("h").snapshot().count, 0);
    }

    #[test]
    fn quantiles_on_a_known_distribution() {
        let mut h = HistSnapshot::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        // p50 target is the 500th smallest = 500; bucket bounds must
        // bracket it within the 1/32 relative-error guarantee.
        for (q, truth) in [(0.5, 500u64), (0.99, 990), (0.999, 999)] {
            let (lo, hi) = h.quantile_bounds(q).expect("non-empty");
            assert!(
                lo <= truth && truth <= hi,
                "q={q}: {truth} not in [{lo}, {hi}]"
            );
        }
        assert_eq!(h.mean(), 500.5);
    }
}
