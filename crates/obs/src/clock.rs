//! The sanctioned time source.
//!
//! Production builds read a monotonic `Instant` anchored at first use
//! and report nanoseconds since that anchor. Under `--cfg dqec_check`
//! the clock is virtual: every read advances a global counter by a
//! fixed quantum, so timings observed inside the model checker are a
//! pure function of the number of reads — schedules replay bit-exactly
//! and span durations are deterministic.

/// Nanoseconds a virtual-clock read advances under `--cfg dqec_check`.
pub const VIRTUAL_QUANTUM_NS: u64 = 1_000;

/// The process-wide clock facade. All timestamps in the workspace flow
/// through [`Clock::now_ns`]; `dqec-lint` enforces that nothing outside
/// this crate (and bench binaries) touches `Instant`/`SystemTime`.
#[derive(Debug, Clone, Copy)]
pub struct Clock;

impl Clock {
    /// Monotonic nanoseconds since an arbitrary process-local epoch.
    #[cfg(not(dqec_check))]
    pub fn now_ns() -> u64 {
        use std::sync::OnceLock;
        use std::time::Instant;
        static ANCHOR: OnceLock<Instant> = OnceLock::new();
        let anchor = ANCHOR.get_or_init(Instant::now);
        anchor.elapsed().as_nanos() as u64
    }

    /// Virtual deterministic time: each read ticks one quantum.
    #[cfg(dqec_check)]
    pub fn now_ns() -> u64 {
        use std::sync::atomic::{AtomicU64, Ordering};
        static TICKS: AtomicU64 = AtomicU64::new(0);
        (TICKS.fetch_add(1, Ordering::Relaxed) + 1) * VIRTUAL_QUANTUM_NS
    }
}

/// Convenience free function mirroring [`Clock::now_ns`].
pub fn now_ns() -> u64 {
    Clock::now_ns()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let a = Clock::now_ns();
        let b = Clock::now_ns();
        let c = Clock::now_ns();
        assert!(a <= b && b <= c, "clock went backwards: {a} {b} {c}");
    }

    #[cfg(dqec_check)]
    #[test]
    fn virtual_clock_ticks_in_whole_quanta() {
        // Other tests in this binary may tick the clock concurrently,
        // so assert the invariant that survives interleaving: strictly
        // positive whole-quantum deltas.
        let a = Clock::now_ns();
        let b = Clock::now_ns();
        assert!(b > a);
        assert_eq!((b - a) % VIRTUAL_QUANTUM_NS, 0);
    }
}
