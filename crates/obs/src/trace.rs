//! Span tracing into per-thread ring buffers with Chrome trace-event
//! export.
//!
//! Tracing is off by default: a disabled [`span`] is one relaxed load
//! and no timestamp read. When enabled, each thread appends completed
//! spans to its own fixed-capacity ring (oldest events overwritten),
//! so the hot path never contends with other threads — the per-thread
//! mutex is only ever shared with the exporter.
//!
//! [`export_chrome_trace`] renders every thread's ring as Chrome
//! trace-event JSON (`{"traceEvents": [...]}`), loadable directly in
//! `ui.perfetto.dev` or `chrome://tracing`.

use crate::clock::Clock;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Max retained events per thread; older events are overwritten.
pub const RING_CAPACITY: usize = 8192;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns tracing on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether tracing is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

#[derive(Debug, Clone)]
struct Event {
    name: &'static str,
    start_ns: u64,
    dur_ns: u64,
    instant: bool,
}

#[derive(Debug, Default)]
struct Ring {
    events: Vec<Event>,
    next: usize,
    dropped: u64,
}

impl Ring {
    fn push(&mut self, ev: Event) {
        if self.events.len() < RING_CAPACITY {
            self.events.push(ev);
        } else {
            self.events[self.next] = ev;
            self.dropped += 1;
        }
        self.next = (self.next + 1) % RING_CAPACITY;
    }
}

#[derive(Debug)]
struct ThreadBuf {
    tid: usize,
    ring: Mutex<Ring>,
}

fn bufs() -> &'static Mutex<Vec<Arc<ThreadBuf>>> {
    static BUFS: OnceLock<Mutex<Vec<Arc<ThreadBuf>>>> = OnceLock::new();
    BUFS.get_or_init(|| Mutex::new(Vec::new()))
}

fn local() -> Arc<ThreadBuf> {
    thread_local! {
        static LOCAL: Arc<ThreadBuf> = register();
    }
    LOCAL.with(Arc::clone)
}

fn register() -> Arc<ThreadBuf> {
    static NEXT_TID: AtomicUsize = AtomicUsize::new(1);
    let buf = Arc::new(ThreadBuf {
        tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
        ring: Mutex::new(Ring::default()),
    });
    let mut all = bufs().lock().unwrap_or_else(|e| e.into_inner());
    all.push(Arc::clone(&buf));
    buf
}

fn push_event(ev: Event) {
    let buf = local();
    let mut ring = buf.ring.lock().unwrap_or_else(|e| e.into_inner());
    ring.push(ev);
}

/// An in-flight span; records a complete (`ph: "X"`) event on drop.
#[must_use = "a span measures the scope it is bound to"]
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start_ns: u64,
    armed: bool,
}

/// Opens a span named `name` covering the enclosing scope. `name` must
/// be a plain identifier-like literal (it is embedded in JSON
/// unescaped).
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span {
            name,
            start_ns: 0,
            armed: false,
        };
    }
    Span {
        name,
        start_ns: Clock::now_ns(),
        armed: true,
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let end = Clock::now_ns();
        push_event(Event {
            name: self.name,
            start_ns: self.start_ns,
            dur_ns: end.saturating_sub(self.start_ns),
            instant: false,
        });
    }
}

/// Records a zero-duration instant event (`ph: "i"`), e.g. a steal.
pub fn instant(name: &'static str) {
    if !enabled() {
        return;
    }
    push_event(Event {
        name,
        start_ns: Clock::now_ns(),
        dur_ns: 0,
        instant: true,
    });
}

/// Drops all buffered events on every thread (ring capacity is kept).
pub fn clear() {
    let all = bufs().lock().unwrap_or_else(|e| e.into_inner());
    for buf in all.iter() {
        let mut ring = buf.ring.lock().unwrap_or_else(|e| e.into_inner());
        ring.events.clear();
        ring.next = 0;
        ring.dropped = 0;
    }
}

/// Renders all buffered events as Chrome trace-event JSON. Timestamps
/// are microseconds since the clock epoch; one `tid` per OS thread.
pub fn export_chrome_trace() -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let all = bufs().lock().unwrap_or_else(|e| e.into_inner());
    for buf in all.iter() {
        let ring = buf.ring.lock().unwrap_or_else(|e| e.into_inner());
        // Ring order: oldest first once wrapped.
        let (tail, head) = if ring.events.len() == RING_CAPACITY {
            ring.events.split_at(ring.next)
        } else {
            ring.events.split_at(0)
        };
        for ev in head.iter().chain(tail) {
            if !first {
                out.push(',');
            }
            first = false;
            let ts = ev.start_ns as f64 / 1000.0;
            if ev.instant {
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"cat\":\"dqec\",\"ph\":\"i\",\"s\":\"t\",\
                     \"ts\":{ts:.3},\"pid\":1,\"tid\":{}}}",
                    ev.name, buf.tid
                );
            } else {
                let dur = ev.dur_ns as f64 / 1000.0;
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"cat\":\"dqec\",\"ph\":\"X\",\"ts\":{ts:.3},\
                     \"dur\":{dur:.3},\"pid\":1,\"tid\":{}}}",
                    ev.name, buf.tid
                );
            }
        }
    }
    out.push_str("]}");
    out
}

/// Writes [`export_chrome_trace`] to `path`.
pub fn export_to_file(path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, export_chrome_trace())
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tracing state is process-global, so exercise it in one test to
    // avoid cross-test interference under parallel execution.
    #[test]
    fn spans_round_trip_through_chrome_export() {
        clear();
        {
            let _off = span("not.recorded");
        }
        set_enabled(true);
        {
            let _s = span("unit.test.span");
            instant("unit.test.instant");
        }
        set_enabled(false);

        let json = export_chrome_trace();
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        assert!(json.ends_with("]}"), "{json}");
        assert!(json.contains("\"name\":\"unit.test.span\""), "{json}");
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"name\":\"unit.test.instant\""), "{json}");
        assert!(json.contains("\"ph\":\"i\""), "{json}");
        assert!(!json.contains("not.recorded"), "{json}");

        clear();
        let empty = export_chrome_trace();
        assert!(!empty.contains("unit.test.span"), "{empty}");
    }

    #[test]
    fn ring_overwrites_oldest() {
        let mut ring = Ring::default();
        for i in 0..(RING_CAPACITY + 10) {
            ring.push(Event {
                name: "e",
                start_ns: i as u64,
                dur_ns: 0,
                instant: false,
            });
        }
        assert_eq!(ring.events.len(), RING_CAPACITY);
        assert_eq!(ring.dropped, 10);
        // Oldest surviving event is number 10.
        let min = ring.events.iter().map(|e| e.start_ns).min().unwrap_or(0);
        assert_eq!(min, 10);
    }
}
