//! `dqec_obs`: the workspace observability substrate.
//!
//! Three pieces, all dependency-free and usable from every layer of the
//! stack including the vendored rayon shim:
//!
//! - [`metrics`] — a process-global registry of named counters, gauges,
//!   and log-bucketed latency histograms. Increments go to per-thread
//!   striped shards of relaxed atomics, so hot paths never contend;
//!   snapshots merge the shards and extract exact-bucket p50/p99/p999.
//! - [`trace`] — span tracing into per-thread ring buffers, exported as
//!   Chrome trace-event JSON (loadable in `ui.perfetto.dev`). Off by
//!   default; a disabled span is one relaxed load.
//! - [`clock`] — the single sanctioned time source. Monotonic
//!   nanoseconds since process start in production; a virtual counter
//!   advancing a fixed quantum per read under `--cfg dqec_check`, so
//!   instrumented code stays deterministic inside the model checker.
//!   `dqec-lint` bans raw `Instant`/`SystemTime` everywhere else in
//!   library code.
//!
//! This crate deliberately uses raw `std::sync` primitives (it is on
//! the lint raw-sync exempt list): the model checker serializes the
//! threads it spawns, so uninstrumented relaxed atomics here stay
//! deterministic under `dqec_check` without exploding the schedule
//! space.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod metrics;
pub mod trace;

pub use clock::Clock;
pub use metrics::{registry, Counter, Gauge, HistSnapshot, Histogram, Registry, Snapshot};
pub use trace::Span;
