//! Property coverage for the log-bucketed histogram: quantile bounds
//! against a sorted reference, and shard-merge algebra.

#![cfg(not(dqec_check))]

use dqec_obs::metrics::HistSnapshot;
use proptest::prelude::*;

/// Deterministic value stream spanning many octaves.
fn values(seed: u64, len: usize, bits: u32) -> Vec<u64> {
    let mask = if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    };
    let mut x = seed;
    (0..len)
        .map(|_| {
            // splitmix64 step
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)) & mask
        })
        .collect()
}

fn snapshot_of(vals: &[u64]) -> HistSnapshot {
    let mut h = HistSnapshot::new();
    for &v in vals {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn quantile_bounds_bracket_sorted_reference(
        case in (0u64..u64::MAX, 1usize..600, 1u32..=64)
    ) {
        let (seed, len, bits) = case;
        let vals = values(seed, len, bits);
        let h = snapshot_of(&vals);
        let mut sorted = vals.clone();
        sorted.sort_unstable();

        for q in [0.5, 0.9, 0.99, 0.999] {
            let target = ((q * len as f64).ceil() as usize).clamp(1, len);
            let truth = sorted[target - 1];
            let (lo, hi) = h.quantile_bounds(q).expect("non-empty histogram");
            prop_assert!(
                lo <= truth && truth <= hi,
                "q={q} len={len}: reference {truth} outside bucket [{lo}, {hi}]"
            );
            // The reported point estimate (bucket hi) stays within the
            // 1/32 relative-error guarantee of the true quantile.
            prop_assert!(hi - lo <= lo / 32, "bucket wider than lo/32");
        }
    }

    #[test]
    fn merge_is_commutative_and_matches_direct_recording(
        case in (1u64..u64::MAX, 1u64..u64::MAX, 0usize..300, 0usize..300, 1u32..=64)
    ) {
        let (sa, sb, la, lb, bits) = case;
        let va = values(sa, la, bits);
        let vb = values(sb, lb, bits);
        let (a, b) = (snapshot_of(&va), snapshot_of(&vb));

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba, "merge must be commutative");

        // Merging shard snapshots equals recording the union directly.
        let mut union = va.clone();
        union.extend_from_slice(&vb);
        prop_assert_eq!(&ab, &snapshot_of(&union));
    }

    #[test]
    fn merge_is_associative(
        case in (1u64..u64::MAX, 1u64..u64::MAX, 1u64..u64::MAX, 0usize..200)
    ) {
        let (sa, sb, sc, len) = case;
        let (a, b, c) = (
            snapshot_of(&values(sa, len, 64)),
            snapshot_of(&values(sb, len / 2 + 1, 48)),
            snapshot_of(&values(sc, len / 3 + 1, 20)),
        );
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right, "merge must be associative");
    }
}
