//! Under `--cfg dqec_check` the obs clock is virtual: spans recorded on
//! one thread have durations that are a pure function of the number of
//! clock reads, independent of wall time and host load.

#![cfg(dqec_check)]

use dqec_obs::clock::{Clock, VIRTUAL_QUANTUM_NS};
use dqec_obs::trace;

#[test]
fn spans_are_deterministic_under_the_virtual_clock() {
    // This file is its own test binary with a single test, so nothing
    // else ticks the global virtual clock concurrently.
    let t0 = Clock::now_ns();
    let t1 = Clock::now_ns();
    assert_eq!(t1 - t0, VIRTUAL_QUANTUM_NS, "one read advances one quantum");

    trace::clear();
    trace::set_enabled(true);
    for _ in 0..4 {
        let _s = trace::span("check.span");
    }
    trace::set_enabled(false);

    // Every span performed exactly two reads (open, drop), so every
    // exported duration is exactly one quantum — bit-identical across
    // runs, hosts, and optimization levels.
    let json = trace::export_chrome_trace();
    let dur = format!("\"dur\":{:.3}", VIRTUAL_QUANTUM_NS as f64 / 1000.0);
    assert_eq!(
        json.matches(&dur).count(),
        4,
        "expected 4 one-quantum spans in {json}"
    );
    trace::clear();
}
