//! Stabilizer circuit intermediate representation.
//!
//! Circuits are sequences of Clifford gates, resets, Z-basis
//! measurements and Pauli noise channels, annotated with *detectors*
//! (parities of measurement records that are deterministic in the
//! noiseless circuit) and *logical observables* (tracked parities whose
//! flips define logical errors). This mirrors the Stim circuit model the
//! paper's artifact is built on.

use crate::error::SimError;

/// Single-qubit Clifford gates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Gate1 {
    /// Hadamard: X <-> Z.
    H,
    /// Phase gate: X -> Y, Z -> Z.
    S,
    /// Pauli X (no effect on frames; kept for circuit fidelity).
    X,
    /// Pauli Z (no effect on frames; kept for circuit fidelity).
    Z,
}

/// Two-qubit Clifford gates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Gate2 {
    /// Controlled-X with the first target as control.
    Cx,
    /// Controlled-Z (symmetric).
    Cz,
}

/// Single-qubit Pauli noise channels.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Noise1 {
    /// Applies X with the given probability.
    XError,
    /// Applies Z with the given probability.
    ZError,
    /// Applies a uniformly random non-identity Pauli with the given
    /// total probability (each of X, Y, Z with p/3).
    Depolarize1,
}

/// One operation in a circuit.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Op {
    /// A single-qubit Clifford gate.
    Gate1 {
        /// Which gate.
        kind: Gate1,
        /// Target qubit.
        q: u32,
    },
    /// A two-qubit Clifford gate.
    Gate2 {
        /// Which gate.
        kind: Gate2,
        /// First qubit (control for CX).
        a: u32,
        /// Second qubit (target for CX).
        b: u32,
    },
    /// Z-basis reset to |0>.
    Reset {
        /// Target qubit.
        q: u32,
    },
    /// Z-basis measurement; appends one measurement record.
    Measure {
        /// Target qubit.
        q: u32,
    },
    /// Single-qubit noise channel.
    Noise1 {
        /// Which channel.
        kind: Noise1,
        /// Target qubit.
        q: u32,
        /// Firing probability.
        p: f64,
    },
    /// Two-qubit depolarizing channel (each of the 15 non-identity
    /// Pauli pairs with probability p/15).
    Depolarize2 {
        /// First qubit.
        a: u32,
        /// Second qubit.
        b: u32,
        /// Total firing probability.
        p: f64,
    },
    /// Layer separator; semantically inert.
    Tick,
}

/// The stabilizer basis a detector compares, used to split the detector
/// set into the two CSS decoding graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum CheckBasis {
    /// An X-type stabilizer or super-stabilizer comparison.
    X,
    /// A Z-type stabilizer or super-stabilizer comparison.
    Z,
}

impl CheckBasis {
    /// The opposite basis.
    pub fn flipped(self) -> CheckBasis {
        match self {
            CheckBasis::X => CheckBasis::Z,
            CheckBasis::Z => CheckBasis::X,
        }
    }
}

/// A detector: a parity of measurement records that is deterministic in
/// the absence of noise.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Detector {
    /// Absolute measurement-record indices whose parity forms the
    /// detector.
    pub records: Vec<u32>,
    /// Which CSS decoding graph the detector belongs to.
    pub basis: CheckBasis,
    /// Spacetime coordinate `(x, y, t)` for diagnostics and graph
    /// construction heuristics.
    pub coord: (i32, i32, i32),
}

/// A handle to a measurement record returned by [`Circuit::measure`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MeasRecord(pub u32);

/// A stabilizer circuit with detector and observable annotations.
///
/// Build circuits through the mutating methods; each `measure` returns a
/// [`MeasRecord`] handle that detectors and observables can reference.
///
/// # Examples
///
/// ```
/// use dqec_sim::circuit::{CheckBasis, Circuit};
///
/// let mut c = Circuit::new(2);
/// c.reset(0)?;
/// c.reset(1)?;
/// c.cx(0, 1)?;
/// let m = c.measure(1)?;
/// c.add_detector(&[m], CheckBasis::Z, (0, 0, 0))?;
/// assert_eq!(c.num_measurements(), 1);
/// # Ok::<(), dqec_sim::SimError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Circuit {
    num_qubits: u32,
    ops: Vec<Op>,
    num_measurements: u32,
    detectors: Vec<Detector>,
    observables: Vec<Vec<u32>>,
}

impl Circuit {
    /// Creates an empty circuit over `num_qubits` qubits.
    pub fn new(num_qubits: u32) -> Self {
        Circuit {
            num_qubits,
            ops: Vec::new(),
            num_measurements: 0,
            detectors: Vec::new(),
            observables: Vec::new(),
        }
    }

    /// The number of qubits.
    pub fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// The operations in program order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// The number of measurement records the circuit produces.
    pub fn num_measurements(&self) -> u32 {
        self.num_measurements
    }

    /// The detectors, in definition order (detector id = index).
    pub fn detectors(&self) -> &[Detector] {
        &self.detectors
    }

    /// The observables; observable id = index, value = record indices.
    pub fn observables(&self) -> &[Vec<u32>] {
        &self.observables
    }

    /// Total count of noise-channel operations (diagnostics).
    pub fn num_noise_ops(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, Op::Noise1 { .. } | Op::Depolarize2 { .. }))
            .count()
    }

    fn check_qubit(&self, q: u32) -> Result<(), SimError> {
        if q >= self.num_qubits {
            Err(SimError::QubitOutOfRange {
                qubit: q,
                num_qubits: self.num_qubits,
            })
        } else {
            Ok(())
        }
    }

    fn check_pair(&self, a: u32, b: u32) -> Result<(), SimError> {
        self.check_qubit(a)?;
        self.check_qubit(b)?;
        if a == b {
            return Err(SimError::RepeatedQubit { qubit: a });
        }
        Ok(())
    }

    fn check_prob(p: f64) -> Result<(), SimError> {
        if !(0.0..=1.0).contains(&p) {
            Err(SimError::InvalidProbability { p })
        } else {
            Ok(())
        }
    }

    /// Appends a Hadamard gate.
    ///
    /// # Errors
    ///
    /// Returns an error if `q` is out of range.
    pub fn h(&mut self, q: u32) -> Result<(), SimError> {
        self.check_qubit(q)?;
        self.ops.push(Op::Gate1 { kind: Gate1::H, q });
        Ok(())
    }

    /// Appends an S (phase) gate.
    ///
    /// # Errors
    ///
    /// Returns an error if `q` is out of range.
    pub fn s(&mut self, q: u32) -> Result<(), SimError> {
        self.check_qubit(q)?;
        self.ops.push(Op::Gate1 { kind: Gate1::S, q });
        Ok(())
    }

    /// Appends a Pauli X gate.
    ///
    /// # Errors
    ///
    /// Returns an error if `q` is out of range.
    pub fn x(&mut self, q: u32) -> Result<(), SimError> {
        self.check_qubit(q)?;
        self.ops.push(Op::Gate1 { kind: Gate1::X, q });
        Ok(())
    }

    /// Appends a Pauli Z gate.
    ///
    /// # Errors
    ///
    /// Returns an error if `q` is out of range.
    pub fn z(&mut self, q: u32) -> Result<(), SimError> {
        self.check_qubit(q)?;
        self.ops.push(Op::Gate1 { kind: Gate1::Z, q });
        Ok(())
    }

    /// Appends a CX gate with control `c` and target `t`.
    ///
    /// # Errors
    ///
    /// Returns an error if a qubit is out of range or `c == t`.
    pub fn cx(&mut self, c: u32, t: u32) -> Result<(), SimError> {
        self.check_pair(c, t)?;
        self.ops.push(Op::Gate2 {
            kind: Gate2::Cx,
            a: c,
            b: t,
        });
        Ok(())
    }

    /// Appends a CZ gate.
    ///
    /// # Errors
    ///
    /// Returns an error if a qubit is out of range or `a == b`.
    pub fn cz(&mut self, a: u32, b: u32) -> Result<(), SimError> {
        self.check_pair(a, b)?;
        self.ops.push(Op::Gate2 {
            kind: Gate2::Cz,
            a,
            b,
        });
        Ok(())
    }

    /// Appends a Z-basis reset.
    ///
    /// # Errors
    ///
    /// Returns an error if `q` is out of range.
    pub fn reset(&mut self, q: u32) -> Result<(), SimError> {
        self.check_qubit(q)?;
        self.ops.push(Op::Reset { q });
        Ok(())
    }

    /// Appends a Z-basis measurement and returns its record handle.
    ///
    /// # Errors
    ///
    /// Returns an error if `q` is out of range.
    pub fn measure(&mut self, q: u32) -> Result<MeasRecord, SimError> {
        self.check_qubit(q)?;
        self.ops.push(Op::Measure { q });
        let r = MeasRecord(self.num_measurements);
        self.num_measurements += 1;
        Ok(r)
    }

    /// Appends a measure-and-reset pair and returns the record handle.
    ///
    /// # Errors
    ///
    /// Returns an error if `q` is out of range.
    pub fn measure_reset(&mut self, q: u32) -> Result<MeasRecord, SimError> {
        let r = self.measure(q)?;
        self.reset(q)?;
        Ok(r)
    }

    /// Appends a single-qubit noise channel.
    ///
    /// # Errors
    ///
    /// Returns an error if `q` is out of range or `p` is not in `[0, 1]`.
    pub fn noise1(&mut self, kind: Noise1, q: u32, p: f64) -> Result<(), SimError> {
        self.check_qubit(q)?;
        Self::check_prob(p)?;
        if p > 0.0 {
            self.ops.push(Op::Noise1 { kind, q, p });
        }
        Ok(())
    }

    /// Appends a two-qubit depolarizing channel.
    ///
    /// # Errors
    ///
    /// Returns an error if a qubit is out of range, `a == b`, or `p` is
    /// not in `[0, 1]`.
    pub fn depolarize2(&mut self, a: u32, b: u32, p: f64) -> Result<(), SimError> {
        self.check_pair(a, b)?;
        Self::check_prob(p)?;
        if p > 0.0 {
            self.ops.push(Op::Depolarize2 { a, b, p });
        }
        Ok(())
    }

    /// Appends a layer separator.
    pub fn tick(&mut self) {
        self.ops.push(Op::Tick);
    }

    /// Defines a detector over the given measurement records.
    ///
    /// # Errors
    ///
    /// Returns an error if any record does not exist yet.
    pub fn add_detector(
        &mut self,
        records: &[MeasRecord],
        basis: CheckBasis,
        coord: (i32, i32, i32),
    ) -> Result<u32, SimError> {
        let mut recs = Vec::with_capacity(records.len());
        for &MeasRecord(r) in records {
            if r >= self.num_measurements {
                return Err(SimError::RecordOutOfRange {
                    record: r,
                    num_records: self.num_measurements,
                });
            }
            recs.push(r);
        }
        recs.sort_unstable();
        // Records appearing an even number of times cancel.
        let mut parity = Vec::with_capacity(recs.len());
        for r in recs {
            if parity.last() == Some(&r) {
                parity.pop();
            } else {
                parity.push(r);
            }
        }
        self.detectors.push(Detector {
            records: parity,
            basis,
            coord,
        });
        Ok(self.detectors.len() as u32 - 1)
    }

    /// Adds measurement records to the observable with the given index,
    /// creating intermediate observables as needed.
    ///
    /// # Errors
    ///
    /// Returns an error if any record does not exist yet.
    pub fn include_observable(
        &mut self,
        observable: u32,
        records: &[MeasRecord],
    ) -> Result<(), SimError> {
        for &MeasRecord(r) in records {
            if r >= self.num_measurements {
                return Err(SimError::RecordOutOfRange {
                    record: r,
                    num_records: self.num_measurements,
                });
            }
        }
        while self.observables.len() <= observable as usize {
            self.observables.push(Vec::new());
        }
        self.observables[observable as usize].extend(records.iter().map(|m| m.0));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_records_are_sequential() {
        let mut c = Circuit::new(3);
        let a = c.measure(0).unwrap();
        let b = c.measure(2).unwrap();
        assert_eq!((a.0, b.0), (0, 1));
        assert_eq!(c.num_measurements(), 2);
    }

    #[test]
    fn qubit_range_is_enforced() {
        let mut c = Circuit::new(2);
        assert!(matches!(c.h(2), Err(SimError::QubitOutOfRange { .. })));
        assert!(matches!(c.cx(0, 5), Err(SimError::QubitOutOfRange { .. })));
        assert!(matches!(c.cx(1, 1), Err(SimError::RepeatedQubit { .. })));
    }

    #[test]
    fn probability_is_validated() {
        let mut c = Circuit::new(1);
        assert!(matches!(
            c.noise1(Noise1::XError, 0, 1.2),
            Err(SimError::InvalidProbability { .. })
        ));
        assert!(c.noise1(Noise1::XError, 0, 0.0).is_ok());
        // Zero-probability channels are dropped.
        assert_eq!(c.num_noise_ops(), 0);
    }

    #[test]
    fn detector_requires_existing_records() {
        let mut c = Circuit::new(1);
        let m = c.measure(0).unwrap();
        assert!(c.add_detector(&[m], CheckBasis::Z, (0, 0, 0)).is_ok());
        assert!(c
            .add_detector(&[MeasRecord(5)], CheckBasis::Z, (0, 0, 0))
            .is_err());
    }

    #[test]
    fn detector_cancels_duplicate_records() {
        let mut c = Circuit::new(1);
        let m = c.measure(0).unwrap();
        let n = c.measure(0).unwrap();
        let id = c
            .add_detector(&[m, n, m], CheckBasis::X, (0, 0, 0))
            .unwrap();
        assert_eq!(c.detectors()[id as usize].records, vec![n.0]);
    }

    #[test]
    fn observables_grow_on_demand() {
        let mut c = Circuit::new(1);
        let m = c.measure(0).unwrap();
        c.include_observable(2, &[m]).unwrap();
        assert_eq!(c.observables().len(), 3);
        assert_eq!(c.observables()[2], vec![0]);
    }
}
