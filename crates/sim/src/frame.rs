//! Vectorized Pauli-frame sampling of noisy circuit shots.
//!
//! Shots are packed 64 per machine word. Each shot's state is a Pauli
//! *frame* (a Pauli string) describing how that shot deviates from the
//! noiseless reference execution computed by the tableau simulator. All
//! extracted quantities (detectors, observables) are deterministic
//! parities, for which frame sampling is exact (Gidney, Stim 2021).

use crate::circuit::{Circuit, Gate1, Gate2, Noise1, Op};
use crate::pauli::Pauli;
use rand::Rng;

/// A dense bit table: `rows` bit-rows of `shots` columns each.
#[derive(Debug, Clone)]
pub struct BitTable {
    rows: usize,
    shots: usize,
    words_per_row: usize,
    data: Vec<u64>,
}

impl BitTable {
    /// Creates an all-zero table.
    pub fn zeros(rows: usize, shots: usize) -> Self {
        let words_per_row = shots.div_ceil(64).max(1);
        BitTable {
            rows,
            shots,
            words_per_row,
            data: vec![0; rows * words_per_row],
        }
    }

    /// The number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The number of shot columns.
    pub fn shots(&self) -> usize {
        self.shots
    }

    /// Reads the bit for `(row, shot)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn get(&self, row: usize, shot: usize) -> bool {
        assert!(row < self.rows && shot < self.shots, "index out of range");
        (self.data[row * self.words_per_row + shot / 64] >> (shot % 64)) & 1 == 1
    }

    /// Writes the bit for `(row, shot)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn set(&mut self, row: usize, shot: usize, value: bool) {
        assert!(row < self.rows && shot < self.shots, "index out of range");
        let word = &mut self.data[row * self.words_per_row + shot / 64];
        let bit = 1u64 << (shot % 64);
        if value {
            *word |= bit;
        } else {
            *word &= !bit;
        }
    }

    /// Mutable word slice of one row.
    #[inline]
    pub fn row_mut(&mut self, row: usize) -> &mut [u64] {
        let w = self.words_per_row;
        &mut self.data[row * w..(row + 1) * w]
    }

    /// Word slice of one row.
    #[inline]
    pub fn row(&self, row: usize) -> &[u64] {
        let w = self.words_per_row;
        &self.data[row * w..(row + 1) * w]
    }

    /// XORs row `src` of `other` into row `dst` of `self`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ or rows are out of range.
    pub fn xor_row_from(&mut self, dst: usize, other: &BitTable, src: usize) {
        assert_eq!(
            self.words_per_row, other.words_per_row,
            "shot count mismatch"
        );
        let w = self.words_per_row;
        let d = &mut self.data[dst * w..(dst + 1) * w];
        let s = &other.data[src * w..(src + 1) * w];
        for (a, b) in d.iter_mut().zip(s) {
            *a ^= b;
        }
    }

    /// The number of set bits in a row (e.g. failures over shots).
    pub fn count_row(&self, row: usize) -> usize {
        self.row(row).iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Indices of set bits in a row, ascending.
    ///
    /// Thin wrapper over [`BitTable::ones_in_row_iter`]; hot paths
    /// should use the iterator directly to avoid the `Vec` allocation.
    pub fn ones_in_row(&self, row: usize) -> Vec<usize> {
        self.ones_in_row_iter(row).collect()
    }

    /// Iterates the indices of set bits in a row, ascending, without
    /// allocating.
    pub fn ones_in_row_iter(&self, row: usize) -> OnesInRow<'_> {
        OnesInRow {
            words: self.row(row),
            next_word: 0,
            current: 0,
            base: 0,
            shots: self.shots,
        }
    }
}

/// Iterator over the set-bit positions of one [`BitTable`] row; see
/// [`BitTable::ones_in_row_iter`].
#[derive(Debug, Clone)]
pub struct OnesInRow<'a> {
    words: &'a [u64],
    next_word: usize,
    current: u64,
    base: usize,
    shots: usize,
}

impl Iterator for OnesInRow<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            while self.current == 0 {
                if self.next_word == self.words.len() {
                    return None;
                }
                self.current = self.words[self.next_word];
                self.base = self.next_word * 64;
                self.next_word += 1;
            }
            let b = self.current.trailing_zeros() as usize;
            self.current &= self.current - 1;
            let shot = self.base + b;
            if shot < self.shots {
                return Some(shot);
            }
        }
    }
}

/// The outcome of sampling a batch of shots.
#[derive(Debug, Clone)]
pub struct ShotBatch {
    /// Detector flip bits: row = detector id, column = shot.
    pub detectors: BitTable,
    /// Observable flip bits: row = observable id, column = shot.
    pub observables: BitTable,
}

impl ShotBatch {
    /// The flagged detector ids for one shot, ascending.
    pub fn detection_events(&self, shot: usize) -> Vec<u32> {
        let mut out = Vec::new();
        for d in 0..self.detectors.rows() {
            if self.detectors.get(d, shot) {
                out.push(d as u32);
            }
        }
        out
    }

    /// Flagged detector ids for every shot, computed in one row-major
    /// scan (fast at low physical error rates).
    ///
    /// Each shot's events land in their own `Vec`; batch decoders
    /// should prefer [`ShotBatch::shot_events`], which packs all events
    /// into two flat arrays with no per-shot allocation.
    pub fn detection_events_by_shot(&self) -> Vec<Vec<u32>> {
        let mut out = vec![Vec::new(); self.detectors.shots()];
        for d in 0..self.detectors.rows() {
            for shot in self.detectors.ones_in_row_iter(d) {
                out[shot].push(d as u32);
            }
        }
        out
    }

    /// Flagged detector ids for every shot as a flat CSR-style index:
    /// one row-major scan collecting `(shot, detector)` pairs and
    /// per-shot counts, then a counting-sort scatter into the flat
    /// event array — events ascending within each shot (rows are
    /// visited in detector order), and the bit table is only walked
    /// once.
    pub fn shot_events(&self) -> ShotEvents {
        let shots = self.detectors.shots();
        let mut offsets = vec![0u32; shots + 1];
        // Popcount pre-pass (no per-event work) sizes the pair buffer
        // exactly, so the per-event scan never reallocates.
        let total: usize = (0..self.detectors.rows())
            .map(|d| self.detectors.count_row(d))
            .sum();
        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(total);
        for d in 0..self.detectors.rows() {
            for shot in self.detectors.ones_in_row_iter(d) {
                offsets[shot + 1] += 1;
                pairs.push((shot as u32, d as u32));
            }
        }
        for s in 0..shots {
            offsets[s + 1] += offsets[s];
        }
        let mut cursor: Vec<u32> = offsets[..shots].to_vec();
        let mut events = vec![0u32; pairs.len()];
        for &(shot, d) in &pairs {
            events[cursor[shot as usize] as usize] = d;
            cursor[shot as usize] += 1;
        }
        ShotEvents { offsets, events }
    }
}

/// Detection events of a whole batch in flat CSR form: shot `s` owns
/// `events[offsets[s]..offsets[s + 1]]`, ascending. Built by
/// [`ShotBatch::shot_events`].
#[derive(Debug, Clone)]
pub struct ShotEvents {
    offsets: Vec<u32>,
    events: Vec<u32>,
}

impl ShotEvents {
    /// The number of shots indexed.
    pub fn shots(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The total number of detection events across all shots.
    pub fn total_events(&self) -> usize {
        self.events.len()
    }

    /// The flagged detector ids of one shot, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `shot` is out of range.
    #[inline]
    pub fn events_of(&self, shot: usize) -> &[u32] {
        &self.events[self.offsets[shot] as usize..self.offsets[shot + 1] as usize]
    }
}

/// Samples noisy shots of a circuit via batch Pauli-frame simulation.
///
/// # Examples
///
/// ```
/// use dqec_sim::circuit::{CheckBasis, Circuit, Noise1};
/// use dqec_sim::frame::FrameSampler;
/// use rand::SeedableRng;
///
/// let mut c = Circuit::new(1);
/// c.reset(0)?;
/// c.noise1(Noise1::XError, 0, 0.25)?;
/// let m = c.measure(0)?;
/// c.add_detector(&[m], CheckBasis::Z, (0, 0, 0))?;
///
/// let sampler = FrameSampler::new(&c);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let batch = sampler.sample(10_000, &mut rng);
/// let flips = batch.detectors.count_row(0);
/// assert!((1_800..3_200).contains(&flips), "~25% of shots flip");
/// # Ok::<(), dqec_sim::SimError>(())
/// ```
#[derive(Debug)]
pub struct FrameSampler<'a> {
    circuit: &'a Circuit,
}

impl<'a> FrameSampler<'a> {
    /// Creates a sampler for the given circuit.
    pub fn new(circuit: &'a Circuit) -> Self {
        FrameSampler { circuit }
    }

    /// Samples `shots` noisy executions and returns detector/observable
    /// flip tables.
    pub fn sample<R: Rng>(&self, shots: usize, rng: &mut R) -> ShotBatch {
        let c = self.circuit;
        let nq = c.num_qubits() as usize;
        let w = shots.div_ceil(64).max(1);
        let mut fx = vec![0u64; nq * w];
        let mut fz = vec![0u64; nq * w];
        let mut records = BitTable::zeros(c.num_measurements() as usize, shots);
        let mut next_record = 0usize;

        // Mask to keep random bits within the shot count in the last word.
        let tail_bits = shots % 64;
        let tail_mask = if tail_bits == 0 {
            u64::MAX
        } else {
            (1u64 << tail_bits) - 1
        };
        let fill_random = |dst: &mut [u64], rng: &mut R| {
            for (i, word) in dst.iter_mut().enumerate() {
                let mut r: u64 = rng.gen();
                if i == w - 1 {
                    r &= tail_mask;
                }
                *word = r;
            }
        };

        for op in c.ops() {
            match *op {
                Op::Gate1 { kind: Gate1::H, q } => {
                    let q = q as usize;
                    for i in 0..w {
                        std::mem::swap(&mut fx[q * w + i], &mut fz[q * w + i]);
                    }
                }
                Op::Gate1 { kind: Gate1::S, q } => {
                    let q = q as usize;
                    for i in 0..w {
                        fz[q * w + i] ^= fx[q * w + i];
                    }
                }
                Op::Gate1 { .. } => {}
                Op::Gate2 {
                    kind: Gate2::Cx,
                    a,
                    b,
                } => {
                    let (c_, t) = (a as usize, b as usize);
                    for i in 0..w {
                        fx[t * w + i] ^= fx[c_ * w + i];
                        fz[c_ * w + i] ^= fz[t * w + i];
                    }
                }
                Op::Gate2 {
                    kind: Gate2::Cz,
                    a,
                    b,
                } => {
                    let (a, b) = (a as usize, b as usize);
                    for i in 0..w {
                        let xa = fx[a * w + i];
                        let xb = fx[b * w + i];
                        fz[a * w + i] ^= xb;
                        fz[b * w + i] ^= xa;
                    }
                }
                Op::Reset { q } => {
                    let q = q as usize;
                    fx[q * w..(q + 1) * w].fill(0);
                    fill_random(&mut fz[q * w..(q + 1) * w], rng);
                }
                Op::Measure { q } => {
                    let q = q as usize;
                    records
                        .row_mut(next_record)
                        .copy_from_slice(&fx[q * w..(q + 1) * w]);
                    next_record += 1;
                    // Randomize the anticommuting part of the frame to
                    // model measurement collapse (Stim's convention).
                    let mut scratch = vec![0u64; w];
                    fill_random(&mut scratch, rng);
                    for i in 0..w {
                        fz[q * w + i] ^= scratch[i];
                    }
                }
                Op::Noise1 { kind, q, p } => {
                    let q = q as usize;
                    sample_hits(p, shots, rng, |shot, rng| {
                        let (ex, ez) = match kind {
                            Noise1::XError => (true, false),
                            Noise1::ZError => (false, true),
                            Noise1::Depolarize1 => {
                                Pauli::ONE_QUBIT_ERRORS[rng.gen_range(0..3usize)].xz()
                            }
                        };
                        let (wi, b) = (shot / 64, shot % 64);
                        if ex {
                            fx[q * w + wi] ^= 1 << b;
                        }
                        if ez {
                            fz[q * w + wi] ^= 1 << b;
                        }
                    });
                }
                Op::Depolarize2 { a, b, p } => {
                    let (a, b) = (a as usize, b as usize);
                    sample_hits(p, shots, rng, |shot, rng| {
                        let (pa, pb) = Pauli::TWO_QUBIT_ERRORS[rng.gen_range(0..15usize)];
                        let (wi, bit) = (shot / 64, shot % 64);
                        let (ax, az) = pa.xz();
                        let (bx, bz) = pb.xz();
                        if ax {
                            fx[a * w + wi] ^= 1 << bit;
                        }
                        if az {
                            fz[a * w + wi] ^= 1 << bit;
                        }
                        if bx {
                            fx[b * w + wi] ^= 1 << bit;
                        }
                        if bz {
                            fz[b * w + wi] ^= 1 << bit;
                        }
                    });
                }
                Op::Tick => {}
            }
        }

        // Assemble detectors and observables from record flips.
        let mut detectors = BitTable::zeros(c.detectors().len(), shots);
        for (d, det) in c.detectors().iter().enumerate() {
            for &r in &det.records {
                detectors.xor_row_from(d, &records, r as usize);
            }
        }
        let mut observables = BitTable::zeros(c.observables().len(), shots);
        for (o, obs) in c.observables().iter().enumerate() {
            for &r in obs {
                observables.xor_row_from(o, &records, r as usize);
            }
        }
        ShotBatch {
            detectors,
            observables,
        }
    }
}

/// Calls `hit(shot, rng)` for each shot independently selected with
/// probability `p`, using geometric skipping (cost proportional to the
/// number of hits rather than the number of shots).
fn sample_hits<R: Rng>(p: f64, shots: usize, rng: &mut R, mut hit: impl FnMut(usize, &mut R)) {
    if p <= 0.0 {
        return;
    }
    if p >= 1.0 {
        for s in 0..shots {
            hit(s, rng);
        }
        return;
    }
    let log1m = (1.0 - p).ln();
    let mut s: usize = 0;
    loop {
        // Geometric gap: floor(ln(U) / ln(1-p)).
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let gap = (u.ln() / log1m).floor();
        if !gap.is_finite() || gap >= (shots - s) as f64 {
            break;
        }
        s += gap as usize;
        hit(s, rng);
        s += 1;
        if s >= shots {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::CheckBasis;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x5eed)
    }

    #[test]
    fn bit_table_roundtrip() {
        let mut t = BitTable::zeros(2, 130);
        t.row_mut(1)[2] |= 1; // shot 128
        assert!(t.get(1, 128));
        assert!(!t.get(1, 127));
        assert_eq!(t.ones_in_row(1), vec![128]);
        assert_eq!(t.count_row(1), 1);
    }

    #[test]
    fn sample_hits_density_matches() {
        let mut n = 0usize;
        let shots = 100_000;
        sample_hits(0.01, shots, &mut rng(), |_, _| n += 1);
        assert!((700..1350).contains(&n), "got {n} hits for p=0.01");
    }

    #[test]
    fn sample_hits_extremes() {
        let mut n = 0usize;
        sample_hits(0.0, 1000, &mut rng(), |_, _| n += 1);
        assert_eq!(n, 0);
        sample_hits(1.0, 1000, &mut rng(), |_, _| n += 1);
        assert_eq!(n, 1000);
    }

    #[test]
    fn x_error_flips_z_measurement() {
        let mut c = Circuit::new(1);
        c.reset(0).unwrap();
        c.noise1(Noise1::XError, 0, 1.0).unwrap();
        let m = c.measure(0).unwrap();
        c.add_detector(&[m], CheckBasis::Z, (0, 0, 0)).unwrap();
        let batch = FrameSampler::new(&c).sample(100, &mut rng());
        assert_eq!(batch.detectors.count_row(0), 100);
    }

    #[test]
    fn z_error_does_not_flip_z_measurement() {
        let mut c = Circuit::new(1);
        c.reset(0).unwrap();
        c.noise1(Noise1::ZError, 0, 1.0).unwrap();
        let m = c.measure(0).unwrap();
        c.add_detector(&[m], CheckBasis::Z, (0, 0, 0)).unwrap();
        let batch = FrameSampler::new(&c).sample(100, &mut rng());
        assert_eq!(batch.detectors.count_row(0), 0);
    }

    #[test]
    fn z_error_flips_after_hadamard() {
        let mut c = Circuit::new(1);
        c.reset(0).unwrap();
        c.h(0).unwrap();
        c.noise1(Noise1::ZError, 0, 1.0).unwrap();
        c.h(0).unwrap();
        let m = c.measure(0).unwrap();
        c.add_detector(&[m], CheckBasis::Z, (0, 0, 0)).unwrap();
        let batch = FrameSampler::new(&c).sample(64, &mut rng());
        assert_eq!(batch.detectors.count_row(0), 64);
    }

    #[test]
    fn cx_propagates_x_to_target() {
        let mut c = Circuit::new(2);
        c.reset(0).unwrap();
        c.reset(1).unwrap();
        c.noise1(Noise1::XError, 0, 1.0).unwrap();
        c.cx(0, 1).unwrap();
        let m = c.measure(1).unwrap();
        c.add_detector(&[m], CheckBasis::Z, (0, 0, 0)).unwrap();
        let batch = FrameSampler::new(&c).sample(10, &mut rng());
        assert_eq!(batch.detectors.count_row(0), 10);
    }

    #[test]
    fn reset_clears_errors() {
        let mut c = Circuit::new(1);
        c.reset(0).unwrap();
        c.noise1(Noise1::XError, 0, 1.0).unwrap();
        c.reset(0).unwrap();
        let m = c.measure(0).unwrap();
        c.add_detector(&[m], CheckBasis::Z, (0, 0, 0)).unwrap();
        let batch = FrameSampler::new(&c).sample(50, &mut rng());
        assert_eq!(batch.detectors.count_row(0), 0);
    }

    #[test]
    fn depolarize1_flips_about_two_thirds() {
        let mut c = Circuit::new(1);
        c.reset(0).unwrap();
        c.noise1(Noise1::Depolarize1, 0, 1.0).unwrap();
        let m = c.measure(0).unwrap();
        c.add_detector(&[m], CheckBasis::Z, (0, 0, 0)).unwrap();
        let shots = 30_000;
        let batch = FrameSampler::new(&c).sample(shots, &mut rng());
        let frac = batch.detectors.count_row(0) as f64 / shots as f64;
        assert!((frac - 2.0 / 3.0).abs() < 0.02, "X or Y flip: got {frac}");
    }

    #[test]
    fn observable_tracks_logical_flip() {
        // Repetition "code": observable = Z0 via final measurement.
        let mut c = Circuit::new(1);
        c.reset(0).unwrap();
        c.noise1(Noise1::XError, 0, 0.5).unwrap();
        let m = c.measure(0).unwrap();
        c.include_observable(0, &[m]).unwrap();
        let shots = 20_000;
        let batch = FrameSampler::new(&c).sample(shots, &mut rng());
        let frac = batch.observables.count_row(0) as f64 / shots as f64;
        assert!((frac - 0.5).abs() < 0.02, "got {frac}");
    }

    #[test]
    fn detection_events_by_shot_matches_naive() {
        let mut c = Circuit::new(2);
        for q in 0..2 {
            c.reset(q).unwrap();
            c.noise1(Noise1::XError, q, 0.3).unwrap();
        }
        let m0 = c.measure(0).unwrap();
        let m1 = c.measure(1).unwrap();
        c.add_detector(&[m0], CheckBasis::Z, (0, 0, 0)).unwrap();
        c.add_detector(&[m1], CheckBasis::Z, (1, 0, 0)).unwrap();
        let batch = FrameSampler::new(&c).sample(777, &mut rng());
        let by_shot = batch.detection_events_by_shot();
        for shot in [0usize, 1, 100, 776] {
            assert_eq!(by_shot[shot], batch.detection_events(shot));
        }
    }

    #[test]
    fn ones_in_row_iter_matches_vec_form() {
        let mut t = BitTable::zeros(1, 200);
        for shot in [0usize, 63, 64, 65, 128, 199] {
            t.set(0, shot, true);
        }
        let from_iter: Vec<usize> = t.ones_in_row_iter(0).collect();
        assert_eq!(from_iter, t.ones_in_row(0));
        assert_eq!(from_iter, vec![0, 63, 64, 65, 128, 199]);
        // Clearing a bit works too.
        t.set(0, 64, false);
        assert_eq!(t.ones_in_row(0), vec![0, 63, 65, 128, 199]);
        // An all-zero row yields nothing without allocating.
        let z = BitTable::zeros(1, 100);
        assert_eq!(z.ones_in_row_iter(0).next(), None);
    }

    #[test]
    fn shot_events_matches_per_shot_vectors() {
        let mut c = Circuit::new(3);
        for q in 0..3 {
            c.reset(q).unwrap();
            c.noise1(Noise1::XError, q, 0.25).unwrap();
        }
        for q in 0..3 {
            let m = c.measure(q).unwrap();
            c.add_detector(&[m], CheckBasis::Z, (q as i32, 0, 0))
                .unwrap();
        }
        let batch = FrameSampler::new(&c).sample(513, &mut rng());
        let flat = batch.shot_events();
        let by_shot = batch.detection_events_by_shot();
        assert_eq!(flat.shots(), 513);
        let total: usize = by_shot.iter().map(Vec::len).sum();
        assert_eq!(flat.total_events(), total);
        for (shot, events) in by_shot.iter().enumerate() {
            assert_eq!(flat.events_of(shot), events.as_slice());
        }
    }
}
