//! Aaronson–Gottesman stabilizer tableau simulation.
//!
//! Used to compute the *reference sample* of a circuit: the measurement
//! outcomes of one noiseless execution, with every non-deterministic
//! measurement outcome fixed to 0 (and the state collapsed accordingly).
//! The batch Pauli-frame sampler then expresses noisy shots as
//! deviations from this reference, exactly as in Stim.

use crate::circuit::{Circuit, Gate1, Gate2, Op};
use crate::pauli::words_for;

/// A stabilizer tableau over `n` qubits with destabilizer rows `0..n`
/// and stabilizer rows `n..2n` (CHP layout), plus one scratch row.
#[derive(Debug, Clone)]
pub struct Tableau {
    n: usize,
    w: usize,
    xs: Vec<u64>,
    zs: Vec<u64>,
    signs: Vec<u8>,
}

impl Tableau {
    /// Creates the tableau of the all-|0> state.
    pub fn new(num_qubits: usize) -> Self {
        let n = num_qubits;
        let w = words_for(n).max(1);
        let rows = 2 * n + 1;
        let mut t = Tableau {
            n,
            w,
            xs: vec![0; rows * w],
            zs: vec![0; rows * w],
            signs: vec![0; rows],
        };
        for i in 0..n {
            t.set_x(i, i, true); // destabilizer X_i
            t.set_z(n + i, i, true); // stabilizer Z_i
        }
        t
    }

    /// The number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    #[inline]
    fn x(&self, row: usize, q: usize) -> bool {
        (self.xs[row * self.w + q / 64] >> (q % 64)) & 1 == 1
    }

    #[inline]
    fn z(&self, row: usize, q: usize) -> bool {
        (self.zs[row * self.w + q / 64] >> (q % 64)) & 1 == 1
    }

    #[inline]
    fn set_x(&mut self, row: usize, q: usize, v: bool) {
        let i = row * self.w + q / 64;
        let b = q % 64;
        self.xs[i] = (self.xs[i] & !(1 << b)) | ((v as u64) << b);
    }

    #[inline]
    fn set_z(&mut self, row: usize, q: usize, v: bool) {
        let i = row * self.w + q / 64;
        let b = q % 64;
        self.zs[i] = (self.zs[i] & !(1 << b)) | ((v as u64) << b);
    }

    /// Applies a Hadamard on `q`.
    pub fn h(&mut self, q: usize) {
        for row in 0..2 * self.n {
            let x = self.x(row, q);
            let z = self.z(row, q);
            self.signs[row] ^= (x & z) as u8;
            self.set_x(row, q, z);
            self.set_z(row, q, x);
        }
    }

    /// Applies an S gate on `q`.
    pub fn s(&mut self, q: usize) {
        for row in 0..2 * self.n {
            let x = self.x(row, q);
            let z = self.z(row, q);
            self.signs[row] ^= (x & z) as u8;
            self.set_z(row, q, z ^ x);
        }
    }

    /// Applies a CX with control `c`, target `t`.
    pub fn cx(&mut self, c: usize, t: usize) {
        for row in 0..2 * self.n {
            let xc = self.x(row, c);
            let zc = self.z(row, c);
            let xt = self.x(row, t);
            let zt = self.z(row, t);
            self.signs[row] ^= (xc & zt & (xt ^ zc ^ true)) as u8;
            self.set_x(row, t, xt ^ xc);
            self.set_z(row, c, zc ^ zt);
        }
    }

    /// Applies a CZ between `a` and `b`.
    pub fn cz(&mut self, a: usize, b: usize) {
        self.h(b);
        self.cx(a, b);
        self.h(b);
    }

    /// Applies a Pauli X on `q` (flips signs of rows containing Z_q).
    pub fn x_gate(&mut self, q: usize) {
        for row in 0..2 * self.n {
            self.signs[row] ^= self.z(row, q) as u8;
        }
    }

    /// Applies a Pauli Z on `q` (flips signs of rows containing X_q).
    pub fn z_gate(&mut self, q: usize) {
        for row in 0..2 * self.n {
            self.signs[row] ^= self.x(row, q) as u8;
        }
    }

    /// CHP `rowsum`: multiplies row `i` into row `h`, tracking signs.
    fn rowsum(&mut self, h: usize, i: usize) {
        let mut phase: i64 = 2 * self.signs[h] as i64 + 2 * self.signs[i] as i64;
        let (hw, iw) = (h * self.w, i * self.w);
        for k in 0..self.w {
            let x1 = self.xs[iw + k];
            let z1 = self.zs[iw + k];
            let x2 = self.xs[hw + k];
            let z2 = self.zs[hw + k];
            // Per-bit CHP g-function, evaluated branch-free over words.
            let plus = (x1 & z1 & z2 & !x2) | (x1 & !z1 & x2 & z2) | (!x1 & z1 & x2 & !z2);
            let minus = (x1 & z1 & x2 & !z2) | (x1 & !z1 & z2 & !x2) | (!x1 & z1 & x2 & z2);
            phase += plus.count_ones() as i64 - minus.count_ones() as i64;
            self.xs[hw + k] = x2 ^ x1;
            self.zs[hw + k] = z2 ^ z1;
        }
        debug_assert_eq!(phase.rem_euclid(4) % 2, 0, "rowsum phase must be real");
        self.signs[h] = ((phase.rem_euclid(4)) / 2) as u8;
    }

    /// Measures qubit `q` in the Z basis.
    ///
    /// Returns `(outcome, was_deterministic)`. Non-deterministic
    /// measurements always yield 0 here (reference-sample convention)
    /// and collapse the state.
    pub fn measure_z(&mut self, q: usize) -> (bool, bool) {
        self.measure_z_choosing(q, false)
    }

    /// Measures qubit `q` in the Z basis, resolving a non-deterministic
    /// outcome to `choice` (used to validate detector determinism by
    /// comparing differently-resolved reference runs).
    pub fn measure_z_choosing(&mut self, q: usize, choice: bool) -> (bool, bool) {
        let n = self.n;
        // Look for a stabilizer row anticommuting with Z_q.
        let pivot = (n..2 * n).find(|&row| self.x(row, q));
        if let Some(p) = pivot {
            // Skip the destabilizer partner p - n: it anticommutes with
            // stabilizer p (their product is imaginary, tripping the
            // rowsum phase invariant) and is overwritten below anyway.
            for row in 0..2 * n {
                if row != p && row != p - n && self.x(row, q) {
                    self.rowsum(row, p);
                }
            }
            // Destabilizer for the new stabilizer is the old row p.
            let (pw, dw) = (p * self.w, (p - n) * self.w);
            for k in 0..self.w {
                self.xs[dw + k] = self.xs[pw + k];
                self.zs[dw + k] = self.zs[pw + k];
                self.xs[pw + k] = 0;
                self.zs[pw + k] = 0;
            }
            self.signs[p - n] = self.signs[p];
            self.set_z(p, q, true);
            self.signs[p] = choice as u8;
            (choice, false)
        } else {
            // Deterministic: accumulate into the scratch row.
            let scratch = 2 * n;
            let sw = scratch * self.w;
            for k in 0..self.w {
                self.xs[sw + k] = 0;
                self.zs[sw + k] = 0;
            }
            self.signs[scratch] = 0;
            for i in 0..n {
                if self.x(i, q) {
                    self.rowsum(scratch, i + n);
                }
            }
            (self.signs[scratch] == 1, true)
        }
    }

    /// Resets qubit `q` to |0>.
    pub fn reset_z(&mut self, q: usize) {
        let (outcome, _) = self.measure_z(q);
        if outcome {
            self.x_gate(q);
        }
    }
}

/// The reference sample of a circuit: noiseless measurement outcomes
/// with non-deterministic outcomes fixed to 0, plus which measurements
/// were deterministic.
#[derive(Debug, Clone)]
pub struct ReferenceSample {
    /// Outcome of each measurement record in order.
    pub outcomes: Vec<bool>,
    /// Whether each measurement was deterministic in the noiseless run.
    pub deterministic: Vec<bool>,
}

impl ReferenceSample {
    /// Computes the reference sample of `circuit`, ignoring noise ops.
    pub fn of(circuit: &Circuit) -> Self {
        Self::of_choosing(circuit, |_| false)
    }

    /// Computes a reference run resolving the `i`-th non-deterministic
    /// measurement outcome with `choose(i)`.
    pub fn of_choosing(circuit: &Circuit, mut choose: impl FnMut(usize) -> bool) -> Self {
        let mut t = Tableau::new(circuit.num_qubits() as usize);
        let mut outcomes = Vec::with_capacity(circuit.num_measurements() as usize);
        let mut deterministic = Vec::with_capacity(outcomes.capacity());
        let mut random_count = 0usize;
        for op in circuit.ops() {
            match *op {
                Op::Gate1 { kind: Gate1::H, q } => t.h(q as usize),
                Op::Gate1 { kind: Gate1::S, q } => t.s(q as usize),
                Op::Gate1 { kind: Gate1::X, q } => t.x_gate(q as usize),
                Op::Gate1 { kind: Gate1::Z, q } => t.z_gate(q as usize),
                Op::Gate2 {
                    kind: Gate2::Cx,
                    a,
                    b,
                } => t.cx(a as usize, b as usize),
                Op::Gate2 {
                    kind: Gate2::Cz,
                    a,
                    b,
                } => t.cz(a as usize, b as usize),
                Op::Reset { q } => t.reset_z(q as usize),
                Op::Measure { q } => {
                    // Probe determinism first by attempting with choice 0;
                    // measure_z_choosing reports whether it was random.
                    let choice = choose(random_count);
                    let (o, det) = t.measure_z_choosing(q as usize, choice);
                    if !det {
                        random_count += 1;
                    }
                    outcomes.push(o);
                    deterministic.push(det);
                }
                Op::Noise1 { .. } | Op::Depolarize2 { .. } | Op::Tick => {}
            }
        }
        ReferenceSample {
            outcomes,
            deterministic,
        }
    }

    /// The parity of a detector's records in this reference run.
    pub fn detector_parity(&self, records: &[u32]) -> bool {
        records
            .iter()
            .fold(false, |acc, &r| acc ^ self.outcomes[r as usize])
    }

    /// Checks detector determinism by comparing several reference runs
    /// with different resolutions of the random measurement outcomes.
    ///
    /// Returns the ids of detectors whose parity is nonzero in the
    /// canonical run or differs across the probe runs (empty = all good).
    pub fn violated_detectors(circuit: &Circuit) -> Vec<u32> {
        let base = ReferenceSample::of(circuit);
        let probes = [
            ReferenceSample::of_choosing(circuit, |_| true),
            ReferenceSample::of_choosing(circuit, |i| i % 2 == 0),
            ReferenceSample::of_choosing(circuit, |i| i % 3 == 0),
        ];
        let mut bad = Vec::new();
        for (id, det) in circuit.detectors().iter().enumerate() {
            let p = base.detector_parity(&det.records);
            let stable = probes.iter().all(|r| r.detector_parity(&det.records) == p);
            if p || !stable {
                bad.push(id as u32);
            }
        }
        bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::CheckBasis;

    #[test]
    fn fresh_qubit_measures_zero_deterministically() {
        let mut t = Tableau::new(2);
        assert_eq!(t.measure_z(0), (false, true));
        assert_eq!(t.measure_z(1), (false, true));
    }

    #[test]
    fn x_flips_measurement() {
        let mut t = Tableau::new(1);
        t.x_gate(0);
        assert_eq!(t.measure_z(0), (true, true));
    }

    #[test]
    fn hadamard_makes_measurement_random_then_collapses() {
        let mut t = Tableau::new(1);
        t.h(0);
        let (o, det) = t.measure_z(0);
        assert!(!det, "H|0> has random Z outcome");
        assert!(!o, "reference convention fixes random outcomes to 0");
        // After collapse the same measurement is deterministic.
        assert_eq!(t.measure_z(0), (false, true));
    }

    #[test]
    fn bell_pair_outcomes_agree() {
        let mut t = Tableau::new(2);
        t.h(0);
        t.cx(0, 1);
        let (a, det_a) = t.measure_z(0);
        let (b, det_b) = t.measure_z(1);
        assert!(!det_a);
        assert!(det_b, "second half of Bell pair is determined by the first");
        assert_eq!(a, b);
    }

    #[test]
    fn ghz_parity_is_even() {
        let n = 5;
        let mut t = Tableau::new(n);
        t.h(0);
        for q in 1..n {
            t.cx(0, q);
        }
        let outcomes: Vec<bool> = (0..n).map(|q| t.measure_z(q).0).collect();
        let parity = outcomes.iter().fold(false, |a, &b| a ^ b);
        assert!(!parity);
        assert!(outcomes.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn s_gate_squares_to_z() {
        // HSSH |0> = HZH |0> = X |0> = |1>.
        let mut t = Tableau::new(1);
        t.h(0);
        t.s(0);
        t.s(0);
        t.h(0);
        assert_eq!(t.measure_z(0), (true, true));
    }

    #[test]
    fn cz_is_symmetric_and_phases() {
        // |+>|1> under CZ becomes |->|1>; H on qubit 0 gives |1>|1>.
        let mut t = Tableau::new(2);
        t.h(0);
        t.x_gate(1);
        t.cz(0, 1);
        t.h(0);
        assert_eq!(t.measure_z(0), (true, true));
        assert_eq!(t.measure_z(1), (true, true));
    }

    #[test]
    fn reset_after_entanglement() {
        let mut t = Tableau::new(2);
        t.h(0);
        t.cx(0, 1);
        t.reset_z(0);
        assert_eq!(t.measure_z(0), (false, true));
    }

    #[test]
    fn reference_sample_of_repetition_round_is_deterministic() {
        // Two-qubit repetition-code parity measured via an ancilla.
        let mut c = Circuit::new(3);
        for q in 0..3 {
            c.reset(q).unwrap();
        }
        c.cx(0, 2).unwrap();
        c.cx(1, 2).unwrap();
        let m = c.measure(2).unwrap();
        c.add_detector(&[m], CheckBasis::Z, (0, 0, 0)).unwrap();
        let refs = ReferenceSample::of(&c);
        assert_eq!(refs.outcomes, vec![false]);
        assert!(refs.deterministic[0]);
        assert!(ReferenceSample::violated_detectors(&c).is_empty());
    }
}
