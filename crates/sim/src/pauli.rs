//! Pauli operators and dense, bit-packed Pauli strings.
//!
//! A Pauli string over `n` qubits is stored as two bit vectors `xs` and
//! `zs`: qubit `q` carries `X` when only `xs[q]` is set, `Z` when only
//! `zs[q]` is set, and `Y` when both are set. Global phases are tracked
//! only where an algorithm needs them (the tableau simulator keeps its
//! own sign bits).

/// A single-qubit Pauli operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Pauli {
    /// The identity.
    #[default]
    I,
    /// The bit-flip operator.
    X,
    /// The combined bit- and phase-flip operator.
    Y,
    /// The phase-flip operator.
    Z,
}

impl Pauli {
    /// All fifteen non-identity two-qubit Pauli pairs, in a fixed order.
    ///
    /// This is the support of the two-qubit depolarizing channel.
    pub const TWO_QUBIT_ERRORS: [(Pauli, Pauli); 15] = [
        (Pauli::I, Pauli::X),
        (Pauli::I, Pauli::Y),
        (Pauli::I, Pauli::Z),
        (Pauli::X, Pauli::I),
        (Pauli::X, Pauli::X),
        (Pauli::X, Pauli::Y),
        (Pauli::X, Pauli::Z),
        (Pauli::Y, Pauli::I),
        (Pauli::Y, Pauli::X),
        (Pauli::Y, Pauli::Y),
        (Pauli::Y, Pauli::Z),
        (Pauli::Z, Pauli::I),
        (Pauli::Z, Pauli::X),
        (Pauli::Z, Pauli::Y),
        (Pauli::Z, Pauli::Z),
    ];

    /// The single-qubit depolarizing support: `X`, `Y`, `Z`.
    pub const ONE_QUBIT_ERRORS: [Pauli; 3] = [Pauli::X, Pauli::Y, Pauli::Z];

    /// Returns the `(x, z)` symplectic component bits of this Pauli.
    #[inline]
    pub fn xz(self) -> (bool, bool) {
        match self {
            Pauli::I => (false, false),
            Pauli::X => (true, false),
            Pauli::Y => (true, true),
            Pauli::Z => (false, true),
        }
    }

    /// Builds a Pauli from its symplectic component bits.
    #[inline]
    pub fn from_xz(x: bool, z: bool) -> Self {
        match (x, z) {
            (false, false) => Pauli::I,
            (true, false) => Pauli::X,
            (true, true) => Pauli::Y,
            (false, true) => Pauli::Z,
        }
    }

    /// Whether this Pauli anticommutes with `other`.
    #[inline]
    pub fn anticommutes_with(self, other: Pauli) -> bool {
        let (x1, z1) = self.xz();
        let (x2, z2) = other.xz();
        (x1 & z2) ^ (z1 & x2)
    }

    /// The product of two Paulis, ignoring phase.
    #[inline]
    pub fn mul_ignoring_phase(self, other: Pauli) -> Pauli {
        let (x1, z1) = self.xz();
        let (x2, z2) = other.xz();
        Pauli::from_xz(x1 ^ x2, z1 ^ z2)
    }
}

impl std::fmt::Display for Pauli {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let c = match self {
            Pauli::I => 'I',
            Pauli::X => 'X',
            Pauli::Y => 'Y',
            Pauli::Z => 'Z',
        };
        write!(f, "{c}")
    }
}

/// Number of 64-bit words needed to hold `bits` bits.
#[inline]
pub(crate) fn words_for(bits: usize) -> usize {
    bits.div_ceil(64)
}

/// A dense, bit-packed Pauli string over a fixed number of qubits.
///
/// # Examples
///
/// ```
/// use dqec_sim::pauli::{Pauli, PauliString};
///
/// let mut s = PauliString::identity(4);
/// s.set(1, Pauli::X);
/// s.set(2, Pauli::Z);
/// assert_eq!(s.get(1), Pauli::X);
/// assert_eq!(s.weight(), 2);
/// assert_eq!(s.to_string(), "IXZI");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PauliString {
    num_qubits: usize,
    xs: Vec<u64>,
    zs: Vec<u64>,
}

impl PauliString {
    /// Creates the identity string on `num_qubits` qubits.
    pub fn identity(num_qubits: usize) -> Self {
        let w = words_for(num_qubits);
        PauliString {
            num_qubits,
            xs: vec![0; w],
            zs: vec![0; w],
        }
    }

    /// Creates a string from explicit per-qubit Paulis.
    pub fn from_paulis<I: IntoIterator<Item = Pauli>>(paulis: I) -> Self {
        let paulis: Vec<Pauli> = paulis.into_iter().collect();
        let mut s = PauliString::identity(paulis.len());
        for (q, p) in paulis.iter().enumerate() {
            s.set(q, *p);
        }
        s
    }

    /// Creates a string that applies `pauli` to the listed qubits.
    ///
    /// # Panics
    ///
    /// Panics if any listed qubit is `>= num_qubits`.
    pub fn from_support(num_qubits: usize, pauli: Pauli, support: &[usize]) -> Self {
        let mut s = PauliString::identity(num_qubits);
        for &q in support {
            s.set(q, pauli);
        }
        s
    }

    /// The number of qubits this string acts on.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The Pauli applied to qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q >= num_qubits`.
    #[inline]
    pub fn get(&self, q: usize) -> Pauli {
        assert!(q < self.num_qubits, "qubit {q} out of range");
        let (w, b) = (q / 64, q % 64);
        Pauli::from_xz((self.xs[w] >> b) & 1 == 1, (self.zs[w] >> b) & 1 == 1)
    }

    /// Sets the Pauli applied to qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q >= num_qubits`.
    #[inline]
    pub fn set(&mut self, q: usize, p: Pauli) {
        assert!(q < self.num_qubits, "qubit {q} out of range");
        let (w, b) = (q / 64, q % 64);
        let (x, z) = p.xz();
        self.xs[w] = (self.xs[w] & !(1 << b)) | ((x as u64) << b);
        self.zs[w] = (self.zs[w] & !(1 << b)) | ((z as u64) << b);
    }

    /// The number of qubits on which the string is not the identity.
    pub fn weight(&self) -> usize {
        self.xs
            .iter()
            .zip(&self.zs)
            .map(|(x, z)| (x | z).count_ones() as usize)
            .sum()
    }

    /// Whether the string is the identity.
    pub fn is_identity(&self) -> bool {
        self.xs.iter().all(|&w| w == 0) && self.zs.iter().all(|&w| w == 0)
    }

    /// Whether this string anticommutes with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the strings act on different qubit counts.
    pub fn anticommutes_with(&self, other: &PauliString) -> bool {
        assert_eq!(self.num_qubits, other.num_qubits, "qubit count mismatch");
        let mut acc = 0u32;
        for i in 0..self.xs.len() {
            acc ^=
                (self.xs[i] & other.zs[i]).count_ones() ^ (self.zs[i] & other.xs[i]).count_ones();
        }
        acc & 1 == 1
    }

    /// Multiplies `other` into this string, ignoring the global phase.
    ///
    /// # Panics
    ///
    /// Panics if the strings act on different qubit counts.
    pub fn mul_ignoring_phase(&mut self, other: &PauliString) {
        assert_eq!(self.num_qubits, other.num_qubits, "qubit count mismatch");
        for i in 0..self.xs.len() {
            self.xs[i] ^= other.xs[i];
            self.zs[i] ^= other.zs[i];
        }
    }

    /// Iterates over the qubits in the string's support with their Paulis.
    pub fn iter_support(&self) -> impl Iterator<Item = (usize, Pauli)> + '_ {
        (0..self.num_qubits).filter_map(move |q| {
            let p = self.get(q);
            (p != Pauli::I).then_some((q, p))
        })
    }

    /// The raw X-component words (low bit of word 0 is qubit 0).
    pub fn x_words(&self) -> &[u64] {
        &self.xs
    }

    /// The raw Z-component words.
    pub fn z_words(&self) -> &[u64] {
        &self.zs
    }
}

impl std::fmt::Display for PauliString {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for q in 0..self.num_qubits {
            write!(f, "{}", self.get(q))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pauli_commutation_table() {
        use Pauli::*;
        for p in [I, X, Y, Z] {
            assert!(!p.anticommutes_with(p));
            assert!(!p.anticommutes_with(I));
            assert!(!I.anticommutes_with(p));
        }
        assert!(X.anticommutes_with(Z));
        assert!(X.anticommutes_with(Y));
        assert!(Y.anticommutes_with(Z));
    }

    #[test]
    fn pauli_products() {
        use Pauli::*;
        assert_eq!(X.mul_ignoring_phase(Z), Y);
        assert_eq!(X.mul_ignoring_phase(Y), Z);
        assert_eq!(Y.mul_ignoring_phase(Z), X);
        assert_eq!(X.mul_ignoring_phase(X), I);
    }

    #[test]
    fn string_set_get_roundtrip() {
        let mut s = PauliString::identity(130);
        s.set(0, Pauli::X);
        s.set(63, Pauli::Y);
        s.set(64, Pauli::Z);
        s.set(129, Pauli::Y);
        assert_eq!(s.get(0), Pauli::X);
        assert_eq!(s.get(63), Pauli::Y);
        assert_eq!(s.get(64), Pauli::Z);
        assert_eq!(s.get(129), Pauli::Y);
        assert_eq!(s.get(1), Pauli::I);
        assert_eq!(s.weight(), 4);
    }

    #[test]
    fn string_commutation_matches_pairwise_count() {
        let a = PauliString::from_paulis([Pauli::X, Pauli::X, Pauli::I]);
        let b = PauliString::from_paulis([Pauli::Z, Pauli::I, Pauli::Z]);
        // Overlap on qubit 0 only: X vs Z anticommutes once -> strings anticommute.
        assert!(a.anticommutes_with(&b));
        let c = PauliString::from_paulis([Pauli::Z, Pauli::Z, Pauli::I]);
        // Two anticommuting positions -> strings commute.
        assert!(!a.anticommutes_with(&c));
    }

    #[test]
    fn string_product_is_componentwise() {
        let mut a = PauliString::from_paulis([Pauli::X, Pauli::Y, Pauli::I]);
        let b = PauliString::from_paulis([Pauli::Z, Pauli::Y, Pauli::X]);
        a.mul_ignoring_phase(&b);
        assert_eq!(a.to_string(), "YIX");
    }

    #[test]
    fn from_support_sets_listed_qubits() {
        let s = PauliString::from_support(5, Pauli::Z, &[0, 2, 4]);
        assert_eq!(s.to_string(), "ZIZIZ");
        assert_eq!(s.weight(), 3);
    }

    #[test]
    fn iter_support_skips_identity() {
        let s = PauliString::from_paulis([Pauli::I, Pauli::X, Pauli::I, Pauli::Z]);
        let got: Vec<_> = s.iter_support().collect();
        assert_eq!(got, vec![(1, Pauli::X), (3, Pauli::Z)]);
    }
}
