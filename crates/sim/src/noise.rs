//! Circuit-level noise models.
//!
//! The paper's noise model (§4): every two-qubit gate fails with
//! probability `p` (two-qubit depolarizing), every one-qubit gate with
//! `0.8 p` (one-qubit depolarizing), and readout flips with `(8/15) p`;
//! reset preparations flip with the same readout rate. Individual qubits
//! may carry an elevated *absolute* error rate (the §6 cutoff-fidelity
//! study gives one data qubit a two-qubit error rate of 5–15%).

use crate::circuit::{Circuit, Gate1, Gate2, Noise1, Op};
use std::collections::HashMap;

/// Ratio of one-qubit gate error to two-qubit gate error.
pub const ONE_QUBIT_RATIO: f64 = 0.8;
/// Ratio of readout/reset flip error to two-qubit gate error.
pub const READOUT_RATIO: f64 = 8.0 / 15.0;

/// Circuit-level depolarizing noise with optional per-qubit overrides.
///
/// # Examples
///
/// ```
/// use dqec_sim::circuit::Circuit;
/// use dqec_sim::noise::NoiseModel;
///
/// let mut clean = Circuit::new(2);
/// clean.reset(0)?;
/// clean.reset(1)?;
/// clean.cx(0, 1)?;
/// clean.measure(1)?;
///
/// let noisy = NoiseModel::new(1e-3).apply(&clean);
/// assert!(noisy.num_noise_ops() > 0);
/// # Ok::<(), dqec_sim::SimError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseModel {
    /// Baseline two-qubit gate error rate `p`.
    p: f64,
    /// Per-qubit absolute two-qubit error rates overriding the baseline.
    overrides: HashMap<u32, f64>,
}

impl NoiseModel {
    /// Creates the paper's noise model with two-qubit gate error `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        NoiseModel {
            p,
            overrides: HashMap::new(),
        }
    }

    /// The baseline two-qubit gate error rate.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Gives `qubit` an elevated absolute two-qubit error rate
    /// (its one-qubit and readout errors scale accordingly).
    ///
    /// # Panics
    ///
    /// Panics if `p_bad` is not in `[0, 1]`.
    pub fn with_bad_qubit(mut self, qubit: u32, p_bad: f64) -> Self {
        assert!((0.0..=1.0).contains(&p_bad), "p_bad={p_bad} out of range");
        self.overrides.insert(qubit, p_bad);
        self
    }

    /// The effective two-qubit rate for a gate touching `qubits`.
    fn rate(&self, qubits: &[u32]) -> f64 {
        qubits
            .iter()
            .map(|q| *self.overrides.get(q).unwrap_or(&self.p))
            .fold(self.p, f64::max)
    }

    /// Inserts noise channels around every operation of `clean`,
    /// returning the noisy circuit. Detector and observable definitions
    /// are preserved (measurement order is unchanged).
    pub fn apply(&self, clean: &Circuit) -> Circuit {
        let mut noisy = Circuit::new(clean.num_qubits());
        for op in clean.ops() {
            match *op {
                Op::Gate1 { kind, q } => {
                    push_gate1(&mut noisy, kind, q);
                    let r = ONE_QUBIT_RATIO * self.rate(&[q]);
                    noisy.noise1(Noise1::Depolarize1, q, r).expect("validated");
                }
                Op::Gate2 { kind, a, b } => {
                    push_gate2(&mut noisy, kind, a, b);
                    let r = self.rate(&[a, b]);
                    noisy.depolarize2(a, b, r).expect("validated");
                }
                Op::Reset { q } => {
                    noisy.reset(q).expect("validated");
                    let r = READOUT_RATIO * self.rate(&[q]);
                    noisy.noise1(Noise1::XError, q, r).expect("validated");
                }
                Op::Measure { q } => {
                    let r = READOUT_RATIO * self.rate(&[q]);
                    noisy.noise1(Noise1::XError, q, r).expect("validated");
                    noisy.measure(q).expect("validated");
                }
                Op::Noise1 { kind, q, p } => {
                    noisy.noise1(kind, q, p).expect("validated");
                }
                Op::Depolarize2 { a, b, p } => {
                    noisy.depolarize2(a, b, p).expect("validated");
                }
                Op::Tick => noisy.tick(),
            }
        }
        for det in clean.detectors() {
            let records: Vec<_> = det
                .records
                .iter()
                .map(|&r| crate::circuit::MeasRecord(r))
                .collect();
            noisy
                .add_detector(&records, det.basis, det.coord)
                .expect("records preserved");
        }
        for (o, obs) in clean.observables().iter().enumerate() {
            let records: Vec<_> = obs.iter().map(|&r| crate::circuit::MeasRecord(r)).collect();
            noisy
                .include_observable(o as u32, &records)
                .expect("records preserved");
        }
        noisy
    }
}

fn push_gate1(c: &mut Circuit, kind: Gate1, q: u32) {
    match kind {
        Gate1::H => c.h(q).expect("validated"),
        Gate1::S => c.s(q).expect("validated"),
        Gate1::X => c.x(q).expect("validated"),
        Gate1::Z => c.z(q).expect("validated"),
    }
}

fn push_gate2(c: &mut Circuit, kind: Gate2, a: u32, b: u32) {
    match kind {
        Gate2::Cx => c.cx(a, b).expect("validated"),
        Gate2::Cz => c.cz(a, b).expect("validated"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::CheckBasis;

    fn clean_round() -> Circuit {
        let mut c = Circuit::new(3);
        for q in 0..3 {
            c.reset(q).unwrap();
        }
        c.h(2).unwrap();
        c.cx(0, 2).unwrap();
        c.cx(1, 2).unwrap();
        c.h(2).unwrap();
        let m = c.measure(2).unwrap();
        c.add_detector(&[m], CheckBasis::X, (0, 0, 0)).unwrap();
        c
    }

    #[test]
    fn noise_insertion_counts() {
        let noisy = NoiseModel::new(1e-3).apply(&clean_round());
        // 3 resets + 2 one-qubit gates + 2 two-qubit gates + 1 readout.
        assert_eq!(noisy.num_noise_ops(), 3 + 2 + 2 + 1);
        assert_eq!(noisy.num_measurements(), 1);
        assert_eq!(noisy.detectors().len(), 1);
    }

    #[test]
    fn zero_noise_inserts_nothing() {
        let noisy = NoiseModel::new(0.0).apply(&clean_round());
        assert_eq!(noisy.num_noise_ops(), 0);
    }

    #[test]
    fn bad_qubit_raises_rates() {
        let clean = clean_round();
        let noisy = NoiseModel::new(1e-3).with_bad_qubit(0, 0.1).apply(&clean);
        // Find the depolarize2 on (0,2): its rate must be 0.1.
        let mut seen = false;
        for op in noisy.ops() {
            if let Op::Depolarize2 { a: 0, b: 2, p } = op {
                assert!((p - 0.1).abs() < 1e-12);
                seen = true;
            }
        }
        assert!(seen);
    }

    #[test]
    fn detectors_survive_noise_pass() {
        let clean = clean_round();
        let noisy = NoiseModel::new(5e-3).apply(&clean);
        assert_eq!(noisy.detectors()[0].records, clean.detectors()[0].records);
        assert_eq!(noisy.detectors()[0].basis, clean.detectors()[0].basis);
    }

    #[test]
    fn ratios_match_paper() {
        assert!((ONE_QUBIT_RATIO - 0.8).abs() < 1e-15);
        assert!((READOUT_RATIO - 8.0 / 15.0).abs() < 1e-15);
    }
}
