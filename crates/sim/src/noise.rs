//! Circuit-level noise models.
//!
//! The paper's noise model (§4): every two-qubit gate fails with
//! probability `p` (two-qubit depolarizing), every one-qubit gate with
//! `0.8 p` (one-qubit depolarizing), and readout flips with `(8/15) p`;
//! reset preparations flip with the same readout rate. Individual qubits
//! may carry an elevated *absolute* error rate (the §6 cutoff-fidelity
//! study gives one data qubit a two-qubit error rate of 5–15%).

use crate::circuit::{Circuit, Gate1, Gate2, Noise1, Op};
use std::collections::HashMap;

/// Ratio of one-qubit gate error to two-qubit gate error.
pub const ONE_QUBIT_RATIO: f64 = 0.8;
/// Ratio of readout/reset flip error to two-qubit gate error.
pub const READOUT_RATIO: f64 = 8.0 / 15.0;

/// How one inserted noise channel's probability depends on the model's
/// baseline two-qubit error rate `p`.
///
/// [`NoiseModel::apply_with_params`] returns one of these per inserted
/// noise op, in circuit order, so a decoding graph built once can be
/// *reweighted* for a different `p` without re-extracting the detector
/// error model (see `dqec_sim::dem::ParametricDem`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NoiseParam {
    /// `probability = ratio · max(p, floor)`: a model-inserted channel
    /// whose rate scales with the baseline, with `floor` the largest
    /// per-qubit absolute override touching the op (0 when none).
    Scaled {
        /// Multiplier relative to the two-qubit rate (1, 0.8, or 8/15).
        ratio: f64,
        /// Largest absolute per-qubit override involved, or 0.
        floor: f64,
    },
    /// A noise op already present in the clean circuit; its probability
    /// does not depend on the model's baseline.
    Fixed(f64),
}

impl NoiseParam {
    /// The channel's probability under baseline two-qubit rate `p`.
    pub fn rate(&self, p: f64) -> f64 {
        match *self {
            NoiseParam::Scaled { ratio, floor } => ratio * p.max(floor),
            NoiseParam::Fixed(q) => q,
        }
    }
}

/// Circuit-level depolarizing noise with optional per-qubit overrides.
///
/// # Examples
///
/// ```
/// use dqec_sim::circuit::Circuit;
/// use dqec_sim::noise::NoiseModel;
///
/// let mut clean = Circuit::new(2);
/// clean.reset(0)?;
/// clean.reset(1)?;
/// clean.cx(0, 1)?;
/// clean.measure(1)?;
///
/// let noisy = NoiseModel::new(1e-3).apply(&clean);
/// assert!(noisy.num_noise_ops() > 0);
/// # Ok::<(), dqec_sim::SimError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseModel {
    /// Baseline two-qubit gate error rate `p`.
    p: f64,
    /// Per-qubit absolute two-qubit error rates overriding the baseline.
    overrides: HashMap<u32, f64>,
}

impl NoiseModel {
    /// Creates the paper's noise model with two-qubit gate error `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        NoiseModel {
            p,
            overrides: HashMap::new(),
        }
    }

    /// The baseline two-qubit gate error rate.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Gives `qubit` an elevated absolute two-qubit error rate
    /// (its one-qubit and readout errors scale accordingly).
    ///
    /// # Panics
    ///
    /// Panics if `p_bad` is not in `[0, 1]`.
    pub fn with_bad_qubit(mut self, qubit: u32, p_bad: f64) -> Self {
        assert!((0.0..=1.0).contains(&p_bad), "p_bad={p_bad} out of range");
        self.overrides.insert(qubit, p_bad);
        self
    }

    /// The per-qubit absolute rate overrides (empty for the plain model).
    pub fn overrides(&self) -> &HashMap<u32, f64> {
        &self.overrides
    }

    /// The effective two-qubit rate for a gate touching `qubits`.
    fn rate(&self, qubits: &[u32]) -> f64 {
        qubits
            .iter()
            .map(|q| *self.overrides.get(q).unwrap_or(&self.p))
            .fold(self.p, f64::max)
    }

    /// The largest absolute override among `qubits` (0 when none), i.e.
    /// the `floor` of the [`NoiseParam`] for an op touching them.
    fn floor(&self, qubits: &[u32]) -> f64 {
        qubits
            .iter()
            .filter_map(|q| self.overrides.get(q).copied())
            .fold(0.0, f64::max)
    }

    /// Inserts noise channels around every operation of `clean`,
    /// returning the noisy circuit. Detector and observable definitions
    /// are preserved (measurement order is unchanged).
    pub fn apply(&self, clean: &Circuit) -> Circuit {
        self.apply_with_params(clean).0
    }

    /// Like [`NoiseModel::apply`], but also returns one [`NoiseParam`]
    /// per inserted noise op, in circuit order, describing how that
    /// op's probability depends on the baseline `p`. Channels whose
    /// rate is zero under this model are skipped in both outputs, so
    /// build the template at `p > 0` when the parametrization matters.
    pub fn apply_with_params(&self, clean: &Circuit) -> (Circuit, Vec<NoiseParam>) {
        // Every op replayed below was validated when `clean` was built
        // and the noisy circuit has the same qubit count, so rebuilding
        // cannot fail; the one expect documents that invariant.
        self.build(clean)
            .expect("replaying a validated circuit cannot fail")
    }

    fn build(&self, clean: &Circuit) -> Result<(Circuit, Vec<NoiseParam>), crate::SimError> {
        let mut noisy = Circuit::new(clean.num_qubits());
        let mut params = Vec::new();
        let scaled = |ratio: f64, qubits: &[u32], params: &mut Vec<NoiseParam>| -> f64 {
            let r = ratio * self.rate(qubits);
            if r > 0.0 {
                params.push(NoiseParam::Scaled {
                    ratio,
                    floor: self.floor(qubits),
                });
            }
            r
        };
        for op in clean.ops() {
            match *op {
                Op::Gate1 { kind, q } => {
                    push_gate1(&mut noisy, kind, q)?;
                    let r = scaled(ONE_QUBIT_RATIO, &[q], &mut params);
                    noisy.noise1(Noise1::Depolarize1, q, r)?;
                }
                Op::Gate2 { kind, a, b } => {
                    push_gate2(&mut noisy, kind, a, b)?;
                    let r = scaled(1.0, &[a, b], &mut params);
                    noisy.depolarize2(a, b, r)?;
                }
                Op::Reset { q } => {
                    noisy.reset(q)?;
                    let r = scaled(READOUT_RATIO, &[q], &mut params);
                    noisy.noise1(Noise1::XError, q, r)?;
                }
                Op::Measure { q } => {
                    let r = scaled(READOUT_RATIO, &[q], &mut params);
                    noisy.noise1(Noise1::XError, q, r)?;
                    noisy.measure(q)?;
                }
                Op::Noise1 { kind, q, p } => {
                    params.push(NoiseParam::Fixed(p));
                    noisy.noise1(kind, q, p)?;
                }
                Op::Depolarize2 { a, b, p } => {
                    params.push(NoiseParam::Fixed(p));
                    noisy.depolarize2(a, b, p)?;
                }
                Op::Tick => noisy.tick(),
            }
        }
        for det in clean.detectors() {
            let records: Vec<_> = det
                .records
                .iter()
                .map(|&r| crate::circuit::MeasRecord(r))
                .collect();
            noisy.add_detector(&records, det.basis, det.coord)?;
        }
        for (o, obs) in clean.observables().iter().enumerate() {
            let records: Vec<_> = obs.iter().map(|&r| crate::circuit::MeasRecord(r)).collect();
            noisy.include_observable(o as u32, &records)?;
        }
        Ok((noisy, params))
    }
}

fn push_gate1(c: &mut Circuit, kind: Gate1, q: u32) -> Result<(), crate::SimError> {
    match kind {
        Gate1::H => c.h(q),
        Gate1::S => c.s(q),
        Gate1::X => c.x(q),
        Gate1::Z => c.z(q),
    }
}

fn push_gate2(c: &mut Circuit, kind: Gate2, a: u32, b: u32) -> Result<(), crate::SimError> {
    match kind {
        Gate2::Cx => c.cx(a, b),
        Gate2::Cz => c.cz(a, b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::CheckBasis;

    fn clean_round() -> Circuit {
        let mut c = Circuit::new(3);
        for q in 0..3 {
            c.reset(q).unwrap();
        }
        c.h(2).unwrap();
        c.cx(0, 2).unwrap();
        c.cx(1, 2).unwrap();
        c.h(2).unwrap();
        let m = c.measure(2).unwrap();
        c.add_detector(&[m], CheckBasis::X, (0, 0, 0)).unwrap();
        c
    }

    #[test]
    fn noise_insertion_counts() {
        let noisy = NoiseModel::new(1e-3).apply(&clean_round());
        // 3 resets + 2 one-qubit gates + 2 two-qubit gates + 1 readout.
        assert_eq!(noisy.num_noise_ops(), 3 + 2 + 2 + 1);
        assert_eq!(noisy.num_measurements(), 1);
        assert_eq!(noisy.detectors().len(), 1);
    }

    #[test]
    fn zero_noise_inserts_nothing() {
        let noisy = NoiseModel::new(0.0).apply(&clean_round());
        assert_eq!(noisy.num_noise_ops(), 0);
    }

    #[test]
    fn bad_qubit_raises_rates() {
        let clean = clean_round();
        let noisy = NoiseModel::new(1e-3).with_bad_qubit(0, 0.1).apply(&clean);
        // Find the depolarize2 on (0,2): its rate must be 0.1.
        let mut seen = false;
        for op in noisy.ops() {
            if let Op::Depolarize2 { a: 0, b: 2, p } = op {
                assert!((p - 0.1).abs() < 1e-12);
                seen = true;
            }
        }
        assert!(seen);
    }

    #[test]
    fn detectors_survive_noise_pass() {
        let clean = clean_round();
        let noisy = NoiseModel::new(5e-3).apply(&clean);
        assert_eq!(noisy.detectors()[0].records, clean.detectors()[0].records);
        assert_eq!(noisy.detectors()[0].basis, clean.detectors()[0].basis);
    }

    #[test]
    fn ratios_match_paper() {
        assert!((ONE_QUBIT_RATIO - 0.8).abs() < 1e-15);
        assert!((READOUT_RATIO - 8.0 / 15.0).abs() < 1e-15);
    }

    #[test]
    fn params_align_with_noise_ops() {
        let model = NoiseModel::new(2e-3).with_bad_qubit(0, 0.1);
        let (noisy, params) = model.apply_with_params(&clean_round());
        assert_eq!(noisy.num_noise_ops(), params.len());
        // Every param reproduces the concrete rate in the circuit.
        let mut i = 0;
        for op in noisy.ops() {
            let concrete = match *op {
                Op::Noise1 { p, .. } | Op::Depolarize2 { p, .. } => p,
                _ => continue,
            };
            assert!(
                (params[i].rate(model.p()) - concrete).abs() < 1e-15,
                "param {i} disagrees with circuit rate"
            );
            i += 1;
        }
    }

    #[test]
    fn scaled_param_tracks_p_and_respects_floor() {
        let p = NoiseParam::Scaled {
            ratio: 0.8,
            floor: 0.05,
        };
        assert!((p.rate(1e-3) - 0.8 * 0.05).abs() < 1e-15);
        assert!((p.rate(0.2) - 0.8 * 0.2).abs() < 1e-15);
        assert!((NoiseParam::Fixed(0.3).rate(1e-3) - 0.3).abs() < 1e-15);
    }

    #[test]
    fn preexisting_noise_becomes_fixed_param() {
        let mut c = Circuit::new(1);
        c.reset(0).unwrap();
        c.noise1(Noise1::XError, 0, 0.07).unwrap();
        c.measure(0).unwrap();
        let (_, params) = NoiseModel::new(1e-3).apply_with_params(&c);
        assert!(params.contains(&NoiseParam::Fixed(0.07)));
    }
}
