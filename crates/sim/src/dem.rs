//! Detector error model (DEM) extraction.
//!
//! Walks the circuit backward maintaining, for every qubit, the set of
//! detectors and observables that an X (resp. Z) error at that point in
//! time would flip. Reading those sets off at each noise channel yields
//! every error *mechanism*: a probability together with its symptom
//! (flipped detectors) and its logical effect (flipped observables).
//! This is the same construction Stim uses, and it is what both the
//! matching decoder and the decoding-graph weights are built from.

use crate::circuit::{Circuit, Gate1, Gate2, Noise1, Op};
use crate::noise::NoiseParam;
use std::collections::HashMap;

/// A sensitivity set: detectors plus an observable bitmask.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
struct Sens {
    dets: Vec<u32>,
    obs: u64,
}

impl Sens {
    fn is_empty(&self) -> bool {
        self.dets.is_empty() && self.obs == 0
    }

    /// Symmetric difference with another set.
    fn xor(&self, other: &Sens) -> Sens {
        let mut dets = Vec::with_capacity(self.dets.len() + other.dets.len());
        let (mut i, mut j) = (0, 0);
        while i < self.dets.len() && j < other.dets.len() {
            match self.dets[i].cmp(&other.dets[j]) {
                std::cmp::Ordering::Less => {
                    dets.push(self.dets[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    dets.push(other.dets[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        dets.extend_from_slice(&self.dets[i..]);
        dets.extend_from_slice(&other.dets[j..]);
        Sens {
            dets,
            obs: self.obs ^ other.obs,
        }
    }

    fn xor_in_place(&mut self, other: &Sens) {
        *self = self.xor(other);
    }
}

/// One error mechanism of a detector error model.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorMechanism {
    /// Sorted ids of the detectors this mechanism flips.
    pub detectors: Vec<u32>,
    /// Bitmask of observables this mechanism flips.
    pub observables: u64,
    /// Probability that the mechanism fires in one shot.
    pub probability: f64,
}

/// A circuit's detector error model: every distinct symptom with its
/// aggregate probability.
///
/// # Examples
///
/// ```
/// use dqec_sim::circuit::{CheckBasis, Circuit, Noise1};
/// use dqec_sim::dem::DetectorErrorModel;
///
/// let mut c = Circuit::new(1);
/// c.reset(0)?;
/// c.noise1(Noise1::XError, 0, 0.1)?;
/// let m = c.measure(0)?;
/// c.add_detector(&[m], CheckBasis::Z, (0, 0, 0))?;
/// c.include_observable(0, &[m])?;
///
/// let dem = DetectorErrorModel::from_circuit(&c);
/// assert_eq!(dem.mechanisms.len(), 1);
/// assert_eq!(dem.mechanisms[0].detectors, vec![0]);
/// assert_eq!(dem.mechanisms[0].observables, 1);
/// # Ok::<(), dqec_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DetectorErrorModel {
    /// Total number of detectors in the source circuit.
    pub num_detectors: usize,
    /// Total number of observables in the source circuit.
    pub num_observables: usize,
    /// Deduplicated mechanisms with combined probabilities.
    pub mechanisms: Vec<ErrorMechanism>,
    /// Number of mechanisms that flip an observable but no detector.
    /// Nonzero means the circuit has undetectable logical errors.
    pub undetectable_logical_mechanisms: usize,
}

impl DetectorErrorModel {
    /// Extracts the detector error model of `circuit`.
    ///
    /// # Panics
    ///
    /// Panics if the circuit uses more than 64 observables.
    pub fn from_circuit(circuit: &Circuit) -> Self {
        let mut raw: HashMap<(Vec<u32>, u64), f64> = HashMap::new();
        walk_mechanisms(circuit, |sens, _idx, fraction, op_p| {
            let branch_p = fraction * op_p;
            if sens.is_empty() || branch_p <= 0.0 {
                return;
            }
            let key = (sens.dets.clone(), sens.obs);
            let q = raw.entry(key).or_insert(0.0);
            *q = *q * (1.0 - branch_p) + branch_p * (1.0 - *q);
        });

        let mut mechanisms: Vec<ErrorMechanism> = raw
            .into_iter()
            .map(|((detectors, observables), probability)| ErrorMechanism {
                detectors,
                observables,
                probability,
            })
            .collect();
        mechanisms.sort_by(|a, b| {
            a.detectors
                .cmp(&b.detectors)
                .then(a.observables.cmp(&b.observables))
        });
        let undetectable = mechanisms
            .iter()
            .filter(|m| m.detectors.is_empty() && m.observables != 0)
            .count();
        DetectorErrorModel {
            num_detectors: circuit.detectors().len(),
            num_observables: circuit.observables().len(),
            mechanisms,
            undetectable_logical_mechanisms: undetectable,
        }
    }
}

/// One error mechanism whose probability is a *function* of the noise
/// model's baseline `p` rather than a number.
#[derive(Debug, Clone, PartialEq)]
pub struct ParametricMechanism {
    /// Sorted ids of the detectors this mechanism flips.
    pub detectors: Vec<u32>,
    /// Bitmask of observables this mechanism flips.
    pub observables: u64,
    /// Contributing noise branches: each fires with probability
    /// `fraction · param.rate(p)`, and the mechanism's probability is
    /// their XOR-combination.
    pub branches: Vec<(NoiseParam, f64)>,
}

impl ParametricMechanism {
    /// The mechanism's firing probability at baseline rate `p`.
    pub fn probability(&self, p: f64) -> f64 {
        // XOR-combining is multiplicative in q = 1 - 2·prob.
        let q: f64 = self
            .branches
            .iter()
            .map(|(param, k)| 1.0 - 2.0 * k * param.rate(p))
            .product();
        (1.0 - q) / 2.0
    }
}

/// A detector error model whose mechanism probabilities can be
/// re-evaluated for any baseline rate `p` without re-walking the
/// circuit — the expensive part of [`DetectorErrorModel::from_circuit`].
///
/// Built from the noisy circuit and the per-op [`NoiseParam`]s returned
/// by `NoiseModel::apply_with_params`; [`ParametricDem::concretize`]
/// then yields the same mechanisms (same symptoms, same order) as a
/// fresh extraction of the circuit re-noised at `p`, up to floating
/// point roundoff in the probabilities.
///
/// # Examples
///
/// ```
/// use dqec_sim::circuit::{CheckBasis, Circuit};
/// use dqec_sim::dem::{DetectorErrorModel, ParametricDem};
/// use dqec_sim::noise::NoiseModel;
///
/// let mut clean = Circuit::new(1);
/// clean.reset(0)?;
/// let m = clean.measure(0)?;
/// clean.add_detector(&[m], CheckBasis::Z, (0, 0, 0))?;
///
/// let template = NoiseModel::new(1e-3);
/// let (noisy, params) = template.apply_with_params(&clean);
/// let pdem = ParametricDem::from_noisy(&noisy, &params);
///
/// // Reweight to p = 5e-3 without touching the circuit again.
/// let at_5e3 = pdem.concretize(5e-3);
/// let fresh = DetectorErrorModel::from_circuit(&NoiseModel::new(5e-3).apply(&clean));
/// assert_eq!(at_5e3.mechanisms.len(), fresh.mechanisms.len());
/// # Ok::<(), dqec_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ParametricDem {
    /// Total number of detectors in the source circuit.
    pub num_detectors: usize,
    /// Total number of observables in the source circuit.
    pub num_observables: usize,
    /// Deduplicated parametric mechanisms, sorted like
    /// [`DetectorErrorModel::from_circuit`] sorts its mechanisms.
    pub mechanisms: Vec<ParametricMechanism>,
}

impl ParametricDem {
    /// Extracts the parametric DEM of a noisy circuit, given one
    /// [`NoiseParam`] per noise op in circuit order (as returned by
    /// `NoiseModel::apply_with_params`).
    ///
    /// # Panics
    ///
    /// Panics if `params` does not have exactly one entry per noise op
    /// or the circuit uses more than 64 observables.
    pub fn from_noisy(circuit: &Circuit, params: &[NoiseParam]) -> Self {
        type Branches = Vec<(NoiseParam, f64)>;
        let mut raw: HashMap<(Vec<u32>, u64), Branches> = HashMap::new();
        assert_eq!(
            params.len(),
            circuit
                .ops()
                .iter()
                .filter(|op| matches!(op, Op::Noise1 { .. } | Op::Depolarize2 { .. }))
                .count(),
            "one NoiseParam per noise op required"
        );
        walk_mechanisms(circuit, |sens, idx, fraction, _op_p| {
            if sens.is_empty() || fraction <= 0.0 {
                return;
            }
            raw.entry((sens.dets.clone(), sens.obs))
                .or_default()
                .push((params[idx], fraction));
        });
        let mut mechanisms: Vec<ParametricMechanism> = raw
            .into_iter()
            .map(|((detectors, observables), branches)| ParametricMechanism {
                detectors,
                observables,
                branches,
            })
            .collect();
        mechanisms.sort_by(|a, b| {
            a.detectors
                .cmp(&b.detectors)
                .then(a.observables.cmp(&b.observables))
        });
        ParametricDem {
            num_detectors: circuit.detectors().len(),
            num_observables: circuit.observables().len(),
            mechanisms,
        }
    }

    /// Evaluates every mechanism's probability at baseline rate `p`,
    /// producing a concrete [`DetectorErrorModel`] with the same
    /// mechanisms in the same order for every `p`.
    pub fn concretize(&self, p: f64) -> DetectorErrorModel {
        let mechanisms: Vec<ErrorMechanism> = self
            .mechanisms
            .iter()
            .map(|m| ErrorMechanism {
                detectors: m.detectors.clone(),
                observables: m.observables,
                probability: m.probability(p),
            })
            .collect();
        let undetectable = mechanisms
            .iter()
            .filter(|m| m.detectors.is_empty() && m.observables != 0)
            .count();
        DetectorErrorModel {
            num_detectors: self.num_detectors,
            num_observables: self.num_observables,
            mechanisms,
            undetectable_logical_mechanisms: undetectable,
        }
    }
}

/// Walks `circuit` backward, calling `visit(sens, noise_index, fraction,
/// op_p)` for every branch of every noise op: `sens` is the branch's
/// symptom, `noise_index` the op's index among the circuit's noise ops
/// in *forward* order, and the branch fires with probability
/// `fraction · op_p` (the Pauli-component share of the op's rate).
fn walk_mechanisms<F: FnMut(&Sens, usize, f64, f64)>(circuit: &Circuit, mut visit: F) {
    assert!(
        circuit.observables().len() <= 64,
        "at most 64 observables supported"
    );
    let nq = circuit.num_qubits() as usize;

    // Record -> (detectors containing it, observable mask).
    let mut det_of_record: Vec<Vec<u32>> = vec![Vec::new(); circuit.num_measurements() as usize];
    for (d, det) in circuit.detectors().iter().enumerate() {
        for &r in &det.records {
            det_of_record[r as usize].push(d as u32);
        }
    }
    let mut obs_of_record: Vec<u64> = vec![0; circuit.num_measurements() as usize];
    for (o, obs) in circuit.observables().iter().enumerate() {
        for &r in obs {
            obs_of_record[r as usize] ^= 1 << o;
        }
    }

    let mut xmap: Vec<Sens> = vec![Sens::default(); nq];
    let mut zmap: Vec<Sens> = vec![Sens::default(); nq];
    let mut next_record = circuit.num_measurements() as usize;
    let mut next_noise = circuit
        .ops()
        .iter()
        .filter(|op| matches!(op, Op::Noise1 { .. } | Op::Depolarize2 { .. }))
        .count();
    for op in circuit.ops().iter().rev() {
        match *op {
            Op::Gate1 { kind: Gate1::H, q } => {
                let q = q as usize;
                std::mem::swap(&mut xmap[q], &mut zmap[q]);
            }
            Op::Gate1 { kind: Gate1::S, q } => {
                // X before S acts as Y after S.
                let q = q as usize;
                let z = zmap[q].clone();
                xmap[q].xor_in_place(&z);
            }
            Op::Gate1 { .. } => {}
            Op::Gate2 {
                kind: Gate2::Cx,
                a,
                b,
            } => {
                let (c, t) = (a as usize, b as usize);
                let xt = xmap[t].clone();
                xmap[c].xor_in_place(&xt);
                let zc = zmap[c].clone();
                zmap[t].xor_in_place(&zc);
            }
            Op::Gate2 {
                kind: Gate2::Cz,
                a,
                b,
            } => {
                let (a, b) = (a as usize, b as usize);
                let zb = zmap[b].clone();
                let za = zmap[a].clone();
                xmap[a].xor_in_place(&zb);
                xmap[b].xor_in_place(&za);
            }
            Op::Reset { q } => {
                let q = q as usize;
                xmap[q] = Sens::default();
                zmap[q] = Sens::default();
            }
            Op::Measure { q } => {
                next_record -= 1;
                let q = q as usize;
                let m = Sens {
                    dets: det_of_record[next_record].clone(),
                    obs: obs_of_record[next_record],
                };
                xmap[q].xor_in_place(&m);
            }
            Op::Noise1 { kind, q, p } => {
                next_noise -= 1;
                let q = q as usize;
                match kind {
                    Noise1::XError => visit(&xmap[q], next_noise, 1.0, p),
                    Noise1::ZError => visit(&zmap[q], next_noise, 1.0, p),
                    Noise1::Depolarize1 => {
                        let y = xmap[q].xor(&zmap[q]);
                        visit(&xmap[q], next_noise, 1.0 / 3.0, p);
                        visit(&zmap[q], next_noise, 1.0 / 3.0, p);
                        visit(&y, next_noise, 1.0 / 3.0, p);
                    }
                }
            }
            Op::Depolarize2 { a, b, p } => {
                next_noise -= 1;
                let (a, b) = (a as usize, b as usize);
                let comp = |x: &Sens, z: &Sens| -> [Sens; 4] {
                    [Sens::default(), x.clone(), x.xor(z), z.clone()]
                };
                let ca = comp(&xmap[a], &zmap[a]);
                let cb = comp(&xmap[b], &zmap[b]);
                for (i, sa) in ca.iter().enumerate() {
                    for (j, sb) in cb.iter().enumerate() {
                        if i == 0 && j == 0 {
                            continue;
                        }
                        visit(&sa.xor(sb), next_noise, 1.0 / 15.0, p);
                    }
                }
            }
            Op::Tick => {}
        }
    }
    debug_assert_eq!(next_record, 0, "record bookkeeping must balance");
    debug_assert_eq!(next_noise, 0, "noise-op bookkeeping must balance");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{CheckBasis, Circuit};

    #[test]
    fn x_error_before_measure_flips_detector_and_observable() {
        let mut c = Circuit::new(1);
        c.reset(0).unwrap();
        c.noise1(Noise1::XError, 0, 0.2).unwrap();
        let m = c.measure(0).unwrap();
        c.add_detector(&[m], CheckBasis::Z, (0, 0, 0)).unwrap();
        c.include_observable(0, &[m]).unwrap();
        let dem = DetectorErrorModel::from_circuit(&c);
        assert_eq!(dem.mechanisms.len(), 1);
        let mech = &dem.mechanisms[0];
        assert_eq!(mech.detectors, vec![0]);
        assert_eq!(mech.observables, 1);
        assert!((mech.probability - 0.2).abs() < 1e-12);
    }

    #[test]
    fn z_error_before_z_measure_is_invisible() {
        let mut c = Circuit::new(1);
        c.reset(0).unwrap();
        c.noise1(Noise1::ZError, 0, 0.2).unwrap();
        let m = c.measure(0).unwrap();
        c.add_detector(&[m], CheckBasis::Z, (0, 0, 0)).unwrap();
        let dem = DetectorErrorModel::from_circuit(&c);
        assert!(dem.mechanisms.is_empty());
    }

    #[test]
    fn error_between_two_rounds_flips_both_detectors() {
        // Measure the same qubit twice with a possible flip in between:
        // detector0 = m0, detector1 = m0 ^ m1; an X between them flips
        // only m1, i.e. detector 1.
        let mut c = Circuit::new(2);
        c.reset(0).unwrap();
        c.reset(1).unwrap();
        c.cx(0, 1).unwrap();
        let m0 = c.measure(1).unwrap();
        c.reset(1).unwrap();
        c.noise1(Noise1::XError, 0, 0.1).unwrap();
        c.cx(0, 1).unwrap();
        let m1 = c.measure(1).unwrap();
        c.add_detector(&[m0], CheckBasis::Z, (0, 0, 0)).unwrap();
        c.add_detector(&[m0, m1], CheckBasis::Z, (0, 0, 1)).unwrap();
        let dem = DetectorErrorModel::from_circuit(&c);
        assert_eq!(dem.mechanisms.len(), 1);
        assert_eq!(dem.mechanisms[0].detectors, vec![1]);
    }

    #[test]
    fn duplicate_mechanisms_combine_with_xor_probability() {
        let mut c = Circuit::new(1);
        c.reset(0).unwrap();
        c.noise1(Noise1::XError, 0, 0.1).unwrap();
        c.noise1(Noise1::XError, 0, 0.1).unwrap();
        let m = c.measure(0).unwrap();
        c.add_detector(&[m], CheckBasis::Z, (0, 0, 0)).unwrap();
        let dem = DetectorErrorModel::from_circuit(&c);
        assert_eq!(dem.mechanisms.len(), 1);
        // 0.1*(1-0.1) + 0.9*0.1 = 0.18
        assert!((dem.mechanisms[0].probability - 0.18).abs() < 1e-12);
    }

    #[test]
    fn depolarize2_splits_into_components() {
        // Depolarize2 then measure both qubits: components with an X or
        // Y factor flip the corresponding measurement; Z factors flip
        // nothing.
        let mut c = Circuit::new(2);
        c.reset(0).unwrap();
        c.reset(1).unwrap();
        c.depolarize2(0, 1, 0.15).unwrap();
        let m0 = c.measure(0).unwrap();
        let m1 = c.measure(1).unwrap();
        c.add_detector(&[m0], CheckBasis::Z, (0, 0, 0)).unwrap();
        c.add_detector(&[m1], CheckBasis::Z, (1, 0, 0)).unwrap();
        let dem = DetectorErrorModel::from_circuit(&c);
        // Symptoms: {0}, {1}, {0,1} from the X/Y components.
        let symptoms: Vec<Vec<u32>> = dem.mechanisms.iter().map(|m| m.detectors.clone()).collect();
        assert_eq!(symptoms, vec![vec![0], vec![0, 1], vec![1]]);
        // {0} comes from XI, YI, XZ, YZ: four disjoint p/15 = 0.01
        // components, combined with the XOR-probability rule
        // (1 - (1-2p)^4) / 2.
        let expected = (1.0 - (1.0f64 - 0.02).powi(4)) / 2.0;
        let p_each = dem.mechanisms[0].probability;
        assert!((p_each - expected).abs() < 1e-12, "got {p_each}");
    }

    #[test]
    fn undetectable_logical_mechanisms_counted() {
        let mut c = Circuit::new(1);
        c.reset(0).unwrap();
        c.noise1(Noise1::XError, 0, 0.1).unwrap();
        let m = c.measure(0).unwrap();
        // Observable but no detector.
        c.include_observable(0, &[m]).unwrap();
        let dem = DetectorErrorModel::from_circuit(&c);
        assert_eq!(dem.undetectable_logical_mechanisms, 1);
    }

    #[test]
    fn parametric_concretize_matches_fresh_extraction() {
        use crate::noise::NoiseModel;
        // A small two-qubit syndrome round with gates of every kind the
        // noise model decorates, plus a per-qubit override.
        let mut clean = Circuit::new(2);
        clean.reset(0).unwrap();
        clean.reset(1).unwrap();
        clean.h(1).unwrap();
        clean.cx(0, 1).unwrap();
        clean.h(1).unwrap();
        let m = clean.measure(1).unwrap();
        clean.add_detector(&[m], CheckBasis::X, (0, 0, 0)).unwrap();
        let d = clean.measure(0).unwrap();
        c_add_obs(&mut clean, d);

        let template = NoiseModel::new(1e-3).with_bad_qubit(0, 0.08);
        let (noisy, params) = template.apply_with_params(&clean);
        let pdem = ParametricDem::from_noisy(&noisy, &params);

        for p in [1e-3, 3e-3, 8e-3, 2e-2] {
            let reweighted = pdem.concretize(p);
            let model = NoiseModel::new(p).with_bad_qubit(0, 0.08);
            let fresh = DetectorErrorModel::from_circuit(&model.apply(&clean));
            assert_eq!(reweighted.mechanisms.len(), fresh.mechanisms.len());
            for (a, b) in reweighted.mechanisms.iter().zip(&fresh.mechanisms) {
                assert_eq!(a.detectors, b.detectors, "symptom order differs");
                assert_eq!(a.observables, b.observables);
                assert!(
                    (a.probability - b.probability).abs() < 1e-12,
                    "p={p}: {} vs {}",
                    a.probability,
                    b.probability
                );
            }
        }
    }

    fn c_add_obs(c: &mut Circuit, d: crate::MeasRecord) {
        c.include_observable(0, &[d]).unwrap();
    }

    #[test]
    fn hadamard_converts_sensitivity() {
        // Z error before H acts as X after H and flips a Z measurement.
        let mut c = Circuit::new(1);
        c.reset(0).unwrap();
        c.noise1(Noise1::ZError, 0, 0.3).unwrap();
        c.h(0).unwrap();
        let m = c.measure(0).unwrap();
        c.add_detector(&[m], CheckBasis::Z, (0, 0, 0)).unwrap();
        let dem = DetectorErrorModel::from_circuit(&c);
        assert_eq!(dem.mechanisms.len(), 1);
        assert_eq!(dem.mechanisms[0].detectors, vec![0]);
    }
}
