//! # dqec-sim
//!
//! Stabilizer circuit simulation substrate for the `dqec` workspace, a
//! from-scratch re-implementation of the pieces of Stim (Gidney 2021)
//! needed to reproduce "Codesign of quantum error-correcting codes and
//! modular chiplets in the presence of defects" (Lin et al., ASPLOS'24):
//!
//! * [`circuit`] — a circuit IR with Clifford gates, Z-basis
//!   resets/measurements, Pauli noise channels, detectors and logical
//!   observables;
//! * [`tableau`] — an Aaronson–Gottesman simulator computing the
//!   noiseless *reference sample* a frame simulation deviates from;
//! * [`frame`] — a vectorized (64 shots/word) Pauli-frame sampler that
//!   produces detector/observable flip tables;
//! * [`dem`] — detector-error-model extraction: every noise mechanism's
//!   probability, flipped detectors, and flipped observables;
//! * [`noise`] — the paper's circuit-level noise model (2-qubit gate
//!   error `p`, 1-qubit `0.8p`, readout `8/15·p`), with per-qubit
//!   overrides for the cutoff-fidelity study;
//! * [`pauli`], [`f2`] — Pauli strings and F2/symplectic linear algebra
//!   used for code validation.
//!
//! # Examples
//!
//! Estimating the logical flip rate of a noisy single-qubit "memory":
//!
//! ```
//! use dqec_sim::circuit::{CheckBasis, Circuit};
//! use dqec_sim::frame::FrameSampler;
//! use dqec_sim::noise::NoiseModel;
//! use rand::SeedableRng;
//!
//! let mut clean = Circuit::new(1);
//! clean.reset(0)?;
//! let m = clean.measure(0)?;
//! clean.add_detector(&[m], CheckBasis::Z, (0, 0, 0))?;
//! clean.include_observable(0, &[m])?;
//!
//! let noisy = NoiseModel::new(1e-2).apply(&clean);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let batch = FrameSampler::new(&noisy).sample(4096, &mut rng);
//! let failures = batch.observables.count_row(0);
//! assert!(failures > 0 && failures < 4096);
//! # Ok::<(), dqec_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod circuit;
pub mod dem;
mod error;
pub mod f2;
pub mod frame;
pub mod noise;
pub mod pauli;
pub mod tableau;

pub use circuit::{CheckBasis, Circuit, MeasRecord};
pub use dem::{DetectorErrorModel, ParametricDem};
pub use error::SimError;
pub use frame::{BitTable, FrameSampler, ShotBatch};
pub use noise::{NoiseModel, NoiseParam};
pub use tableau::ReferenceSample;
