//! Error types for the simulation substrate.

use std::error::Error;
use std::fmt;

/// Error raised while building or executing a stabilizer circuit.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A qubit index was at least the circuit's qubit count.
    QubitOutOfRange {
        /// The offending qubit index.
        qubit: u32,
        /// The circuit's qubit count.
        num_qubits: u32,
    },
    /// A detector or observable referenced a measurement record that does
    /// not exist (yet).
    RecordOutOfRange {
        /// The offending measurement-record index.
        record: u32,
        /// The number of measurement records in the circuit.
        num_records: u32,
    },
    /// A noise channel was given a probability outside `[0, 1]`.
    InvalidProbability {
        /// The offending probability.
        p: f64,
    },
    /// A two-qubit operation was applied to a single qubit.
    RepeatedQubit {
        /// The repeated qubit index.
        qubit: u32,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::QubitOutOfRange { qubit, num_qubits } => {
                write!(
                    f,
                    "qubit {qubit} out of range for circuit with {num_qubits} qubits"
                )
            }
            SimError::RecordOutOfRange {
                record,
                num_records,
            } => {
                write!(
                    f,
                    "measurement record {record} out of range ({num_records} records)"
                )
            }
            SimError::InvalidProbability { p } => {
                write!(f, "probability {p} is not in [0, 1]")
            }
            SimError::RepeatedQubit { qubit } => {
                write!(f, "two-qubit operation applied twice to qubit {qubit}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            SimError::QubitOutOfRange {
                qubit: 3,
                num_qubits: 2,
            },
            SimError::RecordOutOfRange {
                record: 9,
                num_records: 1,
            },
            SimError::InvalidProbability { p: 1.5 },
            SimError::RepeatedQubit { qubit: 7 },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
