//! Dense linear algebra over the two-element field F2.
//!
//! Used for code validation: computing ranks of check matrices, the
//! radical of a symplectic subspace (the stabilizer part of a gauge
//! group) and hence the number of encoded logical qubits.

use crate::pauli::words_for;

/// A dense bit matrix over F2 with row-major 64-bit word packing.
///
/// # Examples
///
/// ```
/// use dqec_sim::f2::BitMatrix;
///
/// let mut m = BitMatrix::zeros(2, 3);
/// m.set(0, 0, true);
/// m.set(0, 2, true);
/// m.set(1, 2, true);
/// assert_eq!(m.rank(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    data: Vec<u64>,
}

impl BitMatrix {
    /// Creates an all-zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let words_per_row = words_for(cols).max(1);
        BitMatrix {
            rows,
            cols,
            words_per_row,
            data: vec![0; rows * words_per_row],
        }
    }

    /// The number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reads the bit at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the position is out of range.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> bool {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of range"
        );
        (self.data[r * self.words_per_row + c / 64] >> (c % 64)) & 1 == 1
    }

    /// Writes the bit at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the position is out of range.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: bool) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of range"
        );
        let w = r * self.words_per_row + c / 64;
        let b = c % 64;
        self.data[w] = (self.data[w] & !(1 << b)) | ((v as u64) << b);
    }

    /// XORs row `src` into row `dst`.
    ///
    /// # Panics
    ///
    /// Panics if either row is out of range or the rows are equal.
    pub fn xor_row_into(&mut self, src: usize, dst: usize) {
        assert!(
            src < self.rows && dst < self.rows && src != dst,
            "bad row pair {src},{dst}"
        );
        let w = self.words_per_row;
        let (a, b) = if src < dst {
            let (lo, hi) = self.data.split_at_mut(dst * w);
            (&lo[src * w..src * w + w], &mut hi[..w])
        } else {
            let (lo, hi) = self.data.split_at_mut(src * w);
            let dst_slice = &mut lo[dst * w..dst * w + w];
            // Borrow trick: we need src row immutably and dst mutably.
            (&hi[..w], dst_slice)
        };
        for (d, s) in b.iter_mut().zip(a) {
            *d ^= s;
        }
    }

    /// The rank of the matrix (destructive elimination on a clone).
    pub fn rank(&self) -> usize {
        self.clone().rank_in_place()
    }

    /// Reduces the matrix to row echelon form and returns its rank.
    pub fn rank_in_place(&mut self) -> usize {
        let mut rank = 0;
        for c in 0..self.cols {
            if rank == self.rows {
                break;
            }
            // Find a pivot at or below `rank` in column c.
            let Some(p) = (rank..self.rows).find(|&r| self.get(r, c)) else {
                continue;
            };
            self.swap_rows(rank, p);
            for r in 0..self.rows {
                if r != rank && self.get(r, c) {
                    self.xor_row_into(rank, r);
                }
            }
            rank += 1;
        }
        rank
    }

    /// Swaps two rows.
    ///
    /// # Panics
    ///
    /// Panics if either row is out of range.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        assert!(a < self.rows && b < self.rows, "row out of range");
        if a == b {
            return;
        }
        let w = self.words_per_row;
        for i in 0..w {
            self.data.swap(a * w + i, b * w + i);
        }
    }
}

/// A set of Pauli operators encoded as symplectic F2 row vectors
/// `(x | z)` over `n` qubits, with utilities for rank and radical
/// computations.
///
/// The symplectic product of rows `u = (ux | uz)` and `v = (vx | vz)` is
/// `ux·vz + uz·vx (mod 2)`; it is 1 exactly when the Paulis anticommute.
#[derive(Debug, Clone)]
pub struct SymplecticSpace {
    num_qubits: usize,
    rows: Vec<(Vec<u64>, Vec<u64>)>,
}

impl SymplecticSpace {
    /// Creates an empty operator set over `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        SymplecticSpace {
            num_qubits,
            rows: Vec::new(),
        }
    }

    /// The number of generator rows added so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no generators have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Adds a Pauli operator given its X- and Z-support qubit lists.
    ///
    /// # Panics
    ///
    /// Panics if any listed qubit is `>= num_qubits`.
    pub fn push_support(&mut self, x_support: &[usize], z_support: &[usize]) {
        let w = words_for(self.num_qubits).max(1);
        let mut xs = vec![0u64; w];
        let mut zs = vec![0u64; w];
        for &q in x_support {
            assert!(q < self.num_qubits, "qubit {q} out of range");
            xs[q / 64] ^= 1 << (q % 64);
        }
        for &q in z_support {
            assert!(q < self.num_qubits, "qubit {q} out of range");
            zs[q / 64] ^= 1 << (q % 64);
        }
        self.rows.push((xs, zs));
    }

    /// Whether generators `i` and `j` anticommute.
    pub fn anticommute(&self, i: usize, j: usize) -> bool {
        let (xi, zi) = &self.rows[i];
        let (xj, zj) = &self.rows[j];
        let mut acc = 0u32;
        for k in 0..xi.len() {
            acc ^= (xi[k] & zj[k]).count_ones() ^ (zi[k] & xj[k]).count_ones();
        }
        acc & 1 == 1
    }

    /// The rank of the generator set as F2 vectors.
    pub fn rank(&self) -> usize {
        self.to_bit_matrix().rank_in_place()
    }

    /// The dimension of the radical: the subspace of the span that
    /// commutes with the whole span (the "stabilizer part" of a gauge
    /// group).
    ///
    /// For a span `V` of dimension `r`, `dim rad(V) = r - rank(G)` where
    /// `G` is the Gram matrix of the symplectic form on the generators.
    pub fn radical_dim(&self) -> usize {
        self.rank_and_radical().1
    }

    /// The number of logical qubits of a (subsystem) code whose measured
    /// checks generate this operator set.
    ///
    /// With `r` = F2-rank of the generators and `c` = dim of the radical,
    /// the code has `g = (r - c) / 2` gauge qubits and
    /// `k = n - c - g = n - (r + c) / 2` logical qubits.
    pub fn logical_qubit_count(&self) -> usize {
        let (r, c) = self.rank_and_radical();
        self.num_qubits - (r + c) / 2
    }

    /// Returns `(rank, radical dimension)` of the generator span.
    pub fn rank_and_radical(&self) -> (usize, usize) {
        let r = self.rank();
        let m = self.rows.len();
        let mut gram = BitMatrix::zeros(m, m.max(1));
        for i in 0..m {
            for j in (i + 1)..m {
                if self.anticommute(i, j) {
                    gram.set(i, j, true);
                    gram.set(j, i, true);
                }
            }
        }
        let gram_rank = gram.rank_in_place();
        (r, r - gram_rank)
    }

    fn to_bit_matrix(&self) -> BitMatrix {
        let mut m = BitMatrix::zeros(self.rows.len(), 2 * self.num_qubits);
        for (i, (xs, zs)) in self.rows.iter().enumerate() {
            for q in 0..self.num_qubits {
                if (xs[q / 64] >> (q % 64)) & 1 == 1 {
                    m.set(i, q, true);
                }
                if (zs[q / 64] >> (q % 64)) & 1 == 1 {
                    m.set(i, self.num_qubits + q, true);
                }
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmatrix_rank_simple() {
        let mut m = BitMatrix::zeros(3, 3);
        m.set(0, 0, true);
        m.set(1, 1, true);
        m.set(2, 0, true);
        m.set(2, 1, true);
        assert_eq!(m.rank(), 2);
    }

    #[test]
    fn bitmatrix_rank_identity_wide() {
        let mut m = BitMatrix::zeros(4, 100);
        for i in 0..4 {
            m.set(i, 90 + i, true);
        }
        assert_eq!(m.rank(), 4);
    }

    #[test]
    fn bitmatrix_xor_rows() {
        let mut m = BitMatrix::zeros(2, 70);
        m.set(0, 69, true);
        m.set(1, 69, true);
        m.set(1, 0, true);
        m.xor_row_into(0, 1);
        assert!(!m.get(1, 69));
        assert!(m.get(1, 0));
        m.xor_row_into(1, 0);
        assert!(m.get(0, 0));
        assert!(m.get(0, 69));
    }

    #[test]
    fn repetition_code_logical_count() {
        // 3-qubit repetition code: checks Z0Z1, Z1Z2 -> k = 1.
        let mut s = SymplecticSpace::new(3);
        s.push_support(&[], &[0, 1]);
        s.push_support(&[], &[1, 2]);
        assert_eq!(s.logical_qubit_count(), 1);
    }

    #[test]
    fn bacon_shor_like_gauge_counting() {
        // 4 qubits with gauge checks X0X1, Z1Z2 anticommute? X0X1 vs Z1Z2
        // overlap on qubit 1 -> anticommute. rank 2, radical 0 ->
        // g = 1, k = 4 - 1 = 3.
        let mut s = SymplecticSpace::new(4);
        s.push_support(&[0, 1], &[]);
        s.push_support(&[], &[1, 2]);
        assert!(s.anticommute(0, 1));
        let (r, c) = s.rank_and_radical();
        assert_eq!((r, c), (2, 0));
        assert_eq!(s.logical_qubit_count(), 3);
    }

    #[test]
    fn surface_code_d3_has_one_logical() {
        // Hand-coded d=3 rotated surface code: 9 data qubits indexed
        //   0 1 2
        //   3 4 5
        //   6 7 8
        // X checks: {0,1}, {1,2,4,5}, {3,4,6,7}, {7,8}
        // Z checks: {0,1,3,4}, {2,5}, {3,6}, {4,5,7,8}
        let mut s = SymplecticSpace::new(9);
        s.push_support(&[0, 1], &[]);
        s.push_support(&[1, 2, 4, 5], &[]);
        s.push_support(&[3, 4, 6, 7], &[]);
        s.push_support(&[7, 8], &[]);
        s.push_support(&[], &[0, 1, 3, 4]);
        s.push_support(&[], &[2, 5]);
        s.push_support(&[], &[3, 6]);
        s.push_support(&[], &[4, 5, 7, 8]);
        let (r, c) = s.rank_and_radical();
        assert_eq!((r, c), (8, 8), "all checks commute and are independent");
        assert_eq!(s.logical_qubit_count(), 1);
    }

    #[test]
    fn duplicate_generators_do_not_change_k() {
        let mut s = SymplecticSpace::new(3);
        s.push_support(&[], &[0, 1]);
        s.push_support(&[], &[1, 2]);
        s.push_support(&[], &[0, 2]); // dependent
        assert_eq!(s.rank(), 2);
        assert_eq!(s.logical_qubit_count(), 1);
    }
}
