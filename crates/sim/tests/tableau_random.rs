//! Randomized cross-checks of the tableau simulator: random Clifford
//! circuits must satisfy algebraic invariants, and reference samples
//! must be reproducible and self-consistent.

use dqec_sim::circuit::{CheckBasis, Circuit};
use dqec_sim::tableau::{ReferenceSample, Tableau};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Applies a random sequence of Clifford gates.
fn random_cliffords(t: &mut Tableau, n: usize, ops: usize, rng: &mut StdRng) {
    for _ in 0..ops {
        match rng.gen_range(0..4) {
            0 => t.h(rng.gen_range(0..n)),
            1 => t.s(rng.gen_range(0..n)),
            2 => {
                let a = rng.gen_range(0..n);
                let b = (a + rng.gen_range(1..n)) % n;
                t.cx(a, b);
            }
            _ => {
                let a = rng.gen_range(0..n);
                let b = (a + rng.gen_range(1..n)) % n;
                t.cz(a, b);
            }
        }
    }
}

#[test]
fn measurement_is_idempotent_after_collapse() {
    let mut rng = StdRng::seed_from_u64(11);
    for trial in 0..50 {
        let n = rng.gen_range(2..8usize);
        let mut t = Tableau::new(n);
        random_cliffords(&mut t, n, 30, &mut rng);
        let q = rng.gen_range(0..n);
        let (o1, _) = t.measure_z(q);
        let (o2, det) = t.measure_z(q);
        assert!(
            det,
            "trial {trial}: repeated measurement must be deterministic"
        );
        assert_eq!(o1, o2, "trial {trial}: repeated measurement must agree");
    }
}

#[test]
fn reset_forces_zero() {
    let mut rng = StdRng::seed_from_u64(12);
    for _ in 0..50 {
        let n = rng.gen_range(2..8usize);
        let mut t = Tableau::new(n);
        random_cliffords(&mut t, n, 40, &mut rng);
        let q = rng.gen_range(0..n);
        t.reset_z(q);
        assert_eq!(t.measure_z(q), (false, true));
    }
}

#[test]
fn hh_is_identity_on_random_states() {
    let mut rng = StdRng::seed_from_u64(13);
    for _ in 0..30 {
        let n = rng.gen_range(2..6usize);
        let mut a = Tableau::new(n);
        random_cliffords(&mut a, n, 25, &mut rng);
        let mut b = a.clone();
        let q = rng.gen_range(0..n);
        b.h(q);
        b.h(q);
        // Compare by measuring everything in both (collapse orders agree).
        for q in 0..n {
            assert_eq!(a.measure_z(q), b.measure_z(q));
        }
    }
}

#[test]
fn cx_self_inverse_on_random_states() {
    let mut rng = StdRng::seed_from_u64(14);
    for _ in 0..30 {
        let n = rng.gen_range(2..6usize);
        let mut a = Tableau::new(n);
        random_cliffords(&mut a, n, 25, &mut rng);
        let mut b = a.clone();
        let c = rng.gen_range(0..n);
        let t = (c + 1) % n;
        b.cx(c, t);
        b.cx(c, t);
        for q in 0..n {
            assert_eq!(a.measure_z(q), b.measure_z(q));
        }
    }
}

#[test]
fn ghz_stabilizer_parities_hold_for_any_size() {
    for n in 2..10usize {
        let mut t = Tableau::new(n);
        t.h(0);
        for q in 1..n {
            t.cx(0, q);
        }
        let outcomes: Vec<bool> = (0..n).map(|q| t.measure_z(q).0).collect();
        assert!(
            outcomes.windows(2).all(|w| w[0] == w[1]),
            "GHZ correlations n={n}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn reference_samples_are_reproducible(seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(2..6u32);
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.reset(q).unwrap();
        }
        let mut ms = Vec::new();
        for _ in 0..10 {
            match rng.gen_range(0..4) {
                0 => c.h(rng.gen_range(0..n)).unwrap(),
                1 => c.s(rng.gen_range(0..n)).unwrap(),
                2 => {
                    let a = rng.gen_range(0..n);
                    let b = (a + 1 + rng.gen_range(0..n - 1)) % n;
                    c.cx(a, b).unwrap();
                }
                _ => ms.push(c.measure(rng.gen_range(0..n)).unwrap()),
            }
        }
        let r1 = ReferenceSample::of(&c);
        let r2 = ReferenceSample::of(&c);
        prop_assert_eq!(r1.outcomes, r2.outcomes);
        prop_assert_eq!(r1.deterministic, r2.deterministic);
    }

    #[test]
    fn deterministic_pair_detectors_always_pass(seed in 0u64..500) {
        // Measure the same stabilizer twice; the comparison detector is
        // deterministic no matter what Cliffords preceded it.
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 4u32;
        let mut c = Circuit::new(n + 1);
        for q in 0..=n {
            c.reset(q).unwrap();
        }
        for _ in 0..8 {
            match rng.gen_range(0..3) {
                0 => c.h(rng.gen_range(0..n)).unwrap(),
                1 => c.s(rng.gen_range(0..n)).unwrap(),
                _ => {
                    let a = rng.gen_range(0..n);
                    let b = (a + 1 + rng.gen_range(0..n - 1)) % n;
                    c.cx(a, b).unwrap();
                }
            }
        }
        // Parity of qubits 0,1 measured twice via the ancilla.
        let parity_meas = |c: &mut Circuit| {
            c.cx(0, n).unwrap();
            c.cx(1, n).unwrap();
            c.measure_reset(n).unwrap()
        };
        let m1 = parity_meas(&mut c);
        let m2 = parity_meas(&mut c);
        c.add_detector(&[m1, m2], CheckBasis::Z, (0, 0, 0)).unwrap();
        prop_assert!(ReferenceSample::violated_detectors(&c).is_empty());
    }
}
