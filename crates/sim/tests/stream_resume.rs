//! Batch-stream cursoring. The sweep engine persists, per sweep point,
//! the index of the next unsampled ChaCha8 batch stream (`next_batch`
//! in the checkpoint) and resumes at *whole-batch* granularity — it
//! deliberately never splits a batch across an interruption. These
//! tests pin the two properties behind that design:
//!
//! 1. frame sampling is *vectorized across shots*, so a batch's tables
//!    depend on its shot count — a resumable scheme must re-run whole
//!    batches at their original sizes rather than concatenate
//!    differently-sized refills of one stream (which is why the
//!    engine's RNG cursor is a batch index, not a shot count); and
//! 2. the `word_pos`/`set_word_pos` cursor API on the vendored ChaCha
//!    shim repositions a reseeded stream bit-exactly, which is the
//!    primitive a finer-grained (sub-batch) resume would build on —
//!    today the engine does not persist word positions, and this test
//!    is the API's contract.

use dqec_sim::circuit::{CheckBasis, Circuit, Noise1};
use dqec_sim::frame::{FrameSampler, ShotBatch};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A small noisy circuit with both 1- and 2-qubit noise so sampling
/// consumes a non-trivial mix of keystream words.
fn noisy_circuit() -> Circuit {
    let mut c = Circuit::new(2);
    c.reset(0).unwrap();
    c.reset(1).unwrap();
    c.noise1(Noise1::XError, 0, 0.2).unwrap();
    c.noise1(Noise1::Depolarize1, 1, 0.15).unwrap();
    c.depolarize2(0, 1, 0.1).unwrap();
    let m0 = c.measure(0).unwrap();
    let m1 = c.measure(1).unwrap();
    c.add_detector(&[m0], CheckBasis::Z, (0, 0, 0)).unwrap();
    c.add_detector(&[m1], CheckBasis::Z, (1, 0, 0)).unwrap();
    c
}

fn tables_equal(a: &ShotBatch, b: &ShotBatch) -> bool {
    if a.detectors.shots() != b.detectors.shots() || a.detectors.rows() != b.detectors.rows() {
        return false;
    }
    for r in 0..a.detectors.rows() {
        for s in 0..a.detectors.shots() {
            if a.detectors.get(r, s) != b.detectors.get(r, s) {
                return false;
            }
        }
    }
    for r in 0..a.observables.rows() {
        for s in 0..a.observables.shots() {
            if a.observables.get(r, s) != b.observables.get(r, s) {
                return false;
            }
        }
    }
    true
}

#[test]
fn persisted_word_pos_resumes_a_batch_stream_bit_exactly() {
    let c = noisy_circuit();
    let sampler = FrameSampler::new(&c);

    // Uninterrupted: three 64-shot batches from one stream.
    let mut rng = ChaCha8Rng::seed_from_u64(0x5eed);
    let _first = sampler.sample(64, &mut rng);
    let cursor = rng.word_pos();
    let second = sampler.sample(64, &mut rng);
    let third = sampler.sample(64, &mut rng);

    // Interrupted after the first batch: persist only (seed, cursor),
    // reseed in a "new process", seek, and continue.
    let mut resumed = ChaCha8Rng::seed_from_u64(0x5eed);
    resumed.set_word_pos(cursor);
    let second_resumed = sampler.sample(64, &mut resumed);
    let third_resumed = sampler.sample(64, &mut resumed);
    assert!(
        tables_equal(&second, &second_resumed),
        "resumed batch 2 diverged from the uninterrupted stream"
    );
    assert!(
        tables_equal(&third, &third_resumed),
        "resumed batch 3 diverged from the uninterrupted stream"
    );
}

#[test]
fn sampling_is_vectorized_so_batch_sizes_are_part_of_the_contract() {
    // 60 + 40 shots from one stream is NOT the same as 100 shots: the
    // sampler draws whole 64-shot words per noise site, so the RNG
    // consumption pattern depends on the batch size. This is why the
    // sweep engine only ever extends a point's tally by *whole batches
    // of the fixed batch size* (the checkpoint's `next_batch` cursor)
    // instead of topping up an existing batch.
    let c = noisy_circuit();
    let sampler = FrameSampler::new(&c);

    let mut one = ChaCha8Rng::seed_from_u64(9);
    let whole = sampler.sample(100, &mut one);

    let mut split = ChaCha8Rng::seed_from_u64(9);
    let head = sampler.sample(60, &mut split);
    let tail = sampler.sample(40, &mut split);

    let mut same = 0usize;
    let total = 100 * whole.detectors.rows();
    for r in 0..whole.detectors.rows() {
        for s in 0..100 {
            let split_bit = if s < 60 {
                head.detectors.get(r, s)
            } else {
                tail.detectors.get(r, s - 60)
            };
            if whole.detectors.get(r, s) == split_bit {
                same += 1;
            }
        }
    }
    assert!(
        same < total,
        "60+40 happened to reproduce 100-shot sampling; if the sampler \
         became shot-sequential, the engine could allocate sub-batch \
         increments — update the sweep engine's contract instead of this test"
    );
}
