//! Cross-validation: the detector error model's predictions must match
//! empirical frame-sampling statistics. These tests pin the two
//! independent noise pipelines (symbolic backward propagation vs
//! vectorized forward sampling) against each other.

use dqec_sim::circuit::{CheckBasis, Circuit, Noise1};
use dqec_sim::dem::DetectorErrorModel;
use dqec_sim::frame::FrameSampler;
use dqec_sim::noise::NoiseModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Marginal flip probability of each detector according to the DEM:
/// P(flip) = 1/2 (1 - prod_m (1 - 2 p_m)) over mechanisms touching it.
fn dem_marginals(dem: &DetectorErrorModel) -> Vec<f64> {
    let mut keep = vec![1.0f64; dem.num_detectors];
    for mech in &dem.mechanisms {
        for &d in &mech.detectors {
            keep[d as usize] *= 1.0 - 2.0 * mech.probability;
        }
    }
    keep.into_iter().map(|k| 0.5 * (1.0 - k)).collect()
}

fn assert_marginals_match(circuit: &Circuit, shots: usize, tolerance: f64) {
    let dem = DetectorErrorModel::from_circuit(circuit);
    let predicted = dem_marginals(&dem);
    let batch = FrameSampler::new(circuit).sample(shots, &mut StdRng::seed_from_u64(7));
    assert_eq!(
        predicted.len(),
        circuit.detectors().len(),
        "DEM must predict every detector"
    );
    for (d, &expected) in predicted.iter().enumerate() {
        let observed = batch.detectors.count_row(d) as f64 / shots as f64;
        let sigma = (expected * (1.0 - expected) / shots as f64).sqrt();
        assert!(
            (observed - expected).abs() < tolerance + 5.0 * sigma,
            "detector {d}: predicted {expected} observed {observed}"
        );
    }
}

fn repetition_round(p: f64) -> Circuit {
    let mut c = Circuit::new(5);
    for q in 0..5 {
        c.reset(q).unwrap();
    }
    let mut prev: Option<[dqec_sim::MeasRecord; 2]> = None;
    for t in 0..3 {
        for q in 0..3 {
            c.noise1(Noise1::Depolarize1, q, p).unwrap();
        }
        c.cx(0, 3).unwrap();
        c.cx(1, 3).unwrap();
        c.cx(1, 4).unwrap();
        c.cx(2, 4).unwrap();
        c.noise1(Noise1::XError, 3, p / 2.0).unwrap();
        c.noise1(Noise1::XError, 4, p / 2.0).unwrap();
        let m3 = c.measure_reset(3).unwrap();
        let m4 = c.measure_reset(4).unwrap();
        match prev {
            None => {
                c.add_detector(&[m3], CheckBasis::Z, (0, 0, t)).unwrap();
                c.add_detector(&[m4], CheckBasis::Z, (1, 0, t)).unwrap();
            }
            Some([p3, p4]) => {
                c.add_detector(&[m3, p3], CheckBasis::Z, (0, 0, t)).unwrap();
                c.add_detector(&[m4, p4], CheckBasis::Z, (1, 0, t)).unwrap();
            }
        }
        prev = Some([m3, m4]);
    }
    c
}

#[test]
fn dem_marginals_match_sampling_repetition_code() {
    assert_marginals_match(&repetition_round(0.02), 200_000, 0.004);
}

#[test]
fn dem_marginals_match_sampling_with_two_qubit_noise() {
    let mut c = Circuit::new(3);
    for q in 0..3 {
        c.reset(q).unwrap();
    }
    c.depolarize2(0, 1, 0.05).unwrap();
    c.cx(0, 2).unwrap();
    c.depolarize2(0, 2, 0.03).unwrap();
    c.h(1).unwrap();
    c.noise1(Noise1::Depolarize1, 1, 0.04).unwrap();
    c.h(1).unwrap();
    let m0 = c.measure(0).unwrap();
    let m1 = c.measure(1).unwrap();
    let m2 = c.measure(2).unwrap();
    c.add_detector(&[m0], CheckBasis::Z, (0, 0, 0)).unwrap();
    c.add_detector(&[m1], CheckBasis::Z, (1, 0, 0)).unwrap();
    c.add_detector(&[m0, m2], CheckBasis::Z, (2, 0, 0)).unwrap();
    assert_marginals_match(&c, 200_000, 0.004);
}

#[test]
fn dem_marginals_match_on_surface_code_circuit() {
    // The real deal: a d=3 memory circuit under the paper's noise model.
    use dqec_core_like::build_d3;
    let noisy = NoiseModel::new(5e-3).apply(&build_d3());
    assert_marginals_match(&noisy, 100_000, 0.006);
}

/// Minimal hand-rolled d=3 rotated surface code memory circuit (one
/// round), independent of dqec-core, to keep this test self-contained.
mod dqec_core_like {
    use super::*;

    pub fn build_d3() -> Circuit {
        // Data 0..9 in a 3x3 grid; 4 Z ancillas (9..13), 4 X (13..17).
        let z_checks: [&[u32]; 4] = [&[0, 1, 3, 4], &[2, 5], &[3, 6], &[4, 5, 7, 8]];
        let x_checks: [&[u32]; 4] = [&[0, 1], &[1, 2, 4, 5], &[3, 4, 6, 7], &[7, 8]];
        let mut c = Circuit::new(17);
        for q in 0..17 {
            c.reset(q).unwrap();
        }
        let mut records = Vec::new();
        for round in 0..2 {
            for (i, qs) in z_checks.iter().enumerate() {
                let anc = 9 + i as u32;
                for &q in *qs {
                    c.cx(q, anc).unwrap();
                }
                let m = c.measure_reset(anc).unwrap();
                records.push((i, round, m));
            }
            for (i, qs) in x_checks.iter().enumerate() {
                let anc = 13 + i as u32;
                c.h(anc).unwrap();
                for &q in *qs {
                    c.cx(anc, q).unwrap();
                }
                c.h(anc).unwrap();
                let m = c.measure_reset(anc).unwrap();
                records.push((4 + i, round, m));
            }
        }
        for i in 0..4usize {
            let m0 = records.iter().find(|r| r.0 == i && r.1 == 0).unwrap().2;
            let m1 = records.iter().find(|r| r.0 == i && r.1 == 1).unwrap().2;
            c.add_detector(&[m0], CheckBasis::Z, (i as i32, 0, 0))
                .unwrap();
            c.add_detector(&[m0, m1], CheckBasis::Z, (i as i32, 0, 1))
                .unwrap();
        }
        for i in 4..8usize {
            let m0 = records.iter().find(|r| r.0 == i && r.1 == 0).unwrap().2;
            let m1 = records.iter().find(|r| r.0 == i && r.1 == 1).unwrap().2;
            c.add_detector(&[m0, m1], CheckBasis::X, (i as i32, 0, 1))
                .unwrap();
        }
        c
    }
}

#[test]
fn zero_noise_dem_is_empty_and_sampling_silent() {
    let clean = repetition_round(0.0);
    let dem = DetectorErrorModel::from_circuit(&clean);
    assert!(dem.mechanisms.is_empty());
    let batch = FrameSampler::new(&clean).sample(10_000, &mut StdRng::seed_from_u64(1));
    for d in 0..clean.detectors().len() {
        assert_eq!(batch.detectors.count_row(d), 0);
    }
}
