//! The compiled-experiment cache: the server-side seam that amortizes
//! circuit generation and decoder construction (the all-pairs
//! shortest-path step dominates) across every request that shares a
//! (patch, decoder, noise) configuration.
//!
//! A request is **normalized** before keying: shots, seed, and id are
//! serving parameters, not compilation parameters, so requests that
//! differ only in those share one [`CompiledExperiment`]. Each request
//! is then sampled under its *own* seed through
//! [`CompiledExperiment::sample_batches_with_seed`] with the standard
//! 4096-shot batch layout, which makes a served tally bit-identical to
//! a one-shot [`Runner`](dqec_chiplet::runner::Runner) run of the same
//! request — the conformance property the CI smoke job diffs.
//!
//! Eviction is LRU over a monotonic use tick; capacity 0 disables
//! caching entirely (every request compiles, counted as a miss), which
//! is the `bench_serve` cold mode.

use crate::protocol::{DecodeRequest, ErrorKind, ErrorResponse, LerResponse};
use dqec_chiplet::runner::{CompiledExperiment, ExperimentSpec, Fnv};
use dqec_core::adapt::AdaptedPatch;
use dqec_core::layout::PatchLayout;
use dqec_matching::DecodeStats;
use dqec_obs::Clock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// The standard batch granularity shared with the `Runner`.
pub const BATCH_SHOTS: usize = 4096;

/// The normalized experiment spec a decode request compiles to: same
/// patch, protocol, error rate, rounds, and decoder backend — shots,
/// seed, and label pinned so serving parameters do not fragment the
/// cache key space.
pub fn normalized_spec(req: &DecodeRequest) -> ExperimentSpec {
    let layout = PatchLayout::memory(req.d);
    let defects = req.defects.clamp_to(&layout);
    let patch = AdaptedPatch::new(layout, &defects);
    let mut spec = ExperimentSpec::memory(patch)
        .p(req.p)
        .shots(0)
        .seed(0)
        .label("serve")
        .decoder(req.decoder.builder());
    if let Some(rounds) = req.rounds {
        spec = spec.rounds(rounds);
    }
    spec
}

/// The cache key of a normalized spec + decoder backend. The spec
/// fingerprint covers protocol, patch geometry/defects, `p`, and
/// rounds; the backend tag is mixed separately because decoder
/// builders are opaque closures the fingerprint cannot see.
pub fn cache_key(spec: &ExperimentSpec, decoder_tag: &str) -> u64 {
    let mut h = Fnv::new();
    h.word(spec.fingerprint());
    h.bytes(decoder_tag.as_bytes());
    h.finish()
}

struct Entry {
    exp: Arc<CompiledExperiment>,
    last_used: u64,
}

/// Aggregate cache counters (compiled-experiment level plus the
/// syndrome-memoization traffic of every decode served through
/// [`ExperimentCache::execute`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheCounters {
    /// Requests answered from a resident compiled experiment.
    pub hits: u64,
    /// Requests that had to compile.
    pub misses: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Syndrome-cache hits summed over executed requests.
    pub syndrome_hits: u64,
    /// Syndrome-cache misses summed over executed requests.
    pub syndrome_misses: u64,
}

/// An LRU cache of [`CompiledExperiment`]s keyed by
/// (patch, decoder, noise) fingerprint.
pub struct ExperimentCache {
    capacity: usize,
    tick: u64,
    entries: BTreeMap<u64, Entry>,
    counters: CacheCounters,
}

impl ExperimentCache {
    /// A cache holding at most `capacity` compiled experiments;
    /// capacity 0 disables caching (every request compiles).
    pub fn new(capacity: usize) -> Self {
        ExperimentCache {
            capacity,
            tick: 0,
            entries: BTreeMap::new(),
            counters: CacheCounters::default(),
        }
    }

    /// Counter snapshot.
    pub fn counters(&self) -> CacheCounters {
        let mut c = self.counters;
        c.entries = self.entries.len() as u64;
        c
    }

    /// Fetches the compiled experiment for `key`, compiling from
    /// `spec` on a miss. Returns the entry and whether it was a hit.
    ///
    /// # Errors
    ///
    /// Propagates compilation failures (degenerate patch, bad rounds)
    /// as an [`ErrorResponse`] of kind
    /// [`bad-request`](crate::protocol::ErrorKind::BadRequest) —
    /// compile errors are properties of the request, not the server.
    pub fn get_or_compile(
        &mut self,
        key: u64,
        spec: &ExperimentSpec,
        id: u64,
    ) -> Result<(Arc<CompiledExperiment>, bool), ErrorResponse> {
        self.tick += 1;
        if self.capacity > 0 {
            if let Some(entry) = self.entries.get_mut(&key) {
                entry.last_used = self.tick;
                self.counters.hits += 1;
                return Ok((Arc::clone(&entry.exp), true));
            }
        }
        self.counters.misses += 1;
        let _span = dqec_obs::trace::span("serve.compile");
        let t0 = Clock::now_ns();
        let mut compiled = CompiledExperiment::new(spec).map_err(|e| ErrorResponse {
            id: Some(id),
            kind: ErrorKind::BadRequest,
            detail: format!("cannot compile experiment: {e}"),
        })?;
        dqec_obs::registry()
            .histogram("serve.stage.compile")
            .record(Clock::now_ns().saturating_sub(t0));
        // Single-point spec: select once at insert so every request
        // sampled from this entry reuses the reweighted decoder and
        // noisy circuit.
        compiled.select_point(0);
        let exp = Arc::new(compiled);
        if self.capacity > 0 {
            while self.entries.len() >= self.capacity {
                // Evict the least-recently-used entry; BTreeMap keeps
                // the scan deterministic.
                let lru = self
                    .entries
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| *k);
                match lru {
                    Some(k) => {
                        self.entries.remove(&k);
                        self.counters.evictions += 1;
                    }
                    None => break,
                }
            }
            self.entries.insert(
                key,
                Entry {
                    exp: Arc::clone(&exp),
                    last_used: self.tick,
                },
            );
        }
        Ok((exp, false))
    }

    /// Runs one validated decode request end to end: normalize, fetch
    /// or compile, then sample `shots` under the request's seed in the
    /// standard batch layout. `batched` reports how many requests of
    /// the current coalesced batch share the entry (1 when serving
    /// solo). Returns the response and the raw tally (whose
    /// syndrome-cache counters have already been folded into
    /// [`Self::counters`]).
    ///
    /// # Errors
    ///
    /// A typed [`ErrorResponse`]: `bad-request` for validation or
    /// compilation failures.
    pub fn execute(
        &mut self,
        req: &DecodeRequest,
        batched: usize,
    ) -> Result<(LerResponse, DecodeStats), ErrorResponse> {
        req.validate().map_err(|detail| ErrorResponse {
            id: Some(req.id),
            kind: ErrorKind::BadRequest,
            detail,
        })?;
        let spec = normalized_spec(req);
        let key = cache_key(&spec, req.decoder.name());
        let (exp, hit) = self.get_or_compile(key, &spec, req.id)?;
        let num_batches = req.shots.div_ceil(BATCH_SHOTS) as u64;
        let t0 = Clock::now_ns();
        let stats = {
            let _span = dqec_obs::trace::span("serve.decode");
            exp.sample_batches_with_seed(0..num_batches, BATCH_SHOTS, req.shots, req.seed)
        };
        self.counters.syndrome_hits += stats.cache_hits;
        self.counters.syndrome_misses += stats.cache_misses;
        self.publish_metrics(&stats, Clock::now_ns().saturating_sub(t0));
        let resp = LerResponse {
            id: req.id,
            d: req.d,
            p: req.p,
            rounds: exp.spec().effective_rounds(),
            decoder: req.decoder,
            seed: req.seed,
            shots: stats.shots,
            failures: stats.failures.first().copied().unwrap_or(0) as u64,
            cache_hit: hit,
            batched,
        };
        Ok((resp, stats))
    }

    /// Folds one executed request into the obs registry: the decode
    /// stage histogram, the tally bridge, and the hit-rate gauges of
    /// both cache levels.
    fn publish_metrics(&self, stats: &DecodeStats, decode_ns: u64) {
        let reg = dqec_obs::registry();
        reg.histogram("serve.stage.decode").record(decode_ns);
        stats.publish("serve.decode");
        let c = self.counters;
        reg.gauge("serve.cache.entries")
            .set(self.entries.len() as i64);
        let lookups = c.hits + c.misses;
        if lookups > 0 {
            let bp = (c.hits as f64 / lookups as f64 * 10_000.0) as i64;
            reg.gauge("serve.cache.hit_rate_bp").set(bp);
        }
        let syndrome = c.syndrome_hits + c.syndrome_misses;
        if syndrome > 0 {
            let bp = (c.syndrome_hits as f64 / syndrome as f64 * 10_000.0) as i64;
            reg.gauge("serve.syndrome.hit_rate_bp").set(bp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqec_chiplet::runner::DecoderChoice;
    use dqec_core::{Coord, DefectSet};

    fn req(id: u64, d: u32, p: f64, seed: u64, decoder: DecoderChoice) -> DecodeRequest {
        DecodeRequest {
            id,
            d,
            p,
            rounds: None,
            shots: 512,
            seed,
            decoder,
            defects: DefectSet::new(),
        }
    }

    #[test]
    fn same_configuration_hits_different_seed_or_shots() {
        let mut cache = ExperimentCache::new(4);
        let (r1, _) = cache
            .execute(&req(1, 3, 3e-3, 0, DecoderChoice::Mwpm), 1)
            .unwrap();
        assert!(!r1.cache_hit);
        // Different seed and id: same compiled experiment.
        let (r2, _) = cache
            .execute(&req(2, 3, 3e-3, 7, DecoderChoice::Mwpm), 1)
            .unwrap();
        assert!(r2.cache_hit);
        let c = cache.counters();
        assert_eq!((c.hits, c.misses, c.entries), (1, 1, 1));
    }

    #[test]
    fn decoder_backend_and_defects_split_the_key() {
        let mut cache = ExperimentCache::new(8);
        cache
            .execute(&req(1, 3, 3e-3, 0, DecoderChoice::Mwpm), 1)
            .unwrap();
        cache
            .execute(&req(2, 3, 3e-3, 0, DecoderChoice::Uf), 1)
            .unwrap();
        let mut defective = req(3, 3, 3e-3, 0, DecoderChoice::Mwpm);
        defective.defects.add_synd(Coord::new(2, 2));
        cache.execute(&defective, 1).unwrap();
        let c = cache.counters();
        assert_eq!((c.hits, c.misses, c.entries), (0, 3, 3));
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let mut cache = ExperimentCache::new(2);
        let a = req(1, 3, 1e-3, 0, DecoderChoice::Mwpm);
        let b = req(2, 3, 2e-3, 0, DecoderChoice::Mwpm);
        let c = req(3, 3, 4e-3, 0, DecoderChoice::Mwpm);
        cache.execute(&a, 1).unwrap(); // a
        cache.execute(&b, 1).unwrap(); // a b
        cache.execute(&a, 1).unwrap(); // touch a -> b is LRU
        cache.execute(&c, 1).unwrap(); // evicts b
        assert_eq!(cache.counters().evictions, 1);
        cache.execute(&a, 1).unwrap(); // still resident
        assert_eq!(cache.counters().hits, 2);
        cache.execute(&b, 1).unwrap(); // recompiles
        assert_eq!(cache.counters().misses, 4);
    }

    #[test]
    fn capacity_zero_always_compiles() {
        let mut cache = ExperimentCache::new(0);
        let r = req(1, 3, 3e-3, 0, DecoderChoice::Mwpm);
        cache.execute(&r, 1).unwrap();
        cache.execute(&r, 1).unwrap();
        let c = cache.counters();
        assert_eq!((c.hits, c.misses, c.entries), (0, 2, 0));
    }

    #[test]
    fn served_tally_matches_one_shot_runner() {
        use dqec_chiplet::record::NullSink;
        use dqec_chiplet::runner::{ExperimentSpec, Runner};

        let request = DecodeRequest {
            id: 1,
            d: 3,
            p: 6e-3,
            rounds: None,
            shots: 3000, // not a multiple of 4096: exercises truncation
            seed: 11,
            decoder: DecoderChoice::Uf,
            defects: DefectSet::new(),
        };
        let mut cache = ExperimentCache::new(2);
        let (served, _) = cache.execute(&request, 1).unwrap();

        let patch = AdaptedPatch::new(PatchLayout::memory(3), &DefectSet::new());
        let spec = ExperimentSpec::memory(patch)
            .p(6e-3)
            .shots(3000)
            .seed(11)
            .decoder(DecoderChoice::Uf.builder());
        let outcome = Runner::new().run(&spec, &mut NullSink).unwrap();
        assert_eq!(served.shots, outcome.points[0].shots);
        assert_eq!(served.failures as usize, outcome.points[0].failures);
    }

    #[test]
    fn compile_failures_become_bad_request() {
        // Rounds below the gauge-schedule requirement trip a typed
        // CoreError during compilation.
        let mut bad = req(5, 5, 3e-3, 0, DecoderChoice::Mwpm);
        bad.defects.add_synd(Coord::new(4, 4));
        bad.rounds = Some(1);
        let err = ExperimentCache::new(2).execute(&bad, 1).unwrap_err();
        assert_eq!(err.kind, crate::protocol::ErrorKind::BadRequest);
        assert_eq!(err.id, Some(5));
    }
}
