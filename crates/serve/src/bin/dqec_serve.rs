//! The decode-service CLI: serve (default), client, and oneshot modes.
//!
//! The three modes share one execution path (`ExperimentCache` over
//! `sample_batches_with_seed`), so `--client` output against a running
//! server is byte-identical to `--oneshot` output for the same request
//! file — the conformance property CI enforces.

use dqec_serve::protocol::{self, Request, Response, StatsResponse};
use dqec_serve::{ExperimentCache, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

const USAGE: &str = "\
usage: dqec_serve [--addr A] [--threads N] [--cache N] [--queue N] [--batch N]
                  [--max-clients N] [--trace-out FILE]
                  [--oneshot FILE | --client FILE] [--help]

Modes
  (default)        serve: listen on --addr and run until killed
  --oneshot FILE   run the JSON-lines requests in FILE locally and print
                   one normalized response line per request, sorted by id
  --client FILE    connect to --addr, send the requests in FILE, collect
                   the responses, and print them normalized, sorted by id

Options
  --addr A         listen/connect address (default 127.0.0.1:7461)
  --threads N      worker cap for decode fan-outs (default: all cores)
  --cache N        compiled-experiment cache capacity (default 64; 0
                   compiles per request)
  --queue N        per-client admission queue capacity (default 64)
  --batch N        max requests coalesced per executor pass (default 32)
  --max-clients N  connection limit (default 64)
  --trace-out FILE enable span tracing and write a Chrome trace-event
                   JSON file on shutdown (serve and oneshot modes)
  --help           show this message";

struct Args {
    config: ServerConfig,
    threads: Option<usize>,
    oneshot: Option<std::path::PathBuf>,
    client: Option<std::path::PathBuf>,
}

fn usize_flag(it: &mut std::slice::Iter<'_, String>, flag: &str) -> usize {
    let v = it.next().unwrap_or_else(|| {
        eprintln!("error: {flag} requires a value\n{USAGE}");
        std::process::exit(2);
    });
    v.parse().unwrap_or_else(|_| {
        eprintln!("error: bad {flag} value {v:?}\n{USAGE}");
        std::process::exit(2);
    })
}

fn parse_args() -> Args {
    let mut args = Args {
        config: ServerConfig::default(),
        threads: None,
        oneshot: None,
        client: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            "--addr" => {
                args.config.addr = it
                    .next()
                    .unwrap_or_else(|| {
                        eprintln!("error: --addr requires a value\n{USAGE}");
                        std::process::exit(2);
                    })
                    .clone();
            }
            "--threads" => {
                let n = usize_flag(&mut it, "--threads");
                if n == 0 {
                    eprintln!("error: --threads must be >= 1\n{USAGE}");
                    std::process::exit(2);
                }
                args.threads = Some(n);
            }
            "--cache" => args.config.cache_capacity = usize_flag(&mut it, "--cache"),
            "--queue" => args.config.queue_capacity = usize_flag(&mut it, "--queue"),
            "--batch" => args.config.batch_max = usize_flag(&mut it, "--batch"),
            "--max-clients" => args.config.max_clients = usize_flag(&mut it, "--max-clients"),
            "--trace-out" => {
                let path = it.next().unwrap_or_else(|| {
                    eprintln!("error: --trace-out requires a file\n{USAGE}");
                    std::process::exit(2);
                });
                args.config.trace_out = Some(path.into());
            }
            "--oneshot" | "--client" => {
                let path = it.next().unwrap_or_else(|| {
                    eprintln!("error: {arg} requires a file\n{USAGE}");
                    std::process::exit(2);
                });
                if arg == "--oneshot" {
                    args.oneshot = Some(path.into());
                } else {
                    args.client = Some(path.into());
                }
            }
            other => {
                eprintln!("error: unknown flag {other:?}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    if args.oneshot.is_some() && args.client.is_some() {
        eprintln!("error: --oneshot and --client are mutually exclusive\n{USAGE}");
        std::process::exit(2);
    }
    args
}

fn main() {
    let args = parse_args();
    match args.threads {
        Some(n) => rayon::with_worker_cap(n, || run(&args)),
        None => run(&args),
    }
}

fn run(args: &Args) {
    if let Some(path) = &args.oneshot {
        oneshot(
            path,
            args.config.cache_capacity,
            args.config.trace_out.as_deref(),
        );
    } else if let Some(path) = &args.client {
        client(&args.config.addr, path);
    } else {
        serve(args.config.clone());
    }
}

fn serve(config: ServerConfig) {
    let handle = dqec_serve::start(config).unwrap_or_else(|e| {
        eprintln!("error: cannot start server: {e}");
        std::process::exit(1);
    });
    eprintln!("dqec_serve: listening on {}", handle.addr());
    handle.wait();
}

fn read_request_lines(path: &std::path::Path) -> Vec<String> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {}: {e}", path.display());
        std::process::exit(1);
    });
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect()
}

/// Sorts normalized lines by (id, arrival) and prints them.
fn print_normalized(mut responses: Vec<(u64, usize, String)>) {
    responses.sort_by_key(|&(id, arrival, _)| (id, arrival));
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for (_, _, line) in responses {
        writeln!(out, "{line}").unwrap_or_else(|e| {
            eprintln!("error: stdout: {e}");
            std::process::exit(1);
        });
    }
}

fn oneshot(path: &std::path::Path, cache_capacity: usize, trace_out: Option<&std::path::Path>) {
    if trace_out.is_some() {
        dqec_obs::trace::set_enabled(true);
    }
    let lines = read_request_lines(path);
    let mut cache = ExperimentCache::new(cache_capacity);
    let mut served = 0u64;
    let mut rejected = 0u64;
    let mut responses = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let resp = match protocol::parse_request(line) {
            Err((id, detail)) => {
                rejected += 1;
                Response::Error(protocol::ErrorResponse {
                    id,
                    kind: dqec_serve::ErrorKind::BadRequest,
                    detail,
                })
            }
            Ok(Request::Ping { id }) => Response::Pong { id },
            Ok(Request::Stats { id }) => {
                let c = cache.counters();
                Response::Stats(StatsResponse {
                    id,
                    served,
                    rejected,
                    cache_hits: c.hits,
                    cache_misses: c.misses,
                    cache_evictions: c.evictions,
                    cache_entries: c.entries,
                    syndrome_hits: c.syndrome_hits,
                    syndrome_misses: c.syndrome_misses,
                    pool_workers: 0,
                    coalesce_hits: 0,
                })
            }
            Ok(Request::Metrics { id }) => Response::Metrics(dqec_serve::metrics_snapshot(id)),
            Ok(Request::Decode(req)) => match cache.execute(&req, 1) {
                Ok((resp, _)) => {
                    served += 1;
                    Response::Ler(resp)
                }
                Err(err) => {
                    rejected += 1;
                    Response::Error(err)
                }
            },
            Ok(Request::Shard(req)) => {
                rejected += 1;
                Response::Error(protocol::ErrorResponse {
                    id: Some(req.id),
                    kind: dqec_serve::ErrorKind::BadRequest,
                    detail: "this is the decode server; shard jobs go to a \
                             `dqec_dist agent` endpoint"
                        .to_string(),
                })
            }
        };
        responses.push((resp.id().unwrap_or(u64::MAX), idx, resp.normalized_line()));
    }
    print_normalized(responses);
    if let Some(out) = trace_out {
        dqec_obs::trace::set_enabled(false);
        if let Err(e) = dqec_obs::trace::export_to_file(out) {
            eprintln!("warning: cannot write trace to {}: {e}", out.display());
        }
    }
}

fn client(addr: &str, path: &std::path::Path) {
    let lines = read_request_lines(path);
    let stream = TcpStream::connect(addr).unwrap_or_else(|e| {
        eprintln!("error: cannot connect to {addr}: {e}");
        std::process::exit(1);
    });
    let _ = stream.set_nodelay(true);
    let mut write_half = stream.try_clone().unwrap_or_else(|e| {
        eprintln!("error: cannot clone connection: {e}");
        std::process::exit(1);
    });
    for line in &lines {
        writeln!(write_half, "{line}").unwrap_or_else(|e| {
            eprintln!("error: send failed: {e}");
            std::process::exit(1);
        });
    }
    write_half.flush().unwrap_or_else(|e| {
        eprintln!("error: send failed: {e}");
        std::process::exit(1);
    });

    // One response per request line, in whatever order the server
    // produced them; normalize and sort for stable output.
    let reader = BufReader::new(stream);
    let mut responses = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line.unwrap_or_else(|e| {
            eprintln!("error: receive failed: {e}");
            std::process::exit(1);
        });
        let resp = protocol::parse_response(&line).unwrap_or_else(|e| {
            eprintln!("error: bad response line {line:?}: {e}");
            std::process::exit(1);
        });
        responses.push((resp.id().unwrap_or(u64::MAX), idx, resp.normalized_line()));
        if responses.len() == lines.len() {
            break;
        }
    }
    if responses.len() != lines.len() {
        eprintln!(
            "error: sent {} requests but received {} responses",
            lines.len(),
            responses.len()
        );
        std::process::exit(1);
    }
    print_normalized(responses);
}
