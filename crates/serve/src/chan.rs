//! Bounded queues for the request pipeline, built on the
//! `dqec_check::sync` facade so every interleaving is model-checkable
//! under `RUSTFLAGS="--cfg dqec_check"` (see `tests/model_chan.rs`).
//!
//! Two shapes:
//!
//! * [`Bounded`] — a plain MPMC bounded channel. The server uses one
//!   per connection as the response path: the reader thread (protocol
//!   errors, pongs) and the executor (decode results) both send rendered
//!   response lines; the connection's writer thread drains them to the
//!   socket. A full channel blocks the sender, so a slow client
//!   eventually backpressures the executor instead of buffering
//!   unboundedly.
//! * [`Inbox`] — the admission queue: one bounded FIFO **per client**
//!   drained round-robin by the executor, so a client flooding requests
//!   can neither starve other clients (fairness) nor grow memory
//!   (its own queue fills and [`Inbox::try_push`] reports
//!   [`PushError::Full`], which the server turns into a typed
//!   backpressure error response).

use dqec_check::sync::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::{Arc, PoisonError};

/// Why [`Bounded::try_send`] / [`Inbox::try_push`] rejected an item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; retry later or surface backpressure.
    Full,
    /// The queue was closed (receiver gone / server shutting down).
    Closed,
}

struct ChanState<T> {
    queue: VecDeque<T>,
    closed: bool,
}

struct ChanShared<T> {
    state: Mutex<ChanState<T>>,
    /// Signalled when an item arrives or the channel closes.
    ready: Condvar,
    /// Signalled when space frees up.
    space: Condvar,
    cap: usize,
}

impl<T> ChanShared<T> {
    fn lock(&self) -> dqec_check::sync::MutexGuard<'_, ChanState<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A bounded MPMC channel; cloning shares the same queue.
pub struct Bounded<T> {
    shared: Arc<ChanShared<T>>,
}

impl<T> Clone for Bounded<T> {
    fn clone(&self) -> Self {
        Bounded {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Bounded<T> {
    /// A channel holding at most `cap` items (`cap` is clamped to ≥ 1).
    pub fn new(cap: usize) -> Self {
        Bounded {
            shared: Arc::new(ChanShared {
                state: Mutex::new(ChanState {
                    queue: VecDeque::new(),
                    closed: false,
                }),
                ready: Condvar::new(),
                space: Condvar::new(),
                cap: cap.max(1),
            }),
        }
    }

    /// Enqueues `v`, blocking while the channel is full. Returns the
    /// item back if the channel is (or becomes) closed.
    ///
    /// # Errors
    ///
    /// `Err(v)` when the channel is closed before `v` was enqueued.
    pub fn send(&self, v: T) -> Result<(), T> {
        let mut state = self.shared.lock();
        loop {
            if state.closed {
                return Err(v);
            }
            if state.queue.len() < self.shared.cap {
                state.queue.push_back(v);
                // Wake under the lock: a receiver between its emptiness
                // check and its wait cannot miss this notification.
                self.shared.ready.notify_one();
                return Ok(());
            }
            state = self
                .shared
                .space
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Enqueues `v` without blocking.
    ///
    /// # Errors
    ///
    /// `(v, PushError::Full)` at capacity, `(v, PushError::Closed)` on
    /// a closed channel; `v` is handed back either way.
    pub fn try_send(&self, v: T) -> Result<(), (T, PushError)> {
        let mut state = self.shared.lock();
        if state.closed {
            return Err((v, PushError::Closed));
        }
        if state.queue.len() >= self.shared.cap {
            return Err((v, PushError::Full));
        }
        state.queue.push_back(v);
        self.shared.ready.notify_one();
        Ok(())
    }

    /// Dequeues the next item, blocking while the channel is empty.
    /// Returns `None` once the channel is closed **and** drained, so
    /// close is graceful: items sent before the close are still
    /// delivered.
    pub fn recv(&self) -> Option<T> {
        let mut state = self.shared.lock();
        loop {
            if let Some(v) = state.queue.pop_front() {
                self.shared.space.notify_one();
                return Some(v);
            }
            if state.closed {
                return None;
            }
            state = self
                .shared
                .ready
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the channel: senders fail fast, receivers drain what is
    /// already queued and then see `None`.
    pub fn close(&self) {
        let mut state = self.shared.lock();
        state.closed = true;
        self.shared.ready.notify_all();
        self.shared.space.notify_all();
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// Whether no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

struct InboxState<T> {
    /// One FIFO per registered client; `None` marks a freed slot
    /// (kept so slot indices stay stable for live clients).
    slots: Vec<Option<VecDeque<T>>>,
    /// Round-robin cursor: the slot the next drain pass starts at.
    cursor: usize,
    closed: bool,
}

struct InboxShared<T> {
    state: Mutex<InboxState<T>>,
    /// Signalled when any item arrives or the inbox closes.
    ready: Condvar,
    /// Per-client queue capacity.
    cap: usize,
}

impl<T> InboxShared<T> {
    fn lock(&self) -> dqec_check::sync::MutexGuard<'_, InboxState<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The admission queue: per-client bounded FIFOs drained round-robin.
/// Cloning shares the same inbox.
pub struct Inbox<T> {
    shared: Arc<InboxShared<T>>,
}

impl<T> Clone for Inbox<T> {
    fn clone(&self) -> Self {
        Inbox {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Inbox<T> {
    /// An inbox whose per-client queues hold at most `per_client_cap`
    /// items (clamped to ≥ 1).
    pub fn new(per_client_cap: usize) -> Self {
        Inbox {
            shared: Arc::new(InboxShared {
                state: Mutex::new(InboxState {
                    slots: Vec::new(),
                    cursor: 0,
                    closed: false,
                }),
                ready: Condvar::new(),
                cap: per_client_cap.max(1),
            }),
        }
    }

    /// Registers a client, returning its slot id (freed ids are
    /// reused).
    pub fn register(&self) -> usize {
        let mut state = self.shared.lock();
        if let Some(free) = state.slots.iter().position(Option::is_none) {
            state.slots[free] = Some(VecDeque::new());
            free
        } else {
            state.slots.push(Some(VecDeque::new()));
            state.slots.len() - 1
        }
    }

    /// Deregisters a client, dropping anything still queued for it.
    pub fn deregister(&self, client: usize) {
        let mut state = self.shared.lock();
        if let Some(slot) = state.slots.get_mut(client) {
            *slot = None;
        }
    }

    /// Enqueues `v` on `client`'s queue without blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] when the client's queue is at capacity (the
    /// caller surfaces a typed backpressure error and keeps the
    /// connection alive); [`PushError::Closed`] when the inbox is
    /// closed or the client is not registered.
    pub fn try_push(&self, client: usize, v: T) -> Result<(), PushError> {
        let mut state = self.shared.lock();
        if state.closed {
            return Err(PushError::Closed);
        }
        let queue = match state.slots.get_mut(client) {
            Some(Some(q)) => q,
            _ => return Err(PushError::Closed),
        };
        if queue.len() >= self.shared.cap {
            return Err(PushError::Full);
        }
        queue.push_back(v);
        self.shared.ready.notify_one();
        Ok(())
    }

    /// Dequeues up to `max` items fairly: repeated round-robin passes
    /// over the client queues, taking at most one item per client per
    /// pass, starting where the previous drain left off. Blocks while
    /// the inbox is empty; returns an empty vector only once the inbox
    /// is closed **and** fully drained (the executor's exit signal).
    pub fn drain(&self, max: usize) -> Vec<T> {
        let max = max.max(1);
        let mut state = self.shared.lock();
        loop {
            let mut out = Vec::new();
            let n = state.slots.len();
            if n > 0 {
                // Keep sweeping until a full round-robin pass finds
                // nothing or `max` is reached.
                let mut progress = true;
                while progress && out.len() < max {
                    progress = false;
                    let start = state.cursor;
                    for step in 0..n {
                        if out.len() >= max {
                            break;
                        }
                        let idx = (start + step) % n;
                        if let Some(Some(q)) = state.slots.get_mut(idx) {
                            if let Some(v) = q.pop_front() {
                                out.push(v);
                                progress = true;
                                // The next drain resumes after the last
                                // slot served, so no client gets two
                                // turns before everyone else gets one.
                                state.cursor = (idx + 1) % n;
                            }
                        }
                    }
                }
            }
            if !out.is_empty() {
                return out;
            }
            if state.closed {
                return Vec::new();
            }
            state = self
                .shared
                .ready
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the inbox: pushes fail fast, [`Inbox::drain`] delivers
    /// the backlog and then returns empty.
    pub fn close(&self) {
        let mut state = self.shared.lock();
        state.closed = true;
        self.shared.ready.notify_all();
    }

    /// Total items queued across all clients.
    pub fn pending(&self) -> usize {
        let state = self.shared.lock();
        state
            .slots
            .iter()
            .flatten()
            .map(VecDeque::len)
            .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqec_check::thread;

    #[test]
    fn bounded_fifo_and_backpressure() {
        let chan = Bounded::new(2);
        chan.try_send(1).unwrap();
        chan.try_send(2).unwrap();
        assert_eq!(chan.try_send(3), Err((3, PushError::Full)));
        assert_eq!(chan.recv(), Some(1));
        chan.try_send(3).unwrap();
        assert_eq!(chan.recv(), Some(2));
        assert_eq!(chan.recv(), Some(3));
        chan.close();
        assert_eq!(chan.try_send(4), Err((4, PushError::Closed)));
        assert_eq!(chan.recv(), None);
    }

    #[test]
    fn bounded_close_delivers_backlog() {
        let chan = Bounded::new(8);
        chan.try_send("a").unwrap();
        chan.try_send("b").unwrap();
        chan.close();
        assert_eq!(chan.recv(), Some("a"));
        assert_eq!(chan.recv(), Some("b"));
        assert_eq!(chan.recv(), None);
    }

    #[test]
    fn bounded_blocking_send_resumes_when_space_frees() {
        let chan = Bounded::new(1);
        chan.try_send(0).unwrap();
        let tx = chan.clone();
        let sender = thread::spawn(move || tx.send(1));
        // The sender blocks until this recv frees the slot.
        assert_eq!(chan.recv(), Some(0));
        sender.join().unwrap().unwrap();
        assert_eq!(chan.recv(), Some(1));
    }

    #[test]
    fn inbox_round_robin_is_fair() {
        let inbox: Inbox<(usize, u32)> = Inbox::new(8);
        let a = inbox.register();
        let b = inbox.register();
        for i in 0..3 {
            inbox.try_push(a, (a, i)).unwrap();
        }
        inbox.try_push(b, (b, 0)).unwrap();
        // Client a queued first, but b still gets its item second.
        let order: Vec<usize> = inbox.drain(16).into_iter().map(|(c, _)| c).collect();
        assert_eq!(order, vec![a, b, a, a]);
    }

    #[test]
    fn inbox_full_and_deregister() {
        let inbox = Inbox::new(1);
        let c = inbox.register();
        inbox.try_push(c, 1).unwrap();
        assert_eq!(inbox.try_push(c, 2), Err(PushError::Full));
        inbox.deregister(c);
        assert_eq!(inbox.try_push(c, 3), Err(PushError::Closed));
        // The dropped client's backlog is gone; close unblocks drain.
        inbox.close();
        assert!(inbox.drain(4).is_empty());
    }

    #[test]
    fn inbox_slot_reuse_keeps_live_clients_stable() {
        let inbox = Inbox::new(4);
        let a = inbox.register();
        let b = inbox.register();
        inbox.deregister(a);
        let c = inbox.register();
        assert_eq!(c, a, "freed slot is reused");
        inbox.try_push(b, 1).unwrap();
        inbox.try_push(c, 2).unwrap();
        let mut got = inbox.drain(4);
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }
}
