//! # dqec_serve — decode-as-a-service
//!
//! The serving layer over the batch pipeline: a resident TCP server
//! that amortizes experiment compilation across millions of decode
//! requests, the workload of the paper's codesign loop (the same
//! (patch, decoder, noise) configuration probed again and again with
//! fresh seeds and shot budgets).
//!
//! Layers, bottom up:
//!
//! * [`chan`] — bounded queues on the `dqec_check` facade: a plain
//!   MPMC channel and the fair per-client admission [`chan::Inbox`],
//!   both model-checked under `RUSTFLAGS="--cfg dqec_check"`;
//! * [`protocol`] — the JSON-lines wire protocol (typed requests,
//!   responses, and error kinds) over the workspace's own JSON model;
//! * [`cache`] — the LRU [`cache::ExperimentCache`] of
//!   [`CompiledExperiment`](dqec_chiplet::runner::CompiledExperiment)s
//!   keyed by (patch, decoder, noise) fingerprint;
//! * [`server`] — the accept/reader/executor/writer thread structure
//!   with coalesced batching and end-to-end backpressure.
//!
//! Serving is **conformant by construction**: a served request is
//! sampled through the same batch-seeded
//! `sample_batches_with_seed` path a one-shot
//! [`Runner`](dqec_chiplet::runner::Runner) uses, so responses are
//! bit-identical to the equivalent CLI run — the CI smoke job diffs
//! the two. See the README "Serving" section for the protocol spec and
//! an example session.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod chan;
pub mod protocol;
pub mod server;

pub use cache::ExperimentCache;
pub use protocol::{DecodeRequest, ErrorKind, MetricsResponse, Request, Response, StageSummary};
pub use server::{metrics_snapshot, start, ServerConfig, ServerHandle};
