//! The JSON-lines wire protocol: one request object per line in, one
//! response object per line out, over the workspace's own JSON model
//! ([`dqec_sweep::json`] — the vendored `serde` shim is derive-only).
//!
//! # Requests
//!
//! ```json
//! {"op":"decode","id":1,"d":5,"p":0.003,"shots":4000,"seed":7,
//!  "decoder":"mwpm","rounds":5,
//!  "defects":{"data":[[3,3]],"synd":[[4,4]],"links":[[3,3,4,4]]}}
//! {"op":"stats","id":2}
//! {"op":"metrics","id":4}
//! {"op":"ping","id":3}
//! ```
//!
//! `rounds` and `defects` are optional (defaults: the patch's natural
//! round count; no defects). Defect coordinates use the doubled
//! coordinate system of [`dqec_core::Coord`]; `links` entries are
//! `[data_x, data_y, face_x, face_y]`.
//!
//! # Responses
//!
//! ```json
//! {"type":"ler","id":1,"d":5,"p":0.003,"rounds":5,"decoder":"mwpm",
//!  "seed":7,"shots":4000,"failures":31,"ler":0.00775,
//!  "cache":"hit","batched":2}
//! {"type":"error","id":1,"error":"backpressure","detail":"..."}
//! {"type":"stats","id":2,"served":9,...}
//! {"type":"metrics","id":4,"stages":[{"name":"serve.stage.decode",
//!  "count":9,"p50_us":812.0,"p99_us":1427.0,"p999_us":1427.0},...],
//!  "counters":{...},"gauges":{...},"prometheus":"..."}
//! {"type":"pong","id":3}
//! ```
//!
//! A malformed line produces one `error` response and leaves the
//! connection open. Every response type has a **normalized** rendering
//! ([`Response::normalized_line`]) restricted to fields that are a pure
//! function of the request — `cache`, `batched`, and live counters are
//! diagnostics that depend on scheduling — which is what the
//! conformance gate diffs between a served session and a one-shot CLI
//! run.

use dqec_chiplet::runner::DecoderChoice;
use dqec_core::{Coord, DefectSet};
use dqec_sweep::json::{self, Json};

/// Largest accepted patch distance (compile cost grows steeply).
pub const MAX_DISTANCE: u32 = 21;
/// Largest accepted per-request shot count.
pub const MAX_SHOTS: usize = 10_000_000;
/// Largest accepted shard count in a `shard` dispatch.
pub const MAX_SHARDS: u32 = 4096;

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// A decode job.
    Decode(DecodeRequest),
    /// Server counters.
    Stats {
        /// Client-chosen correlation id, echoed in the response.
        id: u64,
    },
    /// Observability snapshot: per-stage latency quantiles plus the
    /// full metrics registry (JSON and Prometheus text).
    Metrics {
        /// Client-chosen correlation id, echoed in the response.
        id: u64,
    },
    /// Liveness probe.
    Ping {
        /// Client-chosen correlation id, echoed in the response.
        id: u64,
    },
    /// Dispatch of one sweep shard to a `dqec_dist` agent. The decode
    /// server answers this op with a `bad-request` error naming the
    /// agent — the frame lives here so coordinator and agent share the
    /// decode service's wire format (and its conformance tooling).
    Shard(ShardRequest),
}

/// A shard-dispatch job: run shard `index/count` of the named figure
/// binary and return its sweep state files inline (agent and
/// coordinator share no filesystem).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardRequest {
    /// Client-chosen correlation id, echoed in every response frame.
    pub id: u64,
    /// Figure binary name (e.g. `fig06_ler_curves`), resolved by the
    /// agent next to its own executable — never a path.
    pub bin: String,
    /// Shard index, in `0..count`.
    pub index: u32,
    /// Shard count of the partition.
    pub count: u32,
    /// Extra arguments passed through to the binary (`--shots`,
    /// `--seed`, ...). The agent owns `--shard`/`--checkpoint`/
    /// `--resume`/`--out`, so those are rejected here.
    pub args: Vec<String>,
}

impl ShardRequest {
    /// Checks ranges and argument hygiene before any process spawns.
    ///
    /// # Errors
    ///
    /// A human-readable reason when a field is out of range.
    pub fn validate(&self) -> Result<(), String> {
        if self.bin.is_empty()
            || !self
                .bin
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_')
        {
            return Err(format!(
                "bin must be a bare binary name ([A-Za-z0-9_]+), got {:?}",
                self.bin
            ));
        }
        if self.count == 0 || self.count > MAX_SHARDS {
            return Err(format!(
                "shard count must be in 1..={MAX_SHARDS}, got {}",
                self.count
            ));
        }
        if self.index >= self.count {
            return Err(format!(
                "shard index {} out of range for {} shards",
                self.index, self.count
            ));
        }
        for owned in ["--shard", "--checkpoint", "--resume", "--out"] {
            if self.args.iter().any(|a| a == owned) {
                return Err(format!("{owned} is agent-owned and cannot appear in args"));
            }
        }
        Ok(())
    }
}

/// A decode job: estimate the logical error rate of a (possibly
/// defective) distance-`d` memory patch at physical error rate `p`.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeRequest {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// Code distance of the fabricated patch.
    pub d: u32,
    /// Physical error rate.
    pub p: f64,
    /// Syndrome-round override (default: the patch's natural count).
    pub rounds: Option<u32>,
    /// Monte-Carlo shots.
    pub shots: usize,
    /// Base RNG seed; tallies are a pure function of the request.
    pub seed: u64,
    /// Decoder backend.
    pub decoder: DecoderChoice,
    /// Fabrication defects to adapt around.
    pub defects: DefectSet,
}

impl DecodeRequest {
    /// Checks ranges before any compilation happens.
    ///
    /// # Errors
    ///
    /// A human-readable reason when a field is out of range.
    pub fn validate(&self) -> Result<(), String> {
        if self.d < 2 || self.d > MAX_DISTANCE {
            return Err(format!("d must be in 2..={MAX_DISTANCE}, got {}", self.d));
        }
        if !(self.p > 0.0 && self.p < 1.0) {
            return Err(format!("p must be in (0, 1), got {}", self.p));
        }
        if self.shots == 0 || self.shots > MAX_SHOTS {
            return Err(format!(
                "shots must be in 1..={MAX_SHOTS}, got {}",
                self.shots
            ));
        }
        if self.rounds == Some(0) {
            return Err("rounds must be >= 1".to_string());
        }
        Ok(())
    }
}

/// Typed error categories, stable on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The line did not parse, or a field failed validation/compile.
    BadRequest,
    /// The client's admission queue is full; retry later.
    Backpressure,
    /// The server's connection limit is reached.
    TooManyClients,
    /// The server is shutting down.
    Unavailable,
    /// An unexpected server-side failure.
    Internal,
}

impl ErrorKind {
    /// The wire name of this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad-request",
            ErrorKind::Backpressure => "backpressure",
            ErrorKind::TooManyClients => "too-many-clients",
            ErrorKind::Unavailable => "unavailable",
            ErrorKind::Internal => "internal",
        }
    }

    /// Parses a wire name.
    ///
    /// # Errors
    ///
    /// A message naming the unknown kind.
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "bad-request" => Ok(ErrorKind::BadRequest),
            "backpressure" => Ok(ErrorKind::Backpressure),
            "too-many-clients" => Ok(ErrorKind::TooManyClients),
            "unavailable" => Ok(ErrorKind::Unavailable),
            "internal" => Ok(ErrorKind::Internal),
            other => Err(format!("unknown error kind {other:?}")),
        }
    }
}

/// A typed error response.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorResponse {
    /// The offending request's id, when one could be extracted.
    pub id: Option<u64>,
    /// Error category.
    pub kind: ErrorKind,
    /// Human-readable detail (diagnostic; not normalized).
    pub detail: String,
}

/// A decode result.
#[derive(Debug, Clone, PartialEq)]
pub struct LerResponse {
    /// Echoed request id.
    pub id: u64,
    /// Echoed code distance.
    pub d: u32,
    /// Echoed physical error rate.
    pub p: f64,
    /// Effective syndrome rounds actually run.
    pub rounds: u32,
    /// Echoed decoder backend.
    pub decoder: DecoderChoice,
    /// Echoed seed.
    pub seed: u64,
    /// Shots decoded.
    pub shots: usize,
    /// Logical failures observed.
    pub failures: u64,
    /// Whether the compiled experiment came from the cache
    /// (diagnostic; not normalized).
    pub cache_hit: bool,
    /// How many requests of the drained batch shared this compiled
    /// experiment (diagnostic; not normalized).
    pub batched: usize,
}

impl LerResponse {
    /// The logical error rate estimate `failures / shots`.
    pub fn ler(&self) -> f64 {
        if self.shots == 0 {
            0.0
        } else {
            self.failures as f64 / self.shots as f64
        }
    }
}

/// Server counters at a point in time (all diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsResponse {
    /// Echoed request id.
    pub id: u64,
    /// Decode requests answered.
    pub served: u64,
    /// Requests rejected (backpressure or bad).
    pub rejected: u64,
    /// Compiled-experiment cache hits.
    pub cache_hits: u64,
    /// Compiled-experiment cache misses (compilations).
    pub cache_misses: u64,
    /// Compiled-experiment cache evictions.
    pub cache_evictions: u64,
    /// Entries resident in the compiled-experiment cache.
    pub cache_entries: u64,
    /// Syndrome-memoization hits summed over served decodes.
    pub syndrome_hits: u64,
    /// Syndrome-memoization misses summed over served decodes.
    pub syndrome_misses: u64,
    /// Resident-pool worker threads currently spawned.
    pub pool_workers: u64,
    /// Decode responses shared within a coalesced batch instead of
    /// being recomputed (identical key, seed, and shots).
    pub coalesce_hits: u64,
}

/// Latency quantiles of one pipeline stage, derived from the stage's
/// log-bucketed histogram (microseconds; exact-bucket upper bounds).
#[derive(Debug, Clone, PartialEq)]
pub struct StageSummary {
    /// Registry name of the stage histogram.
    pub name: String,
    /// Samples recorded.
    pub count: u64,
    /// 50th-percentile latency in microseconds.
    pub p50_us: f64,
    /// 99th-percentile latency in microseconds.
    pub p99_us: f64,
    /// 99.9th-percentile latency in microseconds.
    pub p999_us: f64,
}

/// The observability snapshot answered to a `metrics` request.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsResponse {
    /// Echoed request id.
    pub id: u64,
    /// Per-stage latency quantiles, name-sorted.
    pub stages: Vec<StageSummary>,
    /// Every registry counter, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// Every registry gauge, name-sorted.
    pub gauges: Vec<(String, i64)>,
    /// The same snapshot in Prometheus text exposition format.
    pub prometheus: String,
}

/// One sweep state file produced by a shard job, shipped inline.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStateFile {
    /// The state file's base name (e.g.
    /// `fig06_ler_curves.defective.shard0of2.sweep.json`).
    pub file: String,
    /// The file's JSON document, verbatim.
    pub doc: String,
}

/// Completion of a shard-dispatch job: every sweep state file the shard
/// wrote, shipped back verbatim for the coordinator's merge step.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardDoneResponse {
    /// Echoed request id.
    pub id: u64,
    /// The shard's state files. Deterministic: a pure function of the
    /// request, byte for byte, so the whole frame is normalized.
    pub states: Vec<ShardStateFile>,
}

/// One response line.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A decode result.
    Ler(LerResponse),
    /// A typed error.
    Error(ErrorResponse),
    /// Server counters.
    Stats(StatsResponse),
    /// Observability snapshot.
    Metrics(MetricsResponse),
    /// Liveness reply.
    Pong {
        /// Echoed request id.
        id: u64,
    },
    /// Heartbeat from an agent while a shard job runs: the coordinator
    /// uses frame arrival (not content) for straggler detection.
    ShardProgress {
        /// Echoed request id.
        id: u64,
    },
    /// Shard-job completion with the shard's state files.
    ShardDone(ShardDoneResponse),
}

fn num(v: u64) -> Json {
    Json::Num(v as f64)
}

fn coord_pair(c: Coord) -> Json {
    Json::Arr(vec![Json::Num(f64::from(c.x)), Json::Num(f64::from(c.y))])
}

fn defects_json(d: &DefectSet) -> Json {
    Json::Obj(vec![
        (
            "data".to_string(),
            Json::Arr(d.data.iter().copied().map(coord_pair).collect()),
        ),
        (
            "synd".to_string(),
            Json::Arr(d.synd.iter().copied().map(coord_pair).collect()),
        ),
        (
            "links".to_string(),
            Json::Arr(
                d.links
                    .iter()
                    .map(|&(a, b)| {
                        Json::Arr(vec![
                            Json::Num(f64::from(a.x)),
                            Json::Num(f64::from(a.y)),
                            Json::Num(f64::from(b.x)),
                            Json::Num(f64::from(b.y)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

impl Request {
    /// This request as a JSON value.
    pub fn to_json(&self) -> Json {
        match self {
            Request::Ping { id } => Json::Obj(vec![
                ("op".to_string(), Json::Str("ping".to_string())),
                ("id".to_string(), num(*id)),
            ]),
            Request::Stats { id } => Json::Obj(vec![
                ("op".to_string(), Json::Str("stats".to_string())),
                ("id".to_string(), num(*id)),
            ]),
            Request::Metrics { id } => Json::Obj(vec![
                ("op".to_string(), Json::Str("metrics".to_string())),
                ("id".to_string(), num(*id)),
            ]),
            Request::Shard(r) => Json::Obj(vec![
                ("op".to_string(), Json::Str("shard".to_string())),
                ("id".to_string(), num(r.id)),
                ("bin".to_string(), Json::Str(r.bin.clone())),
                (
                    "shard".to_string(),
                    Json::Str(format!("{}/{}", r.index, r.count)),
                ),
                (
                    "args".to_string(),
                    Json::Arr(r.args.iter().cloned().map(Json::Str).collect()),
                ),
            ]),
            Request::Decode(r) => {
                let mut fields = vec![
                    ("op".to_string(), Json::Str("decode".to_string())),
                    ("id".to_string(), num(r.id)),
                    ("d".to_string(), num(u64::from(r.d))),
                    ("p".to_string(), Json::Num(r.p)),
                    ("shots".to_string(), num(r.shots as u64)),
                    ("seed".to_string(), num(r.seed)),
                    (
                        "decoder".to_string(),
                        Json::Str(r.decoder.name().to_string()),
                    ),
                ];
                if let Some(rounds) = r.rounds {
                    fields.push(("rounds".to_string(), num(u64::from(rounds))));
                }
                if !r.defects.is_empty() {
                    fields.push(("defects".to_string(), defects_json(&r.defects)));
                }
                Json::Obj(fields)
            }
        }
    }

    /// This request as one wire line (no trailing newline).
    pub fn render_line(&self) -> String {
        self.to_json().render()
    }
}

fn get_u64(obj: &Json, key: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer field {key:?}"))
}

fn get_coord(v: &Json, what: &str) -> Result<Coord, String> {
    let arr = v.as_arr().ok_or_else(|| format!("{what}: not an array"))?;
    if arr.len() != 2 {
        return Err(format!("{what}: need [x, y]"));
    }
    let x = arr[0]
        .as_f64()
        .ok_or_else(|| format!("{what}: non-numeric x"))?;
    let y = arr[1]
        .as_f64()
        .ok_or_else(|| format!("{what}: non-numeric y"))?;
    Ok(Coord::new(x as i32, y as i32))
}

fn parse_defects(v: &Json) -> Result<DefectSet, String> {
    let mut out = DefectSet::new();
    if let Some(items) = v.get("data").and_then(Json::as_arr) {
        for item in items {
            out.add_data(get_coord(item, "defects.data")?);
        }
    }
    if let Some(items) = v.get("synd").and_then(Json::as_arr) {
        for item in items {
            out.add_synd(get_coord(item, "defects.synd")?);
        }
    }
    if let Some(items) = v.get("links").and_then(Json::as_arr) {
        for item in items {
            let arr = item.as_arr().ok_or("defects.links: not an array")?;
            if arr.len() != 4 {
                return Err("defects.links: need [dx, dy, fx, fy]".to_string());
            }
            let mut xs = [0i32; 4];
            for (slot, v) in xs.iter_mut().zip(arr) {
                *slot = v.as_f64().ok_or("defects.links: non-numeric entry")? as i32;
            }
            out.add_link(Coord::new(xs[0], xs[1]), Coord::new(xs[2], xs[3]));
        }
    }
    Ok(out)
}

/// Parses one request line.
///
/// # Errors
///
/// `(id, reason)` on malformed input, carrying the request id when one
/// was recoverable so the error response can still be correlated.
pub fn parse_request(line: &str) -> Result<Request, (Option<u64>, String)> {
    let obj = json::parse(line).map_err(|e| (None, format!("malformed JSON: {e}")))?;
    let id = obj.get("id").and_then(Json::as_u64);
    let fail = |msg: String| (id, msg);
    let op = obj
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| fail("missing string field \"op\"".to_string()))?;
    match op {
        "ping" => Ok(Request::Ping {
            id: get_u64(&obj, "id").map_err(fail)?,
        }),
        "stats" => Ok(Request::Stats {
            id: get_u64(&obj, "id").map_err(fail)?,
        }),
        "metrics" => Ok(Request::Metrics {
            id: get_u64(&obj, "id").map_err(fail)?,
        }),
        "decode" => {
            let decoder = match obj.get("decoder").and_then(Json::as_str) {
                None => DecoderChoice::default(),
                Some(name) => DecoderChoice::parse(name).map_err(fail)?,
            };
            let req = DecodeRequest {
                id: get_u64(&obj, "id").map_err(fail)?,
                d: u32::try_from(get_u64(&obj, "d").map_err(fail)?)
                    .map_err(|_| fail("d out of range".to_string()))?,
                p: obj
                    .get("p")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| fail("missing or non-numeric field \"p\"".to_string()))?,
                rounds: match obj.get("rounds") {
                    None | Some(Json::Null) => None,
                    Some(v) => Some(
                        v.as_u64()
                            .and_then(|r| u32::try_from(r).ok())
                            .ok_or_else(|| fail("non-integer field \"rounds\"".to_string()))?,
                    ),
                },
                shots: get_u64(&obj, "shots").map_err(fail)? as usize,
                seed: get_u64(&obj, "seed").map_err(fail)?,
                decoder,
                defects: match obj.get("defects") {
                    None | Some(Json::Null) => DefectSet::new(),
                    Some(v) => parse_defects(v).map_err(fail)?,
                },
            };
            req.validate().map_err(fail)?;
            Ok(Request::Decode(req))
        }
        "shard" => {
            let spec = obj
                .get("shard")
                .and_then(Json::as_str)
                .ok_or_else(|| fail("missing string field \"shard\" (\"I/N\")".to_string()))?;
            let (index, count) = spec
                .split_once('/')
                .and_then(|(i, n)| Some((i.parse().ok()?, n.parse().ok()?)))
                .ok_or_else(|| fail(format!("shard spec {spec:?} is not of the form I/N")))?;
            let args = match obj.get("args") {
                None | Some(Json::Null) => Vec::new(),
                Some(v) => v
                    .as_arr()
                    .ok_or_else(|| fail("\"args\" must be an array of strings".to_string()))?
                    .iter()
                    .map(|a| {
                        a.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| fail("\"args\" must be an array of strings".to_string()))
                    })
                    .collect::<Result<_, _>>()?,
            };
            let req = ShardRequest {
                id: get_u64(&obj, "id").map_err(fail)?,
                bin: obj
                    .get("bin")
                    .and_then(Json::as_str)
                    .ok_or_else(|| fail("missing string field \"bin\"".to_string()))?
                    .to_string(),
                index,
                count,
                args,
            };
            req.validate().map_err(fail)?;
            Ok(Request::Shard(req))
        }
        other => Err(fail(format!("unknown op {other:?}"))),
    }
}

impl Response {
    /// This response as a JSON value (all fields, diagnostics
    /// included).
    pub fn to_json(&self) -> Json {
        match self {
            Response::Pong { id } => Json::Obj(vec![
                ("type".to_string(), Json::Str("pong".to_string())),
                ("id".to_string(), num(*id)),
            ]),
            Response::ShardProgress { id } => Json::Obj(vec![
                ("type".to_string(), Json::Str("shard-progress".to_string())),
                ("id".to_string(), num(*id)),
            ]),
            Response::ShardDone(r) => Json::Obj(vec![
                ("type".to_string(), Json::Str("shard-done".to_string())),
                ("id".to_string(), num(r.id)),
                (
                    "states".to_string(),
                    Json::Arr(
                        r.states
                            .iter()
                            .map(|s| {
                                Json::Obj(vec![
                                    ("file".to_string(), Json::Str(s.file.clone())),
                                    ("doc".to_string(), Json::Str(s.doc.clone())),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            Response::Error(e) => {
                let mut fields = vec![("type".to_string(), Json::Str("error".to_string()))];
                if let Some(id) = e.id {
                    fields.push(("id".to_string(), num(id)));
                }
                fields.push(("error".to_string(), Json::Str(e.kind.as_str().to_string())));
                fields.push(("detail".to_string(), Json::Str(e.detail.clone())));
                Json::Obj(fields)
            }
            Response::Ler(r) => Json::Obj(vec![
                ("type".to_string(), Json::Str("ler".to_string())),
                ("id".to_string(), num(r.id)),
                ("d".to_string(), num(u64::from(r.d))),
                ("p".to_string(), Json::Num(r.p)),
                ("rounds".to_string(), num(u64::from(r.rounds))),
                (
                    "decoder".to_string(),
                    Json::Str(r.decoder.name().to_string()),
                ),
                ("seed".to_string(), num(r.seed)),
                ("shots".to_string(), num(r.shots as u64)),
                ("failures".to_string(), num(r.failures)),
                ("ler".to_string(), Json::Num(r.ler())),
                (
                    "cache".to_string(),
                    Json::Str(if r.cache_hit { "hit" } else { "miss" }.to_string()),
                ),
                ("batched".to_string(), num(r.batched as u64)),
            ]),
            Response::Stats(s) => Json::Obj(vec![
                ("type".to_string(), Json::Str("stats".to_string())),
                ("id".to_string(), num(s.id)),
                ("served".to_string(), num(s.served)),
                ("rejected".to_string(), num(s.rejected)),
                ("cache_hits".to_string(), num(s.cache_hits)),
                ("cache_misses".to_string(), num(s.cache_misses)),
                ("cache_evictions".to_string(), num(s.cache_evictions)),
                ("cache_entries".to_string(), num(s.cache_entries)),
                ("syndrome_hits".to_string(), num(s.syndrome_hits)),
                ("syndrome_misses".to_string(), num(s.syndrome_misses)),
                ("pool_workers".to_string(), num(s.pool_workers)),
                ("coalesce_hits".to_string(), num(s.coalesce_hits)),
            ]),
            Response::Metrics(m) => Json::Obj(vec![
                ("type".to_string(), Json::Str("metrics".to_string())),
                ("id".to_string(), num(m.id)),
                (
                    "stages".to_string(),
                    Json::Arr(
                        m.stages
                            .iter()
                            .map(|s| {
                                Json::Obj(vec![
                                    ("name".to_string(), Json::Str(s.name.clone())),
                                    ("count".to_string(), num(s.count)),
                                    ("p50_us".to_string(), Json::Num(s.p50_us)),
                                    ("p99_us".to_string(), Json::Num(s.p99_us)),
                                    ("p999_us".to_string(), Json::Num(s.p999_us)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "counters".to_string(),
                    Json::Obj(
                        m.counters
                            .iter()
                            .map(|(k, v)| (k.clone(), num(*v)))
                            .collect(),
                    ),
                ),
                (
                    "gauges".to_string(),
                    Json::Obj(
                        m.gauges
                            .iter()
                            .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                            .collect(),
                    ),
                ),
                ("prometheus".to_string(), Json::Str(m.prometheus.clone())),
            ]),
        }
    }

    /// This response as one wire line (no trailing newline).
    pub fn render_line(&self) -> String {
        self.to_json().render()
    }

    /// The deterministic rendering used by the conformance gate: only
    /// fields that are a pure function of the request survive —
    /// `cache`/`batched`, counter values, and error detail text are
    /// dropped.
    pub fn normalized_line(&self) -> String {
        match self {
            Response::Pong { .. }
            | Response::Stats(_)
            | Response::Metrics(_)
            | Response::ShardProgress { .. } => {
                let keep = ["type", "id"];
                let Json::Obj(fields) = self.to_json() else {
                    unreachable!("responses render as objects")
                };
                Json::Obj(
                    fields
                        .into_iter()
                        .filter(|(k, _)| keep.contains(&k.as_str()))
                        .collect(),
                )
                .render()
            }
            Response::Error(_) => {
                let keep = ["type", "id", "error"];
                let Json::Obj(fields) = self.to_json() else {
                    unreachable!("responses render as objects")
                };
                Json::Obj(
                    fields
                        .into_iter()
                        .filter(|(k, _)| keep.contains(&k.as_str()))
                        .collect(),
                )
                .render()
            }
            // Shard state files are bit-exact by construction, so the
            // whole frame is a pure function of the request.
            Response::ShardDone(_) => self.to_json().render(),
            Response::Ler(_) => {
                let drop = ["cache", "batched"];
                let Json::Obj(fields) = self.to_json() else {
                    unreachable!("responses render as objects")
                };
                Json::Obj(
                    fields
                        .into_iter()
                        .filter(|(k, _)| !drop.contains(&k.as_str()))
                        .collect(),
                )
                .render()
            }
        }
    }

    /// The id this response correlates to, when it carries one.
    pub fn id(&self) -> Option<u64> {
        match self {
            Response::Ler(r) => Some(r.id),
            Response::Error(e) => e.id,
            Response::Stats(s) => Some(s.id),
            Response::Metrics(m) => Some(m.id),
            Response::Pong { id } => Some(*id),
            Response::ShardProgress { id } => Some(*id),
            Response::ShardDone(r) => Some(r.id),
        }
    }
}

/// Parses one response line (the client side of the protocol).
///
/// # Errors
///
/// A human-readable reason on malformed input.
pub fn parse_response(line: &str) -> Result<Response, String> {
    let obj = json::parse(line).map_err(|e| format!("malformed JSON: {e}"))?;
    let ty = obj
        .get("type")
        .and_then(Json::as_str)
        .ok_or("missing string field \"type\"")?;
    match ty {
        "pong" => Ok(Response::Pong {
            id: get_u64(&obj, "id")?,
        }),
        "shard-progress" => Ok(Response::ShardProgress {
            id: get_u64(&obj, "id")?,
        }),
        "shard-done" => Ok(Response::ShardDone(ShardDoneResponse {
            id: get_u64(&obj, "id")?,
            states: obj
                .get("states")
                .and_then(Json::as_arr)
                .ok_or("missing array field \"states\"")?
                .iter()
                .map(|s| {
                    let field = |key: &str| {
                        s.get(key)
                            .and_then(Json::as_str)
                            .map(str::to_string)
                            .ok_or_else(|| format!("state entry missing string {key:?}"))
                    };
                    Ok(ShardStateFile {
                        file: field("file")?,
                        doc: field("doc")?,
                    })
                })
                .collect::<Result<_, String>>()?,
        })),
        "error" => Ok(Response::Error(ErrorResponse {
            id: obj.get("id").and_then(Json::as_u64),
            kind: ErrorKind::parse(
                obj.get("error")
                    .and_then(Json::as_str)
                    .ok_or("missing string field \"error\"")?,
            )?,
            detail: obj
                .get("detail")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
        })),
        "ler" => Ok(Response::Ler(LerResponse {
            id: get_u64(&obj, "id")?,
            d: u32::try_from(get_u64(&obj, "d")?).map_err(|_| "d out of range".to_string())?,
            p: obj
                .get("p")
                .and_then(Json::as_f64)
                .ok_or("missing or non-numeric field \"p\"")?,
            rounds: u32::try_from(get_u64(&obj, "rounds")?)
                .map_err(|_| "rounds out of range".to_string())?,
            decoder: DecoderChoice::parse(
                obj.get("decoder")
                    .and_then(Json::as_str)
                    .ok_or("missing string field \"decoder\"")?,
            )?,
            seed: get_u64(&obj, "seed")?,
            shots: get_u64(&obj, "shots")? as usize,
            failures: get_u64(&obj, "failures")?,
            cache_hit: obj.get("cache").and_then(Json::as_str) == Some("hit"),
            batched: obj.get("batched").and_then(Json::as_u64).unwrap_or(1) as usize,
        })),
        "stats" => Ok(Response::Stats(StatsResponse {
            id: get_u64(&obj, "id")?,
            served: get_u64(&obj, "served")?,
            rejected: get_u64(&obj, "rejected")?,
            cache_hits: get_u64(&obj, "cache_hits")?,
            cache_misses: get_u64(&obj, "cache_misses")?,
            cache_evictions: get_u64(&obj, "cache_evictions")?,
            cache_entries: get_u64(&obj, "cache_entries")?,
            syndrome_hits: get_u64(&obj, "syndrome_hits")?,
            syndrome_misses: get_u64(&obj, "syndrome_misses")?,
            pool_workers: get_u64(&obj, "pool_workers")?,
            // Absent in pre-observability responses: default 0.
            coalesce_hits: obj.get("coalesce_hits").and_then(Json::as_u64).unwrap_or(0),
        })),
        "metrics" => {
            let stages = obj
                .get("stages")
                .and_then(Json::as_arr)
                .ok_or("missing array field \"stages\"")?
                .iter()
                .map(|s| {
                    let f = |key: &str| {
                        s.get(key)
                            .and_then(Json::as_f64)
                            .ok_or_else(|| format!("stage missing numeric {key:?}"))
                    };
                    Ok(StageSummary {
                        name: s
                            .get("name")
                            .and_then(Json::as_str)
                            .ok_or("stage missing string \"name\"")?
                            .to_string(),
                        count: get_u64(s, "count")?,
                        p50_us: f("p50_us")?,
                        p99_us: f("p99_us")?,
                        p999_us: f("p999_us")?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?;
            let kv = |key: &str| -> Result<Vec<(String, f64)>, String> {
                match obj.get(key) {
                    Some(Json::Obj(fields)) => fields
                        .iter()
                        .map(|(k, v)| {
                            v.as_f64()
                                .map(|v| (k.clone(), v))
                                .ok_or_else(|| format!("non-numeric entry in {key:?}"))
                        })
                        .collect(),
                    _ => Err(format!("missing object field {key:?}")),
                }
            };
            Ok(Response::Metrics(MetricsResponse {
                id: get_u64(&obj, "id")?,
                stages,
                counters: kv("counters")?
                    .into_iter()
                    .map(|(k, v)| (k, v as u64))
                    .collect(),
                gauges: kv("gauges")?
                    .into_iter()
                    .map(|(k, v)| (k, v as i64))
                    .collect(),
                prometheus: obj
                    .get("prometheus")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string(),
            }))
        }
        other => Err(format!("unknown response type {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_request_round_trips() {
        let mut defects = DefectSet::new();
        defects.add_data(Coord::new(3, 3));
        defects.add_synd(Coord::new(4, 4));
        defects.add_link(Coord::new(3, 3), Coord::new(4, 4));
        let req = Request::Decode(DecodeRequest {
            id: 17,
            d: 5,
            p: 3e-3,
            rounds: Some(7),
            shots: 4000,
            seed: 42,
            decoder: DecoderChoice::Uf,
            defects,
        });
        let parsed = parse_request(&req.render_line()).unwrap();
        assert_eq!(parsed, req);
    }

    #[test]
    fn decoder_field_defaults_to_mwpm() {
        let line = r#"{"op":"decode","id":1,"d":3,"p":0.003,"shots":100,"seed":0}"#;
        match parse_request(line).unwrap() {
            Request::Decode(r) => assert_eq!(r.decoder, DecoderChoice::Mwpm),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn malformed_lines_keep_the_recoverable_id() {
        // Parseable JSON with a bad field: id survives for correlation.
        let (id, msg) =
            parse_request(r#"{"op":"decode","id":9,"d":5,"shots":10,"seed":0}"#).unwrap_err();
        assert_eq!(id, Some(9));
        assert!(msg.contains('p'), "message names the field: {msg}");
        // Unparseable JSON: no id.
        let (id, _) = parse_request("{not json").unwrap_err();
        assert_eq!(id, None);
    }

    #[test]
    fn validation_rejects_out_of_range_fields() {
        for (line, needle) in [
            (
                r#"{"op":"decode","id":1,"d":99,"p":0.003,"shots":10,"seed":0}"#,
                "d must",
            ),
            (
                r#"{"op":"decode","id":1,"d":5,"p":1.5,"shots":10,"seed":0}"#,
                "p must",
            ),
            (
                r#"{"op":"decode","id":1,"d":5,"p":0.003,"shots":0,"seed":0}"#,
                "shots must",
            ),
            (
                r#"{"op":"decode","id":1,"d":5,"p":0.003,"shots":10,"seed":0,"rounds":0}"#,
                "rounds must",
            ),
        ] {
            let (_, msg) = parse_request(line).unwrap_err();
            assert!(msg.contains(needle), "{line} -> {msg}");
        }
    }

    #[test]
    fn responses_round_trip_and_normalize() {
        let resp = Response::Ler(LerResponse {
            id: 3,
            d: 5,
            p: 1e-3,
            rounds: 5,
            decoder: DecoderChoice::Mwpm,
            seed: 9,
            shots: 4000,
            failures: 12,
            cache_hit: true,
            batched: 4,
        });
        let parsed = parse_response(&resp.render_line()).unwrap();
        assert_eq!(parsed, resp);
        let norm = resp.normalized_line();
        assert!(
            !norm.contains("cache") && !norm.contains("batched"),
            "{norm}"
        );
        assert!(norm.contains("\"failures\":12"), "{norm}");

        let err = Response::Error(ErrorResponse {
            id: Some(4),
            kind: ErrorKind::Backpressure,
            detail: "queue full (cap 8)".to_string(),
        });
        let parsed = parse_response(&err.render_line()).unwrap();
        assert_eq!(parsed, err);
        assert!(!err.normalized_line().contains("detail"));
    }

    #[test]
    fn shard_frames_round_trip_and_validate() {
        let req = Request::Shard(ShardRequest {
            id: 7,
            bin: "fig06_ler_curves".to_string(),
            index: 1,
            count: 2,
            args: vec!["--shots".to_string(), "4000".to_string()],
        });
        assert_eq!(parse_request(&req.render_line()).unwrap(), req);

        // Hostile / malformed dispatches fail loudly.
        for (line, needle) in [
            (
                r#"{"op":"shard","id":1,"bin":"../evil","shard":"0/2"}"#,
                "bare binary name",
            ),
            (
                r#"{"op":"shard","id":1,"bin":"fig06_ler_curves","shard":"2/2"}"#,
                "out of range",
            ),
            (
                r#"{"op":"shard","id":1,"bin":"fig06_ler_curves","shard":"0/0"}"#,
                "count must",
            ),
            (
                r#"{"op":"shard","id":1,"bin":"fig06_ler_curves","shard":"half"}"#,
                "I/N",
            ),
            (
                r#"{"op":"shard","id":1,"bin":"f","shard":"0/2","args":["--checkpoint","x"]}"#,
                "agent-owned",
            ),
        ] {
            let (id, msg) = parse_request(line).unwrap_err();
            assert_eq!(id, Some(1), "{line}");
            assert!(msg.contains(needle), "{line} -> {msg}");
        }

        // The done frame carries state documents verbatim (embedded
        // JSON survives string escaping) and normalizes to itself.
        let done = Response::ShardDone(ShardDoneResponse {
            id: 7,
            states: vec![ShardStateFile {
                file: "fig06.shard1of2.sweep.json".to_string(),
                doc: "{\"version\":2,\"fingerprint\":\"0x00000000000000ab\"}".to_string(),
            }],
        });
        assert_eq!(parse_response(&done.render_line()).unwrap(), done);
        assert_eq!(done.normalized_line(), done.render_line());

        let beat = Response::ShardProgress { id: 7 };
        assert_eq!(parse_response(&beat.render_line()).unwrap(), beat);
        assert_eq!(
            beat.normalized_line(),
            "{\"type\":\"shard-progress\",\"id\":7}"
        );
    }

    #[test]
    fn metrics_round_trip_and_normalize() {
        let req = Request::Metrics { id: 12 };
        assert_eq!(parse_request(&req.render_line()).unwrap(), req);

        let resp = Response::Metrics(MetricsResponse {
            id: 12,
            stages: vec![StageSummary {
                name: "serve.stage.decode".to_string(),
                count: 9,
                p50_us: 812.0,
                p99_us: 1427.5,
                p999_us: 1427.5,
            }],
            counters: vec![("serve.decode.shots".to_string(), 4096)],
            gauges: vec![("serve.cache.entries".to_string(), -1)],
            prometheus: "# TYPE dqec_serve_decode_shots counter\n\
                         dqec_serve_decode_shots 4096\n"
                .to_string(),
        });
        let parsed = parse_response(&resp.render_line()).unwrap();
        assert_eq!(parsed, resp);
        // Normalized form keeps only type + id: the snapshot is pure
        // diagnostics.
        assert_eq!(resp.normalized_line(), "{\"type\":\"metrics\",\"id\":12}");
    }
}
