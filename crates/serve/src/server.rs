//! The resident decode server: a TCP accept loop, one reader and one
//! writer thread per connection, and a single executor thread that
//! drains the fair admission inbox in coalesced batches.
//!
//! ```text
//!            reader (per conn)         executor (one)
//! socket ──▶ parse JSON line ──▶ Inbox ──▶ group by cache key
//!        ◀── writer ◀── Bounded ◀──────── sample_batches_with_seed
//! ```
//!
//! Division of labour:
//!
//! * **reader** — parses each line; malformed input is answered with a
//!   typed `bad-request` error *on the same connection* (framing
//!   errors never tear the connection down), pings are answered
//!   inline, decode/stats work is admitted through
//!   [`Inbox::try_push`]; a full queue becomes a typed `backpressure`
//!   error.
//! * **executor** — drains up to `batch_max` requests round-robin
//!   across clients, counts how many of them share each compiled
//!   experiment (the coalescing diagnostic), then executes in arrival
//!   order against the [`ExperimentCache`]; the actual Monte-Carlo
//!   decode fans out on the resident worker pool via the `rayon` shim.
//! * **writer** — drains the connection's bounded response channel to
//!   the socket, decoupling slow clients from the executor up to the
//!   channel capacity (beyond which the executor blocks: end-to-end
//!   backpressure instead of unbounded buffering).
//!
//! All thread spawns and shared state go through the
//! `dqec_check::thread` / `::sync` facade per the workspace lint gate.

use crate::cache::ExperimentCache;
use crate::chan::{Bounded, Inbox, PushError};
use crate::protocol::{
    self, DecodeRequest, ErrorKind, ErrorResponse, LerResponse, MetricsResponse, Request, Response,
    StageSummary, StatsResponse,
};
use dqec_check::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use dqec_check::sync::Mutex;
use dqec_check::thread;
use dqec_obs::{trace, Clock};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, OnceLock, PoisonError};

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; port 0 picks a free port.
    pub addr: String,
    /// Compiled-experiment cache capacity (0 = compile per request).
    pub cache_capacity: usize,
    /// Per-client admission queue capacity.
    pub queue_capacity: usize,
    /// Maximum requests coalesced into one executor pass.
    pub batch_max: usize,
    /// Maximum concurrent client connections.
    pub max_clients: usize,
    /// Per-connection response channel capacity.
    pub response_capacity: usize,
    /// When set, span tracing is enabled for the server's lifetime and
    /// a Chrome trace-event JSON file (loadable in Perfetto) is written
    /// here on [`ServerHandle::stop`].
    pub trace_out: Option<std::path::PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7461".to_string(),
            cache_capacity: 64,
            queue_capacity: 64,
            batch_max: 32,
            max_clients: 64,
            response_capacity: 1024,
            trace_out: None,
        }
    }
}

/// Live server counters (all monotonic except `clients`).
#[derive(Debug)]
pub struct Metrics {
    /// Decode requests answered with a `ler` response.
    pub served: AtomicUsize,
    /// Requests answered with a typed error.
    pub rejected: AtomicUsize,
    /// Connections currently open.
    pub clients: AtomicUsize,
    /// Decode responses shared within a coalesced batch instead of
    /// recomputed.
    pub coalesce_hits: AtomicUsize,
}

// Manual: the facade's instrumented atomics have no `Default`.
impl Default for Metrics {
    fn default() -> Metrics {
        Metrics {
            served: AtomicUsize::new(0),
            rejected: AtomicUsize::new(0),
            clients: AtomicUsize::new(0),
            coalesce_hits: AtomicUsize::new(0),
        }
    }
}

/// Interned handles to the pipeline-stage latency histograms (ns).
struct Stages {
    queue_wait: &'static dqec_obs::Histogram,
    serialize: &'static dqec_obs::Histogram,
    write: &'static dqec_obs::Histogram,
}

fn stages() -> &'static Stages {
    static STAGES: OnceLock<Stages> = OnceLock::new();
    STAGES.get_or_init(|| {
        let reg = dqec_obs::registry();
        Stages {
            queue_wait: reg.histogram("serve.stage.queue_wait"),
            serialize: reg.histogram("serve.stage.serialize"),
            write: reg.histogram("serve.stage.write"),
        }
    })
}

struct WorkItem {
    reply: Bounded<String>,
    kind: WorkKind,
    /// Obs-clock timestamp at admission, for the queue-wait histogram.
    admitted_ns: u64,
}

enum WorkKind {
    Decode(DecodeRequest),
    Stats { id: u64 },
    Metrics { id: u64 },
}

struct Shared {
    inbox: Inbox<WorkItem>,
    metrics: Metrics,
    stop: AtomicBool,
    /// Read-half clones of live connections, so stop() can unblock
    /// reader threads parked in a blocking read.
    conns: Mutex<Vec<TcpStream>>,
    config: ServerConfig,
}

impl Shared {
    fn send_response(reply: &Bounded<String>, resp: &Response) {
        let t0 = Clock::now_ns();
        let line = resp.render_line();
        stages()
            .serialize
            .record(Clock::now_ns().saturating_sub(t0));
        // A closed reply channel means the connection is gone; the
        // response is dropped, matching what TCP would do anyway.
        let _ = reply.send(line);
    }
}

/// A running decode server. Dropping the handle without calling
/// [`ServerHandle::stop`] leaves the server running detached.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<thread::JoinHandle<()>>,
    executor: Option<thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound listen address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live counters.
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// Stops the server: closes the listener, shuts every connection
    /// down, drains the admitted backlog, and joins the service
    /// threads.
    pub fn stop(mut self) {
        let trace_out = self.shared.config.trace_out.clone();
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Unblock reader threads parked on their sockets.
        let conns = {
            let mut guard = self
                .shared
                .conns
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            std::mem::take(&mut *guard)
        };
        for conn in &conns {
            let _ = conn.shutdown(Shutdown::Both);
        }
        // The executor drains what was admitted, then exits.
        self.shared.inbox.close();
        if let Some(h) = self.executor.take() {
            let _ = h.join();
        }
        if let Some(path) = trace_out {
            trace::set_enabled(false);
            if let Err(e) = trace::export_to_file(&path) {
                eprintln!("dqec_serve: cannot write trace {}: {e}", path.display());
            }
        }
    }

    /// Blocks until the server exits on its own (the foreground mode
    /// of the `dqec_serve` bin; the process is stopped with a signal).
    pub fn wait(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.executor.take() {
            let _ = h.join();
        }
    }
}

/// Binds and starts a decode server.
///
/// # Errors
///
/// I/O errors from binding the listen address.
pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    if config.trace_out.is_some() {
        trace::set_enabled(true);
    }
    warm_pool();
    let shared = Arc::new(Shared {
        inbox: Inbox::new(config.queue_capacity),
        metrics: Metrics::default(),
        stop: AtomicBool::new(false),
        conns: Mutex::new(Vec::new()),
        config: config.clone(),
    });

    let exec_shared = Arc::clone(&shared);
    let executor = thread::spawn(move || executor_loop(&exec_shared));

    let accept_shared = Arc::clone(&shared);
    let accept = thread::spawn(move || accept_loop(&listener, &accept_shared));

    Ok(ServerHandle {
        addr,
        shared,
        accept: Some(accept),
        executor: Some(executor),
    })
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        // Request and response lines are small; leaving Nagle on would
        // stall every round trip on the peer's delayed ACK.
        let _ = stream.set_nodelay(true);
        let open = shared.metrics.clients.load(Ordering::SeqCst);
        if open >= shared.config.max_clients {
            let resp = Response::Error(ErrorResponse {
                id: None,
                kind: ErrorKind::TooManyClients,
                detail: format!("connection limit {} reached", shared.config.max_clients),
            });
            let mut s = stream;
            let _ = writeln!(s, "{}", resp.render_line());
            continue;
        }
        let read_half = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => continue,
        };
        shared.metrics.clients.fetch_add(1, Ordering::SeqCst);
        {
            let mut conns = shared.conns.lock().unwrap_or_else(PoisonError::into_inner);
            if let Ok(clone) = stream.try_clone() {
                conns.push(clone);
            }
        }
        let reply = Bounded::new(shared.config.response_capacity);
        let writer_reply = reply.clone();
        thread::spawn(move || writer_loop(stream, &writer_reply));
        let conn_shared = Arc::clone(shared);
        thread::spawn(move || reader_loop(read_half, &conn_shared, &reply));
    }
}

fn writer_loop(mut stream: TcpStream, reply: &Bounded<String>) {
    while let Some(line) = reply.recv() {
        let t0 = Clock::now_ns();
        if writeln!(stream, "{line}").is_err() {
            break;
        }
        let _ = stream.flush();
        stages().write.record(Clock::now_ns().saturating_sub(t0));
    }
}

fn reader_loop(stream: TcpStream, shared: &Arc<Shared>, reply: &Bounded<String>) {
    let slot = shared.inbox.register();
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        match protocol::parse_request(&line) {
            Err((id, detail)) => {
                // Framing/validation errors answer in place and keep
                // the connection alive.
                shared.metrics.rejected.fetch_add(1, Ordering::SeqCst);
                Shared::send_response(
                    reply,
                    &Response::Error(ErrorResponse {
                        id,
                        kind: ErrorKind::BadRequest,
                        detail,
                    }),
                );
            }
            Ok(Request::Ping { id }) => {
                Shared::send_response(reply, &Response::Pong { id });
            }
            Ok(Request::Stats { id }) => {
                admit(shared, reply, slot, WorkKind::Stats { id }, Some(id));
            }
            Ok(Request::Metrics { id }) => {
                admit(shared, reply, slot, WorkKind::Metrics { id }, Some(id));
            }
            Ok(Request::Decode(req)) => {
                let id = req.id;
                admit(shared, reply, slot, WorkKind::Decode(req), Some(id));
            }
            Ok(Request::Shard(req)) => {
                // Shard dispatch is the dqec_dist agent's job; the
                // decode server shares the frame format but not the
                // role.
                shared.metrics.rejected.fetch_add(1, Ordering::SeqCst);
                Shared::send_response(
                    reply,
                    &Response::Error(ErrorResponse {
                        id: Some(req.id),
                        kind: ErrorKind::BadRequest,
                        detail: "this is the decode server; shard jobs go to a \
                                 `dqec_dist agent` endpoint"
                            .to_string(),
                    }),
                );
            }
        }
    }
    shared.inbox.deregister(slot);
    shared.metrics.clients.fetch_sub(1, Ordering::SeqCst);
    // Writer exits once the queued responses are flushed.
    reply.close();
}

fn admit(
    shared: &Arc<Shared>,
    reply: &Bounded<String>,
    slot: usize,
    kind: WorkKind,
    id: Option<u64>,
) {
    let item = WorkItem {
        reply: reply.clone(),
        kind,
        admitted_ns: Clock::now_ns(),
    };
    match shared.inbox.try_push(slot, item) {
        Ok(()) => {}
        Err(PushError::Full) => {
            shared.metrics.rejected.fetch_add(1, Ordering::SeqCst);
            Shared::send_response(
                reply,
                &Response::Error(ErrorResponse {
                    id,
                    kind: ErrorKind::Backpressure,
                    detail: format!(
                        "admission queue full (capacity {}); retry later",
                        shared.config.queue_capacity
                    ),
                }),
            );
        }
        Err(PushError::Closed) => {
            shared.metrics.rejected.fetch_add(1, Ordering::SeqCst);
            Shared::send_response(
                reply,
                &Response::Error(ErrorResponse {
                    id,
                    kind: ErrorKind::Unavailable,
                    detail: "server is shutting down".to_string(),
                }),
            );
        }
    }
}

fn executor_loop(shared: &Arc<Shared>) {
    let mut cache = ExperimentCache::new(shared.config.cache_capacity);
    loop {
        let batch = shared.inbox.drain(shared.config.batch_max);
        if batch.is_empty() {
            break; // inbox closed and drained
        }
        let _batch_span = trace::span("serve.batch");
        // Coalescing pre-pass: count how many requests of this batch
        // share each compiled experiment, so one compile (or one cache
        // hit streak) serves the whole group and responses can report
        // the amortization factor.
        let mut group_sizes: BTreeMap<u64, usize> = BTreeMap::new();
        let mut keys: Vec<Option<u64>> = Vec::with_capacity(batch.len());
        for item in &batch {
            match &item.kind {
                WorkKind::Decode(req) if req.validate().is_ok() => {
                    let spec = crate::cache::normalized_spec(req);
                    let key = crate::cache::cache_key(&spec, req.decoder.name());
                    *group_sizes.entry(key).or_insert(0) += 1;
                    keys.push(Some(key));
                }
                _ => keys.push(None),
            }
        }
        // Within this batch, requests identical in (compiled key, seed,
        // shots) are pure-function duplicates: compute once, share the
        // response (re-correlated per request id) instead of repeating
        // the Monte-Carlo run.
        let mut computed: BTreeMap<(u64, u64, u64), Result<LerResponse, ErrorResponse>> =
            BTreeMap::new();
        for (item, key) in batch.into_iter().zip(keys) {
            stages()
                .queue_wait
                .record(Clock::now_ns().saturating_sub(item.admitted_ns));
            match item.kind {
                WorkKind::Stats { id } => {
                    let resp = stats_snapshot(shared, &cache, id);
                    Shared::send_response(&item.reply, &Response::Stats(resp));
                }
                WorkKind::Metrics { id } => {
                    let resp = metrics_snapshot(id);
                    Shared::send_response(&item.reply, &Response::Metrics(resp));
                }
                WorkKind::Decode(req) => {
                    let batched = key.and_then(|k| group_sizes.get(&k).copied()).unwrap_or(1);
                    let share_key = key.map(|k| (k, req.seed, req.shots as u64));
                    let result = match share_key.and_then(|k| computed.get(&k).cloned()) {
                        Some(mut prior) => {
                            shared.metrics.coalesce_hits.fetch_add(1, Ordering::SeqCst);
                            trace::instant("serve.coalesce_hit");
                            match &mut prior {
                                Ok(resp) => resp.id = req.id,
                                Err(err) => err.id = Some(req.id),
                            }
                            prior
                        }
                        None => {
                            let _span = trace::span("serve.execute");
                            let result = cache.execute(&req, batched).map(|(resp, _stats)| resp);
                            if let Some(k) = share_key {
                                computed.insert(k, result.clone());
                            }
                            result
                        }
                    };
                    match result {
                        Ok(resp) => {
                            shared.metrics.served.fetch_add(1, Ordering::SeqCst);
                            Shared::send_response(&item.reply, &Response::Ler(resp));
                        }
                        Err(err) => {
                            shared.metrics.rejected.fetch_add(1, Ordering::SeqCst);
                            Shared::send_response(&item.reply, &Response::Error(err));
                        }
                    }
                }
            }
        }
    }
}

/// Builds the observability snapshot answered to a `metrics` request:
/// per-stage latency quantiles from every registry histogram, plus all
/// counters and gauges, plus the Prometheus text rendering. Usable
/// outside a running server (the one-shot CLI mode answers with it
/// too).
pub fn metrics_snapshot(id: u64) -> MetricsResponse {
    let snap = dqec_obs::registry().snapshot();
    let stages = snap
        .histograms
        .iter()
        .map(|(name, h)| StageSummary {
            name: name.clone(),
            count: h.count,
            p50_us: h.quantile(0.5) as f64 / 1000.0,
            p99_us: h.quantile(0.99) as f64 / 1000.0,
            p999_us: h.quantile(0.999) as f64 / 1000.0,
        })
        .collect();
    MetricsResponse {
        id,
        stages,
        counters: snap.counters.clone(),
        gauges: snap.gauges.clone(),
        prometheus: snap.prometheus(),
    }
}

fn stats_snapshot(shared: &Arc<Shared>, cache: &ExperimentCache, id: u64) -> StatsResponse {
    let c = cache.counters();
    StatsResponse {
        id,
        served: shared.metrics.served.load(Ordering::SeqCst) as u64,
        rejected: shared.metrics.rejected.load(Ordering::SeqCst) as u64,
        cache_hits: c.hits,
        cache_misses: c.misses,
        cache_evictions: c.evictions,
        cache_entries: c.entries,
        syndrome_hits: c.syndrome_hits,
        syndrome_misses: c.syndrome_misses,
        pool_workers: pool_workers() as u64,
        coalesce_hits: shared.metrics.coalesce_hits.load(Ordering::SeqCst) as u64,
    }
}

#[cfg(not(dqec_check))]
fn pool_workers() -> usize {
    rayon::resident::global().workers()
}

/// Pre-spawns the resident pool so the first decode burst does not pay
/// worker startup, and so `pool_workers` in stats reflects the pool a
/// resident server actually holds.
#[cfg(not(dqec_check))]
fn warm_pool() {
    let cores = thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    rayon::resident::global().ensure_workers(cores.saturating_sub(1).max(1));
}

// Under the model-checker cfg the rayon shim builds per-fan-out pools
// instead of a process-global one; report zero rather than reaching
// for a global that intentionally does not exist there.
#[cfg(dqec_check)]
fn pool_workers() -> usize {
    0
}

#[cfg(dqec_check)]
fn warm_pool() {}
