//! Protocol framing and round-trip coverage: malformed lines must
//! produce typed errors without tearing down the connection, and
//! arbitrary request/response values must survive the render → parse
//! round trip through the JSON shim.

#![cfg(not(dqec_check))]

use dqec_chiplet::runner::DecoderChoice;
use dqec_core::{Coord, DefectSet};
use dqec_serve::protocol::{
    parse_request, parse_response, DecodeRequest, ErrorKind, ErrorResponse, LerResponse, Request,
    Response, StatsResponse,
};
use proptest::prelude::*;

/// Strategy: an arbitrary in-range decode request.
fn decode_request() -> impl Strategy<Value = DecodeRequest> {
    let coords: Vec<Coord> = (0..8i32)
        .flat_map(|x| (0..8i32).map(move |y| Coord::new(x, y)))
        .collect();
    (
        (0u64..1_000_000, 2u32..=11, 1u64..=999, 0u32..=40),
        (1usize..100_000, 0u64..(1u64 << 53), 0usize..=1),
        proptest::sample::subsequence(coords.clone(), 0..=2),
        proptest::sample::subsequence(coords, 0..=2),
    )
        .prop_map(|((id, d, p_mil, rounds), (shots, seed, dec), data, synd)| {
            let mut defects = DefectSet::new();
            for c in &data {
                defects.add_data(*c);
            }
            for c in &synd {
                defects.add_synd(*c);
            }
            if let (Some(a), Some(b)) = (data.first(), synd.first()) {
                defects.add_link(*a, *b);
            }
            DecodeRequest {
                id,
                d,
                p: p_mil as f64 / 1000.0,
                rounds: if rounds == 0 { None } else { Some(rounds) },
                shots,
                seed,
                decoder: if dec == 0 {
                    DecoderChoice::Mwpm
                } else {
                    DecoderChoice::Uf
                },
                defects,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn requests_round_trip_through_the_wire(req in decode_request()) {
        let request = Request::Decode(req);
        let line = request.render_line();
        let parsed = parse_request(&line).expect("round trip parses");
        prop_assert_eq!(parsed, request);
    }

    #[test]
    fn responses_round_trip_through_the_wire(
        parts in (
            (
                0u64..1_000_000,
                2u32..=11,
                1u64..=999,
                1u32..=40,
                0u64..(1u64 << 53),
            ),
            (1usize..100_000, 0u64..1_000, 0usize..=1, 0usize..=1, 1usize..=32),
        )
    ) {
        let ((id, d, p_mil, rounds, seed), (shots, failures, dec, hit, batched)) = parts;
        let resp = Response::Ler(LerResponse {
            id,
            d,
            p: p_mil as f64 / 1000.0,
            rounds,
            decoder: if dec == 0 { DecoderChoice::Mwpm } else { DecoderChoice::Uf },
            seed,
            shots,
            failures: failures.min(shots as u64),
            cache_hit: hit == 1,
            batched,
        });
        let parsed = parse_response(&resp.render_line()).expect("round trip parses");
        prop_assert_eq!(parsed, resp);
    }
}

#[test]
fn error_and_admin_responses_round_trip() {
    for resp in [
        Response::Pong { id: 3 },
        Response::Error(ErrorResponse {
            id: None,
            kind: ErrorKind::TooManyClients,
            detail: "limit 4 reached".to_string(),
        }),
        Response::Error(ErrorResponse {
            id: Some(8),
            kind: ErrorKind::Backpressure,
            detail: "queue \"full\"\nnewline".to_string(),
        }),
        Response::Stats(StatsResponse {
            id: 1,
            served: 2,
            rejected: 3,
            cache_hits: 4,
            cache_misses: 5,
            cache_evictions: 6,
            cache_entries: 7,
            syndrome_hits: 8,
            syndrome_misses: 9,
            pool_workers: 10,
            coalesce_hits: 11,
        }),
    ] {
        let parsed = parse_response(&resp.render_line()).expect("parses");
        assert_eq!(parsed, resp);
    }
}

#[test]
fn malformed_requests_yield_typed_errors_not_panics() {
    for bad in [
        "",
        "{",
        "[]",
        "42",
        "{\"op\":\"decode\"}",
        "{\"op\":\"nope\",\"id\":1}",
        "{\"op\":\"decode\",\"id\":1,\"d\":5,\"p\":\"high\",\"shots\":10,\"seed\":0}",
        "{\"op\":\"decode\",\"id\":1,\"d\":5,\"p\":0.003,\"shots\":10,\"seed\":0,\"defects\":{\"links\":[[1]]}}",
    ] {
        assert!(parse_request(bad).is_err(), "accepted {bad:?}");
    }
}
