//! Model suites for the serve-layer channels
//! (`RUSTFLAGS="--cfg dqec_check"`): the bounded reply channel and the
//! fair admission inbox explored under the deterministic concurrency
//! checker, plus a mutation-teeth pair proving the checker catches the
//! classic missed-wakeup weakening of the notify protocol both
//! structures rely on (publish and notify *under* the lock).

#![cfg(dqec_check)]

use dqec_check::sync::atomic::{AtomicUsize, Ordering};
use dqec_check::sync::{Condvar, Mutex};
use dqec_check::{check, Config};
use dqec_serve::chan::Bounded;
use dqec_serve::chan::Inbox;
use std::sync::Arc;

/// A capacity-1 channel forces the producer to block on every send
/// after the first; under every explored schedule the consumer still
/// receives the full FIFO backlog and then sees the close.
#[test]
fn bounded_blocking_sends_deliver_fifo_then_close() {
    let outcome = check(&Config::random(800).max_steps(100_000), || {
        let chan = Bounded::new(1);
        let producer = {
            let chan = chan.clone();
            dqec_check::thread::spawn(move || {
                for v in 0..3u32 {
                    chan.send(v).expect("channel closed under producer");
                }
                chan.close();
            })
        };
        let mut got = Vec::new();
        while let Some(v) = chan.recv() {
            got.push(v);
        }
        assert_eq!(got, vec![0, 1, 2], "reply backlog lost or reordered");
        producer.join().expect("producer thread");
    });
    assert!(
        outcome.failure.is_none(),
        "bounded channel lost or reordered replies: {}",
        outcome.failure.map(|f| f.report()).unwrap_or_default()
    );
    eprintln!("bounded fifo/close: {} executions", outcome.executions);
}

/// Two clients push concurrently while the (main-thread) executor
/// drains: every admitted item is drained exactly once and each
/// client's items stay in its submission order — the fairness pass must
/// never duplicate or drop work, whatever the interleaving.
#[test]
fn inbox_concurrent_pushes_drain_exactly_once() {
    let outcome = check(&Config::random(600).max_steps(200_000), || {
        let inbox = Inbox::new(4);
        let a = inbox.register();
        let b = inbox.register();
        let push_a = {
            let inbox = inbox.clone();
            dqec_check::thread::spawn(move || {
                inbox.try_push(a, (a, 0usize)).expect("within client cap");
                inbox.try_push(a, (a, 1usize)).expect("within client cap");
            })
        };
        let push_b = {
            let inbox = inbox.clone();
            dqec_check::thread::spawn(move || {
                inbox.try_push(b, (b, 0usize)).expect("within client cap");
            })
        };
        // Drain concurrently with the pushes; drain blocks when the
        // inbox is momentarily empty but not yet closed.
        let mut got = Vec::new();
        while got.len() < 3 {
            let batch = inbox.drain(8);
            assert!(!batch.is_empty(), "drain returned empty before close");
            got.extend(batch);
        }
        push_a.join().expect("client a");
        push_b.join().expect("client b");
        inbox.close();
        assert!(inbox.drain(8).is_empty(), "items remained after close");

        let from_a: Vec<usize> = got
            .iter()
            .filter(|(c, _)| *c == a)
            .map(|&(_, i)| i)
            .collect();
        let from_b: Vec<usize> = got
            .iter()
            .filter(|(c, _)| *c == b)
            .map(|&(_, i)| i)
            .collect();
        assert_eq!(from_a, vec![0, 1], "client a lost per-client FIFO");
        assert_eq!(from_b, vec![0], "client b item lost or duplicated");
    });
    assert!(
        outcome.failure.is_none(),
        "inbox dropped/duplicated work or deadlocked: {}",
        outcome.failure.map(|f| f.report()).unwrap_or_default()
    );
    eprintln!("inbox exactly-once: {} executions", outcome.executions);
}

/// The notify protocol of `Bounded`/`Inbox` distilled to one handoff:
/// the producer publishes and notifies while holding the lock (correct
/// variant), or publishes and notifies lock-free (mutation).
fn handoff_round(notify_under_lock: bool) {
    let shared = Arc::new((Mutex::new(()), Condvar::new(), AtomicUsize::new(0)));
    let producer = {
        let shared = Arc::clone(&shared);
        dqec_check::thread::spawn(move || {
            let (mutex, ready, filled) = &*shared;
            if notify_under_lock {
                // The real protocol (Bounded::send / Inbox::try_push):
                // holding the lock serializes this publish+notify
                // against the consumer's check-then-wait, closing the
                // missed-wakeup window.
                let _guard = mutex.lock().expect("handoff mutex");
                filled.store(1, Ordering::Release);
                ready.notify_all();
            } else {
                // MUTATION: publish and notify without the lock — the
                // notify can land between the consumer's emptiness
                // check and its park, and no second notify ever comes.
                filled.store(1, Ordering::Release);
                ready.notify_all();
            }
        })
    };
    let (mutex, ready, filled) = &*shared;
    let mut guard = mutex.lock().expect("handoff mutex");
    while filled.load(Ordering::Acquire) == 0 {
        guard = ready.wait(guard).expect("handoff wait");
    }
    drop(guard);
    producer.join().expect("producer thread");
}

/// Correct variant: no schedule can miss the wakeup.
#[test]
fn chan_notify_under_lock_is_sound() {
    let outcome = check(&Config::random(2000).max_steps(100_000), || {
        handoff_round(true);
    });
    assert!(
        outcome.failure.is_none(),
        "correct notify protocol reported a failure: {}",
        outcome.failure.map(|f| f.report()).unwrap_or_default()
    );
    eprintln!("handoff (correct): {} executions", outcome.executions);
}

/// Mutation teeth: the lock-free publish+notify must be caught (the
/// checker finds the schedule where the notify fires while the
/// consumer sits between its check and its park — a deadlock).
#[test]
fn mutation_lock_free_notify_is_caught() {
    let outcome = check(&Config::random(2000).max_steps(100_000), || {
        handoff_round(false);
    });
    assert!(
        outcome.failure.is_some(),
        "weakened channel notify was NOT caught — the model has no teeth"
    );
    eprintln!(
        "handoff (mutation) caught after {} executions",
        outcome.executions
    );
}
