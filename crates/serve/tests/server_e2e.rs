//! End-to-end server coverage over real TCP on 127.0.0.1: framing
//! resilience, conformance against the one-shot `Runner`, coalescing,
//! backpressure, stats, and shutdown.

#![cfg(not(dqec_check))]

use dqec_serve::protocol::{parse_response, ErrorKind, Request, Response};
use dqec_serve::{start, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

fn test_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        cache_capacity: 8,
        queue_capacity: 64,
        batch_max: 16,
        max_clients: 4,
        response_capacity: 256,
        trace_out: None,
    }
}

struct Client {
    write: TcpStream,
    read: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let write = TcpStream::connect(addr).expect("connect");
        write.set_nodelay(true).expect("nodelay");
        let read = BufReader::new(write.try_clone().expect("clone"));
        Client { write, read }
    }

    fn send_line(&mut self, line: &str) {
        writeln!(self.write, "{line}").expect("send");
        self.write.flush().expect("flush");
    }

    fn recv(&mut self) -> Response {
        let mut line = String::new();
        let n = self.read.read_line(&mut line).expect("recv");
        assert!(n > 0, "connection closed unexpectedly");
        parse_response(line.trim_end()).expect("parseable response")
    }
}

fn decode_line(id: u64, d: u32, p: f64, shots: usize, seed: u64, decoder: &str) -> String {
    format!(
        "{{\"op\":\"decode\",\"id\":{id},\"d\":{d},\"p\":{p},\"shots\":{shots},\
         \"seed\":{seed},\"decoder\":\"{decoder}\"}}"
    )
}

#[test]
fn malformed_line_answers_error_and_keeps_connection() {
    let server = start(test_config()).expect("start");
    let mut client = Client::connect(server.addr());

    client.send_line("{this is not json");
    match client.recv() {
        Response::Error(e) => {
            assert_eq!(e.kind, ErrorKind::BadRequest);
            assert_eq!(e.id, None);
        }
        other => panic!("expected error, got {other:?}"),
    }

    // Parseable JSON with a bad field keeps the id for correlation.
    client.send_line("{\"op\":\"decode\",\"id\":31,\"d\":5,\"shots\":10,\"seed\":0}");
    match client.recv() {
        Response::Error(e) => {
            assert_eq!(e.kind, ErrorKind::BadRequest);
            assert_eq!(e.id, Some(31));
        }
        other => panic!("expected error, got {other:?}"),
    }

    // The connection survived both: a real request still works.
    client.send_line(&decode_line(32, 3, 3e-3, 64, 0, "mwpm"));
    match client.recv() {
        Response::Ler(r) => assert_eq!((r.id, r.shots), (32, 64)),
        other => panic!("expected ler, got {other:?}"),
    }
    server.stop();
}

#[test]
fn served_responses_match_one_shot_runner_bit_exactly() {
    use dqec_chiplet::record::NullSink;
    use dqec_chiplet::runner::{DecoderChoice, ExperimentSpec, Runner};
    use dqec_core::adapt::AdaptedPatch;
    use dqec_core::layout::PatchLayout;
    use dqec_core::DefectSet;

    let server = start(test_config()).expect("start");
    let mut client = Client::connect(server.addr());

    // Mixed mwpm/uf burst over two error rates and seeds; shots chosen
    // to exercise both sub-batch and multi-batch (> 4096) paths.
    let cases: Vec<(u64, f64, usize, u64, DecoderChoice)> = vec![
        (1, 4e-3, 2000, 0, DecoderChoice::Mwpm),
        (2, 4e-3, 2000, 1, DecoderChoice::Uf),
        (3, 8e-3, 5000, 7, DecoderChoice::Mwpm),
        (4, 8e-3, 5000, 7, DecoderChoice::Uf),
        (5, 4e-3, 2000, 0, DecoderChoice::Mwpm), // repeat of id 1: cache hit
    ];
    for &(id, p, shots, seed, dec) in &cases {
        client.send_line(&decode_line(id, 3, p, shots, seed, dec.name()));
    }
    let mut got: Vec<(u64, usize, u64)> = (0..cases.len())
        .map(|_| match client.recv() {
            Response::Ler(r) => (r.id, r.shots, r.failures),
            other => panic!("expected ler, got {other:?}"),
        })
        .collect();
    got.sort_unstable();

    for (i, &(id, p, shots, seed, dec)) in cases.iter().enumerate() {
        let patch = AdaptedPatch::new(PatchLayout::memory(3), &DefectSet::new());
        let spec = ExperimentSpec::memory(patch)
            .p(p)
            .shots(shots)
            .seed(seed)
            .decoder(dec.builder());
        let outcome = Runner::new().run(&spec, &mut NullSink).expect("runner");
        assert_eq!(
            got[i],
            (
                id,
                outcome.points[0].shots,
                outcome.points[0].failures as u64
            ),
            "served tally diverges from one-shot runner for id {id}"
        );
    }
    server.stop();
}

#[test]
fn stats_reports_cache_and_syndrome_counters() {
    let server = start(test_config()).expect("start");
    let mut client = Client::connect(server.addr());

    client.send_line(&decode_line(1, 3, 5e-3, 512, 0, "mwpm"));
    client.send_line(&decode_line(2, 3, 5e-3, 512, 9, "mwpm"));
    let first = client.recv();
    let second = client.recv();
    match (&first, &second) {
        (Response::Ler(a), Response::Ler(b)) => {
            assert!(!a.cache_hit, "first request must compile");
            assert!(b.cache_hit, "second request must reuse the entry");
        }
        other => panic!("expected two lers, got {other:?}"),
    }

    client.send_line("{\"op\":\"stats\",\"id\":99}");
    match client.recv() {
        Response::Stats(s) => {
            assert_eq!(s.id, 99);
            assert_eq!(s.served, 2);
            assert_eq!((s.cache_hits, s.cache_misses, s.cache_entries), (1, 1, 1));
            assert!(
                s.syndrome_hits + s.syndrome_misses > 0,
                "syndrome cache traffic must be observable: {s:?}"
            );
            assert!(s.pool_workers >= 1, "resident pool must be running");
        }
        other => panic!("expected stats, got {other:?}"),
    }

    client.send_line("{\"op\":\"ping\",\"id\":100}");
    assert_eq!(client.recv(), Response::Pong { id: 100 });
    server.stop();
}

#[test]
fn full_admission_queue_yields_typed_backpressure() {
    let config = ServerConfig {
        queue_capacity: 1,
        batch_max: 1,
        ..test_config()
    };
    let server = start(config).expect("start");
    let mut client = Client::connect(server.addr());

    // A burst far deeper than queue(1) + in-flight(1): some requests
    // must bounce with a typed backpressure error, and every request
    // gets exactly one response either way.
    let burst = 12;
    for id in 0..burst {
        client.send_line(&decode_line(id, 3, 5e-3, 4096, id, "mwpm"));
    }
    let mut lers = 0;
    let mut bounced = 0;
    for _ in 0..burst {
        match client.recv() {
            Response::Ler(_) => lers += 1,
            Response::Error(e) => {
                assert_eq!(e.kind, ErrorKind::Backpressure);
                assert!(e.id.is_some(), "backpressure errors stay correlated");
                bounced += 1;
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    assert_eq!(lers + bounced, burst);
    assert!(lers >= 1, "at least the in-flight request is served");
    assert!(bounced >= 1, "a 12-deep burst must overflow queue(1)");

    // The connection is still usable after being backpressured.
    client.send_line(&decode_line(100, 3, 5e-3, 64, 0, "mwpm"));
    loop {
        match client.recv() {
            Response::Ler(r) if r.id == 100 => break,
            Response::Error(e) if e.id == Some(100) => {
                // Still racing the earlier backlog: retry as a client
                // would.
                assert_eq!(e.kind, ErrorKind::Backpressure);
                std::thread::yield_now();
                client.send_line(&decode_line(100, 3, 5e-3, 64, 0, "mwpm"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    server.stop();
}

#[test]
fn connection_limit_answers_typed_error() {
    let config = ServerConfig {
        max_clients: 1,
        ..test_config()
    };
    let server = start(config).expect("start");
    let mut first = Client::connect(server.addr());
    // Prove the first connection is fully registered before the
    // second connects (accept-loop registration is asynchronous).
    first.send_line("{\"op\":\"ping\",\"id\":1}");
    assert_eq!(first.recv(), Response::Pong { id: 1 });

    let mut second = Client::connect(server.addr());
    match second.recv() {
        Response::Error(e) => assert_eq!(e.kind, ErrorKind::TooManyClients),
        other => panic!("expected too-many-clients, got {other:?}"),
    }
    server.stop();
}

#[test]
fn two_clients_interleave_fairly() {
    let server = start(test_config()).expect("start");
    let mut a = Client::connect(server.addr());
    let mut b = Client::connect(server.addr());

    for id in 0..4u64 {
        a.send_line(&decode_line(id, 3, 5e-3, 256, id, "mwpm"));
        b.send_line(&decode_line(100 + id, 3, 5e-3, 256, id, "uf"));
    }
    for id in 0..4u64 {
        match a.recv() {
            Response::Ler(r) => assert_eq!(r.id, id, "per-client FIFO order"),
            other => panic!("unexpected {other:?}"),
        }
        match b.recv() {
            Response::Ler(r) => assert_eq!(r.id, 100 + id, "per-client FIFO order"),
            other => panic!("unexpected {other:?}"),
        }
    }
    server.stop();
}

#[test]
fn metrics_request_reports_stage_histograms() {
    let server = start(test_config()).expect("start");
    let mut client = Client::connect(server.addr());

    // Drive every pipeline stage at least once before asking.
    client.send_line(&decode_line(1, 3, 5e-3, 512, 0, "mwpm"));
    client.send_line(&decode_line(2, 3, 5e-3, 512, 3, "mwpm"));
    for _ in 0..2 {
        match client.recv() {
            Response::Ler(_) => {}
            other => panic!("expected ler, got {other:?}"),
        }
    }

    client.send_line("{\"op\":\"metrics\",\"id\":7}");
    match client.recv() {
        Response::Metrics(m) => {
            assert_eq!(m.id, 7);
            for stage in [
                "serve.stage.compile",
                "serve.stage.decode",
                "serve.stage.queue_wait",
            ] {
                let s = m
                    .stages
                    .iter()
                    .find(|s| s.name == stage)
                    .unwrap_or_else(|| panic!("stage {stage} missing from {:?}", m.stages));
                assert!(s.count > 0, "{stage} must have samples");
                assert!(
                    s.p50_us <= s.p99_us && s.p99_us <= s.p999_us,
                    "quantiles must be ordered for {stage}: {s:?}"
                );
            }
            assert!(
                m.prometheus
                    .contains("# TYPE dqec_serve_stage_decode summary"),
                "prometheus text must cover the decode stage"
            );
        }
        other => panic!("expected metrics, got {other:?}"),
    }
    server.stop();
}

#[test]
fn identical_requests_in_one_batch_share_one_computation() {
    let server = start(test_config()).expect("start");
    let mut client = Client::connect(server.addr());

    // A slow opener occupies the executor so the identical burst backs
    // up in the inbox and drains as one batch behind it.
    client.send_line(&decode_line(0, 3, 8e-3, 20_000, 42, "mwpm"));
    let burst = 8u64;
    for id in 1..=burst {
        client.send_line(&decode_line(id, 3, 5e-3, 1024, 5, "mwpm"));
    }
    let mut tallies: Vec<(u64, u64)> = Vec::new();
    for _ in 0..=burst {
        match client.recv() {
            Response::Ler(r) if r.id == 0 => {}
            Response::Ler(r) => tallies.push((r.id, r.failures)),
            other => panic!("expected ler, got {other:?}"),
        }
    }
    tallies.sort_unstable();
    assert_eq!(tallies.len(), burst as usize);
    // Shared or not, identical (key, seed, shots) must tally identically.
    assert!(
        tallies.windows(2).all(|w| w[0].1 == w[1].1),
        "identical requests diverged: {tallies:?}"
    );

    client.send_line("{\"op\":\"stats\",\"id\":99}");
    match client.recv() {
        Response::Stats(s) => assert!(
            s.coalesce_hits >= 1,
            "an 8-deep identical burst behind a slow request must share: {s:?}"
        ),
        other => panic!("expected stats, got {other:?}"),
    }
    server.stop();
}

#[test]
fn trace_out_writes_perfetto_loadable_json() {
    let path = std::env::temp_dir().join(format!("dqec_e2e_trace_{}.json", std::process::id()));
    let config = ServerConfig {
        trace_out: Some(path.clone()),
        ..test_config()
    };
    let server = start(config).expect("start");
    let mut client = Client::connect(server.addr());
    client.send_line(&decode_line(1, 3, 5e-3, 256, 0, "mwpm"));
    match client.recv() {
        Response::Ler(_) => {}
        other => panic!("expected ler, got {other:?}"),
    }
    server.stop();

    let text = std::fs::read_to_string(&path).expect("trace file written on stop");
    let _ = std::fs::remove_file(&path);
    assert!(
        text.starts_with("{\"traceEvents\":["),
        "chrome trace envelope: {text:.>40}"
    );
    assert!(text.contains("\"serve.batch\""), "batch spans recorded");
    assert!(text.contains("\"ph\":\"X\""), "complete events present");
}

#[test]
fn request_render_parse_matches_wire_format() {
    // The Request renderer is what bench_serve and the CI request
    // files rely on; pin the wire shape end to end.
    let line = Request::Ping { id: 7 }.render_line();
    let server = start(test_config()).expect("start");
    let mut client = Client::connect(server.addr());
    client.send_line(&line);
    assert_eq!(client.recv(), Response::Pong { id: 7 });
    server.stop();
}
