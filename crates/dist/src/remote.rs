//! Remote shard execution over the decode service's JSON-lines TCP
//! protocol.
//!
//! Two halves:
//!
//! * **Agent** ([`start_agent`]) — a worker daemon on a remote machine.
//!   It accepts connections, executes `shard` requests by spawning the
//!   named figure binary (resolved inside its own `--bins` directory)
//!   with the agent-owned `--shard`/`--checkpoint`/`--resume` flags,
//!   emits a `shard-progress` heartbeat frame while the child runs, and
//!   ships the finished shard's state file back **inline** in the
//!   `shard-done` frame — coordinator and agent share no filesystem.
//! * **Dispatcher** ([`run_remote`]) — the coordinator side. Shard
//!   attempts flow through the same [`drive_shards`] retry loop as
//!   local runs; each attempt leases an agent from a shared pool, sends
//!   one `shard` request, and watches the connection with a read
//!   timeout slightly above the heartbeat period. A silent agent — a
//!   crashed machine, a hung process, a partitioned network — times
//!   out, fails the attempt, and the retry re-dispatches the shard to
//!   whichever agent the pool hands out next. Re-running a shard is
//!   always safe: its output is a deterministic state file, and an
//!   agent that kept its scratch resumes instead of recomputing.
//!
//! The wire frames live in `dqec_serve::protocol` so the decode
//! service's parser, normalizer, and conformance tooling cover them.

use crate::coordinator::{drive_shards, DistReport};
use crate::merge::merge_dir;
use dqec_core::CoreError;
use dqec_serve::chan::Bounded;
use dqec_serve::protocol::{
    self, Request, Response, ShardDoneResponse, ShardRequest, ShardStateFile,
};
use dqec_serve::ErrorKind;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::time::Duration;

fn bad(detail: String) -> CoreError {
    CoreError::Sweep { detail }
}

/// Agent daemon configuration.
#[derive(Debug, Clone)]
pub struct AgentConfig {
    /// Listen address (`host:port`; port 0 picks a free port).
    pub addr: String,
    /// Directory holding the figure binaries a `shard` request may
    /// name. Requests are bare names, so nothing outside this
    /// directory is runnable.
    pub bin_dir: PathBuf,
    /// Scratch root for per-job checkpoint directories. Scratch is
    /// kept between requests: a re-dispatched shard resumes from its
    /// own half-finished state instead of starting over.
    pub scratch: PathBuf,
    /// Heartbeat period while a shard child runs, in milliseconds.
    pub heartbeat_ms: u64,
}

impl Default for AgentConfig {
    fn default() -> Self {
        AgentConfig {
            addr: "127.0.0.1:7462".into(),
            bin_dir: PathBuf::from("."),
            scratch: PathBuf::from("dist-scratch"),
            heartbeat_ms: 500,
        }
    }
}

/// A running agent: its bound address and its accept loop.
pub struct AgentHandle {
    addr: std::net::SocketAddr,
    accept: dqec_check::thread::JoinHandle<()>,
}

impl AgentHandle {
    /// The address the agent actually bound (resolves port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Blocks until the accept loop exits (it normally never does).
    pub fn wait(self) {
        let _ = self.accept.join();
    }
}

/// Starts the agent daemon: binds the listener and serves each
/// connection on its own facade thread.
///
/// # Errors
///
/// Fails when the address cannot be bound or the scratch root cannot
/// be created.
pub fn start_agent(config: AgentConfig) -> Result<AgentHandle, CoreError> {
    std::fs::create_dir_all(&config.scratch)
        .map_err(|e| bad(format!("create scratch {}: {e}", config.scratch.display())))?;
    let listener =
        TcpListener::bind(&config.addr).map_err(|e| bad(format!("bind {}: {e}", config.addr)))?;
    let addr = listener
        .local_addr()
        .map_err(|e| bad(format!("local addr: {e}")))?;
    let accept = dqec_check::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { continue };
            let config = config.clone();
            dqec_check::thread::spawn(move || {
                let peer = stream
                    .peer_addr()
                    .map(|a| a.to_string())
                    .unwrap_or_else(|_| "?".into());
                if let Err(e) = serve_connection(stream, &config) {
                    eprintln!("[dist agent] connection {peer}: {e}");
                }
            });
        }
    });
    Ok(AgentHandle { addr, accept })
}

/// Handles one coordinator connection: requests are executed serially
/// (one shard at a time per connection — the coordinator leases one
/// agent per in-flight attempt, so serial is the contract).
fn serve_connection(stream: TcpStream, config: &AgentConfig) -> Result<(), String> {
    let reader = BufReader::new(stream.try_clone().map_err(|e| format!("clone: {e}"))?);
    let mut writer = stream;
    for line in reader.lines() {
        let line = line.map_err(|e| format!("read: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        let response = match protocol::parse_request(&line) {
            Err((id, detail)) => Response::Error(protocol::ErrorResponse {
                id,
                kind: ErrorKind::BadRequest,
                detail,
            }),
            Ok(Request::Ping { id }) => Response::Pong { id },
            Ok(Request::Shard(req)) => match execute_shard(&req, config, &mut writer) {
                Ok(states) => Response::ShardDone(ShardDoneResponse { id: req.id, states }),
                Err(detail) => Response::Error(protocol::ErrorResponse {
                    id: Some(req.id),
                    kind: ErrorKind::BadRequest,
                    detail,
                }),
            },
            Ok(Request::Decode(req)) => agent_wrong_op(Some(req.id)),
            Ok(Request::Stats { id }) | Ok(Request::Metrics { id }) => agent_wrong_op(Some(id)),
        };
        writeln!(writer, "{}", response.render_line()).map_err(|e| format!("write: {e}"))?;
    }
    Ok(())
}

/// The error frame for decode-service ops sent to an agent.
fn agent_wrong_op(id: Option<u64>) -> Response {
    Response::Error(protocol::ErrorResponse {
        id,
        kind: ErrorKind::BadRequest,
        detail: "this is a dqec_dist agent; decode/stats/metrics go to dqec_serve".into(),
    })
}

/// Runs one shard request to completion, emitting heartbeat frames on
/// `writer` while the child works, and returns the shard's state files
/// read back from scratch.
fn execute_shard(
    req: &ShardRequest,
    config: &AgentConfig,
    writer: &mut TcpStream,
) -> Result<Vec<ShardStateFile>, String> {
    req.validate()?;
    let bin = config.bin_dir.join(&req.bin);
    let scratch = config
        .scratch
        .join(format!("job{}-shard{}of{}", req.id, req.index, req.count));
    std::fs::create_dir_all(&scratch).map_err(|e| format!("create {}: {e}", scratch.display()))?;
    let stderr_log = scratch.join("stderr.log");
    let stderr = std::fs::File::create(&stderr_log)
        .map_err(|e| format!("create {}: {e}", stderr_log.display()))?;
    let mut child = std::process::Command::new(&bin)
        .args(&req.args)
        .arg("--shard")
        .arg(format!("{}/{}", req.index, req.count))
        .arg("--checkpoint")
        .arg(&scratch)
        // Resume-if-exists: a shard re-dispatched to this agent picks
        // up its own earlier checkpoint instead of recomputing.
        .arg("--resume")
        .stdin(std::process::Stdio::null())
        .stdout(std::process::Stdio::null())
        .stderr(stderr)
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", bin.display()))?;

    let beat_ns = config.heartbeat_ms.saturating_mul(1_000_000).max(1);
    let mut last_beat = dqec_obs::clock::now_ns();
    let status = loop {
        match child.try_wait() {
            Ok(Some(status)) => break status,
            Ok(None) => {
                let now = dqec_obs::clock::now_ns();
                if now.saturating_sub(last_beat) >= beat_ns {
                    last_beat = now;
                    writeln!(
                        writer,
                        "{}",
                        Response::ShardProgress { id: req.id }.render_line()
                    )
                    .map_err(|e| format!("heartbeat write: {e}"))?;
                }
                dqec_check::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => {
                let _ = child.kill();
                return Err(format!("wait on {}: {e}", req.bin));
            }
        }
    };
    if !status.success() {
        let tail = std::fs::read_to_string(&stderr_log)
            .map(|s| {
                let lines: Vec<&str> = s.lines().rev().take(4).collect();
                lines.into_iter().rev().collect::<Vec<_>>().join(" | ")
            })
            .unwrap_or_default();
        return Err(format!(
            "{} exited with {:?}: {tail}",
            req.bin,
            status.code()
        ));
    }
    collect_states(&scratch, req)
}

/// Reads the shard state files the child wrote into its scratch dir.
fn collect_states(scratch: &Path, req: &ShardRequest) -> Result<Vec<ShardStateFile>, String> {
    let suffix = format!(".shard{}of{}.sweep.json", req.index, req.count);
    let mut states = Vec::new();
    let entries =
        std::fs::read_dir(scratch).map_err(|e| format!("read {}: {e}", scratch.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read scratch: {e}"))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if !name.ends_with(&suffix) {
            continue;
        }
        let doc = std::fs::read_to_string(entry.path())
            .map_err(|e| format!("read {}: {e}", entry.path().display()))?;
        states.push(ShardStateFile {
            file: name.to_string(),
            doc,
        });
    }
    if states.is_empty() {
        return Err(format!(
            "shard run produced no {suffix} state file in scratch (wrong binary?)"
        ));
    }
    states.sort_by(|a, b| a.file.cmp(&b.file));
    Ok(states)
}

/// A sharded run dispatched to remote agents.
#[derive(Debug, Clone)]
pub struct RemoteJob {
    /// Bare figure-binary name (resolved in each agent's `--bins` dir).
    pub bin: String,
    /// Pass-through arguments (no agent-owned flags).
    pub args: Vec<String>,
    /// Number of shards `N`.
    pub count: u32,
    /// Local directory the returned shard states are written into
    /// (also where the merge emits the whole-plan state).
    pub checkpoint: PathBuf,
}

/// Remote dispatch tuning.
#[derive(Debug, Clone)]
pub struct RemoteOptions {
    /// Agent addresses (`host:port`). The pool size is the concurrency:
    /// each in-flight shard leases one agent.
    pub agents: Vec<String>,
    /// Crash/straggler retry budget per shard.
    pub max_retries: u32,
    /// Straggler threshold: an attempt whose connection stays silent —
    /// no heartbeat, no completion — this long is abandoned and
    /// re-dispatched. Must comfortably exceed the agent heartbeat
    /// period.
    pub heartbeat_timeout_ms: u64,
}

impl Default for RemoteOptions {
    fn default() -> Self {
        RemoteOptions {
            agents: Vec::new(),
            max_retries: 2,
            heartbeat_timeout_ms: 5_000,
        }
    }
}

/// A returned state-file name must be exactly what the bench layer
/// writes — one path component, the right suffix — before the
/// dispatcher will write it to the local checkpoint dir.
fn safe_state_name(name: &str) -> bool {
    !name.is_empty()
        && name.ends_with(".sweep.json")
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
        && !name.contains("..")
}

/// Sends one shard attempt to `agent` and waits for its `shard-done`,
/// writing the returned states into `checkpoint`.
fn dispatch_to_agent(
    agent: &str,
    job: &RemoteJob,
    index: u32,
    timeout: Duration,
) -> Result<(), String> {
    let stream = TcpStream::connect(agent).map_err(|e| format!("connect {agent}: {e}"))?;
    let _ = stream.set_nodelay(true);
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| format!("set timeout: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
    let request = Request::Shard(ShardRequest {
        id: index as u64,
        bin: job.bin.clone(),
        index,
        count: job.count,
        args: job.args.clone(),
    });
    writeln!(writer, "{}", request.render_line()).map_err(|e| format!("send: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line).map_err(|e| {
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) {
                format!(
                    "agent {agent} silent for {}ms; presumed straggler",
                    timeout.as_millis()
                )
            } else {
                format!("receive from {agent}: {e}")
            }
        })?;
        if n == 0 {
            return Err(format!("agent {agent} closed the connection mid-shard"));
        }
        match protocol::parse_response(line.trim_end()) {
            Err(e) => return Err(format!("bad frame from {agent}: {e}")),
            Ok(Response::ShardProgress { .. }) => continue, // heartbeat
            Ok(Response::ShardDone(done)) => {
                if done.id != index as u64 {
                    return Err(format!(
                        "agent {agent} answered job {} not {index}",
                        done.id
                    ));
                }
                for state in &done.states {
                    if !safe_state_name(&state.file) {
                        return Err(format!(
                            "agent {agent} returned unsafe state name {:?}",
                            state.file
                        ));
                    }
                    let path = job.checkpoint.join(&state.file);
                    std::fs::write(&path, &state.doc)
                        .map_err(|e| format!("write {}: {e}", path.display()))?;
                }
                return Ok(());
            }
            Ok(Response::Error(err)) => {
                return Err(format!(
                    "agent {agent} rejected shard {index}: {}",
                    err.detail
                ))
            }
            Ok(other) => {
                return Err(format!(
                    "agent {agent} sent unexpected frame {:?} for shard {index}",
                    other.id()
                ))
            }
        }
    }
}

/// Runs every shard of `job` across the agent pool and merges the
/// returned states into the local checkpoint dir. Same retry loop,
/// report shape, and bit-exactness contract as
/// [`crate::coordinator::run_local`] — only the execution backend
/// differs.
///
/// # Errors
///
/// Fails when no agents are given, when a shard exhausts its retry
/// budget (crashes and stragglers both count), or when the merge
/// rejects the returned states.
pub fn run_remote(job: &RemoteJob, opts: &RemoteOptions) -> Result<DistReport, CoreError> {
    if opts.agents.is_empty() {
        return Err(bad(
            "remote dispatch needs at least one --agents address".into()
        ));
    }
    std::fs::create_dir_all(&job.checkpoint)
        .map_err(|e| bad(format!("create {}: {e}", job.checkpoint.display())))?;
    // The lease pool: an attempt pops an agent, uses it, puts it back.
    // FIFO rotation means a straggler's retry usually lands elsewhere.
    let pool: Bounded<String> = Bounded::new(opts.agents.len());
    for agent in &opts.agents {
        pool.try_send(agent.clone())
            .map_err(|_| bad("agent pool rejected an address".into()))?;
    }
    let timeout = Duration::from_millis(opts.heartbeat_timeout_ms.max(1));
    let exec_job = job.clone();
    let exec_pool = pool.clone();
    let started = dqec_obs::clock::now_ns();
    let outcomes = drive_shards(
        job.count,
        opts.agents.len(),
        opts.max_retries,
        move |index, _attempt| {
            let agent = exec_pool
                .recv()
                .ok_or_else(|| "agent pool closed".to_string())?;
            let result = dispatch_to_agent(&agent, &exec_job, index, timeout);
            // Return the lease even after a failure: a transient error
            // must not shrink the pool (bounded retries protect against
            // a permanently dead agent).
            let _ = exec_pool.send(agent);
            result
        },
    )?;
    let dispatch_ns = dqec_obs::clock::now_ns().saturating_sub(started);
    pool.close();
    let merge_started = dqec_obs::clock::now_ns();
    let merged = merge_dir(&job.checkpoint)?;
    let merge_ns = dqec_obs::clock::now_ns().saturating_sub(merge_started);
    Ok(DistReport {
        outcomes,
        dispatch_ns,
        merge_ns,
        merged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_names_are_screened_before_hitting_the_filesystem() {
        assert!(safe_state_name("fig06.defective.shard0of2.sweep.json"));
        assert!(safe_state_name("a-b_c.0.sweep.json"));
        for bad in [
            "",
            "../../etc/passwd",
            "/abs/path.sweep.json",
            "dir/file.sweep.json",
            "no-suffix.json",
            "trick..sweep.json",
        ] {
            assert!(!safe_state_name(bad), "{bad:?} accepted");
        }
    }

    #[test]
    fn empty_agent_pool_is_rejected_up_front() {
        let job = RemoteJob {
            bin: "fig06_ler_curves".into(),
            args: Vec::new(),
            count: 2,
            checkpoint: std::env::temp_dir().join("dqec_dist_never_created"),
        };
        let err = run_remote(&job, &RemoteOptions::default()).expect_err("no agents");
        assert!(err.to_string().contains("--agents"), "{err}");
    }

    #[test]
    fn agent_answers_ping_and_rejects_decode_ops() {
        let dir = std::env::temp_dir().join(format!("dqec_dist_agent_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let handle = start_agent(AgentConfig {
            addr: "127.0.0.1:0".into(),
            bin_dir: dir.clone(),
            scratch: dir.join("scratch"),
            heartbeat_ms: 100,
        })
        .expect("agent starts");
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        writeln!(writer, "{{\"op\":\"ping\",\"id\":7}}").expect("send ping");
        writeln!(writer, "{{\"op\":\"stats\",\"id\":8}}").expect("send stats");
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).expect("pong");
        assert_eq!(
            protocol::parse_response(line.trim_end()).expect("frame"),
            Response::Pong { id: 7 }
        );
        line.clear();
        reader.read_line(&mut line).expect("error frame");
        match protocol::parse_response(line.trim_end()).expect("frame") {
            Response::Error(err) => {
                assert_eq!(err.id, Some(8));
                assert!(err.detail.contains("dqec_dist agent"), "{}", err.detail);
            }
            other => panic!("expected error frame, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
