//! # dqec-dist
//!
//! Distributed sweep sharding: run one figure's Monte-Carlo sweeps as
//! `N` independent shards — across local processes or remote agents —
//! and recombine the results **bit-exactly**.
//!
//! The paper-scale runs (`--full`: millions of shots per sweep point)
//! are embarrassingly parallel at the batch level: every batch is an
//! independent seeded RNG stream and every tally is a sum over the set
//! of completed batches. [`Shard::batch_range`] turns that into a
//! deterministic partition — shard `i/N` owns a contiguous slice of
//! every point's batch indices, a pure function of the plan and `N` —
//! so shard workers need no communication at all, and
//! [`merge::merge_states`] recombines their checkpoint states into
//! exactly the state a single uninterrupted process would have written.
//! A final `--resume` run over the merged state emits the figure's
//! records byte-identically to the single-process run; CI diffs the
//! two.
//!
//! Layers:
//!
//! * [`merge`] — verification (fingerprints, partition completeness)
//!   and additive recombination of shard states;
//! * [`schedule`] — deterministic LPT makespan heuristics for
//!   cost-aware dispatch;
//! * [`coordinator`] — the retry-driving work queue (model-checkable
//!   under `--cfg dqec_check`) and the local process backend;
//! * [`remote`] — the `dqec_dist agent` daemon and the TCP dispatcher
//!   with heartbeat-based straggler re-dispatch, on the decode
//!   service's JSON-lines protocol.
//!
//! The `dqec_dist` binary fronts all of it: `run` (local or
//! `--agents`), `merge`, and `agent` subcommands.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coordinator;
pub mod merge;
pub mod remote;
pub mod schedule;

pub use coordinator::{drive_shards, run_local, DistReport, LocalOptions, ShardJob};
pub use dqec_sweep::shard::Shard;
pub use merge::{merge_dir, merge_states, MergeReport};
pub use remote::{run_remote, start_agent, AgentConfig, RemoteJob, RemoteOptions};
