//! The shard coordinator: a work queue of shard attempts, a pool of
//! executor threads, and a retry loop that re-dispatches crashed or
//! stalled shards with `--resume` until every slice of the partition is
//! complete.
//!
//! The queue machinery is the same model-checkable [`Bounded`] channel
//! the decode server uses, and the executor threads come from the
//! `dqec_check` facade, so the whole dispatch/retry state machine runs
//! under the deterministic model checker (`--cfg dqec_check`) with an
//! injected executor in place of real processes — see
//! `tests/model_coordinator.rs`.
//!
//! [`drive_shards`] is execution-agnostic: the *local* backend
//! ([`run_local`]) spawns one figure-binary process per attempt on this
//! machine; the *remote* backend ([`crate::remote`]) ships the attempt
//! to a `dqec_dist agent` over TCP. Either way a shard's only output is
//! its checkpoint state file, so a crashed attempt re-run with
//! `--resume` loses at most one allocation round and the finished
//! partition merges bit-exactly ([`crate::merge`]).

use crate::merge::{merge_dir, MergeReport};
use dqec_core::CoreError;
use dqec_serve::chan::Bounded;
use dqec_sweep::shard::Shard;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::Arc;

fn bad(detail: String) -> CoreError {
    CoreError::Sweep { detail }
}

/// One dispatch of one shard (attempt 0 is the first try).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Attempt {
    /// Shard index in `0..count`.
    pub index: u32,
    /// How many earlier attempts at this shard failed.
    pub attempt: u32,
}

/// How one shard eventually completed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardOutcome {
    /// The shard index.
    pub index: u32,
    /// Total attempts spent (1 = clean first run).
    pub attempts: u32,
    /// Wall time of the successful attempt, in nanoseconds
    /// ([`dqec_obs::clock`]; virtual under the model checker).
    pub duration_ns: u64,
}

struct AttemptResult {
    attempt: Attempt,
    outcome: Result<u64, String>,
}

/// Runs shards `0..count` to completion through `workers` concurrent
/// executors, retrying each failed shard up to `max_retries` times
/// (later attempts carry `attempt > 0`, which execution backends turn
/// into `--resume`). Returns one [`ShardOutcome`] per shard, in shard
/// order.
///
/// The executor gets `(index, attempt)` and must run that shard to
/// completion, returning a diagnostic string on failure. Executors run
/// on facade threads; under `--cfg dqec_check` the model checker
/// explores the dispatch/retry interleavings.
///
/// # Errors
///
/// Fails when any shard exhausts its retry budget (carrying the last
/// diagnostic) or when every executor dies with attempts outstanding.
pub fn drive_shards<F>(
    count: u32,
    workers: usize,
    max_retries: u32,
    exec: F,
) -> Result<Vec<ShardOutcome>, CoreError>
where
    F: Fn(u32, u32) -> Result<(), String> + Send + Sync + 'static,
{
    if count == 0 {
        return Ok(Vec::new());
    }
    let reg = dqec_obs::registry();
    reg.gauge("dist.shards.total").set(count as i64);
    reg.gauge("dist.shards.done").set(0);

    let queue: Bounded<Attempt> = Bounded::new(count as usize);
    let results: Bounded<AttemptResult> = Bounded::new(count as usize);
    for index in 0..count {
        // Cannot fail: the queue holds `count` and is open.
        queue
            .try_send(Attempt { index, attempt: 0 })
            .map_err(|_| bad("dispatch queue rejected initial attempt".into()))?;
    }

    let exec = Arc::new(exec);
    let workers = (workers.max(1)).min(count as usize);
    let handles: Vec<_> = (0..workers)
        .map(|_| {
            let queue = queue.clone();
            let results = results.clone();
            let exec = Arc::clone(&exec);
            dqec_check::thread::spawn(move || {
                while let Some(attempt) = queue.recv() {
                    let started = dqec_obs::clock::now_ns();
                    let outcome = exec(attempt.index, attempt.attempt)
                        .map(|()| dqec_obs::clock::now_ns().saturating_sub(started));
                    if results.send(AttemptResult { attempt, outcome }).is_err() {
                        break; // coordinator gone; nothing to report to
                    }
                }
            })
        })
        .collect();

    let mut outcomes: Vec<Option<ShardOutcome>> = (0..count).map(|_| None).collect();
    let mut remaining = count;
    let mut failure: Option<String> = None;
    while remaining > 0 {
        let Some(result) = results.recv() else {
            failure = Some("all shard executors exited early".into());
            break;
        };
        let Attempt { index, attempt } = result.attempt;
        match result.outcome {
            Ok(duration_ns) => {
                reg.histogram("dist.shard.duration_us")
                    .record(duration_ns / 1_000);
                outcomes[index as usize] = Some(ShardOutcome {
                    index,
                    attempts: attempt + 1,
                    duration_ns,
                });
                remaining -= 1;
                reg.gauge("dist.shards.done")
                    .set((count - remaining) as i64);
            }
            Err(detail) if attempt < max_retries => {
                reg.counter("dist.shard.retries").inc();
                eprintln!(
                    "[dist] shard {index}/{count} attempt {attempt} failed ({detail}); \
                     re-dispatching with resume"
                );
                if queue
                    .send(Attempt {
                        index,
                        attempt: attempt + 1,
                    })
                    .is_err()
                {
                    failure = Some("dispatch queue closed during retry".into());
                    break;
                }
            }
            Err(detail) => {
                failure = Some(format!(
                    "shard {index}/{count} failed after {} attempt(s): {detail}",
                    attempt + 1
                ));
                break;
            }
        }
    }
    queue.close();
    for handle in handles {
        // A panicked executor already surfaced as a failed attempt or
        // as the early-exit error above.
        let _ = handle.join();
    }
    results.close();
    if let Some(detail) = failure {
        return Err(bad(detail));
    }
    outcomes
        .into_iter()
        .collect::<Option<Vec<_>>>()
        .ok_or_else(|| bad("internal: shard bookkeeping lost an outcome".into()))
}

/// A sharded run of one figure binary: which binary, its pass-through
/// flags, how many slices, and where the shard state files go.
#[derive(Debug, Clone)]
pub struct ShardJob {
    /// The figure binary (e.g. `target/release/fig06_ler_curves`).
    pub bin: PathBuf,
    /// Pass-through arguments (figure flags like `--shots`). Must not
    /// contain the coordinator-owned `--shard`/`--checkpoint`/`--resume`.
    pub args: Vec<String>,
    /// Number of shards `N`.
    pub count: u32,
    /// Checkpoint directory shared by every shard (and the merge).
    pub checkpoint: PathBuf,
    /// Resume all shards from existing state files (a re-run of a
    /// partially completed distributed sweep). Crash retries always
    /// resume regardless.
    pub resume: bool,
}

impl ShardJob {
    /// The argument vector for one attempt at shard `index`.
    /// Later attempts (and `resume` jobs) add `--resume`: the engine
    /// resumes from the shard's state file when one exists and starts
    /// the slice fresh when the crash predated the first checkpoint.
    pub fn attempt_args(&self, index: u32, attempt: u32) -> Result<Vec<String>, CoreError> {
        let shard = Shard::new(index, self.count)?;
        let mut args = self.args.clone();
        args.push("--shard".into());
        args.push(shard.to_string());
        args.push("--checkpoint".into());
        args.push(self.checkpoint.display().to_string());
        if self.resume || attempt > 0 {
            args.push("--resume".into());
        }
        Ok(args)
    }
}

/// Local execution tuning.
#[derive(Debug, Clone)]
pub struct LocalOptions {
    /// Concurrent shard processes (clamped to `1..=count`).
    pub workers: usize,
    /// Crash-retry budget per shard.
    pub max_retries: u32,
    /// `--threads` cap passed to every shard process, so `workers`
    /// concurrent shards do not oversubscribe the machine. `None`
    /// passes nothing (each process uses its own default).
    pub threads_per_worker: Option<usize>,
}

impl Default for LocalOptions {
    fn default() -> Self {
        LocalOptions {
            workers: 2,
            max_retries: 2,
            threads_per_worker: None,
        }
    }
}

/// The result of a distributed run: per-shard outcomes plus the merge.
#[derive(Debug, Clone)]
pub struct DistReport {
    /// Per-shard completion stats, in shard order.
    pub outcomes: Vec<ShardOutcome>,
    /// Wall time of the dispatch phase (first dispatch to last shard
    /// completion), nanoseconds.
    pub dispatch_ns: u64,
    /// Wall time of the merge step, nanoseconds.
    pub merge_ns: u64,
    /// One report per merged sweep plan.
    pub merged: Vec<MergeReport>,
}

/// Runs every shard of `job` as local child processes and merges the
/// completed partition (shard stdout is discarded — the state files
/// are the output; run the binary once more with `--resume` on the
/// merged state to emit records, e.g. via [`emit_merged`]).
///
/// # Errors
///
/// Fails when a shard exhausts its retry budget, when the binary
/// cannot be spawned, or when the merge rejects the resulting states.
pub fn run_local(job: &ShardJob, opts: &LocalOptions) -> Result<DistReport, CoreError> {
    let exec_job = job.clone();
    let threads = opts.threads_per_worker;
    let started = dqec_obs::clock::now_ns();
    let outcomes = drive_shards(
        job.count,
        opts.workers,
        opts.max_retries,
        move |index, attempt| {
            let mut args = exec_job
                .attempt_args(index, attempt)
                .map_err(|e| e.to_string())?;
            if let Some(n) = threads {
                args.push("--threads".into());
                args.push(n.to_string());
            }
            run_shard_process(&exec_job.bin, &args)
        },
    )?;
    let dispatch_ns = dqec_obs::clock::now_ns().saturating_sub(started);
    let merge_started = dqec_obs::clock::now_ns();
    let merged = merge_dir(&job.checkpoint)?;
    let merge_ns = dqec_obs::clock::now_ns().saturating_sub(merge_started);
    Ok(DistReport {
        outcomes,
        dispatch_ns,
        merge_ns,
        merged,
    })
}

/// Runs one shard attempt as a child process: stdout discarded (shard
/// records are engine-internal; the state file is the output), stderr
/// captured and returned in the diagnostic on failure.
fn run_shard_process(bin: &PathBuf, args: &[String]) -> Result<(), String> {
    let output = Command::new(bin)
        .args(args)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .output()
        .map_err(|e| format!("spawn {}: {e}", bin.display()))?;
    if output.status.success() {
        return Ok(());
    }
    let stderr = String::from_utf8_lossy(&output.stderr);
    let tail: Vec<&str> = stderr.lines().rev().take(4).collect();
    let tail: Vec<&str> = tail.into_iter().rev().collect();
    Err(format!(
        "exit {:?}: {}",
        output.status.code(),
        tail.join(" | ")
    ))
}

/// Runs the figure binary once over the merged whole-plan state
/// (`--resume`, no `--shard`) with stdio inherited: the engine finds
/// every point complete, allocates nothing, and emits the records —
/// byte-identical to a single-process run of the same plan.
///
/// # Errors
///
/// Fails when the binary cannot be spawned or exits non-zero.
pub fn emit_merged(job: &ShardJob) -> Result<(), CoreError> {
    let mut args = job.args.clone();
    args.push("--checkpoint".into());
    args.push(job.checkpoint.display().to_string());
    args.push("--resume".into());
    let status = Command::new(&job.bin)
        .args(&args)
        .status()
        .map_err(|e| bad(format!("spawn {}: {e}", job.bin.display())))?;
    if !status.success() {
        return Err(bad(format!(
            "emission run of {} exited with {:?}",
            job.bin.display(),
            status.code()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqec_check::sync::Mutex;

    #[test]
    fn drive_runs_every_shard_once_when_nothing_fails() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let log = Arc::clone(&seen);
        let outcomes = drive_shards(6, 3, 0, move |index, attempt| {
            log.lock().expect("log lock").push((index, attempt));
            Ok(())
        })
        .expect("all shards succeed");
        assert_eq!(outcomes.len(), 6);
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(o.index as usize, i);
            assert_eq!(o.attempts, 1);
        }
        let mut seen = seen.lock().expect("log lock").clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..6).map(|i| (i, 0)).collect::<Vec<_>>());
    }

    #[test]
    fn failed_shards_are_retried_with_resume_attempts() {
        // Shard 2 fails twice before succeeding; everything else is
        // clean. The retry budget of 2 absorbs exactly that.
        let fails = Arc::new(Mutex::new(0u32));
        let counter = Arc::clone(&fails);
        let outcomes = drive_shards(4, 2, 2, move |index, attempt| {
            if index == 2 && attempt < 2 {
                *counter.lock().expect("counter lock") += 1;
                Err(format!("injected crash #{attempt}"))
            } else {
                Ok(())
            }
        })
        .expect("retries absorb the crashes");
        assert_eq!(*fails.lock().expect("counter lock"), 2);
        assert_eq!(outcomes[2].attempts, 3, "first try + 2 retries");
        assert!(outcomes
            .iter()
            .filter(|o| o.index != 2)
            .all(|o| o.attempts == 1));
    }

    #[test]
    fn exhausted_retry_budget_is_a_hard_error() {
        let err = drive_shards(3, 2, 1, |index, _| {
            if index == 1 {
                Err("disk on fire".into())
            } else {
                Ok(())
            }
        })
        .expect_err("shard 1 never succeeds");
        let msg = err.to_string();
        assert!(
            msg.contains("shard 1/3") && msg.contains("disk on fire"),
            "{msg}"
        );
    }

    #[test]
    fn zero_shards_is_a_clean_no_op() {
        assert!(drive_shards(0, 4, 1, |_, _| Ok(()))
            .expect("no-op")
            .is_empty());
    }

    #[test]
    fn attempt_args_carry_the_shard_and_resume_flags() {
        let job = ShardJob {
            bin: PathBuf::from("target/release/fig06_ler_curves"),
            args: vec!["--shots".into(), "4096".into()],
            count: 2,
            checkpoint: PathBuf::from("ckpts"),
            resume: false,
        };
        let first = job.attempt_args(1, 0).expect("valid shard");
        assert_eq!(
            first,
            vec!["--shots", "4096", "--shard", "1/2", "--checkpoint", "ckpts"]
        );
        // A retry resumes; so does every attempt of a resume job.
        assert!(job
            .attempt_args(1, 1)
            .expect("valid")
            .contains(&"--resume".to_string()));
        let resumed = ShardJob {
            resume: true,
            ..job.clone()
        };
        assert!(resumed
            .attempt_args(0, 0)
            .expect("valid")
            .contains(&"--resume".to_string()));
        // Out-of-range shard indices are rejected, not wrapped.
        assert!(job.attempt_args(2, 0).is_err());
    }
}
