//! Makespan-aware shard assignment.
//!
//! The coordinator knows (or estimates) a cost for each shard and wants
//! the slowest worker to finish as early as possible. Optimal makespan
//! partitioning is NP-hard; the classical Longest-Processing-Time
//! heuristic — sort jobs by descending cost, give each to the currently
//! least-loaded worker — is a 4/3-approximation and, with the
//! deterministic tie-breaks used here (lowest index first on equal cost
//! and on equal load), yields the same assignment on every run.

/// One worker's share of an [`lpt_assign`] schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerPlan {
    /// Shard indices assigned to this worker, in dispatch order.
    pub shards: Vec<usize>,
    /// Sum of the assigned shards' costs.
    pub load: f64,
}

/// Assigns `costs.len()` shards to `workers` workers with the LPT
/// heuristic. Returns one [`WorkerPlan`] per worker; every shard index
/// appears in exactly one plan. `workers` is clamped to at least 1.
/// Deterministic: equal costs dispatch in ascending shard order, equal
/// loads fill the lowest-numbered worker first.
pub fn lpt_assign(costs: &[f64], workers: usize) -> Vec<WorkerPlan> {
    let workers = workers.max(1);
    let mut plans = vec![
        WorkerPlan {
            shards: Vec::new(),
            load: 0.0,
        };
        workers
    ];
    for &shard in &dispatch_order(costs) {
        let target = plans
            .iter()
            .enumerate()
            .min_by(|(i, a), (j, b)| {
                a.load
                    .partial_cmp(&b.load)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(i.cmp(j))
            })
            .map(|(i, _)| i)
            .unwrap_or(0);
        plans[target].shards.push(shard);
        plans[target].load += costs[shard].max(0.0);
    }
    plans
}

/// The order in which a shared work queue should feed shards to
/// whichever worker frees up next: descending cost, ties by ascending
/// index. Feeding the longest shards first bounds the tail — the last
/// shard dispatched is the cheapest, so no worker idles long waiting
/// for a straggler that started late.
pub fn dispatch_order(costs: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by(|&a, &b| {
        costs[b]
            .partial_cmp(&costs[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    order
}

/// The makespan (maximum worker load) of a schedule.
pub fn makespan(plans: &[WorkerPlan]) -> f64 {
    plans.iter().map(|p| p.load).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_shard_lands_exactly_once() {
        let costs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let plans = lpt_assign(&costs, 3);
        assert_eq!(plans.len(), 3);
        let mut all: Vec<usize> = plans.iter().flat_map(|p| p.shards.clone()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..costs.len()).collect::<Vec<_>>());
    }

    #[test]
    fn lpt_beats_naive_contiguous_split_on_skewed_costs() {
        // One huge shard and seven small ones: a contiguous 2-way split
        // puts the giant with three smalls on one worker (makespan 13),
        // LPT isolates it (makespan 10 vs the ideal 8.5).
        let costs = [10.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let plans = lpt_assign(&costs, 2);
        assert_eq!(makespan(&plans), 10.0);
        assert_eq!(plans[0].shards, vec![0]);
        assert_eq!(plans[1].shards.len(), 7);
    }

    #[test]
    fn dispatch_order_is_descending_cost_with_stable_ties() {
        assert_eq!(dispatch_order(&[2.0, 5.0, 2.0, 7.0]), vec![3, 1, 0, 2]);
        assert_eq!(dispatch_order(&[]), Vec::<usize>::new());
        // All-equal costs preserve shard order.
        assert_eq!(dispatch_order(&[1.0, 1.0, 1.0]), vec![0, 1, 2]);
    }

    #[test]
    fn degenerate_inputs_are_safe() {
        // Zero workers clamps to one; more workers than shards leaves
        // the extras empty.
        let plans = lpt_assign(&[1.0, 2.0], 0);
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].load, 3.0);
        let plans = lpt_assign(&[1.0], 4);
        assert_eq!(plans.iter().filter(|p| p.shards.is_empty()).count(), 3);
        assert_eq!(makespan(&lpt_assign(&[], 3)), 0.0);
    }

    #[test]
    fn assignment_is_deterministic() {
        let costs: Vec<f64> = (0..16).map(|i| ((i * 7919) % 13) as f64).collect();
        assert_eq!(lpt_assign(&costs, 4), lpt_assign(&costs, 4));
    }
}
