//! Bit-exact recombination of shard sweep states.
//!
//! Each shard worker runs its [`Shard::batch_range`] slice of every
//! point's batch stream and checkpoints a [`SweepState`] tagged with its
//! shard identity. Because batches are independent seeded RNG streams,
//! per-point tallies are *sums over disjoint batch sets*: adding the
//! shard tallies yields exactly the numbers a single uninterrupted
//! process would have produced — not statistically equivalent, but equal
//! integer for integer.
//!
//! [`merge_states`] verifies the shards belong together (same engine
//! fingerprint, batch size, point identities), that the partition is
//! complete (every index of one `N`-way split present exactly once,
//! every shard's cursor at the end of its slice), and combines them into
//! a whole-plan state whose cursors sit at `total_batches`. Written to
//! `DIR/<tag>.sweep.json`, that merged state makes a `--resume` run of
//! the figure binary allocate zero batches and emit its records purely
//! from the tallies — byte-identical to the single-process run.

use dqec_core::CoreError;
use dqec_sweep::shard::Shard;
use dqec_sweep::SweepState;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

fn bad(detail: String) -> CoreError {
    CoreError::Sweep { detail }
}

/// Merges the complete states of all `N` shards of one sweep into the
/// equivalent whole-plan state (additive tallies, cursors at the end,
/// no shard identity).
///
/// # Errors
///
/// Rejects an empty input; states with mismatched fingerprints, batch
/// sizes, or point identities; adaptive states; a partition with
/// missing, duplicate, or differently-sized shard sets; and any shard
/// whose cursor has not reached the end of its slice (an incomplete
/// shard must be resumed, not merged).
pub fn merge_states(states: &[SweepState]) -> Result<SweepState, CoreError> {
    let first = states
        .first()
        .ok_or_else(|| bad("nothing to merge: no shard states given".into()))?;
    let count = match first.shard {
        Some(shard) => shard.count(),
        None => return Err(bad("state 0 has no shard identity; already merged?".into())),
    };
    if states.len() != count as usize {
        return Err(bad(format!(
            "partition is {count}-way but {} state(s) given",
            states.len()
        )));
    }
    let mut seen = vec![false; count as usize];
    for (i, state) in states.iter().enumerate() {
        let shard = state
            .shard
            .ok_or_else(|| bad(format!("state {i} has no shard identity")))?;
        if shard.count() != count {
            return Err(bad(format!(
                "state {i} belongs to a {}-way partition, expected {count}-way",
                shard.count()
            )));
        }
        let slot = &mut seen[shard.index() as usize];
        if *slot {
            return Err(bad(format!("shard {} appears more than once", shard)));
        }
        *slot = true;
        if state.fingerprint != first.fingerprint {
            return Err(bad(format!(
                "shard {shard} fingerprint {:#018x} != shard {} fingerprint {:#018x}; \
                 these states are not slices of the same sweep",
                state.fingerprint,
                first.shard.map_or(0, |s| s.index()),
                first.fingerprint
            )));
        }
        if state.batch != first.batch {
            return Err(bad(format!(
                "shard {shard} batch size {} != {}",
                state.batch, first.batch
            )));
        }
        if state.precision.is_some() {
            return Err(bad(format!(
                "shard {shard} is adaptive; sharded sweeps are uniform by contract"
            )));
        }
        if state.points.len() != first.points.len() {
            return Err(bad(format!(
                "shard {shard} has {} points, shard 0 has {}",
                state.points.len(),
                first.points.len()
            )));
        }
    }
    // `seen` is all-true here: count states, no duplicates.

    let mut merged = first.clone();
    merged.shard = None;
    merged.rounds_done = 0;
    for state in states {
        merged.rounds_done += state.rounds_done;
        // Verified present for every state above.
        let shard: Shard = match state.shard {
            Some(s) => s,
            None => continue,
        };
        for (slot, entry) in merged.points.iter_mut().zip(&state.points) {
            if entry.spec != slot.spec
                || entry.point != slot.point
                || entry.p.to_bits() != slot.p.to_bits()
                || entry.total_batches != slot.total_batches
            {
                return Err(bad(format!(
                    "shard {shard} point (spec {}, point {}, p {}, {} batches) does not \
                     line up with shard 0's (spec {}, point {}, p {}, {} batches)",
                    entry.spec,
                    entry.point,
                    entry.p,
                    entry.total_batches,
                    slot.spec,
                    slot.point,
                    slot.p,
                    slot.total_batches
                )));
            }
            if entry.total_batches == 0 {
                return Err(bad(format!(
                    "shard {shard} point (spec {}, point {}) has no batch total \
                     (version-1 state file?); cannot verify completeness",
                    entry.spec, entry.point
                )));
            }
            let slice = shard.batch_range(entry.total_batches);
            if entry.tally.next_batch != slice.end {
                return Err(bad(format!(
                    "shard {shard} is incomplete at point (spec {}, point {}): cursor {} \
                     of slice {}..{}; resume it before merging",
                    entry.spec, entry.point, entry.tally.next_batch, slice.start, slice.end
                )));
            }
        }
    }
    // Tallies are additive over disjoint batch sets; shard 0's numbers
    // are already in `merged`, so add the rest.
    for state in states.iter().filter(|s| s.shard != first.shard) {
        for (slot, entry) in merged.points.iter_mut().zip(&state.points) {
            slot.tally.shots += entry.tally.shots;
            slot.tally.failures += entry.tally.failures;
        }
    }
    for slot in &mut merged.points {
        slot.tally.next_batch = slot.total_batches;
    }
    Ok(merged)
}

/// One merged plan reported by [`merge_dir`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeReport {
    /// The plan tag (state files were `<tag>.shard<i>of<N>.sweep.json`).
    pub tag: String,
    /// How many shard states were combined.
    pub shards: u32,
    /// Sweep points in the merged state.
    pub points: usize,
    /// Total shots across all points after merging.
    pub shots: usize,
    /// Where the merged whole-plan state was written.
    pub out: PathBuf,
}

/// Splits a shard state-file name into its plan tag, e.g.
/// `fig06.defective.shard1of2.sweep.json` → `fig06.defective`.
fn shard_file_tag(name: &str) -> Option<&str> {
    let stem = name.strip_suffix(".sweep.json")?;
    let (tag, shard) = stem.rsplit_once(".shard")?;
    // `<i>of<n>`, both numeric — anything else is not a shard file.
    let (i, n) = shard.split_once("of")?;
    if i.parse::<u32>().is_ok() && n.parse::<u32>().is_ok() {
        Some(tag)
    } else {
        None
    }
}

/// Merges every complete shard set found in `dir`: groups
/// `<tag>.shard<i>of<N>.sweep.json` files by tag, runs
/// [`merge_states`] per group, and writes each merged whole-plan state
/// to `dir/<tag>.sweep.json` (atomically, overwriting any previous
/// merge) so a `--resume --checkpoint dir` run of the figure binary
/// emits the final records without sampling a single new shot.
///
/// # Errors
///
/// Propagates directory I/O failures, state-file parse errors, and
/// every [`merge_states`] verification failure; reports when no shard
/// files are present at all.
pub fn merge_dir(dir: &Path) -> Result<Vec<MergeReport>, CoreError> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| bad(format!("read checkpoint dir {}: {e}", dir.display())))?;
    let mut groups: BTreeMap<String, Vec<PathBuf>> = BTreeMap::new();
    for entry in entries {
        let entry = entry.map_err(|e| bad(format!("read checkpoint dir: {e}")))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(tag) = shard_file_tag(name) {
            groups
                .entry(tag.to_string())
                .or_default()
                .push(entry.path());
        }
    }
    if groups.is_empty() {
        return Err(bad(format!(
            "no shard state files (*.shard<i>of<N>.sweep.json) in {}",
            dir.display()
        )));
    }
    let mut reports = Vec::with_capacity(groups.len());
    for (tag, mut paths) in groups {
        paths.sort();
        let mut states = Vec::with_capacity(paths.len());
        for path in &paths {
            states.push(SweepState::load(path)?);
        }
        let merged = merge_states(&states).map_err(|e| bad(format!("plan {tag:?}: {e}")))?;
        let out = dir.join(format!("{tag}.sweep.json"));
        merged.save(&out)?;
        reports.push(MergeReport {
            tag,
            shards: states.len() as u32,
            points: merged.points.len(),
            shots: merged.points.iter().map(|p| p.tally.shots).sum(),
            out,
        });
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqec_sweep::checkpoint::{PointEntry, PointTally};

    /// A synthetic complete shard state: 2 points, `total` batches each,
    /// `batch` shots per batch, failures `fail_per_batch` per batch.
    fn shard_state(index: u32, count: u32, total: u64, batch: usize) -> SweepState {
        let shard = Shard::new(index, count).expect("valid shard");
        let slice = shard.batch_range(total);
        let batches = (slice.end - slice.start) as usize;
        let points = (0..2)
            .map(|j| PointEntry {
                spec: 0,
                point: j,
                series: "d=3".into(),
                p: 1e-3 * (j + 1) as f64,
                total_batches: total,
                tally: PointTally {
                    shots: batches * batch,
                    failures: batches * (j + 1),
                    next_batch: slice.end,
                },
            })
            .collect();
        SweepState {
            fingerprint: 0xabc,
            batch,
            precision: None,
            shard: Some(shard),
            rounds_done: 1,
            points,
        }
    }

    #[test]
    fn merge_sums_tallies_and_clears_shard_identity() {
        let states: Vec<SweepState> = (0..3).map(|i| shard_state(i, 3, 10, 64)).collect();
        let merged = merge_states(&states).expect("merge");
        assert_eq!(merged.shard, None);
        assert_eq!(merged.fingerprint, 0xabc);
        for (j, pt) in merged.points.iter().enumerate() {
            assert_eq!(pt.tally.shots, 10 * 64, "all batches' shots");
            assert_eq!(pt.tally.failures, 10 * (j + 1));
            assert_eq!(pt.tally.next_batch, 10, "cursor at the whole-plan end");
        }
        // Order independence: any permutation merges identically.
        let shuffled = vec![states[2].clone(), states[0].clone(), states[1].clone()];
        assert_eq!(merge_states(&shuffled).expect("merge"), merged);
    }

    #[test]
    fn merge_rejects_broken_partitions() {
        let states: Vec<SweepState> = (0..3).map(|i| shard_state(i, 3, 10, 64)).collect();

        // Missing shard.
        let err = merge_states(&states[..2]).expect_err("2 of 3");
        assert!(err.to_string().contains("3-way"), "{err}");

        // Duplicate shard.
        let dup = vec![states[0].clone(), states[1].clone(), states[1].clone()];
        let err = merge_states(&dup).expect_err("duplicate");
        assert!(err.to_string().contains("more than once"), "{err}");

        // Foreign fingerprint.
        let mut alien = states.clone();
        alien[1].fingerprint ^= 1;
        let err = merge_states(&alien).expect_err("fingerprint");
        assert!(err.to_string().contains("fingerprint"), "{err}");

        // Incomplete shard (cursor short of its slice end).
        let mut partial = states.clone();
        partial[2].points[0].tally.next_batch -= 1;
        let err = merge_states(&partial).expect_err("incomplete");
        assert!(err.to_string().contains("incomplete"), "{err}");

        // Already-merged input.
        let merged = merge_states(&states).expect("merge");
        let err = merge_states(&[merged]).expect_err("no shard identity");
        assert!(err.to_string().contains("shard identity"), "{err}");

        // Empty input.
        assert!(merge_states(&[]).is_err());
    }

    #[test]
    fn shard_file_names_parse() {
        assert_eq!(
            shard_file_tag("fig06_ler_curves.defective.shard1of2.sweep.json"),
            Some("fig06_ler_curves.defective")
        );
        assert_eq!(
            shard_file_tag("fig05.slopes.shard0of4.sweep.json"),
            Some("fig05.slopes")
        );
        // Whole-plan states, temp files, and junk are not shard files.
        for name in [
            "fig06.sweep.json",
            "fig06.shard1of2.sweep.json.tmp",
            "fig06.shardXofY.sweep.json",
            "notes.txt",
        ] {
            assert_eq!(shard_file_tag(name), None, "{name}");
        }
    }

    #[test]
    fn merge_dir_round_trips_through_files() {
        let dir = std::env::temp_dir().join(format!("dqec_dist_merge_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        for i in 0..2 {
            let state = shard_state(i, 2, 8, 32);
            state
                .save(&dir.join(format!("figX.plan.shard{i}of2.sweep.json")))
                .expect("save shard state");
        }
        let reports = merge_dir(&dir).expect("merge dir");
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].tag, "figX.plan");
        assert_eq!(reports[0].shards, 2);
        assert_eq!(reports[0].shots, 2 * 8 * 32);
        let merged = SweepState::load(&dir.join("figX.plan.sweep.json")).expect("load merged");
        assert_eq!(merged.shard, None);
        assert_eq!(merged.points[0].tally.next_batch, 8);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
