//! The distributed-sweep CLI: coordinator (`run`), recombiner
//! (`merge`), and worker daemon (`agent`).
//!
//! ```text
//! # split fig06 across 2 local worker processes, merge, and emit the
//! # records exactly as one process would have:
//! dqec_dist run --bin target/release/fig06_ler_curves --shards 2 \
//!     --checkpoint ckpts --emit -- --shots 20000
//!
//! # the same, across two remote agents:
//! dqec_dist agent --addr 0.0.0.0:7462 --bins target/release &   # on each worker
//! dqec_dist run --bin fig06_ler_curves --shards 4 --checkpoint ckpts \
//!     --agents hostA:7462,hostB:7462 --emit -- --shots 20000
//! ```

use dqec_dist::{
    merge_dir, run_local, run_remote, AgentConfig, DistReport, LocalOptions, RemoteJob,
    RemoteOptions, ShardJob,
};
use std::path::PathBuf;

const USAGE: &str = "\
usage: dqec_dist run   --bin PATH|NAME --shards N --checkpoint DIR
                       [--workers K] [--retries R] [--worker-threads T]
                       [--agents HOST:PORT,...] [--timeout-ms MS]
                       [--resume] [--emit] [-- ARGS...]
       dqec_dist merge --checkpoint DIR
       dqec_dist agent [--addr A] [--bins DIR] [--scratch DIR]
                       [--heartbeat-ms MS]

run    coordinate an N-way sharded sweep of one figure binary and merge
       the shard states bit-exactly. Everything after `--` is passed
       through to the binary (e.g. --shots, --seed, --decoder).
  --bin PATH|NAME   the figure binary: a path for local runs, a bare
                    name (resolved in each agent's --bins) for remote
  --shards N        partition width
  --checkpoint DIR  where shard states land and the merge writes
  --workers K       concurrent local shard processes (default 2)
  --retries R       per-shard crash/straggler retry budget (default 2)
  --worker-threads T  --threads cap passed to each local shard process
  --agents LIST     dispatch to these agents instead of local processes
  --timeout-ms MS   straggler threshold for remote dispatch (default 5000)
  --resume          resume an earlier partial distributed run
  --emit            after merging, run the binary once with --resume on
                    the merged state (stdout inherited): emits records
                    byte-identical to a single-process run

merge  recombine existing DIR/<tag>.shard<i>of<N>.sweep.json files
       into DIR/<tag>.sweep.json (verifies fingerprints and partition
       completeness; rejects incomplete shards)

agent  run the worker daemon: executes `shard` requests from a
       coordinator, heartbeats while working, ships state files inline
  --addr A          listen address (default 127.0.0.1:7462)
  --bins DIR        directory holding the figure binaries (default .)
  --scratch DIR     per-job checkpoint scratch (default dist-scratch)
  --heartbeat-ms MS progress-frame period (default 500)";

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}\n{USAGE}");
    std::process::exit(2);
}

fn value(it: &mut std::slice::Iter<'_, String>, flag: &str) -> String {
    it.next()
        .unwrap_or_else(|| fail(&format!("{flag} requires a value")))
        .clone()
}

fn numeric<T: std::str::FromStr>(it: &mut std::slice::Iter<'_, String>, flag: &str) -> T {
    let v = value(it, flag);
    v.parse()
        .unwrap_or_else(|_| fail(&format!("bad {flag} value {v:?}")))
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return;
    }
    match argv.first().map(String::as_str) {
        Some("run") => cmd_run(&argv[1..]),
        Some("merge") => cmd_merge(&argv[1..]),
        Some("agent") => cmd_agent(&argv[1..]),
        Some(other) => fail(&format!("unknown subcommand {other:?}")),
        None => fail("a subcommand is required"),
    }
}

fn cmd_run(args: &[String]) {
    let mut bin: Option<String> = None;
    let mut shards: Option<u32> = None;
    let mut checkpoint: Option<PathBuf> = None;
    let mut workers = 2usize;
    let mut retries = 2u32;
    let mut worker_threads: Option<usize> = None;
    let mut agents: Vec<String> = Vec::new();
    let mut timeout_ms = 5_000u64;
    let mut resume = false;
    let mut emit = false;
    let mut passthrough: Vec<String> = Vec::new();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--bin" => bin = Some(value(&mut it, "--bin")),
            "--shards" => shards = Some(numeric(&mut it, "--shards")),
            "--checkpoint" => checkpoint = Some(PathBuf::from(value(&mut it, "--checkpoint"))),
            "--workers" => workers = numeric(&mut it, "--workers"),
            "--retries" => retries = numeric(&mut it, "--retries"),
            "--worker-threads" => worker_threads = Some(numeric(&mut it, "--worker-threads")),
            "--agents" => {
                agents = value(&mut it, "--agents")
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
            }
            "--timeout-ms" => timeout_ms = numeric(&mut it, "--timeout-ms"),
            "--resume" => resume = true,
            "--emit" => emit = true,
            "--" => {
                passthrough = it.cloned().collect();
                break;
            }
            other => fail(&format!("unknown flag {other:?}")),
        }
    }
    let bin = bin.unwrap_or_else(|| fail("run requires --bin"));
    let shards = shards.unwrap_or_else(|| fail("run requires --shards N"));
    if shards == 0 {
        fail("--shards must be >= 1");
    }
    let checkpoint = checkpoint.unwrap_or_else(|| fail("run requires --checkpoint DIR"));
    for owned in ["--shard", "--checkpoint", "--resume", "--out"] {
        if passthrough.iter().any(|a| a == owned) {
            fail(&format!(
                "{owned} is coordinator-owned; do not pass it after --"
            ));
        }
    }

    let report = if agents.is_empty() {
        let job = ShardJob {
            bin: PathBuf::from(&bin),
            args: passthrough.clone(),
            count: shards,
            checkpoint: checkpoint.clone(),
            resume,
        };
        let opts = LocalOptions {
            workers,
            max_retries: retries,
            threads_per_worker: worker_threads,
        };
        let report = run_local(&job, &opts).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        });
        if emit {
            dqec_dist::coordinator::emit_merged(&job).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(1);
            });
        }
        report
    } else {
        let job = RemoteJob {
            bin: bin.clone(),
            args: passthrough.clone(),
            count: shards,
            checkpoint: checkpoint.clone(),
        };
        let opts = RemoteOptions {
            agents,
            max_retries: retries,
            heartbeat_timeout_ms: timeout_ms,
        };
        let report = run_remote(&job, &opts).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        });
        if emit {
            // Remote --bin is a bare name; the emission run happens
            // locally, so the binary must also exist here (same layout
            // as an agent's --bins is the caller's responsibility).
            dqec_dist::coordinator::emit_merged(&ShardJob {
                bin: PathBuf::from(&bin),
                args: passthrough,
                count: shards,
                checkpoint,
                resume,
            })
            .unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(1);
            });
        }
        report
    };
    print_report(&report);
}

fn print_report(report: &DistReport) {
    for outcome in &report.outcomes {
        eprintln!(
            "[dist] shard {} done in {:.2}s ({} attempt{})",
            outcome.index,
            outcome.duration_ns as f64 / 1e9,
            outcome.attempts,
            if outcome.attempts == 1 { "" } else { "s" },
        );
    }
    for merged in &report.merged {
        eprintln!(
            "[dist] merged {} ({} shards, {} points, {} shots) -> {}",
            merged.tag,
            merged.shards,
            merged.points,
            merged.shots,
            merged.out.display()
        );
    }
    eprintln!(
        "[dist] dispatch {:.2}s, merge {:.3}s",
        report.dispatch_ns as f64 / 1e9,
        report.merge_ns as f64 / 1e9
    );
}

fn cmd_merge(args: &[String]) {
    let mut checkpoint: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--checkpoint" => checkpoint = Some(PathBuf::from(value(&mut it, "--checkpoint"))),
            other => fail(&format!("unknown flag {other:?}")),
        }
    }
    let checkpoint = checkpoint.unwrap_or_else(|| fail("merge requires --checkpoint DIR"));
    match merge_dir(&checkpoint) {
        Ok(reports) => {
            for merged in &reports {
                println!(
                    "merged {} ({} shards, {} points, {} shots) -> {}",
                    merged.tag,
                    merged.shards,
                    merged.points,
                    merged.shots,
                    merged.out.display()
                );
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

fn cmd_agent(args: &[String]) {
    let mut config = AgentConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => config.addr = value(&mut it, "--addr"),
            "--bins" => config.bin_dir = PathBuf::from(value(&mut it, "--bins")),
            "--scratch" => config.scratch = PathBuf::from(value(&mut it, "--scratch")),
            "--heartbeat-ms" => config.heartbeat_ms = numeric(&mut it, "--heartbeat-ms"),
            other => fail(&format!("unknown flag {other:?}")),
        }
    }
    let handle = dqec_dist::start_agent(config).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    eprintln!("dqec_dist agent: listening on {}", handle.addr());
    handle.wait();
}
