//! Model suite for the coordinator's dispatch/retry state machine
//! (`RUSTFLAGS="--cfg dqec_check"`): `drive_shards` with an injected
//! executor in place of real processes, explored under the
//! deterministic concurrency checker. Every schedule must run every
//! shard to completion exactly once, absorb injected crashes through
//! the retry path, and terminate (no lost wakeups between the dispatch
//! queue, the executor threads, and the result loop).

#![cfg(dqec_check)]

use dqec_check::sync::Mutex;
use dqec_check::{check, Config};
use dqec_dist::drive_shards;
use std::sync::Arc;

/// Clean runs: whatever the interleaving of executors and the retry
/// loop, each shard executes exactly once and the outcomes come back
/// complete and ordered.
#[test]
fn every_schedule_runs_each_shard_exactly_once() {
    let outcome = check(&Config::random(300).max_steps(200_000), || {
        let runs = Arc::new(Mutex::new(vec![0u32; 3]));
        let log = Arc::clone(&runs);
        let outcomes = drive_shards(3, 2, 0, move |index, _attempt| {
            log.lock().expect("run log")[index as usize] += 1;
            Ok(())
        })
        .expect("clean run succeeds");
        assert_eq!(outcomes.len(), 3, "missing outcomes");
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(o.index as usize, i, "outcomes out of shard order");
            assert_eq!(o.attempts, 1, "clean shard re-ran");
        }
        assert_eq!(
            *runs.lock().expect("run log"),
            vec![1, 1, 1],
            "a shard ran zero or multiple times"
        );
    });
    assert!(
        outcome.failure.is_none(),
        "coordinator lost or duplicated shards: {}",
        outcome.failure.map(|f| f.report()).unwrap_or_default()
    );
    eprintln!(
        "coordinator exactly-once: {} executions",
        outcome.executions
    );
}

/// Crash-retry: a shard that fails once is re-dispatched (the process
/// backend adds `--resume`) and the run still completes under every
/// schedule, with the retry visible in the outcome.
#[test]
fn injected_crash_is_retried_under_every_schedule() {
    let outcome = check(&Config::random(300).max_steps(200_000), || {
        let outcomes = drive_shards(2, 2, 1, |index, attempt| {
            if index == 1 && attempt == 0 {
                Err("injected crash".into())
            } else {
                Ok(())
            }
        })
        .expect("retry absorbs the crash");
        assert_eq!(outcomes[0].attempts, 1);
        assert_eq!(outcomes[1].attempts, 2, "crash retry not recorded");
    });
    assert!(
        outcome.failure.is_none(),
        "retry path lost work or deadlocked: {}",
        outcome.failure.map(|f| f.report()).unwrap_or_default()
    );
    eprintln!("coordinator retry: {} executions", outcome.executions);
}

/// Exhausted budgets terminate: when a shard can never succeed the
/// coordinator must error out and join its executors — not hang — under
/// every schedule.
#[test]
fn exhausted_retries_terminate_cleanly() {
    let outcome = check(&Config::random(300).max_steps(200_000), || {
        let err = drive_shards(2, 2, 1, |index, _attempt| {
            if index == 0 {
                Err("permanently broken".into())
            } else {
                Ok(())
            }
        })
        .expect_err("budget exhausts");
        assert!(
            err.to_string().contains("permanently broken"),
            "diagnostic lost: {err}"
        );
    });
    assert!(
        outcome.failure.is_none(),
        "failure path hung or panicked: {}",
        outcome.failure.map(|f| f.report()).unwrap_or_default()
    );
    eprintln!("coordinator exhaustion: {} executions", outcome.executions);
}
