//! The subsystem's core guarantee, tested end to end at the engine
//! level: split a sweep into `N` shards, run each slice through its own
//! engine (crashing and resuming one of them along the way), merge the
//! shard states, and the records a `--resume` run emits over the merged
//! state are **bit-identical** to an uninterrupted single-process run.
//!
//! The process-level version of the same property (real binaries, real
//! SIGKILL) runs in CI as the `dist-smoke` job; these tests pin the
//! math underneath it across randomized plans and shard counts.

use dqec_chiplet::record::{MemorySink, Record};
use dqec_chiplet::runner::ExperimentSpec;
use dqec_core::adapt::AdaptedPatch;
use dqec_core::layout::PatchLayout;
use dqec_core::{Coord, DefectSet};
use dqec_dist::merge::merge_states;
use dqec_dist::Shard;
use dqec_sweep::checkpoint::SweepState;
use dqec_sweep::{EngineConfig, SweepEngine, SweepPlan};
use proptest::prelude::*;
use std::path::PathBuf;

fn patch(l: u32) -> AdaptedPatch {
    AdaptedPatch::new(PatchLayout::memory(l), &DefectSet::new())
}

fn defective_patch(l: u32) -> AdaptedPatch {
    let mut defects = DefectSet::new();
    defects.add_data(Coord::new(5, 5));
    AdaptedPatch::new(PatchLayout::memory(l), &defects)
}

/// A small mixed-cost plan, the shape fig05/06/11 run at scale.
fn plan(seed: u64, shots: usize) -> SweepPlan {
    let mut plan = SweepPlan::new();
    plan.push(
        ExperimentSpec::memory(patch(3))
            .ps(&[6e-3, 9e-3])
            .rounds(3)
            .shots(shots)
            .seed(seed)
            .label("d=3"),
    );
    plan.push(
        ExperimentSpec::memory(defective_patch(5))
            .ps(&[6e-3])
            .shots(shots)
            .seed(seed + 1)
            .label("defective d=5"),
    );
    plan
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dqec_dist_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch");
    dir
}

/// Engine config shared by every run of one logical sweep: small
/// batches so plans span several rounds and shard slices are nontrivial.
fn base_config() -> EngineConfig {
    EngineConfig {
        batch: 512,
        round_batches: 2,
        ..EngineConfig::default()
    }
}

fn ler_records(sink: &MemorySink) -> Vec<String> {
    sink.records
        .iter()
        .filter_map(|r| match r {
            Record::Ler(l) => Some(format!(
                "{}\t{}\t{}\t{}",
                l.series, l.point.p, l.point.shots, l.point.failures
            )),
            _ => None,
        })
        .collect()
}

/// Runs the full distributed protocol at the engine level and checks
/// bit-exactness against the single-process run. Returns the merged
/// state for further poking.
fn run_partitioned(seed: u64, shots: usize, count: u32, tag: &str) -> SweepState {
    let plan = plan(seed, shots);
    let dir = scratch(tag);

    // The single-process truth.
    let mut whole_sink = MemorySink::default();
    let whole_state = dir.join("whole.sweep.json");
    SweepEngine::new(EngineConfig {
        checkpoint: Some(whole_state.clone()),
        ..base_config()
    })
    .run(&plan, &mut whole_sink)
    .expect("whole-plan run");
    let whole = SweepState::load(&whole_state).expect("whole state");

    // Each shard through its own engine (its own process, at scale).
    let mut states = Vec::new();
    for index in 0..count {
        let shard = Shard::new(index, count).expect("valid shard");
        let file = dir.join(format!("plan.shard{}.sweep.json", shard.file_tag()));
        SweepEngine::new(EngineConfig {
            shard: Some(shard),
            checkpoint: Some(file.clone()),
            ..base_config()
        })
        .run(&plan, &mut MemorySink::default())
        .expect("shard run");
        states.push(SweepState::load(&file).expect("shard state"));
    }

    let merged = merge_states(&states).expect("partition merges");
    assert_eq!(merged.fingerprint, whole.fingerprint);
    assert_eq!(merged.batch, whole.batch);
    assert_eq!(
        merged.points, whole.points,
        "merged tallies differ from the single-process run"
    );

    // The emission trick: resume a whole-plan engine over the merged
    // state; it allocates nothing and emits the records — which must
    // be byte-identical to the uninterrupted run's.
    let merged_file = dir.join("merged.sweep.json");
    merged.save(&merged_file).expect("save merged");
    let mut emitted_sink = MemorySink::default();
    SweepEngine::new(EngineConfig {
        checkpoint: Some(merged_file),
        resume: true,
        ..base_config()
    })
    .run(&plan, &mut emitted_sink)
    .expect("emission run");
    assert_eq!(
        ler_records(&emitted_sink),
        ler_records(&whole_sink),
        "merged-state emission diverged from the single-process records"
    );

    let _ = std::fs::remove_dir_all(&dir);
    merged
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn any_partition_merges_bit_exactly(
        seed in 0u64..1000,
        shots in 3usize..6,
        count in 1u32..5,
    ) {
        // 1536..2560 shots at batch 512 = 3..5 batches per point, so
        // with up to 4 shards some slices are empty — the degenerate
        // cases ride along with the typical ones.
        run_partitioned(seed, shots * 512, count, "prop");
    }
}

#[test]
fn killed_then_resumed_shard_merges_identically() {
    let seed = 7;
    let shots = 2048;
    let count = 2;
    let plan = plan(seed, shots);
    let dir = scratch("kill");

    // Reference: the clean distributed run (itself checked against the
    // single-process run inside).
    let clean = run_partitioned(seed, shots, count, "kill_ref");

    // Shard 0 runs clean; shard 1 is "killed" after its first
    // allocation round (state durably on disk, like a SIGKILL between
    // rounds) and then re-dispatched with resume — exactly what the
    // coordinator's retry path does.
    let mut states = Vec::new();
    for index in 0..count {
        let shard = Shard::new(index, count).expect("valid shard");
        let file = dir.join(format!("plan.shard{}.sweep.json", shard.file_tag()));
        let cfg = EngineConfig {
            shard: Some(shard),
            checkpoint: Some(file.clone()),
            ..base_config()
        };
        if index == 1 {
            let err = SweepEngine::new(EngineConfig {
                halt_after_rounds: Some(1),
                ..cfg.clone()
            })
            .run(&plan, &mut MemorySink::default())
            .expect_err("deliberate mid-shard kill");
            assert!(err.to_string().contains("halted"), "{err}");
            assert!(file.exists(), "killed shard left no state");
            SweepEngine::new(EngineConfig {
                resume: true,
                ..cfg
            })
            .run(&plan, &mut MemorySink::default())
            .expect("resumed shard completes");
        } else {
            SweepEngine::new(cfg)
                .run(&plan, &mut MemorySink::default())
                .expect("clean shard");
        }
        states.push(SweepState::load(&file).expect("shard state"));
    }
    let merged = merge_states(&states).expect("partition merges");
    assert_eq!(
        merged.points, clean.points,
        "kill+resume changed the merged tallies"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn merge_rejects_shards_of_a_different_plan() {
    let dir = scratch("foreign");
    let count = 2;
    let mut states = Vec::new();
    // Shard 0 from one plan, shard 1 from another (different seed →
    // different fingerprint): the merge must refuse the mix.
    for (index, seed) in [(0u32, 1u64), (1, 2)] {
        let shard = Shard::new(index, count).expect("valid shard");
        let file = dir.join(format!("s{index}.shard{}.sweep.json", shard.file_tag()));
        SweepEngine::new(EngineConfig {
            shard: Some(shard),
            checkpoint: Some(file.clone()),
            ..base_config()
        })
        .run(&plan(seed, 1024), &mut MemorySink::default())
        .expect("shard run");
        states.push(SweepState::load(&file).expect("shard state"));
    }
    let err = merge_states(&states).expect_err("foreign shard must be rejected");
    assert!(err.to_string().contains("fingerprint"), "{err}");

    // The engine is equally strict the other way around: a shard
    // engine refuses to resume a state belonging to a different shard.
    let swapped = dir.join("swapped.sweep.json");
    states[1].save(&swapped).expect("save");
    let err = SweepEngine::new(EngineConfig {
        shard: Some(Shard::new(0, 2).expect("valid shard")),
        checkpoint: Some(swapped),
        resume: true,
        ..base_config()
    })
    .run(&plan(2, 1024), &mut MemorySink::default())
    .expect_err("wrong shard identity");
    assert!(err.to_string().contains("shard"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}
