//! `dqec_check` — a shuttle-style deterministic concurrency model
//! checker for the dqec workspace, plus the sync-primitive facade that
//! threads the vendored work-stealing `rayon` shim through it.
//!
//! # The facade
//!
//! [`sync`] and [`thread`] mirror the `std::sync` / `std::thread` API
//! subset the workspace's concurrent code uses. In a normal build they
//! are plain re-exports of the `std` types — zero cost, zero behavior
//! change. Compiled with `RUSTFLAGS="--cfg dqec_check"` (the same
//! convention as loom's `--cfg loom`) they become *instrumented*
//! versions whose every operation is a preemption point driven by a
//! deterministic scheduler, so a test can systematically explore thread
//! interleavings instead of hoping the OS scheduler stumbles onto the
//! bad one.
//!
//! # The checker
//!
//! [`model`] (panic on failure) and [`check`] (return an [`Outcome`])
//! run a closure many times, each run under a different schedule:
//!
//! * **Random** — uniformly random preemption at every atomic/lock op,
//!   seeded per execution; the failing seed is printed and can be
//!   replayed bit-exactly via the `DQEC_CHECK_SEED` env var.
//! * **PCT** — PCT-style random thread priorities with a few random
//!   priority-change points per execution, good at surfacing
//!   low-probability orderings.
//! * **DFS** — bounded exhaustive depth-first enumeration of every
//!   scheduling (and weak-memory read) choice, for small thread counts.
//!
//! Runtime overrides: `DQEC_CHECK_ITERS` scales iteration counts,
//! `DQEC_CHECK_SEED` replays exactly one execution bit-for-bit, and
//! `DQEC_CHECK_SALT` XOR-perturbs the default seed sequence so CI can
//! explore fresh schedules on every run (explicit [`Config::seed`]
//! values are unaffected, keeping replay tests deterministic).
//!
//! Beyond interleavings, the instrumented atomics model *weak memory*:
//! a `Relaxed`/non-acquiring load may observe any coherent stale value,
//! and only `Release`/`Acquire` (or `SeqCst`) edges transfer
//! happens-before (tracked with vector clocks). Weakening a `Release`
//! store to `Relaxed` is therefore an observable — and catchable — bug
//! even on x86 hardware that would never exhibit it natively.
//!
//! On failure the checker prints the seed and a per-step trace (thread
//! id + source operation) of the failing execution. Failures are
//! classified as panics (assertion violations in the modeled code),
//! deadlocks (every live thread blocked), or step-bound overruns
//! (possible hang/livelock; whether the bound is a failure or a pruned
//! execution is configurable per strategy).
//!
//! # Honest limits
//!
//! `SeqCst` is approximated as `AcqRel` plus coherence-latest loads (no
//! global SC order is tracked, fences are not modeled); stale reads are
//! bounded by an eventual-visibility rule (a thread re-reading the same
//! atomic is forced to the newest value after a few stale observations)
//! so spin loops terminate; `Mutex` poisoning is not modeled. These are
//! the standard trade-offs of randomized model checking — the point is
//! catching real ordering and interleaving bugs cheaply, not proving
//! full C++11 semantics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod sync;
pub mod thread;

#[cfg(dqec_check)]
pub(crate) mod runtime;

use std::fmt;

/// The schedule-exploration strategy of one [`check`]/[`model`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Uniformly random preemption at every instrumented operation.
    Random,
    /// PCT-style: random per-thread priorities, the highest-priority
    /// runnable thread runs, with `depth` random priority-change
    /// points per execution.
    Pct {
        /// Number of priority-change points per execution.
        depth: usize,
    },
    /// Bounded exhaustive depth-first enumeration of all scheduling and
    /// weak-memory choices. Only tractable for small thread counts.
    Dfs,
}

/// Configuration of one checker run.
#[derive(Debug, Clone)]
pub struct Config {
    /// Exploration strategy.
    pub strategy: Strategy,
    /// Number of executions (random strategies) or the execution budget
    /// (DFS; enumeration stops early when the space is exhausted).
    /// Overridable at runtime with `DQEC_CHECK_ITERS`.
    pub iterations: usize,
    /// Per-execution step budget; exceeding it aborts the execution.
    pub max_steps: u64,
    /// Whether exceeding [`Config::max_steps`] is a failure (a likely
    /// hang/livelock) or merely prunes the execution. Defaults to
    /// failure for `Random` — whose scheduler is probabilistically fair,
    /// so a bound overrun almost surely means no progress is possible —
    /// and to pruning for `Pct`/`Dfs`, which can legitimately starve a
    /// spinning thread.
    pub bound_is_failure: bool,
    /// Base seed for random strategies; `None` uses a fixed default.
    /// `DQEC_CHECK_SEED` overrides everything and replays one execution.
    pub seed: Option<u64>,
    /// How many trailing trace steps to keep for failure reports.
    pub trace_capacity: usize,
}

impl Config {
    /// A random-scheduling configuration running `iterations` executions.
    pub fn random(iterations: usize) -> Config {
        Config {
            strategy: Strategy::Random,
            iterations,
            max_steps: 20_000,
            bound_is_failure: true,
            seed: None,
            trace_capacity: 64,
        }
    }

    /// A PCT-style configuration with `depth` priority-change points.
    pub fn pct(iterations: usize, depth: usize) -> Config {
        Config {
            strategy: Strategy::Pct { depth },
            iterations,
            max_steps: 20_000,
            bound_is_failure: false,
            seed: None,
            trace_capacity: 64,
        }
    }

    /// A bounded exhaustive DFS configuration with an execution budget.
    pub fn dfs(max_executions: usize) -> Config {
        Config {
            strategy: Strategy::Dfs,
            iterations: max_executions,
            max_steps: 2_000,
            bound_is_failure: false,
            seed: None,
            trace_capacity: 64,
        }
    }

    /// Sets the per-execution step budget.
    pub fn max_steps(mut self, steps: u64) -> Config {
        self.max_steps = steps;
        self
    }

    /// Sets the base seed for random strategies.
    pub fn seed(mut self, seed: u64) -> Config {
        self.seed = Some(seed);
        self
    }

    /// Sets whether a step-bound overrun fails the run.
    pub fn bound_is_failure(mut self, fail: bool) -> Config {
        self.bound_is_failure = fail;
        self
    }

    /// Iteration count after the `DQEC_CHECK_ITERS` override.
    #[cfg_attr(not(dqec_check), allow(dead_code))]
    fn effective_iterations(&self) -> usize {
        match std::env::var("DQEC_CHECK_ITERS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            Some(n) if n > 0 => n,
            _ => self.iterations,
        }
    }
}

/// Why a model execution failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The modeled code panicked (assertion violation, index error, ...).
    Panic,
    /// Every live thread was blocked: a deadlock.
    Deadlock,
    /// The step budget was exceeded: a probable hang or livelock.
    StepBound,
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureKind::Panic => write!(f, "panic"),
            FailureKind::Deadlock => write!(f, "deadlock"),
            FailureKind::StepBound => write!(f, "step-bound (possible hang/livelock)"),
        }
    }
}

/// A counterexample found by the checker.
#[derive(Debug, Clone)]
pub struct Failure {
    /// The seed that reproduces the failing execution (`None` for DFS,
    /// which is deterministic without one).
    pub seed: Option<u64>,
    /// Failure classification.
    pub kind: FailureKind,
    /// The panic message or a description of the deadlock/hang.
    pub message: String,
    /// The trailing per-step schedule trace of the failing execution,
    /// one formatted `t<id> <op>` line per step.
    pub trace: Vec<String>,
    /// Total steps the failing execution took.
    pub steps: u64,
}

impl Failure {
    /// Renders the full human-readable failure report, including the
    /// replay instructions.
    pub fn report(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "dqec-check FAILURE ({}): {}\n",
            self.kind, self.message
        ));
        match self.seed {
            Some(seed) => out.push_str(&format!(
                "  seed: {seed:#018x} — replay with DQEC_CHECK_SEED={seed:#x}\n"
            )),
            None => out.push_str("  strategy: dfs (deterministic; re-run to replay)\n"),
        }
        out.push_str(&format!(
            "  trace (last {} of {} steps):\n",
            self.trace.len(),
            self.steps
        ));
        for line in &self.trace {
            out.push_str("    ");
            out.push_str(line);
            out.push('\n');
        }
        out
    }
}

/// The result of a [`check`] run.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Executions (interleavings) explored.
    pub executions: u64,
    /// Executions pruned by the step bound (when the bound is not a
    /// failure).
    pub bounded: u64,
    /// `true` when a DFS run exhausted the entire choice space within
    /// its budget.
    pub complete: bool,
    /// The first counterexample found, if any.
    pub failure: Option<Failure>,
}

/// Runs `f` under the model checker and returns the [`Outcome`] instead
/// of panicking — the API for meta-tests (e.g. mutation tests asserting
/// that the checker *does* catch a seeded bug).
///
/// Without `--cfg dqec_check` this performs a single uninstrumented
/// execution (a smoke run) and reports any panic as a failure.
pub fn check<F>(config: &Config, f: F) -> Outcome
where
    F: Fn() + Send + Sync,
{
    #[cfg(dqec_check)]
    {
        runtime::drive(config, &f)
    }
    #[cfg(not(dqec_check))]
    {
        let _ = config;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(&f));
        Outcome {
            executions: 1,
            bounded: 0,
            complete: false,
            failure: result.err().map(|payload| Failure {
                seed: None,
                kind: FailureKind::Panic,
                message: panic_message(payload.as_ref()),
                trace: Vec::new(),
                steps: 0,
            }),
        }
    }
}

/// Runs `f` under the model checker and panics with a full report —
/// replay seed plus per-step counterexample trace — if any explored
/// execution fails. The test-facing entry point.
///
/// # Panics
///
/// Panics when a counterexample is found.
pub fn model<F>(config: &Config, f: F)
where
    F: Fn() + Send + Sync,
{
    let outcome = check(config, f);
    if let Some(failure) = outcome.failure {
        eprintln!("{}", failure.report());
        panic!(
            "dqec-check found a failure ({}) after {} executions: {}",
            failure.kind, outcome.executions, failure.message
        );
    }
}

/// Extracts a human-readable message from a panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
