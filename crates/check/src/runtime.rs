//! The instrumented runtime behind `--cfg dqec_check`: a deterministic
//! scheduler that serializes model threads (real OS threads, exactly
//! one runnable at a time, hand-off via condvar) and drives every
//! preemption and weak-memory read choice from a replayable chooser.
//!
//! Happens-before is tracked with vector clocks; each atomic keeps its
//! full store history so non-acquiring loads can observe coherent stale
//! values. See the crate docs for the modeling limits.
//!
//! # Abort protocol
//!
//! When an execution fails (panic, deadlock, step bound) it *aborts*:
//! every thread still making forward progress panics with the
//! [`Interrupted`] sentinel at its next instrumented operation — we
//! never let modeled code free-run, because mutated/buggy code could
//! hang for real (e.g. a spin loop whose exit decrement was lost).
//! The one exception is a thread that is already *unwinding*: its
//! `Drop` guards may perform instrumented operations (restoring a
//! budget, unlocking), and panicking there would be a double panic, so
//! those operations complete against the real primitives instead.

use crate::{panic_message, Config, Failure, FailureKind, Outcome, Strategy};
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool as StdAtomicBool, Ordering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::sync::{OnceLock, PoisonError};

/// Model-thread index within one execution.
pub(crate) type Tid = usize;

/// Sentinel panic payload used to unwind model threads when an
/// execution aborts (failure found, or step budget exhausted). Filtered
/// by the panic hook and by `task_main`, never reported as a failure.
pub(crate) struct Interrupted;

/// After this many consecutive stale reads of one atomic by one thread,
/// the next read is forced to the newest store ("eventual visibility"),
/// so spin loops on `Relaxed` flags terminate.
const STALE_LIMIT: u32 = 2;

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Execution>, Tid)>> = const { RefCell::new(None) };
}

/// The execution this thread is a model task of, if any.
pub(crate) fn current() -> Option<(Arc<Execution>, Tid)> {
    CURRENT.with(|c| c.borrow().clone())
}

fn set_current(v: Option<(Arc<Execution>, Tid)>) {
    CURRENT.with(|c| *c.borrow_mut() = v);
}

/// The facade's entry check: `Some` when this thread is a live model
/// task and the operation should be modeled, `None` when it should pass
/// through to the real `std` primitive. On an aborted execution this
/// panics with [`Interrupted`] to stop forward progress — unless the
/// thread is already unwinding, in which case it passes through so
/// `Drop` guards complete safely.
pub(crate) fn model_ctx() -> Option<(Arc<Execution>, Tid)> {
    let (ex, me) = current()?;
    if ex.is_aborted() {
        if std::thread::panicking() {
            return None;
        }
        std::panic::panic_any(Interrupted);
    }
    Some((ex, me))
}

/// Fresh process-wide identity for a facade sync object.
pub(crate) fn fresh_id() -> u64 {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

fn is_acquire(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

/// A vector clock over model-thread ids.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Clock(Vec<u64>);

impl Clock {
    fn get(&self, t: Tid) -> u64 {
        self.0.get(t).copied().unwrap_or(0)
    }

    fn tick(&mut self, t: Tid) {
        if self.0.len() <= t {
            self.0.resize(t + 1, 0);
        }
        self.0[t] += 1;
    }

    fn join(&mut self, other: &Clock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }
}

/// One entry in an atomic's modification order.
#[derive(Debug, Clone)]
struct StoreRec {
    value: u64,
    /// `(tid, component)` stamp of the storing thread, `None` for the
    /// initial value (which happens-before everything).
    stamp: Option<(Tid, u64)>,
    /// The release clock an acquiring load of this store synchronizes
    /// with (carried forward through RMWs to model release sequences).
    release: Option<Clock>,
}

impl StoreRec {
    /// Whether this store is in `clock`'s causal past (and therefore
    /// part of the floor below which `clock`'s owner can no longer
    /// read, by coherence).
    fn visible_to(&self, clock: &Clock) -> bool {
        match self.stamp {
            None => true,
            Some((t, c)) => clock.get(t) >= c,
        }
    }
}

/// Model state of one atomic variable.
#[derive(Debug)]
struct VarModel {
    /// Modification order; a store's sequence number is its index.
    stores: Vec<StoreRec>,
    /// Per-thread floor: newest store index each thread has observed.
    last_seen: Vec<u64>,
    /// Per-thread consecutive-stale-read streak (see [`STALE_LIMIT`]).
    stale: Vec<u32>,
    /// Small display index for traces.
    display: usize,
}

impl VarModel {
    fn new(init: u64, display: usize) -> VarModel {
        VarModel {
            stores: vec![StoreRec {
                value: init,
                stamp: None,
                release: None,
            }],
            last_seen: Vec::new(),
            stale: Vec::new(),
            display,
        }
    }

    fn ensure(&mut self, t: Tid) {
        if self.last_seen.len() <= t {
            self.last_seen.resize(t + 1, 0);
            self.stale.resize(t + 1, 0);
        }
    }
}

/// Model state of one facade mutex.
#[derive(Debug, Default)]
struct LockModel {
    owner: Option<Tid>,
    /// Clock released by the last unlock; joined by the next locker.
    release: Clock,
    display: usize,
}

/// Model state of one facade condvar.
#[derive(Debug, Default)]
struct CvModel {
    waiters: VecDeque<Tid>,
    display: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum BlockOn {
    Mutex(u64),
    Join(Tid),
    JoinAll(Vec<Tid>),
    Condvar(u64),
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum TaskState {
    Runnable,
    Blocked(BlockOn),
    Finished,
}

/// The replayable source of every scheduling and weak-memory choice.
#[derive(Debug)]
enum Chooser {
    Random {
        rng: ChaCha8Rng,
    },
    Pct {
        rng: ChaCha8Rng,
        depth: usize,
        prios: Vec<u64>,
        change_points: Vec<u64>,
        next_change: usize,
    },
    Dfs {
        script: Vec<(usize, usize)>,
        pos: usize,
    },
}

impl Chooser {
    /// Picks one of `n` alternatives. Choices with a single alternative
    /// are not recorded, which keeps the DFS space tight.
    fn choose(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        if n <= 1 {
            return 0;
        }
        match self {
            Chooser::Random { rng } | Chooser::Pct { rng, .. } => {
                (rng.next_u64() % n as u64) as usize
            }
            Chooser::Dfs { script, pos } => {
                let c = if *pos < script.len() {
                    script[*pos].0
                } else {
                    script.push((0, n));
                    0
                };
                *pos += 1;
                c.min(n - 1)
            }
        }
    }

    /// Picks the next thread to run among `runnable` (non-empty).
    fn choose_thread(&mut self, runnable: &[Tid], step: u64) -> Tid {
        match self {
            Chooser::Pct {
                rng,
                depth,
                prios,
                change_points,
                next_change,
            } => {
                let d = (*depth).max(1) as u64;
                // Initial priorities are all above `d`; a change point
                // demotes the current front-runner below every initial
                // priority (classic PCT: change point k gets d - k).
                for &t in runnable {
                    while prios.len() <= t {
                        prios.push(d + 1 + (rng.next_u64() >> 8));
                    }
                }
                while *next_change < change_points.len() && step >= change_points[*next_change] {
                    if let Some(&top) = runnable.iter().max_by_key(|&&t| prios[t]) {
                        prios[top] = d - (*next_change as u64 % d);
                    }
                    *next_change += 1;
                }
                runnable
                    .iter()
                    .copied()
                    .max_by_key(|&t| prios[t])
                    .expect("runnable is non-empty")
            }
            _ => {
                let i = self.choose(runnable.len());
                runnable[i]
            }
        }
    }

    /// Whether spurious `compare_exchange_weak` failures are injected
    /// (disabled for DFS: a spurious failure re-creates the same state,
    /// which would make the choice tree infinite).
    fn inject_spurious(&self) -> bool {
        !matches!(self, Chooser::Dfs { .. })
    }

    fn take_script(&mut self) -> Vec<(usize, usize)> {
        match self {
            Chooser::Dfs { script, .. } => std::mem::take(script),
            _ => Vec::new(),
        }
    }
}

/// Backtracks a DFS script to the next unexplored branch; `false` when
/// the whole space has been explored.
fn advance_script(script: &mut Vec<(usize, usize)>) -> bool {
    while let Some((chosen, n)) = script.pop() {
        if chosen + 1 < n {
            script.push((chosen + 1, n));
            return true;
        }
    }
    false
}

#[derive(Debug)]
struct FailureRec {
    kind: FailureKind,
    message: String,
    trace: Vec<String>,
    steps: u64,
}

struct ExecInner {
    chooser: Chooser,
    states: Vec<TaskState>,
    clocks: Vec<Clock>,
    active: Tid,
    live: usize,
    steps: u64,
    trace: VecDeque<String>,
    vars: HashMap<u64, VarModel>,
    locks: HashMap<u64, LockModel>,
    cvs: HashMap<u64, CvModel>,
    /// Per-thread guard: no two consecutive spurious CAS failures.
    cas_spurious: Vec<bool>,
    failure: Option<FailureRec>,
    aborted: bool,
    bounded: bool,
}

impl ExecInner {
    fn runnable(&self) -> Vec<Tid> {
        self.states
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, TaskState::Runnable))
            .map(|(t, _)| t)
            .collect()
    }

    fn push_trace(&mut self, cap: usize, me: Tid, line: String) {
        if self.trace.len() == cap {
            self.trace.pop_front();
        }
        self.trace.push_back(format!("t{me} {line}"));
    }

    fn record_failure(&mut self, kind: FailureKind, message: String) {
        if self.failure.is_none() {
            self.failure = Some(FailureRec {
                kind,
                message,
                trace: self.trace.iter().cloned().collect(),
                steps: self.steps,
            });
        }
    }

    fn blocked_summary(&self) -> String {
        self.states
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, TaskState::Blocked(_)))
            .map(|(t, s)| format!("t{t} on {s:?}"))
            .collect::<Vec<_>>()
            .join(", ")
    }

    fn var(&mut self, id: u64, init: &mut dyn FnMut() -> u64) -> &mut VarModel {
        let display = self.vars.len();
        self.vars
            .entry(id)
            .or_insert_with(|| VarModel::new(init(), display))
    }

    /// Re-borrows a var already ensured by [`Self::var`] earlier in the
    /// same operation (the first borrow ends when the chooser or the
    /// vector clocks are consulted in between).
    fn var_mut(&mut self, id: u64) -> &mut VarModel {
        match self.vars.get_mut(&id) {
            Some(vm) => vm,
            None => unreachable!("var_mut called before var() ensured the object"),
        }
    }
}

/// One model execution: the big lock + condvar that serialize its
/// threads, plus the immutable run parameters.
pub(crate) struct Execution {
    inner: StdMutex<ExecInner>,
    cond: StdCondvar,
    /// Lock-free mirror of `ExecInner::aborted` for the facade's cheap
    /// pre-check ([`model_ctx`]).
    aborted_hint: StdAtomicBool,
    max_steps: u64,
    bound_is_failure: bool,
    trace_cap: usize,
}

impl Execution {
    fn new(config: &Config, chooser: Chooser) -> Execution {
        let mut clock0 = Clock::default();
        clock0.tick(0);
        Execution {
            inner: StdMutex::new(ExecInner {
                chooser,
                states: vec![TaskState::Runnable],
                clocks: vec![clock0],
                active: 0,
                live: 1,
                steps: 0,
                trace: VecDeque::new(),
                vars: HashMap::new(),
                locks: HashMap::new(),
                cvs: HashMap::new(),
                cas_spurious: vec![false],
                failure: None,
                aborted: false,
                bounded: false,
            }),
            cond: StdCondvar::new(),
            aborted_hint: StdAtomicBool::new(false),
            max_steps: config.max_steps,
            bound_is_failure: config.bound_is_failure,
            trace_cap: config.trace_capacity,
        }
    }

    pub(crate) fn is_aborted(&self) -> bool {
        self.aborted_hint.load(Ordering::SeqCst)
    }

    fn lock_inner(&self) -> StdMutexGuard<'_, ExecInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn wait<'a>(&self, g: StdMutexGuard<'a, ExecInner>) -> StdMutexGuard<'a, ExecInner> {
        self.cond.wait(g).unwrap_or_else(PoisonError::into_inner)
    }

    fn abort(&self, g: &mut ExecInner) {
        g.aborted = true;
        self.aborted_hint.store(true, Ordering::SeqCst);
        self.cond.notify_all();
    }

    /// Exit path for an operation that observed the abort: panic with
    /// the sentinel to kill forward progress, or — when the thread is
    /// already unwinding — hand the guard back so the operation
    /// free-runs (panicking inside a `Drop` would be a double panic).
    fn on_abort<'a>(&self, g: StdMutexGuard<'a, ExecInner>) -> StdMutexGuard<'a, ExecInner> {
        if std::thread::panicking() {
            g
        } else {
            drop(g);
            std::panic::panic_any(Interrupted)
        }
    }

    /// Takes this thread's next turn: counts the step, lets the chooser
    /// preempt to another runnable thread, and returns with the big
    /// lock held, ready to perform one operation.
    ///
    /// Panics with [`Interrupted`] when the execution has aborted
    /// (unless unwinding; see [`Execution::on_abort`]). Callers must
    /// therefore re-check `aborted` on the returned guard before
    /// relying on scheduler invariants.
    fn turn(&self, me: Tid, forced_switch: bool) -> StdMutexGuard<'_, ExecInner> {
        let mut g = self.lock_inner();
        if g.aborted {
            return self.on_abort(g);
        }
        debug_assert_eq!(g.active, me, "only the active thread takes turns");
        g.steps += 1;
        if g.steps > self.max_steps {
            g.bounded = true;
            if self.bound_is_failure {
                g.record_failure(
                    FailureKind::StepBound,
                    format!("exceeded {} steps without completing", self.max_steps),
                );
            }
            self.abort(&mut g);
            return self.on_abort(g);
        }
        let mut runnable = g.runnable();
        if forced_switch && runnable.len() > 1 {
            runnable.retain(|&t| t != me);
        }
        let step = g.steps;
        let next = g.chooser.choose_thread(&runnable, step);
        if next != me {
            g.active = next;
            self.cond.notify_all();
            loop {
                g = self.wait(g);
                if g.aborted {
                    return self.on_abort(g);
                }
                if g.active == me && matches!(g.states[me], TaskState::Runnable) {
                    break;
                }
            }
        }
        g
    }

    /// Blocks the active thread on `why`, passing the baton to another
    /// runnable thread (or declaring deadlock when there is none), and
    /// returns once this thread is runnable and active again.
    fn block(&self, mut g: StdMutexGuard<'_, ExecInner>, me: Tid, why: BlockOn) {
        if g.aborted {
            drop(self.on_abort(g));
            return;
        }
        g.states[me] = TaskState::Blocked(why);
        let runnable = g.runnable();
        if runnable.is_empty() {
            let blocked = g.blocked_summary();
            g.record_failure(
                FailureKind::Deadlock,
                format!("every live thread is blocked: {blocked}"),
            );
            self.abort(&mut g);
            drop(self.on_abort(g));
            return;
        }
        let step = g.steps;
        let next = g.chooser.choose_thread(&runnable, step);
        g.active = next;
        self.cond.notify_all();
        loop {
            g = self.wait(g);
            if g.aborted {
                g.states[me] = TaskState::Runnable;
                drop(self.on_abort(g));
                return;
            }
            if g.active == me && matches!(g.states[me], TaskState::Runnable) {
                return;
            }
        }
    }

    /// Wakes every thread blocked on `why` (they re-contend at their
    /// next turn).
    fn wake(g: &mut ExecInner, why: &BlockOn) {
        for s in g.states.iter_mut() {
            if matches!(s, TaskState::Blocked(b) if b == why) {
                *s = TaskState::Runnable;
            }
        }
    }

    // ---- atomics ------------------------------------------------------

    pub(crate) fn atomic_load(
        &self,
        me: Tid,
        id: u64,
        init: &mut dyn FnMut() -> u64,
        ord: Ordering,
    ) -> u64 {
        let mut g = self.turn(me, false);
        let clock_me = g.clocks[me].clone();
        let vm = g.var(id, init);
        vm.ensure(me);
        let latest = vm.stores.len() - 1;
        // Coherence floor: the newest store this thread has already
        // observed, or that happens-before this load.
        let mut floor = vm.last_seen[me] as usize;
        for (i, s) in vm.stores.iter().enumerate().skip(floor + 1) {
            if s.visible_to(&clock_me) {
                floor = i;
            }
        }
        let lo = if ord == Ordering::SeqCst || vm.stale[me] >= STALE_LIMIT {
            latest
        } else {
            floor
        };
        let n = latest - lo + 1;
        let pick = lo + g.chooser.choose(n);
        let vm = g.var_mut(id);
        let value = vm.stores[pick].value;
        vm.stale[me] = if pick < latest { vm.stale[me] + 1 } else { 0 };
        vm.last_seen[me] = vm.last_seen[me].max(pick as u64);
        let display = vm.display;
        let rel = if is_acquire(ord) {
            vm.stores[pick].release.clone()
        } else {
            None
        };
        if let Some(rel) = rel {
            g.clocks[me].join(&rel);
        }
        g.clocks[me].tick(me);
        let stale = if pick < latest { " (stale)" } else { "" };
        g.push_trace(
            self.trace_cap,
            me,
            format!("a{display}.load({ord:?}) -> {value}{stale}"),
        );
        value
    }

    pub(crate) fn atomic_store(
        &self,
        me: Tid,
        id: u64,
        init: &mut dyn FnMut() -> u64,
        value: u64,
        ord: Ordering,
    ) {
        let mut g = self.turn(me, false);
        g.clocks[me].tick(me);
        let stamp = (me, g.clocks[me].get(me));
        let release = if is_release(ord) {
            Some(g.clocks[me].clone())
        } else {
            None
        };
        let vm = g.var(id, init);
        vm.ensure(me);
        vm.stores.push(StoreRec {
            value,
            stamp: Some(stamp),
            release,
        });
        vm.last_seen[me] = (vm.stores.len() - 1) as u64;
        vm.stale[me] = 0;
        let display = vm.display;
        g.push_trace(
            self.trace_cap,
            me,
            format!("a{display}.store({value}, {ord:?})"),
        );
    }

    /// Read-modify-write; returns `(old, new)`. RMWs always read the
    /// newest store (atomicity) and extend its release sequence.
    pub(crate) fn atomic_rmw(
        &self,
        me: Tid,
        id: u64,
        init: &mut dyn FnMut() -> u64,
        ord: Ordering,
        op: &mut dyn FnMut(u64) -> u64,
        name: &str,
    ) -> (u64, u64) {
        let mut g = self.turn(me, false);
        let vm = g.var(id, init);
        vm.ensure(me);
        let latest = vm.stores.len() - 1;
        let old = vm.stores[latest].value;
        let carried = vm.stores[latest].release.clone();
        let display = vm.display;
        if is_acquire(ord) {
            if let Some(rel) = carried.clone() {
                g.clocks[me].join(&rel);
            }
        }
        g.clocks[me].tick(me);
        let new = op(old);
        let stamp = (me, g.clocks[me].get(me));
        let release = if is_release(ord) {
            let mut rel = carried.unwrap_or_default();
            rel.join(&g.clocks[me]);
            Some(rel)
        } else {
            carried
        };
        let vm = g.var_mut(id);
        vm.stores.push(StoreRec {
            value: new,
            stamp: Some(stamp),
            release,
        });
        vm.last_seen[me] = (vm.stores.len() - 1) as u64;
        vm.stale[me] = 0;
        g.push_trace(
            self.trace_cap,
            me,
            format!("a{display}.{name}({ord:?}) {old} -> {new}"),
        );
        (old, new)
    }

    /// Compare-and-swap; `Ok(old)` on success (the facade mirrors `new`
    /// to the real atomic), `Err(latest)` on failure.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn atomic_cas(
        &self,
        me: Tid,
        id: u64,
        init: &mut dyn FnMut() -> u64,
        expect: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
        weak: bool,
    ) -> Result<u64, u64> {
        let mut g = self.turn(me, false);
        let vm = g.var(id, init);
        vm.ensure(me);
        let latest = vm.stores.len() - 1;
        let old = vm.stores[latest].value;
        let display = vm.display;
        let spurious = weak
            && old == expect
            && g.chooser.inject_spurious()
            && !g.cas_spurious[me]
            && g.chooser.choose(8) == 0;
        if old != expect || spurious {
            g.cas_spurious[me] = spurious;
            let vm = g.var_mut(id);
            let carried = vm.stores[latest].release.clone();
            vm.last_seen[me] = latest as u64;
            vm.stale[me] = 0;
            if is_acquire(failure) {
                if let Some(rel) = carried {
                    g.clocks[me].join(&rel);
                }
            }
            g.clocks[me].tick(me);
            let why = if spurious { "spurious" } else { "mismatch" };
            g.push_trace(
                self.trace_cap,
                me,
                format!("a{display}.cas({expect} -> {new}) failed ({why}, saw {old})"),
            );
            return Err(old);
        }
        g.cas_spurious[me] = false;
        let carried = g.vars[&id].stores[latest].release.clone();
        if is_acquire(success) {
            if let Some(rel) = carried.clone() {
                g.clocks[me].join(&rel);
            }
        }
        g.clocks[me].tick(me);
        let release = if is_release(success) {
            let mut rel = carried.unwrap_or_default();
            rel.join(&g.clocks[me]);
            Some(rel)
        } else {
            carried
        };
        let stamp = (me, g.clocks[me].get(me));
        let vm = g.var_mut(id);
        vm.stores.push(StoreRec {
            value: new,
            stamp: Some(stamp),
            release,
        });
        vm.last_seen[me] = (vm.stores.len() - 1) as u64;
        vm.stale[me] = 0;
        g.push_trace(
            self.trace_cap,
            me,
            format!("a{display}.cas({expect} -> {new}) ok"),
        );
        Ok(old)
    }

    // ---- mutexes ------------------------------------------------------

    pub(crate) fn mutex_lock(&self, me: Tid, id: u64) {
        loop {
            let mut g = self.turn(me, false);
            if g.aborted {
                // Free-running during unwind: the real mutex (taken by
                // the facade after this returns) provides exclusion.
                return;
            }
            let display = g.locks.len();
            let lm = g.locks.entry(id).or_insert_with(|| LockModel {
                display,
                ..LockModel::default()
            });
            let display = lm.display;
            if lm.owner.is_none() {
                lm.owner = Some(me);
                let rel = lm.release.clone();
                g.clocks[me].join(&rel);
                g.clocks[me].tick(me);
                g.push_trace(self.trace_cap, me, format!("m{display}.lock"));
                return;
            }
            g.push_trace(self.trace_cap, me, format!("m{display}.lock (blocked)"));
            self.block(g, me, BlockOn::Mutex(id));
        }
    }

    /// Unlock; called from guard `Drop`, so it must never panic — on an
    /// aborted execution it simply returns (the real mutex was already
    /// released by the inner guard).
    pub(crate) fn mutex_unlock(&self, me: Tid, id: u64) {
        let mut g = self.lock_inner();
        if g.aborted {
            return;
        }
        g.steps += 1;
        if g.steps > self.max_steps {
            g.bounded = true;
            if self.bound_is_failure {
                g.record_failure(
                    FailureKind::StepBound,
                    format!("exceeded {} steps without completing", self.max_steps),
                );
            }
            self.abort(&mut g);
            return;
        }
        g.clocks[me].tick(me);
        let clock = g.clocks[me].clone();
        let display = match g.locks.get_mut(&id) {
            Some(lm) if lm.owner == Some(me) => {
                lm.owner = None;
                lm.release = clock;
                lm.display
            }
            _ => return,
        };
        Self::wake(&mut g, &BlockOn::Mutex(id));
        g.push_trace(self.trace_cap, me, format!("m{display}.unlock"));
        // Preemption point after the release: pass the baton, then wait
        // for our next turn (blocking in Drop is fine, panicking isn't).
        let runnable = g.runnable();
        if runnable.is_empty() {
            return;
        }
        let step = g.steps;
        let next = g.chooser.choose_thread(&runnable, step);
        if next != me {
            g.active = next;
            self.cond.notify_all();
            loop {
                g = self.wait(g);
                if g.aborted {
                    return;
                }
                if g.active == me && matches!(g.states[me], TaskState::Runnable) {
                    return;
                }
            }
        }
    }

    // ---- condvars -----------------------------------------------------

    pub(crate) fn cv_wait(&self, me: Tid, cv_id: u64, mutex_id: u64) {
        let mut g = self.turn(me, false);
        if g.aborted {
            return;
        }
        g.clocks[me].tick(me);
        let clock = g.clocks[me].clone();
        if let Some(lm) = g.locks.get_mut(&mutex_id) {
            debug_assert_eq!(lm.owner, Some(me), "cv.wait without the lock");
            lm.owner = None;
            lm.release = clock;
        }
        Self::wake(&mut g, &BlockOn::Mutex(mutex_id));
        let display = g.cvs.len();
        let cv = g.cvs.entry(cv_id).or_insert_with(|| CvModel {
            display,
            ..CvModel::default()
        });
        let display = cv.display;
        cv.waiters.push_back(me);
        g.push_trace(self.trace_cap, me, format!("cv{display}.wait"));
        self.block(g, me, BlockOn::Condvar(cv_id));
        // Notified: re-acquire the mutex before returning, like std.
        self.mutex_lock(me, mutex_id);
    }

    pub(crate) fn cv_notify(&self, me: Tid, cv_id: u64, all: bool) {
        let mut g = self.turn(me, false);
        if g.aborted {
            return;
        }
        let display = g.cvs.len();
        let cv = g.cvs.entry(cv_id).or_insert_with(|| CvModel {
            display,
            ..CvModel::default()
        });
        let display = cv.display;
        let woken: Vec<Tid> = if all {
            cv.waiters.drain(..).collect()
        } else {
            cv.waiters.pop_front().into_iter().collect()
        };
        for t in &woken {
            if matches!(g.states[*t], TaskState::Blocked(BlockOn::Condvar(c)) if c == cv_id) {
                g.states[*t] = TaskState::Runnable;
            }
        }
        let which = if all { "notify_all" } else { "notify_one" };
        g.push_trace(
            self.trace_cap,
            me,
            format!("cv{display}.{which} (woke {woken:?})"),
        );
    }

    // ---- threads ------------------------------------------------------

    pub(crate) fn spawn_register(&self, me: Tid) -> Tid {
        let mut g = self.turn(me, false);
        let tid = g.states.len();
        g.states.push(TaskState::Runnable);
        g.cas_spurious.push(false);
        g.live += 1;
        let mut child = g.clocks[me].clone();
        child.tick(tid);
        g.clocks.push(child);
        g.clocks[me].tick(me);
        g.push_trace(self.trace_cap, me, format!("spawn -> t{tid}"));
        tid
    }

    pub(crate) fn join_one(&self, me: Tid, child: Tid) {
        loop {
            let mut g = self.turn(me, false);
            if g.aborted {
                return;
            }
            if matches!(g.states[child], TaskState::Finished) {
                let c = g.clocks[child].clone();
                g.clocks[me].join(&c);
                g.clocks[me].tick(me);
                g.push_trace(self.trace_cap, me, format!("join t{child}"));
                return;
            }
            g.push_trace(self.trace_cap, me, format!("join t{child} (blocked)"));
            self.block(g, me, BlockOn::Join(child));
        }
    }

    pub(crate) fn join_all(&self, me: Tid, children: &[Tid]) {
        loop {
            let mut g = self.turn(me, false);
            if g.aborted {
                return;
            }
            let pending: Vec<Tid> = children
                .iter()
                .copied()
                .filter(|&c| !matches!(g.states[c], TaskState::Finished))
                .collect();
            if pending.is_empty() {
                for &c in children {
                    let clock = g.clocks[c].clone();
                    g.clocks[me].join(&clock);
                }
                g.clocks[me].tick(me);
                g.push_trace(self.trace_cap, me, format!("join all {children:?}"));
                return;
            }
            g.push_trace(
                self.trace_cap,
                me,
                format!("join all (waiting on {pending:?})"),
            );
            self.block(g, me, BlockOn::JoinAll(pending));
        }
    }

    pub(crate) fn yield_point(&self, me: Tid) {
        let mut g = self.turn(me, true);
        if g.aborted {
            return;
        }
        g.push_trace(self.trace_cap, me, "yield".to_string());
    }

    /// Marks `tid` finished (normally or by panic), wakes joiners, and
    /// passes the baton. Never panics: it runs during thread teardown.
    pub(crate) fn finish_task(&self, tid: Tid, panic_msg: Option<String>) {
        let mut g = self.lock_inner();
        g.clocks[tid].tick(tid);
        g.states[tid] = TaskState::Finished;
        g.live -= 1;
        match &panic_msg {
            Some(msg) => {
                let line = format!("panicked: {msg}");
                g.push_trace(self.trace_cap, tid, line);
            }
            None => g.push_trace(self.trace_cap, tid, "finish".to_string()),
        }
        // Wake joiners of this task.
        let finished: Vec<bool> = g
            .states
            .iter()
            .map(|s| matches!(s, TaskState::Finished))
            .collect();
        for s in g.states.iter_mut() {
            let wake = match s {
                TaskState::Blocked(BlockOn::Join(c)) => *c == tid,
                TaskState::Blocked(BlockOn::JoinAll(cs)) => cs.iter().all(|&c| finished[c]),
                _ => false,
            };
            if wake {
                *s = TaskState::Runnable;
            }
        }
        // Only the root task's panic is a model failure. A *spawned*
        // task ending in panic matches real `std` semantics: the
        // payload is delivered at `join()` (or re-raised at scope
        // exit), and code under test may legitimately catch and handle
        // it — the rayon shim's poison protocol does exactly that. If
        // nothing observes it, the panic propagates to the root task
        // eventually or is deliberately ignored, again as in `std`.
        if let Some(msg) = panic_msg {
            if tid == 0 {
                g.record_failure(FailureKind::Panic, msg);
                self.abort(&mut g);
                return;
            }
        }
        if g.aborted {
            self.cond.notify_all();
            return;
        }
        if g.active == tid {
            let runnable = g.runnable();
            if runnable.is_empty() {
                if g.live > 0 {
                    let blocked = g.blocked_summary();
                    g.record_failure(
                        FailureKind::Deadlock,
                        format!("every live thread is blocked: {blocked}"),
                    );
                    self.abort(&mut g);
                    return;
                }
            } else {
                let step = g.steps;
                let next = g.chooser.choose_thread(&runnable, step);
                g.active = next;
            }
        }
        self.cond.notify_all();
    }

    fn wait_all_finished(&self) {
        let mut g = self.lock_inner();
        while g.live > 0 {
            g = self.wait(g);
        }
    }
}

/// Entry point of every spawned model thread: registers itself as the
/// current task, waits for its first turn, runs `f`, and reports the
/// outcome to the execution (recording non-sentinel panics as the
/// counterexample).
pub(crate) fn task_main<T>(ex: Arc<Execution>, tid: Tid, f: impl FnOnce() -> T) -> T {
    set_current(Some((ex.clone(), tid)));
    // Wait for the scheduler to hand this thread its first turn.
    {
        let mut g = ex.lock_inner();
        loop {
            if g.aborted {
                drop(g);
                set_current(None);
                ex.finish_task(tid, None);
                std::panic::panic_any(Interrupted);
            }
            if g.active == tid && matches!(g.states[tid], TaskState::Runnable) {
                break;
            }
            g = ex.wait(g);
        }
    }
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    set_current(None);
    match result {
        Ok(v) => {
            ex.finish_task(tid, None);
            v
        }
        Err(payload) => {
            let msg = if payload.is::<Interrupted>() {
                None
            } else {
                Some(panic_message(payload.as_ref()))
            };
            ex.finish_task(tid, msg);
            std::panic::resume_unwind(payload);
        }
    }
}

/// Installs (once, process-wide) a panic hook that silences the
/// [`Interrupted`] sentinel and panics inside model executions — those
/// are captured and reported through [`Failure`] instead.
fn install_hook() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().is::<Interrupted>() || current().is_some() {
                return;
            }
            prev(info);
        }));
    });
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

struct RunResult {
    bounded: bool,
    failure: Option<Failure>,
    script: Vec<(usize, usize)>,
}

fn run_one<F: Fn() + Send + Sync>(
    config: &Config,
    seed: u64,
    script: Option<Vec<(usize, usize)>>,
    f: &F,
) -> RunResult {
    let chooser = match (&config.strategy, script) {
        (_, Some(script)) => Chooser::Dfs { script, pos: 0 },
        (Strategy::Dfs, None) => Chooser::Dfs {
            script: Vec::new(),
            pos: 0,
        },
        (Strategy::Pct { depth }, None) => {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let depth = (*depth).max(1);
            let span = config.max_steps.min(4096).max(1);
            let mut change_points: Vec<u64> =
                (0..depth).map(|_| 1 + rng.next_u64() % span).collect();
            change_points.sort_unstable();
            Chooser::Pct {
                rng,
                depth,
                prios: Vec::new(),
                change_points,
                next_change: 0,
            }
        }
        (Strategy::Random, None) => Chooser::Random {
            rng: ChaCha8Rng::seed_from_u64(seed),
        },
    };
    let dfs = matches!(chooser, Chooser::Dfs { .. });
    let ex = Arc::new(Execution::new(config, chooser));
    set_current(Some((ex.clone(), 0)));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    set_current(None);
    let panic_msg = match &result {
        Err(payload) if !payload.is::<Interrupted>() => Some(panic_message(payload.as_ref())),
        _ => None,
    };
    ex.finish_task(0, panic_msg);
    ex.wait_all_finished();
    let mut g = ex.lock_inner();
    let script = g.chooser.take_script();
    let bounded = g.bounded;
    let failure = g.failure.take().map(|rec| Failure {
        seed: (!dfs).then_some(seed),
        kind: rec.kind,
        message: rec.message,
        trace: rec.trace,
        steps: rec.steps,
    });
    drop(g);
    RunResult {
        bounded,
        failure,
        script,
    }
}

fn parse_seed(text: &str) -> Option<u64> {
    let t = text.trim();
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        t.parse().ok()
    }
}

/// Runs the whole exploration described by `config` over `f`.
pub(crate) fn drive<F: Fn() + Send + Sync>(config: &Config, f: &F) -> Outcome {
    install_hook();
    if let Some(seed) = std::env::var("DQEC_CHECK_SEED")
        .ok()
        .as_deref()
        .and_then(parse_seed)
    {
        // Bit-exact replay of one previously failing execution.
        let res = run_one(config, seed, None, f);
        return Outcome {
            executions: 1,
            bounded: res.bounded as u64,
            complete: false,
            failure: res.failure,
        };
    }
    let iterations = config.effective_iterations();
    match config.strategy {
        Strategy::Random | Strategy::Pct { .. } => {
            // `DQEC_CHECK_SALT` diversifies the default seed sequence
            // (fresh schedules on every CI run) without collapsing the
            // run to a single replay the way `DQEC_CHECK_SEED` does. An
            // explicitly configured seed always wins, so replay tests
            // stay bit-exact under any salt.
            let base = config.seed.unwrap_or_else(|| {
                let salt = std::env::var("DQEC_CHECK_SALT")
                    .ok()
                    .as_deref()
                    .and_then(parse_seed)
                    .unwrap_or(0);
                0xD9EC_C4EC_0457_A7E5 ^ salt
            });
            let mut bounded = 0;
            for i in 0..iterations {
                // When a seed was configured explicitly, execution 0
                // uses it verbatim so `Config::seed(failure.seed)` is a
                // bit-exact programmatic replay (same contract as the
                // DQEC_CHECK_SEED environment variable).
                let seed = if i == 0 && config.seed.is_some() {
                    base
                } else {
                    splitmix(base ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                };
                let res = run_one(config, seed, None, f);
                bounded += res.bounded as u64;
                if res.failure.is_some() {
                    return Outcome {
                        executions: i as u64 + 1,
                        bounded,
                        complete: false,
                        failure: res.failure,
                    };
                }
            }
            Outcome {
                executions: iterations as u64,
                bounded,
                complete: false,
                failure: None,
            }
        }
        Strategy::Dfs => {
            let mut script: Vec<(usize, usize)> = Vec::new();
            let mut executions = 0u64;
            let mut bounded = 0u64;
            loop {
                let res = run_one(config, 0, Some(script), f);
                executions += 1;
                bounded += res.bounded as u64;
                script = res.script;
                if res.failure.is_some() {
                    return Outcome {
                        executions,
                        bounded,
                        complete: false,
                        failure: res.failure,
                    };
                }
                if !advance_script(&mut script) {
                    return Outcome {
                        executions,
                        bounded,
                        complete: true,
                        failure: None,
                    };
                }
                if executions >= iterations as u64 {
                    return Outcome {
                        executions,
                        bounded,
                        complete: false,
                        failure: None,
                    };
                }
            }
        }
    }
}
