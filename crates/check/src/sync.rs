//! The `std::sync` facade.
//!
//! Without `--cfg dqec_check` this module is a plain re-export of the
//! `std` types — zero cost, identical semantics. With it, the types are
//! instrumented: every operation is a preemption point of the model
//! scheduler, atomics keep a store history so weak orderings are
//! actually observable, and mutexes are tracked for deadlock detection.
//!
//! The instrumented types still behave like their `std` counterparts
//! when no model execution is active on the current thread (e.g. in
//! ordinary unit tests of an instrumented build): every operation
//! checks for a model context first and passes through to the real
//! primitive otherwise.

#[cfg(not(dqec_check))]
pub use std::sync::{Condvar, Mutex, MutexGuard};

/// Atomic types and orderings (the `std::sync::atomic` subset the
/// workspace uses).
#[cfg(not(dqec_check))]
pub mod atomic {
    pub use std::sync::atomic::{AtomicBool, AtomicIsize, AtomicUsize, Ordering};
}

#[cfg(dqec_check)]
pub use instrumented::{Condvar, Mutex, MutexGuard};

/// Atomic types and orderings (the `std::sync::atomic` subset the
/// workspace uses).
#[cfg(dqec_check)]
pub mod atomic {
    pub use super::instrumented::{AtomicBool, AtomicIsize, AtomicUsize};
    pub use std::sync::atomic::Ordering;
}

#[cfg(dqec_check)]
mod instrumented {
    use crate::runtime::{self, Execution, Tid};
    use std::ops::{Deref, DerefMut};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, LockResult, PoisonError};
    use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

    /// Lazily assigns and returns the process-wide model identity of a
    /// sync object (0 = not yet assigned; `new` must stay `const fn`,
    /// so the id cannot be drawn at construction time).
    fn object_id(slot: &AtomicU64) -> u64 {
        let cur = slot.load(Ordering::Relaxed);
        if cur != 0 {
            return cur;
        }
        let fresh = runtime::fresh_id();
        match slot.compare_exchange(0, fresh, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => fresh,
            Err(other) => other,
        }
    }

    macro_rules! instrumented_atomic {
        ($name:ident, $std:ident, $prim:ty, $enc:expr, $dec:expr) => {
            /// Instrumented atomic: models weak-memory visibility under
            /// the checker, passes through to `std` otherwise.
            pub struct $name {
                real: std::sync::atomic::$std,
                id: AtomicU64,
            }

            impl $name {
                /// Creates a new atomic with the given initial value.
                pub const fn new(v: $prim) -> $name {
                    $name {
                        real: std::sync::atomic::$std::new(v),
                        id: AtomicU64::new(0),
                    }
                }

                fn with_model<R>(
                    &self,
                    model: impl FnOnce(&Execution, Tid, u64) -> R,
                    real: impl FnOnce() -> R,
                ) -> R {
                    match runtime::model_ctx() {
                        Some((ex, me)) => {
                            let id = object_id(&self.id);
                            model(&ex, me, id)
                        }
                        None => real(),
                    }
                }

                /// Loads the value; under the checker a non-`SeqCst`
                /// load may observe any coherent stale store.
                pub fn load(&self, ord: Ordering) -> $prim {
                    self.with_model(
                        |ex, me, id| {
                            let enc: fn($prim) -> u64 = $enc;
                            let dec: fn(u64) -> $prim = $dec;
                            dec(ex.atomic_load(
                                me,
                                id,
                                &mut || enc(self.real.load(Ordering::SeqCst)),
                                ord,
                            ))
                        },
                        || self.real.load(ord),
                    )
                }

                /// Stores a value.
                pub fn store(&self, v: $prim, ord: Ordering) {
                    self.with_model(
                        |ex, me, id| {
                            let enc: fn($prim) -> u64 = $enc;
                            ex.atomic_store(
                                me,
                                id,
                                &mut || enc(self.real.load(Ordering::SeqCst)),
                                enc(v),
                                ord,
                            );
                            self.real.store(v, Ordering::SeqCst);
                        },
                        || self.real.store(v, ord),
                    )
                }

                /// Swaps the value, returning the previous one.
                pub fn swap(&self, v: $prim, ord: Ordering) -> $prim {
                    self.rmw(ord, "swap", |_| v, || self.real.swap(v, ord))
                }

                fn rmw(
                    &self,
                    ord: Ordering,
                    name: &str,
                    op: impl Fn($prim) -> $prim,
                    real: impl FnOnce() -> $prim,
                ) -> $prim {
                    self.with_model(
                        |ex, me, id| {
                            let enc: fn($prim) -> u64 = $enc;
                            let dec: fn(u64) -> $prim = $dec;
                            let (old, new) = ex.atomic_rmw(
                                me,
                                id,
                                &mut || enc(self.real.load(Ordering::SeqCst)),
                                ord,
                                &mut |v| enc(op(dec(v))),
                                name,
                            );
                            self.real.store(dec(new), Ordering::SeqCst);
                            dec(old)
                        },
                        real,
                    )
                }

                /// Compare-and-exchange; under the checker a successful
                /// exchange extends the release sequence of the store
                /// it read.
                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    self.cas(current, new, success, failure, false)
                }

                /// Weak compare-and-exchange; under the checker (random
                /// strategies) spurious failures are injected.
                pub fn compare_exchange_weak(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    self.cas(current, new, success, failure, true)
                }

                fn cas(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                    weak: bool,
                ) -> Result<$prim, $prim> {
                    self.with_model(
                        |ex, me, id| {
                            let enc: fn($prim) -> u64 = $enc;
                            let dec: fn(u64) -> $prim = $dec;
                            match ex.atomic_cas(
                                me,
                                id,
                                &mut || enc(self.real.load(Ordering::SeqCst)),
                                enc(current),
                                enc(new),
                                success,
                                failure,
                                weak,
                            ) {
                                Ok(old) => {
                                    self.real.store(new, Ordering::SeqCst);
                                    Ok(dec(old))
                                }
                                Err(seen) => Err(dec(seen)),
                            }
                        },
                        || {
                            if weak {
                                self.real
                                    .compare_exchange_weak(current, new, success, failure)
                            } else {
                                self.real.compare_exchange(current, new, success, failure)
                            }
                        },
                    )
                }
            }

            impl std::fmt::Debug for $name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    f.debug_tuple(stringify!($name))
                        .field(&self.real.load(Ordering::SeqCst))
                        .finish()
                }
            }
        };
    }

    instrumented_atomic!(AtomicUsize, AtomicUsize, usize, |v| v as u64, |u| u
        as usize);
    instrumented_atomic!(
        AtomicIsize,
        AtomicIsize,
        isize,
        |v| v as i64 as u64,
        |u| u as i64 as isize
    );
    instrumented_atomic!(AtomicBool, AtomicBool, bool, |v| v as u64, |u| u != 0);

    impl AtomicUsize {
        /// Adds, returning the previous value.
        pub fn fetch_add(&self, v: usize, ord: Ordering) -> usize {
            self.rmw(
                ord,
                "fetch_add",
                |x| x.wrapping_add(v),
                || self.real.fetch_add(v, ord),
            )
        }

        /// Subtracts, returning the previous value.
        pub fn fetch_sub(&self, v: usize, ord: Ordering) -> usize {
            self.rmw(
                ord,
                "fetch_sub",
                |x| x.wrapping_sub(v),
                || self.real.fetch_sub(v, ord),
            )
        }

        /// Maximum, returning the previous value.
        pub fn fetch_max(&self, v: usize, ord: Ordering) -> usize {
            self.rmw(
                ord,
                "fetch_max",
                |x| x.max(v),
                || self.real.fetch_max(v, ord),
            )
        }
    }

    impl AtomicIsize {
        /// Adds, returning the previous value.
        pub fn fetch_add(&self, v: isize, ord: Ordering) -> isize {
            self.rmw(
                ord,
                "fetch_add",
                |x| x.wrapping_add(v),
                || self.real.fetch_add(v, ord),
            )
        }

        /// Subtracts, returning the previous value.
        pub fn fetch_sub(&self, v: isize, ord: Ordering) -> isize {
            self.rmw(
                ord,
                "fetch_sub",
                |x| x.wrapping_sub(v),
                || self.real.fetch_sub(v, ord),
            )
        }

        /// Maximum, returning the previous value.
        pub fn fetch_max(&self, v: isize, ord: Ordering) -> isize {
            self.rmw(
                ord,
                "fetch_max",
                |x| x.max(v),
                || self.real.fetch_max(v, ord),
            )
        }
    }

    impl AtomicBool {
        /// Logical OR, returning the previous value.
        pub fn fetch_or(&self, v: bool, ord: Ordering) -> bool {
            self.rmw(ord, "fetch_or", |x| x | v, || self.real.fetch_or(v, ord))
        }

        /// Logical AND, returning the previous value.
        pub fn fetch_and(&self, v: bool, ord: Ordering) -> bool {
            self.rmw(ord, "fetch_and", |x| x & v, || self.real.fetch_and(v, ord))
        }
    }

    /// Instrumented mutex: the model scheduler serializes lock
    /// acquisition (and detects deadlock); the real `std` mutex is
    /// still taken underneath so data access stays actually exclusive.
    pub struct Mutex<T: ?Sized> {
        id: AtomicU64,
        real: StdMutex<T>,
    }

    impl<T> Mutex<T> {
        /// Creates a new mutex.
        pub const fn new(t: T) -> Mutex<T> {
            Mutex {
                id: AtomicU64::new(0),
                real: StdMutex::new(t),
            }
        }

        /// Consumes the mutex, returning the inner value.
        pub fn into_inner(self) -> LockResult<T> {
            self.real.into_inner()
        }
    }

    impl<T: ?Sized> Mutex<T> {
        /// Acquires the mutex. Under the checker this is a preemption
        /// point and a blocking edge for deadlock detection; the model
        /// never reports poisoning (panics become counterexamples
        /// instead), so the returned result is always `Ok` there.
        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            match runtime::model_ctx() {
                Some((ex, me)) => {
                    let id = object_id(&self.id);
                    ex.mutex_lock(me, id);
                    // The model granted the lock, so the real mutex is
                    // uncontended (except by unwinding free-runners,
                    // who release it promptly).
                    let inner = self.real.lock().unwrap_or_else(PoisonError::into_inner);
                    Ok(MutexGuard {
                        lock: self,
                        inner: Some(inner),
                        model: Some((ex, me, id)),
                    })
                }
                None => match self.real.lock() {
                    Ok(inner) => Ok(MutexGuard {
                        lock: self,
                        inner: Some(inner),
                        model: None,
                    }),
                    Err(e) => Err(PoisonError::new(MutexGuard {
                        lock: self,
                        inner: Some(e.into_inner()),
                        model: None,
                    })),
                },
            }
        }

        /// Returns a mutable reference to the underlying data.
        pub fn get_mut(&mut self) -> LockResult<&mut T> {
            self.real.get_mut()
        }
    }

    impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Mutex").finish_non_exhaustive()
        }
    }

    /// Guard for [`Mutex`]; releases the real lock, then the model
    /// lock, on drop.
    pub struct MutexGuard<'a, T: ?Sized + 'a> {
        lock: &'a Mutex<T>,
        inner: Option<StdMutexGuard<'a, T>>,
        model: Option<(Arc<Execution>, Tid, u64)>,
    }

    impl<T: ?Sized> Deref for MutexGuard<'_, T> {
        type Target = T;

        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard still holds the lock")
        }
    }

    impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard still holds the lock")
        }
    }

    impl<T: ?Sized> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            // Real unlock first so free-running unwinders are never
            // blocked on a parked model thread; the model unlock is a
            // non-panicking preemption point.
            drop(self.inner.take());
            if let Some((ex, me, id)) = self.model.take() {
                ex.mutex_unlock(me, id);
            }
        }
    }

    /// Instrumented condition variable.
    pub struct Condvar {
        id: AtomicU64,
        real: StdCondvar,
    }

    impl Condvar {
        /// Creates a new condition variable.
        pub const fn new() -> Condvar {
            Condvar {
                id: AtomicU64::new(0),
                real: StdCondvar::new(),
            }
        }

        /// Blocks until notified, releasing the guard while waiting.
        pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
            match guard.model.take() {
                Some((ex, me, mutex_id)) => {
                    let lock = guard.lock;
                    drop(guard.inner.take()); // real unlock while parked
                    drop(guard);
                    ex.cv_wait(me, object_id(&self.id), mutex_id);
                    let inner = lock.real.lock().unwrap_or_else(PoisonError::into_inner);
                    Ok(MutexGuard {
                        lock,
                        inner: Some(inner),
                        model: Some((ex, me, mutex_id)),
                    })
                }
                None => {
                    let lock = guard.lock;
                    let inner = guard.inner.take().expect("guard still holds the lock");
                    std::mem::forget(guard);
                    match self.real.wait(inner) {
                        Ok(inner) => Ok(MutexGuard {
                            lock,
                            inner: Some(inner),
                            model: None,
                        }),
                        Err(e) => Err(PoisonError::new(MutexGuard {
                            lock,
                            inner: Some(e.into_inner()),
                            model: None,
                        })),
                    }
                }
            }
        }

        /// Blocks until `condition` returns `false`.
        pub fn wait_while<'a, T, F>(
            &self,
            mut guard: MutexGuard<'a, T>,
            mut condition: F,
        ) -> LockResult<MutexGuard<'a, T>>
        where
            F: FnMut(&mut T) -> bool,
        {
            while condition(&mut guard) {
                guard = self.wait(guard)?;
            }
            Ok(guard)
        }

        /// Wakes one waiter.
        pub fn notify_one(&self) {
            if let Some((ex, me)) = runtime::model_ctx() {
                ex.cv_notify(me, object_id(&self.id), false);
            }
            self.real.notify_one();
        }

        /// Wakes every waiter.
        pub fn notify_all(&self) {
            if let Some((ex, me)) = runtime::model_ctx() {
                ex.cv_notify(me, object_id(&self.id), true);
            }
            self.real.notify_all();
        }
    }

    impl Default for Condvar {
        fn default() -> Condvar {
            Condvar::new()
        }
    }
}
