//! The `std::thread` facade.
//!
//! Without `--cfg dqec_check` this is a plain re-export of `std`. With
//! it, spawned threads register as model tasks: they run as real OS
//! threads, but the model scheduler serializes them and controls every
//! interleaving, and joins become blocking edges the deadlock detector
//! can see.

#[cfg(not(dqec_check))]
pub use std::thread::{
    available_parallelism, scope, sleep, spawn, yield_now, JoinHandle, Scope, ScopedJoinHandle,
};

#[cfg(dqec_check)]
pub use instrumented::{
    available_parallelism, scope, sleep, spawn, yield_now, JoinHandle, Scope, ScopedJoinHandle,
};

#[cfg(dqec_check)]
mod instrumented {
    use crate::runtime::{self, Execution, Tid};
    use std::io;
    use std::num::NonZeroUsize;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    use std::sync::{Arc, Mutex as StdMutex, PoisonError};
    use std::time::Duration;

    /// See [`std::thread::available_parallelism`] (not modeled — the
    /// checker controls concurrency explicitly).
    pub fn available_parallelism() -> io::Result<NonZeroUsize> {
        std::thread::available_parallelism()
    }

    /// A scheduling point: under the checker, forces a switch to
    /// another runnable thread when one exists (so spin loops make
    /// progress deterministically).
    pub fn yield_now() {
        match runtime::model_ctx() {
            Some((ex, me)) => ex.yield_point(me),
            None => std::thread::yield_now(),
        }
    }

    /// Under the checker, sleeping is modeled as a yield — model time
    /// is logical, not wall-clock.
    pub fn sleep(dur: Duration) {
        match runtime::model_ctx() {
            Some((ex, me)) => ex.yield_point(me),
            None => std::thread::sleep(dur),
        }
    }

    /// Handle to a spawned model thread.
    pub struct JoinHandle<T> {
        inner: std::thread::JoinHandle<T>,
        model: Option<(Arc<Execution>, Tid)>,
    }

    impl<T> JoinHandle<T> {
        /// Waits for the thread to finish (a blocking edge in the
        /// model) and returns its result.
        pub fn join(self) -> std::thread::Result<T> {
            if let Some((_, tid)) = &self.model {
                if let Some((ex, me)) = runtime::model_ctx() {
                    ex.join_one(me, *tid);
                }
            }
            self.inner.join()
        }

        /// Whether the thread has finished.
        pub fn is_finished(&self) -> bool {
            self.inner.is_finished()
        }
    }

    /// Spawns a thread; under the checker it becomes a model task whose
    /// every instrumented operation the scheduler controls.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match runtime::model_ctx() {
            Some((ex, me)) => {
                let tid = ex.spawn_register(me);
                let ex2 = Arc::clone(&ex);
                let inner = std::thread::spawn(move || runtime::task_main(ex2, tid, f));
                JoinHandle {
                    inner,
                    model: Some((ex, tid)),
                }
            }
            None => JoinHandle {
                inner: std::thread::spawn(f),
                model: None,
            },
        }
    }

    /// A scope for spawning borrowing threads, wrapping
    /// [`std::thread::scope`].
    ///
    /// Note the signature difference from `std`: the closure receives
    /// `&Scope<'scope, 'env>` with an independent outer borrow (like
    /// crossbeam's scope) rather than `&'scope Scope<'scope, 'env>`.
    /// Closures that only call `scope.spawn(..)` — the workspace idiom
    /// — compile unchanged against either.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
        /// Tids spawned in this scope, model-joined before `std`'s
        /// implicit (real, baton-blind) join runs.
        spawned: StdMutex<Vec<Tid>>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; see [`std::thread::Scope::spawn`].
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce() -> T + Send + 'scope,
            T: Send + 'scope,
        {
            match runtime::model_ctx() {
                Some((ex, me)) => {
                    let tid = ex.spawn_register(me);
                    self.spawned
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .push(tid);
                    let ex2 = Arc::clone(&ex);
                    let inner = self.inner.spawn(move || runtime::task_main(ex2, tid, f));
                    ScopedJoinHandle {
                        inner,
                        model: Some((ex, tid)),
                    }
                }
                None => ScopedJoinHandle {
                    inner: self.inner.spawn(f),
                    model: None,
                },
            }
        }
    }

    /// Handle to a scoped model thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
        model: Option<(Arc<Execution>, Tid)>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish (a blocking edge in the
        /// model) and returns its result.
        pub fn join(self) -> std::thread::Result<T> {
            if let Some((_, tid)) = &self.model {
                if let Some((ex, me)) = runtime::model_ctx() {
                    ex.join_one(me, *tid);
                }
            }
            self.inner.join()
        }

        /// Whether the thread has finished.
        pub fn is_finished(&self) -> bool {
            self.inner.is_finished()
        }
    }

    /// Creates a scope for spawning borrowing threads; see
    /// [`std::thread::scope`] (and the [`Scope`] signature note).
    pub fn scope<'env, F, T>(f: F) -> T
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
    {
        std::thread::scope(|s| {
            let wrapper = Scope {
                inner: s,
                spawned: StdMutex::new(Vec::new()),
            };
            let result = catch_unwind(AssertUnwindSafe(|| f(&wrapper)));
            // Model-join every scoped thread before std's implicit join
            // below: the implicit join blocks the real thread while it
            // still holds the model baton, which would starve the very
            // threads it waits for. `join_all` passes the baton
            // properly (and is abort-safe). Already-joined threads are
            // `Finished` and pass through instantly.
            let tids = std::mem::take(
                &mut *wrapper
                    .spawned
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner),
            );
            if !tids.is_empty() {
                if let Some((ex, me)) = runtime::model_ctx() {
                    ex.join_all(me, &tids);
                }
            }
            match result {
                Ok(v) => v,
                Err(payload) => resume_unwind(payload),
            }
        })
    }
}
