//! Mutation tests: prove the checker has teeth by running the same
//! protocol in a correct and a deliberately-broken variant and
//! asserting the broken one is caught. The variants mirror the two
//! mutation classes the ISSUE calls out — a weakened memory ordering
//! and a dropped lock.
#![cfg(dqec_check)]

use std::sync::Arc;

use dqec_check::sync::atomic::{AtomicUsize, Ordering};
use dqec_check::sync::Mutex;
use dqec_check::{check, thread, Config};

/// Publication handshake mirroring the rayon shim's `unclaimed`
/// protocol: a worker writes its result slot, then announces completion
/// with a `fetch_sub` on the remaining-work counter; the consumer waits
/// for the counter to hit zero, then reads the slot.
fn handshake(publish: Ordering, observe: Ordering) {
    let slot = Arc::new(AtomicUsize::new(0));
    let remaining = Arc::new(AtomicUsize::new(1));
    let (s2, r2) = (Arc::clone(&slot), Arc::clone(&remaining));
    let worker = thread::spawn(move || {
        s2.store(42, Ordering::Relaxed);
        r2.fetch_sub(1, publish);
    });
    while remaining.load(observe) != 0 {
        thread::yield_now();
    }
    assert_eq!(
        slot.load(Ordering::Relaxed),
        42,
        "handshake observed completion but read a stale slot"
    );
    worker.join().expect("worker");
}

#[test]
fn handshake_with_release_acquire_is_correct() {
    let outcome = check(&Config::random(2000), || {
        handshake(Ordering::Release, Ordering::Acquire)
    });
    assert!(
        outcome.failure.is_none(),
        "correct handshake flagged: {}",
        outcome.failure.map(|f| f.report()).unwrap_or_default()
    );
}

#[test]
fn mutation_weakened_ordering_is_caught() {
    let outcome = check(&Config::random(4000).seed(0xD9EC_0007), || {
        handshake(Ordering::Relaxed, Ordering::Relaxed)
    });
    let failure = outcome
        .failure
        .expect("Relaxed-mutated handshake must be caught");
    assert!(
        failure.message.contains("stale slot"),
        "{}",
        failure.message
    );
    assert!(
        !failure.trace.is_empty(),
        "mutation counterexample must come with a trace"
    );
}

/// Owner-side LIFO pop mirroring the shim's deque discipline: the
/// correct variant pops under the deque mutex; the mutated variant
/// reads the length and writes it back without holding the lock,
/// racing the stealer.
fn pop_tasks(locked: bool) {
    let deque = Arc::new(Mutex::new(vec![1u32, 2]));
    let len = Arc::new(AtomicUsize::new(2));
    let taken = Arc::new(AtomicUsize::new(0));

    let worker = |deque: Arc<Mutex<Vec<u32>>>, len: Arc<AtomicUsize>, taken: Arc<AtomicUsize>| {
        move || {
            if locked {
                let mut q = deque.lock().unwrap_or_else(|p| p.into_inner());
                if q.pop().is_some() {
                    len.store(q.len(), Ordering::SeqCst);
                    taken.fetch_add(1, Ordering::SeqCst);
                }
            } else {
                // MUTATION: length is read and written back outside the
                // lock, so two poppers can both observe len == 2 and
                // both "take" the same task.
                let n = len.load(Ordering::SeqCst);
                if n > 0 {
                    let mut q = deque.lock().unwrap_or_else(|p| p.into_inner());
                    q.pop();
                    drop(q);
                    len.store(n - 1, Ordering::SeqCst);
                    taken.fetch_add(1, Ordering::SeqCst);
                }
            }
        }
    };

    let t1 = thread::spawn(worker(
        Arc::clone(&deque),
        Arc::clone(&len),
        Arc::clone(&taken),
    ));
    let t2 = thread::spawn(worker(
        Arc::clone(&deque),
        Arc::clone(&len),
        Arc::clone(&taken),
    ));
    t1.join().expect("popper 1");
    t2.join().expect("popper 2");

    let q = deque.lock().unwrap_or_else(|p| p.into_inner());
    assert_eq!(
        q.len() + taken.load(Ordering::SeqCst),
        2,
        "tasks lost or duplicated (deque {} left, {} taken)",
        q.len(),
        taken.load(Ordering::SeqCst)
    );
    assert_eq!(
        len.load(Ordering::SeqCst),
        q.len(),
        "published length diverged from the deque"
    );
}

#[test]
fn locked_pop_is_correct() {
    let outcome = check(&Config::random(1500), || pop_tasks(true));
    assert!(
        outcome.failure.is_none(),
        "locked pop flagged: {}",
        outcome.failure.map(|f| f.report()).unwrap_or_default()
    );
}

#[test]
fn mutation_dropped_lock_is_caught() {
    let outcome = check(&Config::random(3000).seed(0xD9EC_0008), || pop_tasks(false));
    let failure = outcome
        .failure
        .expect("lock-dropping mutation must be caught");
    assert!(
        failure.message.contains("diverged") || failure.message.contains("lost or duplicated"),
        "{}",
        failure.message
    );
}
