//! Model-checker semantics tests: these only make sense under the
//! instrumented build (`RUSTFLAGS="--cfg dqec_check"`), where `check`
//! actually explores interleavings and weak-memory behaviours.
#![cfg(dqec_check)]

use std::sync::Arc;

use dqec_check::sync::atomic::{AtomicUsize, Ordering};
use dqec_check::sync::Mutex;
use dqec_check::{check, thread, Config, FailureKind};

// Bug-*finding* tests (the ones asserting `failure.is_some()`) pin an
// explicit seed: they validate the checker's teeth, which must not
// depend on the `DQEC_CHECK_SALT` CI uses to diversify the schedules
// explored by the correctness tests.

/// Classic message-passing litmus test with `Relaxed` everywhere: the
/// reader may observe `flag == 1` while still seeing a stale
/// `data == 0`. The weak-memory model must be able to produce that
/// execution.
#[test]
fn relaxed_message_passing_bug_is_found() {
    let outcome = check(&Config::random(2000).seed(0xD9EC_0001), || {
        let data = Arc::new(AtomicUsize::new(0));
        let flag = Arc::new(AtomicUsize::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let writer = thread::spawn(move || {
            d2.store(1, Ordering::Relaxed);
            f2.store(1, Ordering::Relaxed);
        });
        if flag.load(Ordering::Relaxed) == 1 {
            assert_eq!(
                data.load(Ordering::Relaxed),
                1,
                "flag observed but data load was stale"
            );
        }
        writer.join().expect("writer");
    });
    let failure = outcome
        .failure
        .expect("relaxed message passing must be caught");
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(failure.message.contains("stale"), "{}", failure.message);
}

/// The same protocol with Release/Acquire is correct: once the reader
/// acquires the flag store, the data store must be visible.
#[test]
fn release_acquire_message_passing_is_correct() {
    let outcome = check(&Config::random(2000), || {
        let data = Arc::new(AtomicUsize::new(0));
        let flag = Arc::new(AtomicUsize::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let writer = thread::spawn(move || {
            d2.store(1, Ordering::Relaxed);
            f2.store(1, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(data.load(Ordering::Relaxed), 1);
        }
        writer.join().expect("writer");
    });
    assert!(
        outcome.failure.is_none(),
        "spurious failure: {}",
        outcome.failure.map(|f| f.report()).unwrap_or_default()
    );
    eprintln!("release/acquire litmus: {} executions", outcome.executions);
}

/// A load/store increment (no RMW, no lock) loses updates under some
/// interleavings; the scheduler must find one.
#[test]
fn racy_increment_lost_update_is_found() {
    let outcome = check(&Config::random(2000).seed(0xD9EC_0003), || {
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&counter);
                thread::spawn(move || {
                    let v = c.load(Ordering::SeqCst);
                    c.store(v + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("incrementer");
        }
        assert_eq!(counter.load(Ordering::SeqCst), 2, "lost update");
    });
    let failure = outcome.failure.expect("lost update must be caught");
    assert!(
        failure.message.contains("lost update"),
        "{}",
        failure.message
    );
    assert!(
        !failure.trace.is_empty(),
        "counterexample trace must be recorded"
    );
}

/// The same increment under a mutex is correct — and small enough for
/// bounded-exhaustive DFS to prove it over every schedule.
#[test]
fn mutex_increment_is_correct_and_dfs_exhausts() {
    let run = || {
        let counter = Arc::new(Mutex::new(0usize));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&counter);
                thread::spawn(move || {
                    *c.lock().unwrap_or_else(|p| p.into_inner()) += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().expect("incrementer");
        }
        assert_eq!(*counter.lock().unwrap_or_else(|p| p.into_inner()), 2);
    };
    let random = check(&Config::random(500), run);
    assert!(
        random.failure.is_none(),
        "{:?}",
        random.failure.map(|f| f.report())
    );

    let dfs = check(&Config::dfs(20_000), run);
    assert!(
        dfs.failure.is_none(),
        "{:?}",
        dfs.failure.map(|f| f.report())
    );
    assert!(
        dfs.complete,
        "DFS should exhaust this tiny state space ({} executions)",
        dfs.executions
    );
    eprintln!(
        "mutex increment DFS: {} executions (complete)",
        dfs.executions
    );
}

/// AB/BA lock ordering deadlocks; the scheduler's deadlock detector
/// must report it rather than hang.
#[test]
fn ab_ba_deadlock_is_detected() {
    let outcome = check(&Config::random(1000).seed(0xD9EC_0004), || {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = thread::spawn(move || {
            let _ga = a2.lock().unwrap_or_else(|p| p.into_inner());
            let _gb = b2.lock().unwrap_or_else(|p| p.into_inner());
        });
        let _gb = b.lock().unwrap_or_else(|p| p.into_inner());
        let _ga = a.lock().unwrap_or_else(|p| p.into_inner());
        drop((_ga, _gb));
        let _ = t.join();
    });
    let failure = outcome.failure.expect("AB/BA deadlock must be detected");
    assert_eq!(failure.kind, FailureKind::Deadlock);
}

/// PCT must find the lost update too (different strategy, same bug).
#[test]
fn pct_strategy_finds_lost_update() {
    let outcome = check(&Config::pct(2000, 3).seed(0xD9EC_0005), || {
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        let t = thread::spawn(move || {
            let v = c.load(Ordering::SeqCst);
            c.store(v + 1, Ordering::SeqCst);
        });
        let v = counter.load(Ordering::SeqCst);
        counter.store(v + 1, Ordering::SeqCst);
        t.join().expect("incrementer");
        assert_eq!(counter.load(Ordering::SeqCst), 2, "lost update");
    });
    assert!(outcome.failure.is_some(), "PCT missed the lost update");
}

/// Replaying a failure's reported seed must reproduce the identical
/// counterexample, trace included (the replay contract behind
/// `DQEC_CHECK_SEED`).
#[test]
fn failing_seed_replays_bit_exact() {
    let racy = || {
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        let t = thread::spawn(move || {
            let v = c.load(Ordering::SeqCst);
            c.store(v + 1, Ordering::SeqCst);
        });
        let v = counter.load(Ordering::SeqCst);
        counter.store(v + 1, Ordering::SeqCst);
        t.join().expect("incrementer");
        assert_eq!(counter.load(Ordering::SeqCst), 2, "lost update");
    };
    let first = check(&Config::random(2000).seed(0xD9EC_0006), racy)
        .failure
        .expect("lost update must be found");
    let seed = first.seed.expect("random failures carry a seed");

    let replay = check(&Config::random(1).seed(seed), racy)
        .failure
        .expect("replay with the failing seed must fail again");
    assert_eq!(replay.seed, Some(seed));
    assert_eq!(replay.kind, first.kind);
    assert_eq!(replay.steps, first.steps, "replay diverged (step count)");
    assert_eq!(replay.trace, first.trace, "replay diverged (trace)");
}

/// Step-bound handling: a long-yielding execution overruns a tiny step
/// budget. Depending on `bound_is_failure` it is either reported as a
/// StepBound failure or counted in `Outcome::bounded`.
#[test]
fn step_bound_is_failure_or_prune_as_configured() {
    let spin = || {
        let t = thread::spawn(|| {
            for _ in 0..500 {
                thread::yield_now();
            }
        });
        t.join().expect("spinner");
    };
    let strict = check(&Config::random(3).max_steps(50), spin);
    let failure = strict
        .failure
        .expect("bound overrun must fail when configured");
    assert_eq!(failure.kind, FailureKind::StepBound);

    let lenient = check(
        &Config::random(3).max_steps(50).bound_is_failure(false),
        spin,
    );
    assert!(lenient.failure.is_none());
    assert!(lenient.bounded > 0, "bounded executions must be counted");
}
