//! Facade behaviour tests that run in BOTH builds: the plain tier-1
//! build (where `dqec_check::sync` / `::thread` are thin re-exports of
//! `std`) and the instrumented `--cfg dqec_check` build (where the same
//! code runs under the model scheduler). Nothing here depends on
//! exploring more than one interleaving.

use std::sync::Arc;

use dqec_check::sync::atomic::{AtomicBool, AtomicIsize, AtomicUsize, Ordering};
use dqec_check::sync::{Condvar, Mutex};
use dqec_check::{check, thread, Config, FailureKind};

#[test]
fn atomics_roundtrip_all_ops() {
    let outcome = check(&Config::random(5), || {
        let u = AtomicUsize::new(3);
        assert_eq!(u.fetch_add(2, Ordering::SeqCst), 3);
        assert_eq!(u.fetch_sub(1, Ordering::SeqCst), 5);
        assert_eq!(u.fetch_max(10, Ordering::SeqCst), 4);
        assert_eq!(u.swap(7, Ordering::SeqCst), 10);
        assert_eq!(
            u.compare_exchange(7, 8, Ordering::SeqCst, Ordering::SeqCst),
            Ok(7)
        );
        assert_eq!(
            u.compare_exchange(7, 9, Ordering::SeqCst, Ordering::SeqCst),
            Err(8)
        );
        assert_eq!(u.load(Ordering::SeqCst), 8);

        let i = AtomicIsize::new(-4);
        assert_eq!(i.fetch_add(1, Ordering::SeqCst), -4);
        assert_eq!(i.load(Ordering::SeqCst), -3);
        assert_eq!(i.fetch_max(0, Ordering::SeqCst), -3);
        assert_eq!(i.load(Ordering::SeqCst), 0);

        let b = AtomicBool::new(false);
        assert!(!b.fetch_or(true, Ordering::SeqCst));
        assert!(b.load(Ordering::SeqCst));
        assert!(b.fetch_and(false, Ordering::SeqCst));
        assert!(!b.load(Ordering::SeqCst));
    });
    assert!(outcome.failure.is_none(), "{:?}", outcome.failure);
}

#[test]
fn spawn_join_returns_value() {
    let outcome = check(&Config::random(5), || {
        let h = thread::spawn(|| 41usize + 1);
        assert_eq!(h.join().expect("spawned thread completed"), 42);
    });
    assert!(outcome.failure.is_none(), "{:?}", outcome.failure);
}

#[test]
fn scope_spawns_and_joins_borrowing_threads() {
    let outcome = check(&Config::random(10), || {
        let data = [1usize, 2, 3, 4];
        let total = AtomicUsize::new(0);
        thread::scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|| {
                    let part: usize = chunk.iter().sum();
                    total.fetch_add(part, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 10);
    });
    assert!(outcome.failure.is_none(), "{:?}", outcome.failure);
}

#[test]
fn mutex_and_condvar_handshake() {
    let outcome = check(&Config::random(20), || {
        let pair = Arc::new((Mutex::new(0usize), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let producer = thread::spawn(move || {
            let (m, cv) = &*p2;
            match m.lock() {
                Ok(mut g) => *g = 7,
                Err(poisoned) => *poisoned.into_inner() = 7,
            }
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let g = m.lock().unwrap_or_else(|p| p.into_inner());
        let g = cv
            .wait_while(g, |v| *v == 0)
            .unwrap_or_else(|p| p.into_inner());
        assert_eq!(*g, 7);
        drop(g);
        producer.join().expect("producer finished");
    });
    assert!(outcome.failure.is_none(), "{:?}", outcome.failure);
}

#[test]
fn check_reports_a_panicking_closure_as_failure() {
    let outcome = check(&Config::random(50), || {
        let flag = AtomicBool::new(false);
        flag.store(true, Ordering::SeqCst);
        assert!(!flag.load(Ordering::SeqCst), "deliberately wrong");
    });
    let failure = outcome.failure.expect("panic must surface as a failure");
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(
        failure.message.contains("deliberately wrong"),
        "message: {}",
        failure.message
    );
    // report() must not itself panic.
    let _ = failure.report();
}
