//! `Decoder`-trait conformance: the shared invariant suite
//! (`check_decoder_conformance`) applied to every implementor in this
//! crate, plus trait-object ergonomics. New decoders (union-find,
//! correlated matching, ...) should add themselves here.

use dqec_matching::{check_decoder_conformance, Decoder, MwpmDecoder, UfDecoder};
use dqec_sim::circuit::{CheckBasis, Circuit, Noise1};
use dqec_sim::noise::NoiseModel;

/// A 3-qubit repetition code over `rounds` rounds with per-round data
/// flip probability `p`; observable = data qubit 0.
fn repetition(rounds: usize, p: f64) -> Circuit {
    let mut c = Circuit::new(5);
    for q in 0..5 {
        c.reset(q).unwrap();
    }
    let mut prev: Option<[dqec_sim::MeasRecord; 2]> = None;
    for t in 0..rounds {
        for q in 0..3 {
            c.noise1(Noise1::XError, q, p).unwrap();
        }
        c.cx(0, 3).unwrap();
        c.cx(1, 3).unwrap();
        c.cx(1, 4).unwrap();
        c.cx(2, 4).unwrap();
        let m3 = c.measure_reset(3).unwrap();
        let m4 = c.measure_reset(4).unwrap();
        match prev {
            None => {
                c.add_detector(&[m3], CheckBasis::Z, (0, 0, t as i32))
                    .unwrap();
                c.add_detector(&[m4], CheckBasis::Z, (1, 0, t as i32))
                    .unwrap();
            }
            Some([p3, p4]) => {
                c.add_detector(&[m3, p3], CheckBasis::Z, (0, 0, t as i32))
                    .unwrap();
                c.add_detector(&[m4, p4], CheckBasis::Z, (1, 0, t as i32))
                    .unwrap();
            }
        }
        prev = Some([m3, m4]);
    }
    let d0 = c.measure(0).unwrap();
    let d1 = c.measure(1).unwrap();
    let d2 = c.measure(2).unwrap();
    let [p3, p4] = prev.unwrap();
    c.add_detector(&[d0, d1, p3], CheckBasis::Z, (0, 0, rounds as i32))
        .unwrap();
    c.add_detector(&[d1, d2, p4], CheckBasis::Z, (1, 0, rounds as i32))
        .unwrap();
    c.include_observable(0, &[d0]).unwrap();
    c
}

#[test]
fn mwpm_from_noisy_circuit_conforms() {
    let noisy = repetition(3, 0.02);
    let clean = repetition(3, 0.0);
    let decoder = MwpmDecoder::new(&noisy);
    check_decoder_conformance(&decoder, &clean);
}

#[test]
fn mwpm_from_clean_conforms_before_and_after_reweighting() {
    let clean = repetition(3, 0.0);
    let mut decoder = MwpmDecoder::from_clean(&clean, &NoiseModel::new(2e-2));
    check_decoder_conformance(&decoder, &clean);
    assert!(decoder.reweight(&NoiseModel::new(5e-3)));
    check_decoder_conformance(&decoder, &clean);
}

#[test]
fn uf_from_noisy_circuit_conforms() {
    // The same 1k-random-syndrome suite the MWPM decoder passes:
    // cold/warm memo cache agreement and worker caps of 1, 4, and 16.
    let noisy = repetition(3, 0.02);
    let clean = repetition(3, 0.0);
    let decoder = UfDecoder::new(&noisy);
    check_decoder_conformance(&decoder, &clean);
}

#[test]
fn uf_from_clean_conforms_before_and_after_reweighting() {
    let clean = repetition(3, 0.0);
    let mut decoder = UfDecoder::from_clean(&clean, &NoiseModel::new(2e-2));
    check_decoder_conformance(&decoder, &clean);
    assert!(decoder.reweight(&NoiseModel::new(5e-3)));
    check_decoder_conformance(&decoder, &clean);
}

#[test]
fn decoder_works_as_a_trait_object() {
    let noisy = repetition(2, 0.01);
    for boxed in [
        Box::new(MwpmDecoder::new(&noisy)) as Box<dyn Decoder>,
        Box::new(UfDecoder::new(&noisy)) as Box<dyn Decoder>,
    ] {
        assert_eq!(boxed.num_observables(), 1);
        assert_eq!(boxed.decode_events(&[]), 0);
    }
}
