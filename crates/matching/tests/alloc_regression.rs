//! Allocation regression gate: once warm, `decode_batch` must run its
//! steady state out of the solver arenas and the syndrome memo — zero
//! heap allocations per shot, for both decoders. The test measures the
//! allocator directly: a warm decode of an 8k-shot batch must allocate
//! exactly as much as a warm decode of a 2k-shot batch (the constant
//! per-call overhead, e.g. the returned stats), i.e. the per-shot cost
//! is zero.

use std::alloc::{GlobalAlloc, Layout, System};

use dqec_check::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use dqec_matching::{Decoder, MwpmDecoder, UfDecoder};
use dqec_sim::circuit::{CheckBasis, Circuit, Noise1};
use dqec_sim::frame::FrameSampler;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Forwards to the system allocator, counting allocation calls while
/// armed. `realloc` counts too (it may move); `dealloc` is free.
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: defers entirely to `System` with unchanged arguments; the
// only added behaviour is incrementing atomic counters, which
// allocates nothing and cannot panic or recurse into the allocator.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: same contract as `System::alloc`; the counter bump has
    // no allocator-visible effect.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: `layout` is the caller's layout, forwarded verbatim.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: `ptr` was produced by `Self::alloc`/`Self::realloc`,
    // which delegate to `System`, so returning it to `System` with
    // the same layout is sound.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwarded verbatim; see the method-level comment.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: same `ptr`/`layout` contract as `dealloc`; `new_size`
    // is forwarded verbatim.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: forwarded verbatim; see the method-level comment.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` with the allocation counter armed, returning how many
/// allocator calls it made.
fn count_allocs<R>(f: impl FnOnce() -> R) -> (usize, R) {
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let r = f();
    ARMED.store(false, Ordering::SeqCst);
    (ALLOCS.load(Ordering::SeqCst), r)
}

/// 3-qubit repetition code over `rounds` rounds (same fixture as the
/// decoder-trait conformance tests).
fn repetition(rounds: usize, p: f64) -> Circuit {
    let mut c = Circuit::new(5);
    for q in 0..5 {
        c.reset(q).expect("reset");
    }
    let mut prev: Option<[dqec_sim::MeasRecord; 2]> = None;
    for t in 0..rounds {
        for q in 0..3 {
            c.noise1(Noise1::XError, q, p).expect("noise");
        }
        c.cx(0, 3).expect("cx");
        c.cx(1, 3).expect("cx");
        c.cx(1, 4).expect("cx");
        c.cx(2, 4).expect("cx");
        let m3 = c.measure_reset(3).expect("measure");
        let m4 = c.measure_reset(4).expect("measure");
        match prev {
            None => {
                c.add_detector(&[m3], CheckBasis::Z, (0, 0, t as i32))
                    .expect("detector");
                c.add_detector(&[m4], CheckBasis::Z, (1, 0, t as i32))
                    .expect("detector");
            }
            Some([p3, p4]) => {
                c.add_detector(&[m3, p3], CheckBasis::Z, (0, 0, t as i32))
                    .expect("detector");
                c.add_detector(&[m4, p4], CheckBasis::Z, (1, 0, t as i32))
                    .expect("detector");
            }
        }
        prev = Some([m3, m4]);
    }
    let d0 = c.measure(0).expect("measure");
    let d1 = c.measure(1).expect("measure");
    let d2 = c.measure(2).expect("measure");
    let [p3, p4] = prev.expect("at least one round");
    c.add_detector(&[d0, d1, p3], CheckBasis::Z, (0, 0, rounds as i32))
        .expect("detector");
    c.add_detector(&[d1, d2, p4], CheckBasis::Z, (1, 0, rounds as i32))
        .expect("detector");
    c.include_observable(0, &[d0]).expect("observable");
    c
}

/// Warm steady-state allocation count of `decode_batch` on `shots`
/// random shots: two warm-up decodes populate the arenas and the
/// syndrome memo, then the third (identical) decode is measured.
fn warm_decode_allocs(decoder: &dyn Decoder, shots: usize, seed: u64) -> usize {
    let circuit = repetition(3, 0.02);
    let batch = FrameSampler::new(&circuit).sample(shots, &mut StdRng::seed_from_u64(seed));
    // Sequential decode: worker spawns would allocate stacks and
    // channels, which is a per-call (and platform) cost, not a
    // per-shot one.
    rayon::with_worker_cap(1, || {
        let warm1 = decoder.decode_batch(&batch);
        let warm2 = decoder.decode_batch(&batch);
        assert_eq!(warm1.shots, warm2.shots);
        let (allocs, warm3) = count_allocs(|| decoder.decode_batch(&batch));
        assert_eq!(warm2.failures, warm3.failures);
        allocs
    })
}

#[test]
fn warm_decode_batch_allocations_do_not_scale_with_shots() {
    let circuit = repetition(3, 0.02);
    for (name, decoder) in [
        (
            "mwpm",
            Box::new(MwpmDecoder::new(&circuit)) as Box<dyn Decoder>,
        ),
        ("uf", Box::new(UfDecoder::new(&circuit)) as Box<dyn Decoder>),
    ] {
        let small = warm_decode_allocs(decoder.as_ref(), 2_000, 0xa110c);
        let large = warm_decode_allocs(decoder.as_ref(), 8_000, 0xa110c);
        assert_eq!(
            small, large,
            "{name}: warm decode_batch allocations scale with shot count \
             (2k shots: {small} allocs, 8k shots: {large} allocs) — \
             per-shot allocations must be zero"
        );
        eprintln!("{name}: warm decode_batch = {small} allocs/call (shot-independent)");
    }
}
