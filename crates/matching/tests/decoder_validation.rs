//! Decoder validation: graph-distance sanity on structured circuits and
//! behaviour under extreme syndromes.

use dqec_matching::{Decoder, DecodingGraph, MwpmDecoder};
use dqec_sim::circuit::{CheckBasis, Circuit, Noise1};
use dqec_sim::dem::DetectorErrorModel;

/// A 1D matching chain: n checks in a row, data errors between them.
fn chain_circuit(n: u32, p: f64) -> Circuit {
    // Data qubits 0..=n, ancillas n+1..=2n.
    let mut c = Circuit::new(2 * n + 1);
    for q in 0..=2 * n {
        c.reset(q).unwrap();
    }
    for q in 0..=n {
        c.noise1(Noise1::XError, q, p).unwrap();
    }
    let mut records = Vec::new();
    for i in 0..n {
        let anc = n + 1 + i;
        c.cx(i, anc).unwrap();
        c.cx(i + 1, anc).unwrap();
        records.push(c.measure(anc).unwrap());
    }
    for (i, &m) in records.iter().enumerate() {
        c.add_detector(&[m], CheckBasis::Z, (i as i32, 0, 0))
            .unwrap();
    }
    // Observable: data qubit 0 (its X flip is logical).
    let d0 = c.measure(0).unwrap();
    c.include_observable(0, &[d0]).unwrap();
    c
}

#[test]
fn chain_graph_distances_are_monotone_in_separation() {
    let c = chain_circuit(6, 0.01);
    let dem = DetectorErrorModel::from_circuit(&c);
    let g = DecodingGraph::build(&c, &dem, CheckBasis::Z);
    // All edges share the same probability, so the direct distance
    // grows linearly with separation — until routing through the shared
    // boundary becomes cheaper (0 and 5 are each one edge from an end,
    // so their distance saturates at two edge weights).
    let d01 = g.distance(Some(0), Some(1));
    let d02 = g.distance(Some(0), Some(2));
    let d05 = g.distance(Some(0), Some(5));
    assert!(d01 < d02);
    assert!((d02 - 2.0 * d01).abs() < 1e-9, "uniform chain is additive");
    assert!(
        (d05 - d02).abs() < 1e-9,
        "far pair reroutes through the boundary: {d05} vs {d02}"
    );
}

#[test]
fn boundary_distance_reflects_position() {
    let c = chain_circuit(6, 0.01);
    let dem = DetectorErrorModel::from_circuit(&c);
    let g = DecodingGraph::build(&c, &dem, CheckBasis::Z);
    // Check 0 is one error from the left boundary; check 3 is four away
    // from either side (going through the nearer one is cheaper but
    // still costlier than check 0's).
    let b0 = g.distance(Some(0), None);
    let b3 = g.distance(Some(3), None);
    assert!(b0 < b3);
}

#[test]
fn single_event_matches_to_nearest_boundary_and_predicts_obs() {
    let c = chain_circuit(4, 0.01);
    let decoder = MwpmDecoder::new(&c);
    // Event at detector 0: nearest explanation is an X on data 0, which
    // flips the observable.
    assert_eq!(decoder.decode_events(&[0]), 1);
    // Event at detector 3 (right end): nearest explanation is data 4 —
    // no observable flip.
    assert_eq!(decoder.decode_events(&[3]), 0);
}

#[test]
fn adjacent_pair_matches_internally() {
    let c = chain_circuit(4, 0.01);
    let decoder = MwpmDecoder::new(&c);
    // Events at detectors 1 and 2: the single error on data qubit 2
    // between them explains both without an observable flip.
    assert_eq!(decoder.decode_events(&[1, 2]), 0);
}

#[test]
fn full_syndrome_decodes_without_panicking() {
    let c = chain_circuit(8, 0.01);
    let decoder = MwpmDecoder::new(&c);
    let all: Vec<u32> = (0..8).collect();
    // Any prediction is acceptable; it must simply terminate and be
    // consistent under repetition.
    let p1 = decoder.decode_events(&all);
    let p2 = decoder.decode_events(&all);
    assert_eq!(p1, p2);
}

#[test]
fn observable_ownership_splits_by_basis() {
    // A circuit whose observable is only flippable by X errors must
    // assign the observable to the Z graph.
    let c = chain_circuit(3, 0.02);
    let dem = DetectorErrorModel::from_circuit(&c);
    let (z_mask, x_mask) = DecodingGraph::split_observables(&c, &dem);
    assert_eq!(z_mask & 1, 1);
    assert_eq!(x_mask & 1, 0);
}

#[test]
fn graphlike_distance_of_chain_matches_code_distance() {
    // The only undetectable logical of the 5-data-qubit repetition
    // chain is flipping all five qubits (a boundary-to-boundary string
    // crossing the observable once), so the circuit distance is 5.
    let c = chain_circuit(4, 0.01);
    let dem = DetectorErrorModel::from_circuit(&c);
    let g = DecodingGraph::build(&c, &dem, CheckBasis::Z);
    assert_eq!(g.graphlike_distance(0), Some(5));
}
