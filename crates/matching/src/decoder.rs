//! The end-to-end MWPM decoder.
//!
//! Combines the two CSS decoding graphs: each shot's detection events
//! are split by basis, matched independently with the blossom algorithm
//! over cached shortest-path weights, and the predicted observable flips
//! are XORed together.

use crate::blossom::min_weight_perfect_matching;
use crate::graph::DecodingGraph;
use dqec_sim::circuit::{CheckBasis, Circuit};
use dqec_sim::dem::{DetectorErrorModel, ParametricDem};
use dqec_sim::frame::ShotBatch;
use dqec_sim::noise::NoiseModel;
use std::collections::HashMap;

/// A syndrome decoder for a fixed circuit.
///
/// This is the seam every consumer outside `dqec_matching` decodes
/// through: the experiment `Runner` in `dqec_chiplet` drives any
/// `dyn Decoder`, so union-find, correlated-matching, or lookup
/// decoders drop in beside [`MwpmDecoder`] without touching the
/// experiment plumbing.
///
/// Implementors must be deterministic: the same events must always
/// produce the same prediction (the experiment harness relies on this
/// for thread-count-independent results).
pub trait Decoder: Send + Sync {
    /// The number of logical observables predictions cover.
    fn num_observables(&self) -> usize;

    /// Predicts the observable flips for one shot's detection events
    /// (flagged detector ids, any basis, ascending or not).
    fn decode_events(&self, events: &[u32]) -> u64;

    /// Re-derives internal weights for a new noise model *without*
    /// rebuilding the decoder, so a p-sweep over one circuit pays the
    /// construction cost once. Returns `false` when this decoder cannot
    /// reweight (the caller should rebuild instead); the default
    /// implementation always does.
    fn reweight(&mut self, noise: &NoiseModel) -> bool {
        let _ = noise;
        false
    }

    /// Decodes every shot of a batch and tallies logical failures.
    fn decode_batch(&self, batch: &ShotBatch) -> DecodeStats {
        let shots = batch.detectors.shots();
        let mut failures = vec![0usize; self.num_observables()];
        let events_by_shot = batch.detection_events_by_shot();
        for (shot, events) in events_by_shot.iter().enumerate() {
            let predicted = self.decode_events(events);
            for (o, f) in failures.iter_mut().enumerate() {
                let actual = batch.observables.get(o, shot);
                let pred = (predicted >> o) & 1 == 1;
                if actual != pred {
                    *f += 1;
                }
            }
        }
        DecodeStats { shots, failures }
    }
}

/// Asserts the invariants every [`Decoder`] implementation must hold on
/// `circuit`, which is expected to decode a noiseless batch perfectly:
/// empty events predict nothing, predictions are deterministic and
/// independent of event order, batch decoding tallies every shot, and a
/// noiseless batch decodes without logical failures.
///
/// Shared by implementors as a conformance test; see
/// `tests/decoder_trait.rs` for its use on [`MwpmDecoder`].
///
/// # Panics
///
/// Panics (via assertions) when the decoder violates an invariant.
pub fn check_decoder_conformance<D: Decoder>(decoder: &D, circuit: &Circuit) {
    use dqec_sim::frame::FrameSampler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    assert_eq!(
        decoder.num_observables(),
        circuit.observables().len(),
        "num_observables must match the circuit"
    );
    assert_eq!(
        decoder.decode_events(&[]),
        0,
        "empty events must predict no flips"
    );

    // Determinism and event-order independence on a handful of synthetic
    // symptoms (pairs of same-basis detectors are always matchable).
    let dets: Vec<u32> = (0..circuit.detectors().len() as u32).collect();
    for pair in dets.windows(2) {
        let fwd = decoder.decode_events(pair);
        let rev: Vec<u32> = pair.iter().rev().copied().collect();
        assert_eq!(fwd, decoder.decode_events(pair), "must be deterministic");
        assert_eq!(
            fwd,
            decoder.decode_events(&rev),
            "must not depend on event order"
        );
    }

    // A noiseless batch has no detection events and no observable flips,
    // so every conforming decoder reports zero failures.
    let batch = FrameSampler::new(circuit).sample(256, &mut StdRng::seed_from_u64(0xc0f));
    let stats = decoder.decode_batch(&batch);
    assert_eq!(stats.shots, 256, "batch decoding must tally every shot");
    assert_eq!(stats.failures.len(), decoder.num_observables());
    assert!(
        stats.failures.iter().all(|&f| f == 0),
        "noiseless shots must not fail: {:?}",
        stats.failures
    );
}

/// Outcome statistics of decoding a batch of shots.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DecodeStats {
    /// Number of shots decoded.
    pub shots: usize,
    /// Per-observable counts of logical failures (prediction != actual).
    pub failures: Vec<usize>,
}

impl DecodeStats {
    /// Logical error rate of observable `obs`.
    ///
    /// # Panics
    ///
    /// Panics if no shots were decoded or `obs` is out of range.
    pub fn logical_error_rate(&self, obs: usize) -> f64 {
        assert!(self.shots > 0, "no shots decoded");
        self.failures[obs] as f64 / self.shots as f64
    }

    /// 95% Wilson confidence interval for observable `obs`'s LER.
    ///
    /// # Panics
    ///
    /// Panics if no shots were decoded or `obs` is out of range.
    pub fn wilson_interval(&self, obs: usize) -> (f64, f64) {
        assert!(self.shots > 0, "no shots decoded");
        let n = self.shots as f64;
        let p = self.failures[obs] as f64 / n;
        let z = 1.96f64;
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
        ((center - half).max(0.0), (center + half).min(1.0))
    }
}

/// A minimum-weight perfect-matching decoder for a fixed noisy circuit.
///
/// # Examples
///
/// ```
/// use dqec_matching::MwpmDecoder;
/// use dqec_sim::circuit::{CheckBasis, Circuit, Noise1};
/// use dqec_sim::frame::FrameSampler;
/// use rand::SeedableRng;
///
/// // Two-round repetition-ish toy circuit.
/// let mut c = Circuit::new(2);
/// c.reset(0)?;
/// c.reset(1)?;
/// c.noise1(Noise1::XError, 0, 0.05)?;
/// c.cx(0, 1)?;
/// let m = c.measure_reset(1)?;
/// c.add_detector(&[m], CheckBasis::Z, (0, 0, 0))?;
/// let d = c.measure(0)?;
/// c.add_detector(&[m, d], CheckBasis::Z, (0, 0, 1))?;
/// c.include_observable(0, &[d])?;
///
/// use dqec_matching::Decoder;
/// let decoder = MwpmDecoder::new(&c);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let batch = FrameSampler::new(&c).sample(2000, &mut rng);
/// let stats = decoder.decode_batch(&batch);
/// // A single qubit's flip is always detected and corrected here.
/// assert_eq!(stats.failures[0], 0);
/// # Ok::<(), dqec_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MwpmDecoder {
    z_graph: DecodingGraph,
    x_graph: DecodingGraph,
    det_basis: Vec<CheckBasis>,
    num_observables: usize,
    /// Present when built via [`MwpmDecoder::from_clean`]: enables
    /// in-place reweighting for a different baseline error rate.
    parametric: Option<Box<ParametricState>>,
}

#[derive(Debug, Clone)]
struct ParametricState {
    pdem: ParametricDem,
    /// The per-qubit overrides the template was built with; reweighting
    /// is only valid while they are unchanged.
    overrides: HashMap<u32, f64>,
    /// The baseline `p` the graphs currently carry; reweighting to the
    /// same value is a no-op.
    current_p: f64,
}

impl MwpmDecoder {
    /// Builds a decoder for `circuit` by extracting its detector error
    /// model and constructing both basis graphs.
    pub fn new(circuit: &Circuit) -> Self {
        let dem = DetectorErrorModel::from_circuit(circuit);
        Self::with_dem(circuit, &dem)
    }

    /// Builds a decoder from a precomputed DEM.
    pub fn with_dem(circuit: &Circuit, dem: &DetectorErrorModel) -> Self {
        let (z_mask, x_mask) = DecodingGraph::split_observables(circuit, dem);
        MwpmDecoder {
            z_graph: DecodingGraph::build_with_observables(circuit, dem, CheckBasis::Z, z_mask),
            x_graph: DecodingGraph::build_with_observables(circuit, dem, CheckBasis::X, x_mask),
            det_basis: circuit.detectors().iter().map(|d| d.basis).collect(),
            num_observables: circuit.observables().len(),
            parametric: None,
        }
    }

    /// Builds a *reweightable* decoder: applies `noise` to the clean
    /// circuit, extracts a parametric detector error model, and keeps it
    /// so later [`Decoder::reweight`] calls can move the edge weights to
    /// a different baseline `p` without re-walking the circuit.
    ///
    /// Build the template at the sweep's largest `p` (any `p > 0`
    /// works): a template built at `p = 0` has no noise ops at all and
    /// cannot represent the mechanisms that appear at `p > 0`.
    ///
    /// # Examples
    ///
    /// ```
    /// use dqec_matching::{Decoder, MwpmDecoder};
    /// use dqec_sim::circuit::{CheckBasis, Circuit};
    /// use dqec_sim::noise::NoiseModel;
    ///
    /// let mut clean = Circuit::new(2);
    /// clean.reset(0)?;
    /// clean.reset(1)?;
    /// clean.cx(0, 1)?;
    /// let m = clean.measure_reset(1)?;
    /// clean.add_detector(&[m], CheckBasis::Z, (0, 0, 0))?;
    /// let d = clean.measure(0)?;
    /// clean.add_detector(&[m, d], CheckBasis::Z, (0, 0, 1))?;
    /// clean.include_observable(0, &[d])?;
    ///
    /// // Build once at the top of the sweep, reweight per point.
    /// let mut decoder = MwpmDecoder::from_clean(&clean, &NoiseModel::new(2e-3));
    /// for p in [2e-3, 1e-3, 5e-4] {
    ///     assert!(decoder.reweight(&NoiseModel::new(p)));
    /// }
    /// # Ok::<(), dqec_sim::SimError>(())
    /// ```
    pub fn from_clean(clean: &Circuit, noise: &NoiseModel) -> Self {
        let (noisy, params) = noise.apply_with_params(clean);
        let pdem = ParametricDem::from_noisy(&noisy, &params);
        let dem = pdem.concretize(noise.p());
        let mut decoder = Self::with_dem(&noisy, &dem);
        decoder.parametric = Some(Box::new(ParametricState {
            pdem,
            overrides: noise.overrides().clone(),
            current_p: noise.p(),
        }));
        decoder
    }

    /// The Z-basis decoding graph.
    pub fn z_graph(&self) -> &DecodingGraph {
        &self.z_graph
    }

    /// The X-basis decoding graph.
    pub fn x_graph(&self) -> &DecodingGraph {
        &self.x_graph
    }
}

impl Decoder for MwpmDecoder {
    fn num_observables(&self) -> usize {
        self.num_observables
    }

    fn decode_events(&self, events: &[u32]) -> u64 {
        let mut z_events = Vec::new();
        let mut x_events = Vec::new();
        for &d in events {
            match self.det_basis[d as usize] {
                CheckBasis::Z => z_events.push(d),
                CheckBasis::X => x_events.push(d),
            }
        }
        decode_one(&self.z_graph, &z_events) ^ decode_one(&self.x_graph, &x_events)
    }

    /// Reweights both basis graphs from the cached parametric DEM.
    /// Requires construction via [`MwpmDecoder::from_clean`] and a noise
    /// model with the *same* per-qubit overrides as the template (the
    /// overrides shape the mechanism structure; only the baseline `p`
    /// may move). Returns `false` otherwise.
    fn reweight(&mut self, noise: &NoiseModel) -> bool {
        let Some(state) = &mut self.parametric else {
            return false;
        };
        if state.overrides != *noise.overrides() {
            return false;
        }
        if state.current_p == noise.p() {
            return true; // weights already match
        }
        let dem = state.pdem.concretize(noise.p());
        self.z_graph.reweight_from(&dem);
        self.x_graph.reweight_from(&dem);
        state.current_p = noise.p();
        true
    }
}

/// Matches one basis's events and returns the predicted observable mask.
fn decode_one(graph: &DecodingGraph, events: &[u32]) -> u64 {
    let nodes: Vec<u32> = events
        .iter()
        .filter_map(|&d| graph.node_of_detector(d))
        .collect();
    let k = nodes.len();
    if k == 0 {
        return 0;
    }
    // Complete graph on k real + k virtual boundary copies.
    let m = 2 * k;
    let mut w = vec![vec![0.0f64; m]; m];
    for i in 0..k {
        for j in 0..k {
            if i != j {
                w[i][j] = graph.distance(Some(nodes[i]), Some(nodes[j]));
            }
        }
        let db = graph.distance(Some(nodes[i]), None);
        for j in 0..k {
            w[i][k + j] = db;
            w[k + j][i] = db;
        }
    }
    // virtual-virtual edges are free (already 0).
    let matching = min_weight_perfect_matching(&w);
    let mut obs = 0u64;
    for i in 0..k {
        let mate = matching.mate[i];
        if mate < k {
            if i < mate {
                obs ^= graph.path_observables(Some(nodes[i]), Some(nodes[mate]));
            }
        } else {
            obs ^= graph.path_observables(Some(nodes[i]), None);
        }
    }
    obs
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqec_sim::circuit::Noise1;
    use dqec_sim::frame::FrameSampler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Distance-3 repetition code over `rounds` rounds with data-flip
    /// probability `p` per round; observable = data qubit 0.
    fn repetition(rounds: usize, p: f64) -> Circuit {
        let mut c = Circuit::new(5);
        for q in 0..5 {
            c.reset(q).unwrap();
        }
        let mut prev: Option<[dqec_sim::MeasRecord; 2]> = None;
        for t in 0..rounds {
            for q in 0..3 {
                c.noise1(Noise1::XError, q, p).unwrap();
            }
            c.cx(0, 3).unwrap();
            c.cx(1, 3).unwrap();
            c.cx(1, 4).unwrap();
            c.cx(2, 4).unwrap();
            let m3 = c.measure_reset(3).unwrap();
            let m4 = c.measure_reset(4).unwrap();
            match prev {
                None => {
                    c.add_detector(&[m3], CheckBasis::Z, (0, 0, t as i32))
                        .unwrap();
                    c.add_detector(&[m4], CheckBasis::Z, (1, 0, t as i32))
                        .unwrap();
                }
                Some([p3, p4]) => {
                    c.add_detector(&[m3, p3], CheckBasis::Z, (0, 0, t as i32))
                        .unwrap();
                    c.add_detector(&[m4, p4], CheckBasis::Z, (1, 0, t as i32))
                        .unwrap();
                }
            }
            prev = Some([m3, m4]);
        }
        let d0 = c.measure(0).unwrap();
        let d1 = c.measure(1).unwrap();
        let d2 = c.measure(2).unwrap();
        let [p3, p4] = prev.unwrap();
        c.add_detector(&[d0, d1, p3], CheckBasis::Z, (0, 0, rounds as i32))
            .unwrap();
        c.add_detector(&[d1, d2, p4], CheckBasis::Z, (1, 0, rounds as i32))
            .unwrap();
        c.include_observable(0, &[d0]).unwrap();
        c
    }

    #[test]
    fn noiseless_batch_has_no_failures() {
        let c = repetition(3, 0.0);
        let decoder = MwpmDecoder::new(&c);
        let batch = FrameSampler::new(&c).sample(500, &mut StdRng::seed_from_u64(1));
        let stats = decoder.decode_batch(&batch);
        assert_eq!(stats.failures[0], 0);
    }

    #[test]
    fn single_flips_are_always_corrected() {
        // With p small, shots containing exactly one data error must be
        // corrected; the LER should be well below the physical rate.
        let p = 0.02;
        let c = repetition(3, p);
        let decoder = MwpmDecoder::new(&c);
        let batch = FrameSampler::new(&c).sample(20_000, &mut StdRng::seed_from_u64(2));
        let stats = decoder.decode_batch(&batch);
        let ler = stats.logical_error_rate(0);
        assert!(ler < p / 2.0, "LER {ler} should be well below p {p}");
    }

    #[test]
    fn ler_decreases_with_lower_p() {
        let mut lers = Vec::new();
        for &p in &[0.08, 0.04, 0.02] {
            let c = repetition(3, p);
            let decoder = MwpmDecoder::new(&c);
            let batch = FrameSampler::new(&c).sample(30_000, &mut StdRng::seed_from_u64(99));
            lers.push(decoder.decode_batch(&batch).logical_error_rate(0));
        }
        assert!(lers[0] > lers[1] && lers[1] > lers[2], "{lers:?}");
    }

    #[test]
    fn empty_events_predict_nothing() {
        let c = repetition(2, 0.01);
        let decoder = MwpmDecoder::new(&c);
        assert_eq!(decoder.decode_events(&[]), 0);
    }

    #[test]
    fn reweighted_decoder_matches_fresh_decoder() {
        // Clean repetition circuit; the noise model supplies the errors.
        // Reweighted weights agree with a fresh build to ~1 ulp, which
        // can flip exact ties between degenerate corrections, so compare
        // per-shot predictions with a small tolerance instead of
        // demanding bit-identical tallies.
        let clean = repetition(3, 0.0);
        let mut reweightable = MwpmDecoder::from_clean(&clean, &NoiseModel::new(2e-2));
        for p in [2e-2, 8e-3, 4e-2] {
            let noise = NoiseModel::new(p);
            assert!(reweightable.reweight(&noise));
            let noisy = noise.apply(&clean);
            let fresh = MwpmDecoder::new(&noisy);
            let batch = FrameSampler::new(&noisy).sample(8000, &mut StdRng::seed_from_u64(17));
            let events = batch.detection_events_by_shot();
            let mismatches = events
                .iter()
                .filter(|ev| reweightable.decode_events(ev) != fresh.decode_events(ev))
                .count();
            assert!(
                mismatches <= events.len() / 100,
                "p={p}: {mismatches} of {} predictions differ from a fresh build",
                events.len()
            );
        }
    }

    #[test]
    fn plain_decoder_declines_reweighting() {
        let c = repetition(2, 0.01);
        let mut decoder = MwpmDecoder::new(&c);
        assert!(!decoder.reweight(&NoiseModel::new(1e-3)));
    }

    #[test]
    fn reweight_rejects_changed_overrides() {
        let clean = repetition(2, 0.0);
        let template = NoiseModel::new(1e-2).with_bad_qubit(0, 0.2);
        let mut decoder = MwpmDecoder::from_clean(&clean, &template);
        assert!(decoder.reweight(&NoiseModel::new(5e-3).with_bad_qubit(0, 0.2)));
        assert!(!decoder.reweight(&NoiseModel::new(5e-3)));
        assert!(!decoder.reweight(&NoiseModel::new(5e-3).with_bad_qubit(1, 0.2)));
    }

    #[test]
    fn wilson_interval_brackets_point_estimate() {
        let stats = DecodeStats {
            shots: 1000,
            failures: vec![37],
        };
        let (lo, hi) = stats.wilson_interval(0);
        let p = stats.logical_error_rate(0);
        assert!(lo < p && p < hi);
        assert!(lo > 0.02 && hi < 0.06);
    }
}
