//! The end-to-end MWPM decoder.
//!
//! Combines the two CSS decoding graphs: each shot's detection events
//! are split by basis, matched independently with the blossom algorithm
//! over cached shortest-path weights, and the predicted observable flips
//! are XORed together.
//!
//! The per-shot hot path is sparse and allocation-free: all working
//! memory lives in a reusable [`DecodeScratch`] (flat matching matrix,
//! blossom arena, basis-split and candidate buffers), single events and
//! isolated pairs take closed-form fast paths, and clusters of events
//! are split into independent components before the dense O(n³)
//! blossom runs — at low physical error rates almost every component is
//! a singleton or a pair. Batch decoding additionally memoizes repeated
//! syndromes ([`SyndromeCache`]) and fans shots out over fixed-size
//! chunks via rayon, with tallies merged by [`DecodeStats::merge`] so
//! results are independent of worker count.

use crate::blossom::BlossomArena;
use crate::graph::DecodingGraph;
use dqec_sim::circuit::{CheckBasis, Circuit};
use dqec_sim::dem::{DetectorErrorModel, ParametricDem};
use dqec_sim::frame::ShotBatch;
use dqec_sim::noise::NoiseModel;
use rayon::prelude::*;
use std::cell::RefCell;
use std::collections::HashMap;
use std::hash::Hasher;
use std::sync::Mutex;

/// Shots per work unit in batch decoding. Chunk boundaries depend only
/// on the shot count — never on the worker count — so per-chunk caches
/// and tallies cannot make results thread-count-dependent.
const DECODE_CHUNK: usize = 1024;

/// Default bound on memoized syndromes per decode chunk worker.
const DEFAULT_CACHE_ENTRIES: usize = 1 << 15;

/// Default cap on each event's non-boundary matching candidates; see
/// [`DecodeScratch::with_candidate_cap`].
const DEFAULT_CANDIDATE_CAP: usize = 8;

/// Syndromes longer than this are not memoized: large event lists
/// essentially never repeat within a chunk, so hashing and storing them
/// would only burn time and memory on guaranteed misses.
const CACHE_KEY_MAX_EVENTS: usize = 16;

/// FxHash-style multiply-rotate hasher for the syndrome memo: event
/// lists are short integer slices, for which SipHash's per-call setup
/// dominates the decode fast path. Not DoS-resistant — keys here are
/// detector ids from our own sampler, never attacker-controlled.
#[derive(Default)]
pub(crate) struct FxHasher(u64);

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        const K: u64 = 0x517c_c1b7_2722_0a95;
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(c);
            self.mix(u64::from_le_bytes(word));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }
}

/// A reusable stash of per-chunk decode state — one `(scratch,
/// syndrome cache)` pair per worker that has ever decoded a chunk
/// through this decoder. Chunks borrow a pair for their duration and
/// return it, so a *warm* `decode_batch` performs zero scratch or
/// cache allocations regardless of shot count (the allocation
/// regression test in `tests/alloc_regression.rs` pins this down).
///
/// Reuse is invisible to results: decoding is contractually
/// deterministic, so a cache entry written by any earlier chunk (even
/// of an earlier batch) holds exactly the prediction the current chunk
/// would compute. The one event that *does* invalidate entries is
/// reweighting — [`ScratchPool::clear`] must be called whenever the
/// decoder's weights change.
pub(crate) struct ScratchPool<S> {
    stack: Mutex<Vec<(S, SyndromeCache)>>,
}

impl<S> ScratchPool<S> {
    /// An empty pool.
    pub(crate) fn new() -> Self {
        ScratchPool {
            stack: Mutex::new(Vec::new()),
        }
    }

    /// Borrows a scratch/cache pair, creating a fresh one on a cold
    /// pool.
    fn take(&self, new_scratch: impl FnOnce() -> S) -> (S, SyndromeCache) {
        let popped = self
            .stack
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pop();
        popped.unwrap_or_else(|| {
            (
                new_scratch(),
                SyndromeCache::with_capacity(DEFAULT_CACHE_ENTRIES),
            )
        })
    }

    /// Returns a borrowed pair for later chunks to reuse.
    fn put(&self, scratch: S, cache: SyndromeCache) {
        self.stack
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push((scratch, cache));
    }

    /// Drops every pooled pair. Required whenever the owning decoder's
    /// weights change (the memoized predictions are stale).
    pub(crate) fn clear(&self) {
        self.stack
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
    }
}

impl<S> Default for ScratchPool<S> {
    fn default() -> Self {
        Self::new()
    }
}

/// A cloned decoder starts with a cold pool: scratches and caches are
/// derived state, and sharing them across clones would couple their
/// locking.
impl<S> Clone for ScratchPool<S> {
    fn clone(&self) -> Self {
        Self::new()
    }
}

impl<S> std::fmt::Debug for ScratchPool<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let len = self
            .stack
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len();
        f.debug_struct("ScratchPool").field("pooled", &len).finish()
    }
}

/// Syndrome-cache hit/miss deltas observed while decoding one batch,
/// summed over its chunks. Diagnostic only: the split between hits and
/// misses depends on which pooled cache each chunk happened to borrow,
/// so it is *not* deterministic across worker counts — predictions are.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct CacheCounters {
    pub hits: u64,
    pub misses: u64,
}

/// The shared scratch-reusing, syndrome-memoizing batch decode: fans
/// fixed-size shot chunks out over worker threads, gives each chunk a
/// private scratch/cache pair borrowed from `pool` (created by
/// `new_scratch` when the pool runs dry), and decodes each shot with
/// `decode` directly into a preallocated output. Chunk boundaries
/// depend only on the shot count and `decode` is contractually
/// deterministic, so predictions are identical for any worker count
/// and any pool state. Used by both the MWPM and union-find
/// `decode_all` implementations. Also returns the batch's aggregate
/// syndrome-cache hit/miss deltas for observability.
pub(crate) fn decode_all_chunked<S, N, F>(
    batch: &ShotBatch,
    pool: &ScratchPool<S>,
    new_scratch: N,
    decode: F,
) -> (Vec<u64>, CacheCounters)
where
    S: Send,
    N: Fn() -> S + Sync,
    F: Fn(&[u32], &mut S) -> u64 + Sync,
{
    let ev = batch.shot_events();
    let shots = ev.shots();
    let ev = &ev;
    let new_scratch = &new_scratch;
    let decode = &decode;
    let mut out = vec![0u64; shots];
    let chunks: Vec<(usize, &mut [u64])> = out
        .chunks_mut(DECODE_CHUNK)
        .enumerate()
        .map(|(c, slot)| (c * DECODE_CHUNK, slot))
        .collect();
    let deltas: Vec<(u64, u64)> = chunks
        .into_par_iter()
        .map(|(lo, slot)| {
            let (mut scratch, mut cache) = pool.take(new_scratch);
            let (h0, m0) = (cache.hits(), cache.misses());
            for (i, pred) in slot.iter_mut().enumerate() {
                let events = ev.events_of(lo + i);
                *pred = if events.is_empty() {
                    0
                } else if events.len() > CACHE_KEY_MAX_EVENTS {
                    decode(events, &mut scratch)
                } else {
                    match cache.get_or_slot(events) {
                        Ok(p) => p,
                        Err(open) => {
                            let p = decode(events, &mut scratch);
                            if let Some(open) = open {
                                cache.fill(open, events, p);
                            }
                            p
                        }
                    }
                };
            }
            let delta = (cache.hits() - h0, cache.misses() - m0);
            pool.put(scratch, cache);
            delta
        })
        .collect();
    let mut counters = CacheCounters::default();
    for (h, m) in deltas {
        counters.hits += h;
        counters.misses += m;
    }
    (out, counters)
}

/// A syndrome decoder for a fixed circuit.
///
/// This is the seam every consumer outside `dqec_matching` decodes
/// through: the experiment `Runner` in `dqec_chiplet` drives any
/// `dyn Decoder`, so union-find, correlated-matching, or lookup
/// decoders drop in beside [`MwpmDecoder`] without touching the
/// experiment plumbing.
///
/// Implementors must be deterministic: the same events must always
/// produce the same prediction (the experiment harness relies on this
/// for thread-count-independent results).
pub trait Decoder: Send + Sync {
    /// The number of logical observables predictions cover.
    fn num_observables(&self) -> usize;

    /// Predicts the observable flips for one shot's detection events
    /// (flagged detector ids, any basis, ascending or not).
    fn decode_events(&self, events: &[u32]) -> u64;

    /// Re-derives internal weights for a new noise model *without*
    /// rebuilding the decoder, so a p-sweep over one circuit pays the
    /// construction cost once. Returns `false` when this decoder cannot
    /// reweight (the caller should rebuild instead); the default
    /// implementation always does.
    fn reweight(&mut self, noise: &NoiseModel) -> bool {
        let _ = noise;
        false
    }

    /// Predicts the observable flips of every shot in a batch, in shot
    /// order. The default fans fixed-size shot chunks out over worker
    /// threads and decodes each with [`Decoder::decode_events`];
    /// implementations may override to reuse per-chunk scratch state
    /// (see [`MwpmDecoder`]), but must stay deterministic and
    /// independent of worker count.
    fn decode_all(&self, batch: &ShotBatch) -> Vec<u64> {
        let ev = batch.shot_events();
        let shots = ev.shots();
        let ev = &ev;
        let mut out = vec![0u64; shots];
        let chunks: Vec<(usize, &mut [u64])> = out
            .chunks_mut(DECODE_CHUNK)
            .enumerate()
            .map(|(c, slot)| (c * DECODE_CHUNK, slot))
            .collect();
        chunks
            .into_par_iter()
            .map(|(lo, slot)| {
                for (i, pred) in slot.iter_mut().enumerate() {
                    *pred = self.decode_events(ev.events_of(lo + i));
                }
            })
            .run();
        out
    }

    /// Decodes every shot of a batch and tallies logical failures.
    ///
    /// Decoding runs shot-parallel through [`Decoder::decode_all`];
    /// tallies land in per-chunk rows of one preallocated table (no
    /// per-chunk allocation, see `tests/alloc_regression.rs`) that are
    /// summed in chunk order, so the result does not depend on how many
    /// threads participated.
    fn decode_batch(&self, batch: &ShotBatch) -> DecodeStats {
        tally_failures(self.num_observables(), &self.decode_all(batch), batch)
    }
}

/// Tallies logical failures of precomputed per-shot predictions into a
/// [`DecodeStats`]: per-chunk rows of one preallocated table (no
/// per-chunk allocation, see `tests/alloc_regression.rs`) summed in
/// chunk order, so the result does not depend on how many threads
/// participated. Shared by the default [`Decoder::decode_batch`] and
/// the cache-counting overrides of the MWPM and union-find decoders.
pub(crate) fn tally_failures(nobs: usize, preds: &[u64], batch: &ShotBatch) -> DecodeStats {
    let shots = batch.detectors.shots();
    debug_assert_eq!(preds.len(), shots);
    let mut stats = DecodeStats::new(nobs);
    stats.shots = shots;
    if nobs == 0 || shots == 0 {
        return stats;
    }
    let nchunks = shots.div_ceil(DECODE_CHUNK);
    let mut tallies: Vec<usize> = vec![0; nchunks * nobs];
    let rows: Vec<(usize, &mut [usize])> = tallies
        .chunks_mut(nobs)
        .enumerate()
        .map(|(c, row)| (c * DECODE_CHUNK, row))
        .collect();
    rows.into_par_iter()
        .map(|(lo, row)| {
            let hi = (lo + DECODE_CHUNK).min(shots);
            for (shot, &predicted) in preds[lo..hi].iter().enumerate().map(|(i, p)| (lo + i, p)) {
                for (o, f) in row.iter_mut().enumerate() {
                    let actual = batch.observables.get(o, shot);
                    let pred = (predicted >> o) & 1 == 1;
                    if actual != pred {
                        *f += 1;
                    }
                }
            }
        })
        .run();
    for row in tallies.chunks(nobs) {
        for (o, f) in row.iter().enumerate() {
            stats.failures[o] += f;
        }
    }
    stats
}

/// Asserts the invariants every [`Decoder`] implementation must hold on
/// `circuit`, which is expected to decode a noiseless batch perfectly:
/// empty events predict nothing, predictions are deterministic and
/// independent of event order, batch decoding tallies every shot, a
/// noiseless batch decodes without logical failures, and — on a bank of
/// random syndromes — batch predictions agree with one-shot decoding,
/// are identical with a cold or warm memo cache, and do not change with
/// the worker count (1, 4, or 16 threads).
///
/// Shared by implementors as a conformance test; see
/// `tests/decoder_trait.rs` for its use on [`MwpmDecoder`].
///
/// # Panics
///
/// Panics (via assertions) when the decoder violates an invariant.
pub fn check_decoder_conformance<D: Decoder>(decoder: &D, circuit: &Circuit) {
    use dqec_sim::frame::{BitTable, FrameSampler};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    assert_eq!(
        decoder.num_observables(),
        circuit.observables().len(),
        "num_observables must match the circuit"
    );
    assert_eq!(
        decoder.decode_events(&[]),
        0,
        "empty events must predict no flips"
    );

    // Determinism and event-order independence on a handful of synthetic
    // symptoms (pairs of same-basis detectors are always matchable).
    let dets: Vec<u32> = (0..circuit.detectors().len() as u32).collect();
    for pair in dets.windows(2) {
        let fwd = decoder.decode_events(pair);
        let rev: Vec<u32> = pair.iter().rev().copied().collect();
        assert_eq!(fwd, decoder.decode_events(pair), "must be deterministic");
        assert_eq!(
            fwd,
            decoder.decode_events(&rev),
            "must not depend on event order"
        );
    }

    // A noiseless batch has no detection events and no observable flips,
    // so every conforming decoder reports zero failures.
    let batch = FrameSampler::new(circuit).sample(256, &mut StdRng::seed_from_u64(0xc0f));
    let stats = decoder.decode_batch(&batch);
    assert_eq!(stats.shots, 256, "batch decoding must tally every shot");
    assert_eq!(stats.failures.len(), decoder.num_observables());
    assert!(
        stats.failures.iter().all(|&f| f == 0),
        "noiseless shots must not fail: {:?}",
        stats.failures
    );

    // Noisy agreement: a bank of random syndromes, each present twice
    // in *adjacent* shots (even shot cold, odd shot through the warm
    // memo cache of the same chunk — adjacency keeps every pair inside
    // one fixed-size chunk), decoded under worker caps of 1, 4, and 16
    // — every path must produce identical predictions, and the batch
    // path must agree with one-shot decoding. This is what keeps
    // memoization and shot-parallelism honest.
    let ndet = circuit.detectors().len();
    if ndet > 0 {
        let shots = 1000;
        let mut rng = StdRng::seed_from_u64(0xa11ce);
        let mut detectors = BitTable::zeros(ndet, 2 * shots);
        for s in 0..shots {
            for d in 0..ndet {
                if rng.gen_bool(0.08) {
                    detectors.set(d, 2 * s, true);
                    detectors.set(d, 2 * s + 1, true);
                }
            }
        }
        let noisy = ShotBatch {
            detectors,
            observables: BitTable::zeros(decoder.num_observables(), 2 * shots),
        };
        let base = rayon::with_worker_cap(1, || decoder.decode_all(&noisy));
        assert_eq!(base.len(), 2 * shots, "decode_all must cover every shot");
        for workers in [4usize, 16] {
            let preds = rayon::with_worker_cap(workers, || decoder.decode_all(&noisy));
            assert_eq!(
                base, preds,
                "{workers} workers must not change batch predictions"
            );
        }
        for s in 0..shots {
            assert_eq!(
                base[2 * s],
                base[2 * s + 1],
                "warm-cache decode of shot {} must match the cold decode",
                2 * s
            );
        }
        for s in (0..2 * shots).step_by(97) {
            assert_eq!(
                base[s],
                decoder.decode_events(&noisy.detection_events(s)),
                "batch and one-shot predictions must agree on shot {s}"
            );
        }
    }
}

/// Outcome statistics of decoding a batch of shots.
///
/// Equality compares only the *results* — `shots` and `failures`. The
/// syndrome-cache counters are diagnostics: which pooled cache a chunk
/// borrows depends on scheduling, so the hit/miss split varies across
/// worker counts while predictions (and therefore tallies) do not.
#[derive(Debug, Clone, Default)]
pub struct DecodeStats {
    /// Number of shots decoded.
    pub shots: usize,
    /// Per-observable counts of logical failures (prediction != actual).
    pub failures: Vec<usize>,
    /// Syndrome-cache hits observed while decoding (merge-aware
    /// diagnostic; excluded from equality — see the type docs).
    pub cache_hits: u64,
    /// Syndrome-cache misses observed while decoding (merge-aware
    /// diagnostic; excluded from equality — see the type docs).
    pub cache_misses: u64,
}

impl PartialEq for DecodeStats {
    fn eq(&self, other: &DecodeStats) -> bool {
        self.shots == other.shots && self.failures == other.failures
    }
}

impl Eq for DecodeStats {}

impl DecodeStats {
    /// An empty tally over `num_observables` observables.
    pub fn new(num_observables: usize) -> Self {
        DecodeStats {
            shots: 0,
            failures: vec![0; num_observables],
            cache_hits: 0,
            cache_misses: 0,
        }
    }

    /// Accumulates another tally into this one: shot counts add,
    /// per-observable failure counts add elementwise, cache counters
    /// add. The natural reduction for per-chunk statistics from
    /// parallel batch decoding (associative and commutative, so the
    /// total is independent of chunk evaluation order).
    ///
    /// # Panics
    ///
    /// Panics if the two tallies cover different observable counts.
    pub fn merge(&mut self, other: &DecodeStats) {
        assert_eq!(
            self.failures.len(),
            other.failures.len(),
            "cannot merge tallies over different observable counts"
        );
        self.shots += other.shots;
        for (a, b) in self.failures.iter_mut().zip(&other.failures) {
            *a += b;
        }
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
    }

    /// Logical error rate of observable `obs`.
    ///
    /// # Panics
    ///
    /// Panics if no shots were decoded or `obs` is out of range.
    pub fn logical_error_rate(&self, obs: usize) -> f64 {
        assert!(self.shots > 0, "no shots decoded");
        self.failures[obs] as f64 / self.shots as f64
    }

    /// 95% Wilson confidence interval for observable `obs`'s LER.
    ///
    /// # Panics
    ///
    /// Panics if no shots were decoded or `obs` is out of range.
    pub fn wilson_interval(&self, obs: usize) -> (f64, f64) {
        assert!(self.shots > 0, "no shots decoded");
        let n = self.shots as f64;
        let p = self.failures[obs] as f64 / n;
        let z = 1.96f64;
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
        ((center - half).max(0.0), (center + half).min(1.0))
    }

    /// Publishes this tally into the process-global `dqec_obs` metrics
    /// registry under `prefix`: shots/failures as counters (summed
    /// across calls) and the syndrome-cache split as both counters and
    /// a hit-rate gauge in basis points.
    pub fn publish(&self, prefix: &str) {
        let reg = dqec_obs::registry();
        reg.counter(&format!("{prefix}.shots"))
            .add(self.shots as u64);
        let failures: usize = self.failures.iter().sum();
        reg.counter(&format!("{prefix}.failures"))
            .add(failures as u64);
        reg.counter(&format!("{prefix}.syndrome_hits"))
            .add(self.cache_hits);
        reg.counter(&format!("{prefix}.syndrome_misses"))
            .add(self.cache_misses);
        let total = self.cache_hits + self.cache_misses;
        if total > 0 {
            let bp = (self.cache_hits as f64 / total as f64 * 10_000.0) as i64;
            reg.gauge(&format!("{prefix}.syndrome_hit_rate_bp")).set(bp);
        }
    }
}

/// Reusable working memory for per-shot decoding: the flat matching
/// matrix and [`BlossomArena`], the basis-split event buffers, and the
/// candidate/component tables of the sparse path. One scratch decodes
/// any number of shots (of any size) without touching the allocator
/// once warm; it carries no results, so it may be reused across
/// decoders and after reweighting.
pub struct DecodeScratch {
    candidate_cap: usize,
    arena: BlossomArena,
    z_events: Vec<u32>,
    x_events: Vec<u32>,
    nodes: Vec<u32>,
    db: Vec<f64>,
    knn: Vec<u32>,
    knn_d: Vec<f64>,
    knn_len: Vec<u32>,
    uf: Vec<u32>,
    useful: Vec<(u32, u32)>,
    overflow: Vec<(u32, u32)>,
    roots: Vec<u32>,
    members: Vec<u32>,
    w: Vec<f64>,
    mate: Vec<usize>,
}

impl Default for DecodeScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl DecodeScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        DecodeScratch {
            candidate_cap: DEFAULT_CANDIDATE_CAP,
            arena: BlossomArena::new(),
            z_events: Vec::new(),
            x_events: Vec::new(),
            nodes: Vec::new(),
            db: Vec::new(),
            knn: Vec::new(),
            knn_d: Vec::new(),
            knn_len: Vec::new(),
            uf: Vec::new(),
            useful: Vec::new(),
            overflow: Vec::new(),
            roots: Vec::new(),
            members: Vec::new(),
            w: Vec::new(),
            mate: Vec::new(),
        }
    }

    /// Overrides the cap on each event's non-boundary matching
    /// candidates (its `cap` nearest flagged neighbours). Smaller caps
    /// prune harder and fall back to the exact dense solve more often;
    /// results are exact either way. Mostly useful for testing the
    /// fallback; the default of 8 is ample for surface-code graphs.
    pub fn with_candidate_cap(mut self, cap: usize) -> Self {
        self.candidate_cap = cap.max(1);
        self
    }
}

/// Bounded memo of decoded syndromes, keyed by the exact (ascending)
/// event list. [`Decoder`] implementations are contractually
/// deterministic, so caching can never change a prediction — it only
/// skips repeated matching work, which dominates at low physical error
/// rates where most shots carry one of a few small event sets. Once
/// `capacity` distinct syndromes are stored, further misses decode
/// without being inserted (deterministic, no eviction policy to tune).
pub struct SyndromeCache {
    /// Open-addressed slots: `(event-arena offset, event count,
    /// prediction)`; `u32::MAX` offset marks an empty slot. Power-of-two
    /// sized, linear probing, no deletion (the cache only grows until
    /// `capacity`), keys inlined in one arena — so neither lookups nor
    /// inserts ever allocate per entry.
    slots: Vec<(u32, u32, u64)>,
    arena: Vec<u32>,
    len: usize,
    capacity: usize,
    hits: u64,
    misses: u64,
}

/// Empty-slot marker for [`SyndromeCache`].
const CACHE_EMPTY: u32 = u32::MAX;

impl SyndromeCache {
    /// Creates a cache bounded to `capacity` distinct syndromes. Slots
    /// pre-size for up to one chunk's worth of entries (growing by
    /// doubling beyond that) so the steady state never rehashes.
    pub fn with_capacity(capacity: usize) -> Self {
        let slots = capacity.min(DECODE_CHUNK).next_power_of_two() * 2;
        SyndromeCache {
            slots: vec![(CACHE_EMPTY, 0, 0); slots],
            arena: Vec::new(),
            len: 0,
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    fn hash(events: &[u32]) -> u64 {
        let mut h = FxHasher::default();
        for &e in events {
            h.write_u32(e);
        }
        h.finish()
    }

    /// The slot index holding `events`, or the empty slot where it
    /// would be inserted.
    fn probe(&self, events: &[u32]) -> usize {
        let mask = self.slots.len() - 1;
        let mut i = Self::hash(events) as usize & mask;
        loop {
            let (off, n, _) = self.slots[i];
            if off == CACHE_EMPTY {
                return i;
            }
            if n as usize == events.len()
                && &self.arena[off as usize..off as usize + n as usize] == events
            {
                return i;
            }
            i = (i + 1) & mask;
        }
    }

    /// Looks up a syndrome, counting the hit or miss.
    pub fn get(&mut self, events: &[u32]) -> Option<u64> {
        let i = self.probe(events);
        if self.slots[i].0 == CACHE_EMPTY {
            self.misses += 1;
            None
        } else {
            self.hits += 1;
            Some(self.slots[i].2)
        }
    }

    /// Combined lookup: a hit returns the prediction, a miss returns
    /// the empty slot where [`SyndromeCache::fill`] may store it — so
    /// the miss-then-insert path of batch decoding probes (and hashes)
    /// only once. Any growth needed for the upcoming insert happens
    /// here, keeping the returned slot index stable.
    pub(crate) fn get_or_slot(&mut self, events: &[u32]) -> Result<u64, Option<usize>> {
        if self.len < self.capacity && (self.len + 1) * 2 > self.slots.len() {
            self.grow();
        }
        let i = self.probe(events);
        if self.slots[i].0 != CACHE_EMPTY {
            self.hits += 1;
            return Ok(self.slots[i].2);
        }
        self.misses += 1;
        Err((self.len < self.capacity).then_some(i))
    }

    /// Stores a prediction into a slot returned by
    /// [`SyndromeCache::get_or_slot`]. The cache must not be touched in
    /// between.
    pub(crate) fn fill(&mut self, slot: usize, events: &[u32], prediction: u64) {
        debug_assert_eq!(self.slots[slot].0, CACHE_EMPTY, "slot must still be empty");
        let off = self.arena.len() as u32;
        self.arena.extend_from_slice(events);
        self.slots[slot] = (off, events.len() as u32, prediction);
        self.len += 1;
    }

    /// Stores a prediction unless the cache is at capacity.
    pub fn insert(&mut self, events: &[u32], prediction: u64) {
        if self.len >= self.capacity {
            return;
        }
        if (self.len + 1) * 2 > self.slots.len() {
            self.grow();
        }
        let i = self.probe(events);
        if self.slots[i].0 != CACHE_EMPTY {
            return; // already stored
        }
        let off = self.arena.len() as u32;
        self.arena.extend_from_slice(events);
        self.slots[i] = (off, events.len() as u32, prediction);
        self.len += 1;
    }

    /// Doubles the slot table, re-seating every entry.
    fn grow(&mut self) {
        let doubled = vec![(CACHE_EMPTY, 0, 0); self.slots.len() * 2];
        let old = std::mem::replace(&mut self.slots, doubled);
        let mask = self.slots.len() - 1;
        for (off, n, p) in old {
            if off == CACHE_EMPTY {
                continue;
            }
            let key = &self.arena[off as usize..(off + n) as usize];
            let mut i = Self::hash(key) as usize & mask;
            while self.slots[i].0 != CACHE_EMPTY {
                i = (i + 1) & mask;
            }
            self.slots[i] = (off, n, p);
        }
    }

    /// Lookups answered from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to decode so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

/// A minimum-weight perfect-matching decoder for a fixed noisy circuit.
///
/// # Examples
///
/// ```
/// use dqec_matching::MwpmDecoder;
/// use dqec_sim::circuit::{CheckBasis, Circuit, Noise1};
/// use dqec_sim::frame::FrameSampler;
/// use rand::SeedableRng;
///
/// // Two-round repetition-ish toy circuit.
/// let mut c = Circuit::new(2);
/// c.reset(0)?;
/// c.reset(1)?;
/// c.noise1(Noise1::XError, 0, 0.05)?;
/// c.cx(0, 1)?;
/// let m = c.measure_reset(1)?;
/// c.add_detector(&[m], CheckBasis::Z, (0, 0, 0))?;
/// let d = c.measure(0)?;
/// c.add_detector(&[m, d], CheckBasis::Z, (0, 0, 1))?;
/// c.include_observable(0, &[d])?;
///
/// use dqec_matching::Decoder;
/// let decoder = MwpmDecoder::new(&c);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let batch = FrameSampler::new(&c).sample(2000, &mut rng);
/// let stats = decoder.decode_batch(&batch);
/// // A single qubit's flip is always detected and corrected here.
/// assert_eq!(stats.failures[0], 0);
/// # Ok::<(), dqec_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MwpmDecoder {
    z_graph: DecodingGraph,
    x_graph: DecodingGraph,
    det_basis: Vec<CheckBasis>,
    num_observables: usize,
    /// Present when built via [`MwpmDecoder::from_clean`]: enables
    /// in-place reweighting for a different baseline error rate.
    parametric: Option<Box<ParametricState>>,
    /// Pooled per-chunk scratch/cache pairs reused across batch
    /// decodes; cleared on reweight (memoized predictions go stale).
    scratch_pool: ScratchPool<DecodeScratch>,
}

#[derive(Debug, Clone)]
struct ParametricState {
    pdem: ParametricDem,
    /// The per-qubit overrides the template was built with; reweighting
    /// is only valid while they are unchanged.
    overrides: HashMap<u32, f64>,
    /// The baseline `p` the graphs currently carry; reweighting to the
    /// same value is a no-op.
    current_p: f64,
}

impl MwpmDecoder {
    /// Builds a decoder for `circuit` by extracting its detector error
    /// model and constructing both basis graphs.
    pub fn new(circuit: &Circuit) -> Self {
        let dem = DetectorErrorModel::from_circuit(circuit);
        Self::with_dem(circuit, &dem)
    }

    /// Builds a decoder from a precomputed DEM.
    pub fn with_dem(circuit: &Circuit, dem: &DetectorErrorModel) -> Self {
        let (z_mask, x_mask) = DecodingGraph::split_observables(circuit, dem);
        MwpmDecoder {
            z_graph: DecodingGraph::build_with_observables(circuit, dem, CheckBasis::Z, z_mask),
            x_graph: DecodingGraph::build_with_observables(circuit, dem, CheckBasis::X, x_mask),
            det_basis: circuit.detectors().iter().map(|d| d.basis).collect(),
            num_observables: circuit.observables().len(),
            parametric: None,
            scratch_pool: ScratchPool::new(),
        }
    }

    /// Builds a *reweightable* decoder: applies `noise` to the clean
    /// circuit, extracts a parametric detector error model, and keeps it
    /// so later [`Decoder::reweight`] calls can move the edge weights to
    /// a different baseline `p` without re-walking the circuit.
    ///
    /// Build the template at the sweep's largest `p` (any `p > 0`
    /// works): a template built at `p = 0` has no noise ops at all and
    /// cannot represent the mechanisms that appear at `p > 0`.
    ///
    /// # Examples
    ///
    /// ```
    /// use dqec_matching::{Decoder, MwpmDecoder};
    /// use dqec_sim::circuit::{CheckBasis, Circuit};
    /// use dqec_sim::noise::NoiseModel;
    ///
    /// let mut clean = Circuit::new(2);
    /// clean.reset(0)?;
    /// clean.reset(1)?;
    /// clean.cx(0, 1)?;
    /// let m = clean.measure_reset(1)?;
    /// clean.add_detector(&[m], CheckBasis::Z, (0, 0, 0))?;
    /// let d = clean.measure(0)?;
    /// clean.add_detector(&[m, d], CheckBasis::Z, (0, 0, 1))?;
    /// clean.include_observable(0, &[d])?;
    ///
    /// // Build once at the top of the sweep, reweight per point.
    /// let mut decoder = MwpmDecoder::from_clean(&clean, &NoiseModel::new(2e-3));
    /// for p in [2e-3, 1e-3, 5e-4] {
    ///     assert!(decoder.reweight(&NoiseModel::new(p)));
    /// }
    /// # Ok::<(), dqec_sim::SimError>(())
    /// ```
    pub fn from_clean(clean: &Circuit, noise: &NoiseModel) -> Self {
        let (noisy, params) = noise.apply_with_params(clean);
        let pdem = ParametricDem::from_noisy(&noisy, &params);
        let dem = pdem.concretize(noise.p());
        let mut decoder = Self::with_dem(&noisy, &dem);
        decoder.parametric = Some(Box::new(ParametricState {
            pdem,
            overrides: noise.overrides().clone(),
            current_p: noise.p(),
        }));
        decoder
    }

    /// The Z-basis decoding graph.
    pub fn z_graph(&self) -> &DecodingGraph {
        &self.z_graph
    }

    /// The X-basis decoding graph.
    pub fn x_graph(&self) -> &DecodingGraph {
        &self.x_graph
    }

    /// Splits `events` by basis into `scratch`'s buffers and decodes
    /// both graphs through the sparse path. Equivalent to
    /// [`Decoder::decode_events`] but with caller-owned scratch, so a
    /// tight loop performs no allocation at all.
    pub fn decode_events_with(&self, events: &[u32], scratch: &mut DecodeScratch) -> u64 {
        let mut z = std::mem::take(&mut scratch.z_events);
        let mut x = std::mem::take(&mut scratch.x_events);
        z.clear();
        x.clear();
        for &d in events {
            match self.det_basis[d as usize] {
                CheckBasis::Z => z.push(d),
                CheckBasis::X => x.push(d),
            }
        }
        let (zo, _) = decode_basis_sparse(&self.z_graph, &z, scratch);
        let (xo, _) = decode_basis_sparse(&self.x_graph, &x, scratch);
        scratch.z_events = z;
        scratch.x_events = x;
        zo ^ xo
    }

    /// Decodes through the pre-optimization dense path: per-shot
    /// basis-split vectors, one freshly allocated `2k × 2k`
    /// `Vec<Vec<f64>>` matching matrix over all flagged events per
    /// basis, and a from-scratch blossom solve — no component
    /// splitting, no fast paths, no buffer reuse. The decode loop is
    /// the seed's verbatim; the underlying solver is the current
    /// flat-arena one (freshly allocated per call), which is somewhat
    /// faster than the seed's nested-`Vec` solver — so speedups
    /// measured against this baseline are conservative. Kept as the
    /// reference benchmarks measure the sparse path against; for
    /// scratch-reusing cost cross-validation in tests see
    /// [`decode_basis_dense`].
    pub fn decode_events_dense(&self, events: &[u32]) -> u64 {
        let mut z_events = Vec::new();
        let mut x_events = Vec::new();
        for &d in events {
            match self.det_basis[d as usize] {
                CheckBasis::Z => z_events.push(d),
                CheckBasis::X => x_events.push(d),
            }
        }
        decode_one_prepr(&self.z_graph, &z_events) ^ decode_one_prepr(&self.x_graph, &x_events)
    }
}

/// The seed's `decode_one`, verbatim: dense `2k × 2k` matrix as nested
/// `Vec`s, fresh solver per call.
fn decode_one_prepr(graph: &DecodingGraph, events: &[u32]) -> u64 {
    let nodes: Vec<u32> = events
        .iter()
        .filter_map(|&d| graph.node_of_detector(d))
        .collect();
    let k = nodes.len();
    if k == 0 {
        return 0;
    }
    // Complete graph on k real + k virtual boundary copies.
    let m = 2 * k;
    let mut w = vec![vec![0.0f64; m]; m];
    for i in 0..k {
        for j in 0..k {
            if i != j {
                w[i][j] = graph.distance(Some(nodes[i]), Some(nodes[j]));
            }
        }
        let db = graph.distance(Some(nodes[i]), None);
        for j in 0..k {
            w[i][k + j] = db;
            w[k + j][i] = db;
        }
    }
    // virtual-virtual edges are free (already 0).
    let matching = crate::blossom::min_weight_perfect_matching(&w);
    let mut obs = 0u64;
    for i in 0..k {
        let mate = matching.mate[i];
        if mate < k {
            if i < mate {
                obs ^= graph.path_observables(Some(nodes[i]), Some(nodes[mate]));
            }
        } else {
            obs ^= graph.path_observables(Some(nodes[i]), None);
        }
    }
    obs
}

impl Decoder for MwpmDecoder {
    fn num_observables(&self) -> usize {
        self.num_observables
    }

    fn decode_events(&self, events: &[u32]) -> u64 {
        thread_local! {
            static SCRATCH: RefCell<DecodeScratch> = RefCell::new(DecodeScratch::new());
        }
        SCRATCH.with(|s| self.decode_events_with(events, &mut s.borrow_mut()))
    }

    /// Shot-parallel batch decode with per-chunk scratch reuse and
    /// syndrome memoization. Chunks are fixed-size, each worker owns a
    /// private [`DecodeScratch`] and [`SyndromeCache`], and decoding is
    /// deterministic, so predictions are identical for any worker
    /// count.
    fn decode_all(&self, batch: &ShotBatch) -> Vec<u64> {
        decode_all_chunked(
            batch,
            &self.scratch_pool,
            DecodeScratch::new,
            |events, scratch| self.decode_events_with(events, scratch),
        )
        .0
    }

    /// Same tallies as the default implementation, plus the batch's
    /// syndrome-cache hit/miss counts in the stats.
    fn decode_batch(&self, batch: &ShotBatch) -> DecodeStats {
        let (preds, counters) = decode_all_chunked(
            batch,
            &self.scratch_pool,
            DecodeScratch::new,
            |events, scratch| self.decode_events_with(events, scratch),
        );
        let mut stats = tally_failures(self.num_observables(), &preds, batch);
        stats.cache_hits = counters.hits;
        stats.cache_misses = counters.misses;
        stats
    }

    /// Reweights both basis graphs from the cached parametric DEM.
    /// Requires construction via [`MwpmDecoder::from_clean`] and a noise
    /// model with the *same* per-qubit overrides as the template (the
    /// overrides shape the mechanism structure; only the baseline `p`
    /// may move). Returns `false` otherwise.
    fn reweight(&mut self, noise: &NoiseModel) -> bool {
        let Some(state) = &mut self.parametric else {
            return false;
        };
        if state.overrides != *noise.overrides() {
            return false;
        }
        if state.current_p == noise.p() {
            return true; // weights already match
        }
        let dem = state.pdem.concretize(noise.p());
        self.z_graph.reweight_from(&dem);
        self.x_graph.reweight_from(&dem);
        state.current_p = noise.p();
        // Pooled syndrome caches memoize predictions under the *old*
        // weights; drop them so no stale prediction survives.
        self.scratch_pool.clear();
        true
    }
}

fn uf_find(uf: &mut [u32], x: u32) -> u32 {
    let mut root = x;
    while uf[root as usize] != root {
        root = uf[root as usize];
    }
    let mut cur = x;
    while uf[cur as usize] != root {
        let next = uf[cur as usize];
        uf[cur as usize] = root;
        cur = next;
    }
    root
}

fn uf_union(uf: &mut [u32], a: u32, b: u32) {
    let ra = uf_find(uf, a);
    let rb = uf_find(uf, b);
    if ra != rb {
        // Smaller index wins, so every root is its component's first
        // member and component order is deterministic.
        let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
        uf[hi as usize] = lo;
    }
}

/// Exact matching over `members` (indices into `nodes`) in the *halved*
/// formulation: `c` real nodes plus a single virtual boundary node when
/// `c` is odd, with edge weight `min(d(i, j), db_i + db_j)`. A pair
/// matched at the via-boundary minimum decodes as two boundary matches
/// of exactly that cost, so the reduction is exact while shrinking the
/// blossom problem from `2c` to `c (+1)` vertices — ~8x less cubic
/// work than the classic virtual-copies formulation.
fn solve_group(
    graph: &DecodingGraph,
    nodes: &[u32],
    members: &[u32],
    db: &[f64],
    w: &mut Vec<f64>,
    mate: &mut Vec<usize>,
    arena: &mut BlossomArena,
) -> (u64, f64) {
    let c = members.len();
    let m = c + (c % 2);
    w.clear();
    w.resize(m * m, 0.0);
    for (i, &mi) in members.iter().enumerate() {
        for (j, &mj) in members.iter().enumerate().skip(i + 1) {
            let ni = nodes[mi as usize];
            let nj = nodes[mj as usize];
            let wij = graph
                .distance(Some(ni), Some(nj))
                .min(db[mi as usize] + db[mj as usize]);
            w[i * m + j] = wij;
            w[j * m + i] = wij;
        }
        if m > c {
            w[i * m + c] = db[mi as usize];
            w[c * m + i] = db[mi as usize];
        }
    }
    arena.solve_min_weight(m, w, mate);
    let mut obs = 0u64;
    let mut cost = 0.0;
    for (i, &mi) in members.iter().enumerate() {
        let mate_i = mate[i];
        if mate_i >= c {
            obs ^= graph.path_observables(Some(nodes[mi as usize]), None);
            cost += db[mi as usize];
        } else if i < mate_i {
            let mj = members[mate_i];
            let ni = nodes[mi as usize];
            let nj = nodes[mj as usize];
            let d = graph.distance(Some(ni), Some(nj));
            let via_b = db[mi as usize] + db[mj as usize];
            if d < via_b {
                obs ^= graph.path_observables(Some(ni), Some(nj));
                cost += d;
            } else {
                obs ^=
                    graph.path_observables(Some(ni), None) ^ graph.path_observables(Some(nj), None);
                cost += via_b;
            }
        }
    }
    (obs, cost)
}

/// Exact dense matching over `members` (indices into `nodes`) plus one
/// virtual boundary copy per member: the classic `2c × 2c` formulation,
/// built in the caller's flat scratch matrix and solved in its arena.
/// Kept as the reference for cost cross-validation; the sparse path
/// uses the halved [`solve_group`] formulation instead.
fn solve_dense(
    graph: &DecodingGraph,
    nodes: &[u32],
    members: &[u32],
    db: &[f64],
    w: &mut Vec<f64>,
    mate: &mut Vec<usize>,
    arena: &mut BlossomArena,
) -> (u64, f64) {
    let c = members.len();
    let m = 2 * c;
    w.clear();
    w.resize(m * m, 0.0);
    for (i, &mi) in members.iter().enumerate() {
        for (j, &mj) in members.iter().enumerate() {
            if i != j {
                w[i * m + j] = graph.distance(Some(nodes[mi as usize]), Some(nodes[mj as usize]));
            }
        }
        let dbi = db[mi as usize];
        for j in 0..c {
            w[i * m + (c + j)] = dbi;
            w[(c + j) * m + i] = dbi;
        }
    }
    // virtual-virtual edges are free (already 0).
    arena.solve_min_weight(m, w, mate);
    let mut obs = 0u64;
    let mut cost = 0.0;
    for (i, &mi) in members.iter().enumerate() {
        let mate_i = mate[i];
        if mate_i < c {
            if i < mate_i {
                obs ^= graph.path_observables(
                    Some(nodes[mi as usize]),
                    Some(nodes[members[mate_i] as usize]),
                );
                cost += w[i * m + mate_i];
            }
        } else {
            obs ^= graph.path_observables(Some(nodes[mi as usize]), None);
            cost += db[mi as usize];
        }
    }
    (obs, cost)
}

/// Matches one basis's events through the sparse path and returns the
/// predicted observable mask plus the matching weight (exposed for
/// cross-validation against [`decode_basis_dense`]).
///
/// Structure: map events to graph nodes (sorted, so the result is
/// independent of event order); fast paths for zero, one, and two
/// events; otherwise split events into independent components — two
/// events belong together only when their pairwise distance beats
/// routing both to the boundary — and solve each component with its own
/// dense matching. Candidate edges per node are capped at the node's K
/// nearest flagged neighbours; if a useful edge dropped by the cap
/// would bridge two components, optimality of the split cannot be
/// certified against the boundary bound and the whole event set falls
/// back to one exact dense solve.
///
/// Correctness of the split: any cross-component pair satisfies
/// `d(i, j) >= d(i, boundary) + d(j, boundary)`, so matching such a
/// pair directly never beats sending both to the boundary — an optimal
/// global matching therefore exists with no cross-component pairs, and
/// per-component solves (each with boundary copies) compose into it.
#[doc(hidden)]
pub fn decode_basis_sparse(
    graph: &DecodingGraph,
    events: &[u32],
    scratch: &mut DecodeScratch,
) -> (u64, f64) {
    let DecodeScratch {
        candidate_cap,
        arena,
        nodes,
        db,
        knn,
        knn_d,
        knn_len,
        uf,
        useful,
        overflow,
        roots,
        members,
        w,
        mate,
        ..
    } = scratch;
    let cap = *candidate_cap;
    nodes.clear();
    nodes.extend(events.iter().filter_map(|&d| graph.node_of_detector(d)));
    nodes.sort_unstable();
    let k = nodes.len();
    if k == 0 {
        return (0, 0.0);
    }
    if k == 1 {
        return (
            graph.path_observables(Some(nodes[0]), None),
            graph.distance(Some(nodes[0]), None),
        );
    }
    db.clear();
    db.extend(nodes.iter().map(|&nd| graph.distance(Some(nd), None)));
    if k == 2 {
        let d01 = graph.distance(Some(nodes[0]), Some(nodes[1]));
        return if d01 < db[0] + db[1] {
            (graph.path_observables(Some(nodes[0]), Some(nodes[1])), d01)
        } else {
            (
                graph.path_observables(Some(nodes[0]), None)
                    ^ graph.path_observables(Some(nodes[1]), None),
                db[0] + db[1],
            )
        };
    }

    // One triangular sweep collects every *useful* pair (distance beats
    // routing both endpoints to the boundary) and each node's K nearest
    // useful neighbours, kept sorted by (distance, index) for
    // deterministic admission.
    knn.clear();
    knn.resize(k * cap, 0);
    knn_d.clear();
    knn_d.resize(k * cap, 0.0);
    knn_len.clear();
    knn_len.resize(k, 0);
    useful.clear();
    let knn_insert =
        |knn: &mut [u32], knn_d: &mut [f64], knn_len: &mut [u32], i: usize, j: u32, d: f64| {
            let base = i * cap;
            let len = knn_len[i] as usize;
            let mut pos = len;
            while pos > 0 && knn_d[base + pos - 1] > d {
                pos -= 1;
            }
            if pos < cap {
                let end = len.min(cap - 1);
                for t in (pos..end).rev() {
                    knn_d[base + t + 1] = knn_d[base + t];
                    knn[base + t + 1] = knn[base + t];
                }
                knn_d[base + pos] = d;
                knn[base + pos] = j;
                if len < cap {
                    knn_len[i] = (len + 1) as u32;
                }
            }
        };
    for i in 0..k {
        for j in (i + 1)..k {
            let d = graph.distance(Some(nodes[i]), Some(nodes[j]));
            if d >= db[i] + db[j] {
                continue;
            }
            useful.push((i as u32, j as u32));
            knn_insert(knn, knn_d, knn_len, i, j as u32, d);
            knn_insert(knn, knn_d, knn_len, j, i as u32, d);
        }
    }
    let knn_contains = |knn: &[u32], knn_len: &[u32], i: usize, j: u32| -> bool {
        knn[i * cap..i * cap + knn_len[i] as usize].contains(&j)
    };

    // Union candidate edges into components; useful edges the cap
    // dropped go to the overflow list for certification.
    uf.clear();
    uf.extend(0..k as u32);
    overflow.clear();
    for &(i, j) in useful.iter() {
        if knn_contains(knn, knn_len, i as usize, j) || knn_contains(knn, knn_len, j as usize, i) {
            uf_union(uf, i, j);
        } else {
            overflow.push((i, j));
        }
    }
    // Certification: a dropped useful edge inside one component is
    // harmless (component solves use true all-pairs distances); one
    // *bridging* components would invalidate the split, so fall back to
    // the exact dense solve over everything.
    for &(a, b) in overflow.iter() {
        if uf_find(uf, a) != uf_find(uf, b) {
            members.clear();
            members.extend(0..k as u32);
            return solve_group(graph, nodes, members, db, w, mate, arena);
        }
    }

    // Solve components independently, smallest-first-member order.
    roots.clear();
    for i in 0..k as u32 {
        if uf_find(uf, i) == i {
            roots.push(i);
        }
    }
    let mut obs = 0u64;
    let mut cost = 0.0;
    for &r in roots.iter() {
        members.clear();
        for i in 0..k as u32 {
            if uf_find(uf, i) == r {
                members.push(i);
            }
        }
        match members.len() {
            1 => {
                let mi = members[0] as usize;
                obs ^= graph.path_observables(Some(nodes[mi]), None);
                cost += db[mi];
            }
            2 => {
                // The component exists because this pair beats the
                // boundary, so matching it directly is optimal.
                let (a, b) = (members[0] as usize, members[1] as usize);
                obs ^= graph.path_observables(Some(nodes[a]), Some(nodes[b]));
                cost += graph.distance(Some(nodes[a]), Some(nodes[b]));
            }
            _ => {
                let (o, c) = solve_group(graph, nodes, members, db, w, mate, arena);
                obs ^= o;
                cost += c;
            }
        }
    }
    (obs, cost)
}

/// Matches one basis's events through the reference dense path (the
/// pre-optimization `2k × 2k` formulation) and returns the predicted
/// observable mask plus the matching weight.
#[doc(hidden)]
pub fn decode_basis_dense(
    graph: &DecodingGraph,
    events: &[u32],
    scratch: &mut DecodeScratch,
) -> (u64, f64) {
    let DecodeScratch {
        arena,
        nodes,
        db,
        members,
        w,
        mate,
        ..
    } = scratch;
    nodes.clear();
    nodes.extend(events.iter().filter_map(|&d| graph.node_of_detector(d)));
    nodes.sort_unstable();
    let k = nodes.len();
    if k == 0 {
        return (0, 0.0);
    }
    db.clear();
    db.extend(nodes.iter().map(|&nd| graph.distance(Some(nd), None)));
    members.clear();
    members.extend(0..k as u32);
    solve_dense(graph, nodes, members, db, w, mate, arena)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqec_sim::circuit::Noise1;
    use dqec_sim::frame::FrameSampler;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Distance-3 repetition code over `rounds` rounds with data-flip
    /// probability `p` per round; observable = data qubit 0.
    fn repetition(rounds: usize, p: f64) -> Circuit {
        let mut c = Circuit::new(5);
        for q in 0..5 {
            c.reset(q).unwrap();
        }
        let mut prev: Option<[dqec_sim::MeasRecord; 2]> = None;
        for t in 0..rounds {
            for q in 0..3 {
                c.noise1(Noise1::XError, q, p).unwrap();
            }
            c.cx(0, 3).unwrap();
            c.cx(1, 3).unwrap();
            c.cx(1, 4).unwrap();
            c.cx(2, 4).unwrap();
            let m3 = c.measure_reset(3).unwrap();
            let m4 = c.measure_reset(4).unwrap();
            match prev {
                None => {
                    c.add_detector(&[m3], CheckBasis::Z, (0, 0, t as i32))
                        .unwrap();
                    c.add_detector(&[m4], CheckBasis::Z, (1, 0, t as i32))
                        .unwrap();
                }
                Some([p3, p4]) => {
                    c.add_detector(&[m3, p3], CheckBasis::Z, (0, 0, t as i32))
                        .unwrap();
                    c.add_detector(&[m4, p4], CheckBasis::Z, (1, 0, t as i32))
                        .unwrap();
                }
            }
            prev = Some([m3, m4]);
        }
        let d0 = c.measure(0).unwrap();
        let d1 = c.measure(1).unwrap();
        let d2 = c.measure(2).unwrap();
        let [p3, p4] = prev.unwrap();
        c.add_detector(&[d0, d1, p3], CheckBasis::Z, (0, 0, rounds as i32))
            .unwrap();
        c.add_detector(&[d1, d2, p4], CheckBasis::Z, (1, 0, rounds as i32))
            .unwrap();
        c.include_observable(0, &[d0]).unwrap();
        c
    }

    #[test]
    fn noiseless_batch_has_no_failures() {
        let c = repetition(3, 0.0);
        let decoder = MwpmDecoder::new(&c);
        let batch = FrameSampler::new(&c).sample(500, &mut StdRng::seed_from_u64(1));
        let stats = decoder.decode_batch(&batch);
        assert_eq!(stats.failures[0], 0);
    }

    #[test]
    fn single_flips_are_always_corrected() {
        // With p small, shots containing exactly one data error must be
        // corrected; the LER should be well below the physical rate.
        let p = 0.02;
        let c = repetition(3, p);
        let decoder = MwpmDecoder::new(&c);
        let batch = FrameSampler::new(&c).sample(20_000, &mut StdRng::seed_from_u64(2));
        let stats = decoder.decode_batch(&batch);
        let ler = stats.logical_error_rate(0);
        assert!(ler < p / 2.0, "LER {ler} should be well below p {p}");
    }

    #[test]
    fn ler_decreases_with_lower_p() {
        let mut lers = Vec::new();
        for &p in &[0.08, 0.04, 0.02] {
            let c = repetition(3, p);
            let decoder = MwpmDecoder::new(&c);
            let batch = FrameSampler::new(&c).sample(30_000, &mut StdRng::seed_from_u64(99));
            lers.push(decoder.decode_batch(&batch).logical_error_rate(0));
        }
        assert!(lers[0] > lers[1] && lers[1] > lers[2], "{lers:?}");
    }

    #[test]
    fn empty_events_predict_nothing() {
        let c = repetition(2, 0.01);
        let decoder = MwpmDecoder::new(&c);
        assert_eq!(decoder.decode_events(&[]), 0);
    }

    #[test]
    fn sparse_path_matches_dense_reference_weight() {
        // The sparse component path must find matchings of exactly the
        // same weight as the dense reference on random syndromes (the
        // chosen matching may differ on degenerate ties, the weight may
        // not). Exercised with the default cap and with a cap of 1,
        // which forces the certification fallback frequently.
        let c = repetition(4, 0.02);
        let decoder = MwpmDecoder::new(&c);
        let ndet = c.detectors().len() as u32;
        let mut rng = StdRng::seed_from_u64(0x5eed5);
        for cap in [DEFAULT_CANDIDATE_CAP, 1] {
            let mut sparse = DecodeScratch::new().with_candidate_cap(cap);
            let mut dense = DecodeScratch::new();
            for _ in 0..500 {
                let events: Vec<u32> = (0..ndet).filter(|_| rng.gen_bool(0.3)).collect();
                let (_, sc) = decode_basis_sparse(decoder.z_graph(), &events, &mut sparse);
                let (_, dc) = decode_basis_dense(decoder.z_graph(), &events, &mut dense);
                // Both paths return realizable matchings (cost >= the
                // true optimum); the sparse path must never be worse.
                assert!(
                    sc <= dc + 1e-6,
                    "cap {cap}: sparse weight {sc} beats dense {dc} for {events:?}"
                );
                // When no unreachable-node sentinel (1e12) enters the
                // matrix, the dense integer scaling is exact to ~1e-9
                // relative and the weights must agree. (With a sentinel
                // present, dense quantizes real weights away — ~1e3
                // absolute slop — and only the one-sided bound holds.)
                let degenerate = events.iter().any(|&e| {
                    decoder
                        .z_graph()
                        .node_of_detector(e)
                        .is_some_and(|n| decoder.z_graph().distance(Some(n), None) > 1e11)
                });
                if !degenerate {
                    assert!(
                        (sc - dc).abs() < 1e-6,
                        "cap {cap}: sparse weight {sc} != dense weight {dc} for {events:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn batch_predictions_match_one_shot_decoding() {
        let c = repetition(4, 0.03);
        let decoder = MwpmDecoder::new(&c);
        let batch = FrameSampler::new(&c).sample(3000, &mut StdRng::seed_from_u64(11));
        let preds = decoder.decode_all(&batch);
        assert_eq!(preds.len(), 3000);
        for shot in (0..3000).step_by(113) {
            let events = batch.detection_events(shot);
            assert_eq!(preds[shot], decoder.decode_events(&events), "shot {shot}");
        }
    }

    #[test]
    fn decode_batch_is_worker_count_independent() {
        let c = repetition(3, 0.04);
        let decoder = MwpmDecoder::new(&c);
        let batch = FrameSampler::new(&c).sample(5000, &mut StdRng::seed_from_u64(21));
        let s1 = rayon::with_worker_cap(1, || decoder.decode_batch(&batch));
        let s4 = rayon::with_worker_cap(4, || decoder.decode_batch(&batch));
        let s16 = rayon::with_worker_cap(16, || decoder.decode_batch(&batch));
        assert_eq!(s1, s4);
        assert_eq!(s1, s16);
        assert_eq!(s1.shots, 5000);
    }

    #[test]
    fn syndrome_cache_counts_and_bounds() {
        let mut cache = SyndromeCache::with_capacity(2);
        assert_eq!(cache.get(&[1, 2]), None);
        cache.insert(&[1, 2], 7);
        assert_eq!(cache.get(&[1, 2]), Some(7));
        cache.insert(&[3], 1);
        cache.insert(&[4], 2); // over capacity: silently not stored
        assert_eq!(cache.get(&[4]), None);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn merge_accumulates_tallies() {
        let mut a = DecodeStats {
            shots: 10,
            failures: vec![1, 2],
            cache_hits: 7,
            cache_misses: 3,
        };
        let b = DecodeStats {
            shots: 5,
            failures: vec![0, 3],
            cache_hits: 2,
            cache_misses: 1,
        };
        a.merge(&b);
        assert_eq!(a.shots, 15);
        assert_eq!(a.failures, vec![1, 5]);
        assert_eq!((a.cache_hits, a.cache_misses), (9, 4));
        // Merging into a fresh tally is the reduction identity.
        let mut zero = DecodeStats::new(2);
        zero.merge(&a);
        assert_eq!(zero, a);
        // Equality compares results, not the cache diagnostics: the
        // hit/miss split varies with which pooled cache a chunk
        // borrowed, while tallies are worker-count independent.
        let mut c = a.clone();
        c.cache_hits = 0;
        c.cache_misses = 999;
        assert_eq!(a, c);
    }

    #[test]
    fn decode_batch_reports_cache_traffic() {
        let c = repetition(3, 0.04);
        let batch = FrameSampler::new(&c).sample(5000, &mut StdRng::seed_from_u64(21));
        let decoder = MwpmDecoder::new(&c);
        let stats = decoder.decode_batch(&batch);
        // Small-syndrome shots all flow through the cache, so a 5000-
        // shot batch at p=0.04 must generate traffic; the exact
        // hit/miss split is scheduling-dependent, but every cached-path
        // decode is either a hit or a miss and repeated syndromes on a
        // warm per-chunk cache guarantee some hits.
        assert!(
            stats.cache_hits + stats.cache_misses > 0,
            "no cache traffic recorded: {stats:?}"
        );
        assert!(stats.cache_hits > 0, "no hits on a repetition-code batch");
        // A second (warm-pool) decode keeps counting from zero per call.
        let again = decoder.decode_batch(&batch);
        assert!(
            again.cache_hits >= stats.cache_hits,
            "warm pool should not hit less: {} < {}",
            again.cache_hits,
            stats.cache_hits
        );
    }

    #[test]
    #[should_panic(expected = "different observable counts")]
    fn merge_rejects_mismatched_observables() {
        let mut a = DecodeStats::new(1);
        a.merge(&DecodeStats::new(2));
    }

    #[test]
    fn reweighted_decoder_matches_fresh_decoder() {
        // Clean repetition circuit; the noise model supplies the errors.
        // Reweighted weights agree with a fresh build to ~1 ulp, which
        // can flip exact ties between degenerate corrections, so compare
        // per-shot predictions with a small tolerance instead of
        // demanding bit-identical tallies.
        let clean = repetition(3, 0.0);
        let mut reweightable = MwpmDecoder::from_clean(&clean, &NoiseModel::new(2e-2));
        for p in [2e-2, 8e-3, 4e-2] {
            let noise = NoiseModel::new(p);
            assert!(reweightable.reweight(&noise));
            let noisy = noise.apply(&clean);
            let fresh = MwpmDecoder::new(&noisy);
            let batch = FrameSampler::new(&noisy).sample(8000, &mut StdRng::seed_from_u64(17));
            let events = batch.detection_events_by_shot();
            let mismatches = events
                .iter()
                .filter(|ev| reweightable.decode_events(ev) != fresh.decode_events(ev))
                .count();
            assert!(
                mismatches <= events.len() / 100,
                "p={p}: {mismatches} of {} predictions differ from a fresh build",
                events.len()
            );
        }
    }

    #[test]
    fn plain_decoder_declines_reweighting() {
        let c = repetition(2, 0.01);
        let mut decoder = MwpmDecoder::new(&c);
        assert!(!decoder.reweight(&NoiseModel::new(1e-3)));
    }

    #[test]
    fn reweight_rejects_changed_overrides() {
        let clean = repetition(2, 0.0);
        let template = NoiseModel::new(1e-2).with_bad_qubit(0, 0.2);
        let mut decoder = MwpmDecoder::from_clean(&clean, &template);
        assert!(decoder.reweight(&NoiseModel::new(5e-3).with_bad_qubit(0, 0.2)));
        assert!(!decoder.reweight(&NoiseModel::new(5e-3)));
        assert!(!decoder.reweight(&NoiseModel::new(5e-3).with_bad_qubit(1, 0.2)));
    }

    #[test]
    fn wilson_interval_brackets_point_estimate() {
        let stats = DecodeStats {
            shots: 1000,
            failures: vec![37],
            ..Default::default()
        };
        let (lo, hi) = stats.wilson_interval(0);
        let p = stats.logical_error_rate(0);
        assert!(lo < p && p < hi);
        assert!(lo > 0.02 && hi < 0.06);
    }
}
