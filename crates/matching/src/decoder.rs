//! The end-to-end MWPM decoder.
//!
//! Combines the two CSS decoding graphs: each shot's detection events
//! are split by basis, matched independently with the blossom algorithm
//! over cached shortest-path weights, and the predicted observable flips
//! are XORed together.

use crate::blossom::min_weight_perfect_matching;
use crate::graph::DecodingGraph;
use dqec_sim::circuit::{CheckBasis, Circuit};
use dqec_sim::dem::DetectorErrorModel;
use dqec_sim::frame::ShotBatch;

/// Outcome statistics of decoding a batch of shots.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DecodeStats {
    /// Number of shots decoded.
    pub shots: usize,
    /// Per-observable counts of logical failures (prediction != actual).
    pub failures: Vec<usize>,
}

impl DecodeStats {
    /// Logical error rate of observable `obs`.
    ///
    /// # Panics
    ///
    /// Panics if no shots were decoded or `obs` is out of range.
    pub fn logical_error_rate(&self, obs: usize) -> f64 {
        assert!(self.shots > 0, "no shots decoded");
        self.failures[obs] as f64 / self.shots as f64
    }

    /// 95% Wilson confidence interval for observable `obs`'s LER.
    ///
    /// # Panics
    ///
    /// Panics if no shots were decoded or `obs` is out of range.
    pub fn wilson_interval(&self, obs: usize) -> (f64, f64) {
        assert!(self.shots > 0, "no shots decoded");
        let n = self.shots as f64;
        let p = self.failures[obs] as f64 / n;
        let z = 1.96f64;
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
        ((center - half).max(0.0), (center + half).min(1.0))
    }
}

/// A minimum-weight perfect-matching decoder for a fixed noisy circuit.
///
/// # Examples
///
/// ```
/// use dqec_matching::MwpmDecoder;
/// use dqec_sim::circuit::{CheckBasis, Circuit, Noise1};
/// use dqec_sim::frame::FrameSampler;
/// use rand::SeedableRng;
///
/// // Two-round repetition-ish toy circuit.
/// let mut c = Circuit::new(2);
/// c.reset(0)?;
/// c.reset(1)?;
/// c.noise1(Noise1::XError, 0, 0.05)?;
/// c.cx(0, 1)?;
/// let m = c.measure_reset(1)?;
/// c.add_detector(&[m], CheckBasis::Z, (0, 0, 0))?;
/// let d = c.measure(0)?;
/// c.add_detector(&[m, d], CheckBasis::Z, (0, 0, 1))?;
/// c.include_observable(0, &[d])?;
///
/// let decoder = MwpmDecoder::new(&c);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let batch = FrameSampler::new(&c).sample(2000, &mut rng);
/// let stats = decoder.decode_batch(&batch);
/// // A single qubit's flip is always detected and corrected here.
/// assert_eq!(stats.failures[0], 0);
/// # Ok::<(), dqec_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MwpmDecoder {
    z_graph: DecodingGraph,
    x_graph: DecodingGraph,
    det_basis: Vec<CheckBasis>,
    num_observables: usize,
}

impl MwpmDecoder {
    /// Builds a decoder for `circuit` by extracting its detector error
    /// model and constructing both basis graphs.
    pub fn new(circuit: &Circuit) -> Self {
        let dem = DetectorErrorModel::from_circuit(circuit);
        Self::with_dem(circuit, &dem)
    }

    /// Builds a decoder from a precomputed DEM.
    pub fn with_dem(circuit: &Circuit, dem: &DetectorErrorModel) -> Self {
        let (z_mask, x_mask) = DecodingGraph::split_observables(circuit, dem);
        MwpmDecoder {
            z_graph: DecodingGraph::build_with_observables(circuit, dem, CheckBasis::Z, z_mask),
            x_graph: DecodingGraph::build_with_observables(circuit, dem, CheckBasis::X, x_mask),
            det_basis: circuit.detectors().iter().map(|d| d.basis).collect(),
            num_observables: circuit.observables().len(),
        }
    }

    /// The Z-basis decoding graph.
    pub fn z_graph(&self) -> &DecodingGraph {
        &self.z_graph
    }

    /// The X-basis decoding graph.
    pub fn x_graph(&self) -> &DecodingGraph {
        &self.x_graph
    }

    /// Predicts the observable flips for one shot's detection events
    /// (flagged detector ids, any basis, ascending or not).
    pub fn decode_events(&self, events: &[u32]) -> u64 {
        let mut z_events = Vec::new();
        let mut x_events = Vec::new();
        for &d in events {
            match self.det_basis[d as usize] {
                CheckBasis::Z => z_events.push(d),
                CheckBasis::X => x_events.push(d),
            }
        }
        decode_one(&self.z_graph, &z_events) ^ decode_one(&self.x_graph, &x_events)
    }

    /// Decodes every shot of a batch and tallies logical failures.
    pub fn decode_batch(&self, batch: &ShotBatch) -> DecodeStats {
        let shots = batch.detectors.shots();
        let mut failures = vec![0usize; self.num_observables];
        let events_by_shot = batch.detection_events_by_shot();
        for (shot, events) in events_by_shot.iter().enumerate() {
            let predicted = self.decode_events(events);
            for (o, f) in failures.iter_mut().enumerate() {
                let actual = batch.observables.get(o, shot);
                let pred = (predicted >> o) & 1 == 1;
                if actual != pred {
                    *f += 1;
                }
            }
        }
        DecodeStats { shots, failures }
    }
}

/// Matches one basis's events and returns the predicted observable mask.
fn decode_one(graph: &DecodingGraph, events: &[u32]) -> u64 {
    let nodes: Vec<u32> = events
        .iter()
        .filter_map(|&d| graph.node_of_detector(d))
        .collect();
    let k = nodes.len();
    if k == 0 {
        return 0;
    }
    // Complete graph on k real + k virtual boundary copies.
    let m = 2 * k;
    let mut w = vec![vec![0.0f64; m]; m];
    for i in 0..k {
        for j in 0..k {
            if i != j {
                w[i][j] = graph.distance(Some(nodes[i]), Some(nodes[j]));
            }
        }
        let db = graph.distance(Some(nodes[i]), None);
        for j in 0..k {
            w[i][k + j] = db;
            w[k + j][i] = db;
        }
    }
    // virtual-virtual edges are free (already 0).
    let matching = min_weight_perfect_matching(&w);
    let mut obs = 0u64;
    for i in 0..k {
        let mate = matching.mate[i];
        if mate < k {
            if i < mate {
                obs ^= graph.path_observables(Some(nodes[i]), Some(nodes[mate]));
            }
        } else {
            obs ^= graph.path_observables(Some(nodes[i]), None);
        }
    }
    obs
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqec_sim::circuit::Noise1;
    use dqec_sim::frame::FrameSampler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Distance-3 repetition code over `rounds` rounds with data-flip
    /// probability `p` per round; observable = data qubit 0.
    fn repetition(rounds: usize, p: f64) -> Circuit {
        let mut c = Circuit::new(5);
        for q in 0..5 {
            c.reset(q).unwrap();
        }
        let mut prev: Option<[dqec_sim::MeasRecord; 2]> = None;
        for t in 0..rounds {
            for q in 0..3 {
                c.noise1(Noise1::XError, q, p).unwrap();
            }
            c.cx(0, 3).unwrap();
            c.cx(1, 3).unwrap();
            c.cx(1, 4).unwrap();
            c.cx(2, 4).unwrap();
            let m3 = c.measure_reset(3).unwrap();
            let m4 = c.measure_reset(4).unwrap();
            match prev {
                None => {
                    c.add_detector(&[m3], CheckBasis::Z, (0, 0, t as i32))
                        .unwrap();
                    c.add_detector(&[m4], CheckBasis::Z, (1, 0, t as i32))
                        .unwrap();
                }
                Some([p3, p4]) => {
                    c.add_detector(&[m3, p3], CheckBasis::Z, (0, 0, t as i32))
                        .unwrap();
                    c.add_detector(&[m4, p4], CheckBasis::Z, (1, 0, t as i32))
                        .unwrap();
                }
            }
            prev = Some([m3, m4]);
        }
        let d0 = c.measure(0).unwrap();
        let d1 = c.measure(1).unwrap();
        let d2 = c.measure(2).unwrap();
        let [p3, p4] = prev.unwrap();
        c.add_detector(&[d0, d1, p3], CheckBasis::Z, (0, 0, rounds as i32))
            .unwrap();
        c.add_detector(&[d1, d2, p4], CheckBasis::Z, (1, 0, rounds as i32))
            .unwrap();
        c.include_observable(0, &[d0]).unwrap();
        c
    }

    #[test]
    fn noiseless_batch_has_no_failures() {
        let c = repetition(3, 0.0);
        let decoder = MwpmDecoder::new(&c);
        let batch = FrameSampler::new(&c).sample(500, &mut StdRng::seed_from_u64(1));
        let stats = decoder.decode_batch(&batch);
        assert_eq!(stats.failures[0], 0);
    }

    #[test]
    fn single_flips_are_always_corrected() {
        // With p small, shots containing exactly one data error must be
        // corrected; the LER should be well below the physical rate.
        let p = 0.02;
        let c = repetition(3, p);
        let decoder = MwpmDecoder::new(&c);
        let batch = FrameSampler::new(&c).sample(20_000, &mut StdRng::seed_from_u64(2));
        let stats = decoder.decode_batch(&batch);
        let ler = stats.logical_error_rate(0);
        assert!(ler < p / 2.0, "LER {ler} should be well below p {p}");
    }

    #[test]
    fn ler_decreases_with_lower_p() {
        let mut lers = Vec::new();
        for &p in &[0.08, 0.04, 0.02] {
            let c = repetition(3, p);
            let decoder = MwpmDecoder::new(&c);
            let batch = FrameSampler::new(&c).sample(30_000, &mut StdRng::seed_from_u64(99));
            lers.push(decoder.decode_batch(&batch).logical_error_rate(0));
        }
        assert!(lers[0] > lers[1] && lers[1] > lers[2], "{lers:?}");
    }

    #[test]
    fn empty_events_predict_nothing() {
        let c = repetition(2, 0.01);
        let decoder = MwpmDecoder::new(&c);
        assert_eq!(decoder.decode_events(&[]), 0);
    }

    #[test]
    fn wilson_interval_brackets_point_estimate() {
        let stats = DecodeStats {
            shots: 1000,
            failures: vec![37],
        };
        let (lo, hi) = stats.wilson_interval(0);
        let p = stats.logical_error_rate(0);
        assert!(lo < p && p < hi);
        assert!(lo > 0.02 && hi < 0.06);
    }
}
