//! # dqec-matching
//!
//! Minimum-weight perfect-matching (MWPM) decoding substrate for the
//! `dqec` workspace — a from-scratch replacement for PyMatching at the
//! problem sizes used in the ASPLOS'24 chiplet-codesign reproduction.
//!
//! * [`blossom`] — exact O(n³) weighted blossom matching on dense
//!   graphs, property-tested against brute force, with all solver
//!   state in a reusable [`BlossomArena`] so hot loops never allocate;
//! * [`graph`] — per-basis decoding graphs built from a circuit's
//!   detector error model, with cached all-pairs shortest paths and
//!   observable parities;
//! * [`decoder`] — the [`Decoder`] trait every consumer decodes
//!   through, and its first implementor [`MwpmDecoder`]: split
//!   detection events by basis, match against the boundary, XOR
//!   predicted observables. The per-shot path is sparse (fast paths
//!   for small syndromes, independent-component splitting before the
//!   dense solve) and allocation-free via [`DecodeScratch`]; batch
//!   decoding memoizes repeated syndromes ([`SyndromeCache`]) and runs
//!   shot-parallel with worker-count-independent tallies
//!   ([`DecodeStats::merge`]). Decoders built with
//!   [`MwpmDecoder::from_clean`] can be *reweighted* to a new physical
//!   error rate without rebuilding their graphs;
//! * [`unionfind`] — [`UfDecoder`], the almost-linear-time alternative
//!   backend: weighted Delfosse–Nickerson cluster growth over the same
//!   decoding graphs, parity merging through a path-compressed DSU,
//!   boundary-absorbing clusters, and a peeling pass that extracts the
//!   correction. Faster but slightly less accurate than MWPM; selected
//!   end-to-end via `ExperimentSpec::decoder` / `--decoder uf`.
//!
//! # Examples
//!
//! See [`MwpmDecoder`] and [`UfDecoder`] for end-to-end
//! sample-and-decode examples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blossom;
pub mod decoder;
pub mod graph;
pub mod unionfind;

pub use blossom::{min_weight_perfect_matching, BlossomArena, PerfectMatching};
pub use decoder::{
    check_decoder_conformance, DecodeScratch, DecodeStats, Decoder, MwpmDecoder, SyndromeCache,
};
pub use graph::{DecodingGraph, GraphDiagnostics, GraphEdge};
pub use unionfind::{UfDecoder, UfGraph, UfScratch};
