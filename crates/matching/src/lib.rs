//! # dqec-matching
//!
//! Minimum-weight perfect-matching (MWPM) decoding substrate for the
//! `dqec` workspace — a from-scratch replacement for PyMatching at the
//! problem sizes used in the ASPLOS'24 chiplet-codesign reproduction.
//!
//! * [`blossom`] — exact O(n³) weighted blossom matching on dense
//!   graphs, property-tested against brute force;
//! * [`graph`] — per-basis decoding graphs built from a circuit's
//!   detector error model, with cached all-pairs shortest paths and
//!   observable parities;
//! * [`decoder`] — the [`Decoder`] trait every consumer decodes
//!   through, and its first implementor [`MwpmDecoder`]: split
//!   detection events by basis, match against the boundary, XOR
//!   predicted observables. Decoders built with
//!   [`MwpmDecoder::from_clean`] can be *reweighted* to a new physical
//!   error rate without rebuilding their graphs.
//!
//! # Examples
//!
//! See [`MwpmDecoder`] for an end-to-end sample-and-decode example.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blossom;
pub mod decoder;
pub mod graph;

pub use blossom::{min_weight_perfect_matching, PerfectMatching};
pub use decoder::{check_decoder_conformance, DecodeStats, Decoder, MwpmDecoder};
pub use graph::{DecodingGraph, GraphDiagnostics, GraphEdge};
