//! Union-find decoding: almost-linear-time cluster-growth decoding in
//! the style of Delfosse–Nickerson, adapted to weighted circuit-level
//! decoding graphs (as used for defect-adapted surface codes by Siegel
//! et al.).
//!
//! [`UfDecoder`] is the workspace's second [`Decoder`] implementation,
//! trading a little accuracy for a much cheaper per-shot kernel than
//! [`MwpmDecoder`](crate::MwpmDecoder)'s cluster-blossom path. Per
//! basis it runs three phases over the same [`DecodingGraph`]s MWPM
//! decodes:
//!
//! 1. **Growth** — every odd-parity cluster grows all of its boundary
//!    half-edges in lockstep, by the largest increment that just
//!    completes the nearest pending edge (so rounds are event-driven,
//!    not unit-step). Edge weights are the usual `ln((1-p)/p)` matching
//!    weights quantized onto an integer grid ([`UfGraph`]).
//! 2. **Merging** — a fully grown edge unions its endpoint clusters in
//!    a path-compressed, size-ranked DSU; cluster parity is the XOR of
//!    the merged parities, clusters that reach the virtual boundary
//!    become *absorbing* and stop growing.
//! 3. **Peeling** — the union events form a spanning forest of each
//!    cluster; leaves are peeled inward, emitting an edge into the
//!    correction whenever the peeled leaf still carries a defect, and
//!    the correction's observable masks are XORed into the prediction.
//!
//! Syndromes whose per-basis event count is ≤ 2 skip all three phases
//! and take the *same* closed-form shortest-path fast paths as the MWPM
//! decoder, so the two decoders agree exactly there (pinned by a
//! property test in `tests/uf_accuracy.rs`). Larger syndromes first run
//! *first-event shortcuts*: isolated boundary-adjacent defects and
//! isolated mutual-nearest pairs resolve in closed form (each is
//! exactly the outcome of the cluster's first growth event, with the
//! frozen ball's footprint credited to its edges), and when at most two
//! clusters remain the whole growth schedule collapses to a race
//! between three cached shortest-path times. Only genuinely entangled
//! multi-cluster syndromes pay for the full grow/merge/peel cycle —
//! which is what makes the decoder ~3x faster than the sparse MWPM
//! path at d = 9, p = 10⁻³ while staying within a few percent of its
//! logical error rate.
//!
//! All per-shot state lives in a reusable [`UfScratch`]: arrays are
//! epoch-stamped instead of cleared, so a shot touching `t` nodes costs
//! `O(t α(t))` regardless of graph size and the steady state performs
//! no allocation — mirroring the [`DecodeScratch`](crate::DecodeScratch)
//! design of the MWPM hot path.

use crate::decoder::{decode_all_chunked, Decoder, ScratchPool};
use crate::graph::{weight_of, DecodingGraph};
use dqec_sim::circuit::{CheckBasis, Circuit};
use dqec_sim::dem::{DetectorErrorModel, ParametricDem};
use dqec_sim::frame::ShotBatch;
use dqec_sim::noise::NoiseModel;
use std::cell::RefCell;
use std::collections::HashMap;

/// Quantization grid for edge weights: matching weights (≈ 0.004…32
/// after the probability clamp) are scaled by this factor and rounded,
/// so the integer growth arithmetic keeps ~1.5% relative precision on
/// the lightest edges while staying far from the growth counter's flag
/// bits.
const WEIGHT_SCALE: f64 = 64.0;

/// List/pointer sentinel ("no entry").
const NIL: u32 = u32::MAX;

/// Cluster/root flag: cluster holds an odd number of defects.
const F_ODD: u32 = 1;
/// Cluster/root flag: cluster contains the virtual boundary (absorbing).
const F_BOUNDARY: u32 = 1 << 1;
/// Cluster/root flag: cluster ran out of growable edges (degenerate
/// syndromes on boundary-less components); treated as inactive.
const F_STUCK: u32 = 1 << 2;
/// Per-node flag: node carries an unresolved detection event.
const F_DEFECT: u32 = 1 << 3;
/// Transient root flag used to deduplicate the live-cluster list when
/// it is compacted at the top of each growth round.
const F_IN_LIST: u32 = 1 << 4;
/// Per-node flag: this real node was absorbed by the boundary through
/// its own lightest boundary edge (a first-event shortcut); defects
/// that later reach it exit through that edge.
const F_EXIT: u32 = 1 << 5;
/// Per-node flag: the node's incident edges have been appended to some
/// cluster's boundary list (exposure happens at most once per node).
const F_EXPOSED: u32 = 1 << 6;
/// The node-local flags a union must preserve on the winning root.
const F_NODE: u32 = F_DEFECT | F_EXIT | F_EXPOSED;

/// Growth-counter flag: edge is queued in the grown-edge buffer.
const G_QUEUED: u32 = 1 << 31;
/// Growth-counter flag: edge was consumed by the peeling pass.
const G_PEELED: u32 = 1 << 30;
/// Mask extracting the actual growth value.
const G_MASK: u32 = G_PEELED - 1;

/// A root cluster is still growing: odd parity, not absorbed, not stuck.
fn is_active(flags: u32) -> bool {
    flags & (F_ODD | F_BOUNDARY | F_STUCK) == F_ODD
}

/// One edge of a [`UfGraph`]: both endpoints and the quantized weight,
/// packed so a growth-scan touches a single cache line per edge.
#[derive(Debug, Clone, Copy)]
struct UfEdge {
    a: u32,
    b: u32,
    w: u32,
}

/// A [`DecodingGraph`] re-indexed for union-find growth: flat CSR
/// adjacency over the real nodes plus the virtual boundary (node index
/// [`UfGraph::num_nodes`]), with per-edge integer weights on a fixed
/// quantization grid and the edge observable masks.
#[derive(Debug, Clone)]
pub struct UfGraph {
    num_nodes: usize,
    /// CSR row starts over `num_nodes + 1` vertices.
    starts: Vec<u32>,
    /// Flattened incident `(other endpoint, edge id, weight)` triples,
    /// grouped by vertex, so frontier appends and first-event scans
    /// walk one sequential array without touching the edge table.
    incident: Vec<(u32, u32, u32)>,
    /// Per-edge endpoints + weight; the boundary is `num_nodes as u32`.
    edges: Vec<UfEdge>,
    /// Per-edge observable mask (cold: only read while peeling).
    observables: Vec<u64>,
    /// Minimum edge weight in the graph: the soundness bound for the
    /// first-event shortcuts (no growth contact can cross a hop in
    /// less).
    wmin: u32,
    /// Per-node shortest-path distance to the boundary, mirrored from
    /// the source graph so the ≤ 2-event fast paths stay out of the
    /// big all-pairs tables where possible.
    db: Vec<f64>,
    /// Observable parity along each node's shortest boundary path.
    obs_b: Vec<u64>,
    /// Interleaved `(distance, path parity)` over all real node pairs
    /// (row-major `n × n`), so the two-event fast path touches one
    /// cache line instead of one in each of the graph's big tables.
    /// Only materialized for graphs up to [`PAIR_TABLE_MAX_NODES`]
    /// nodes; empty means "fall back to the graph's tables".
    pairs: Vec<(f64, u64)>,
}

/// Largest node count for which [`UfGraph`] duplicates the all-pairs
/// tables in interleaved form (16 MiB at the bound); beyond it the
/// two-event fast path reads the source graph's tables directly.
const PAIR_TABLE_MAX_NODES: usize = 1024;

impl UfGraph {
    /// Builds the union-find view of `graph` (same nodes, same edges,
    /// quantized weights).
    pub fn from_graph(graph: &DecodingGraph) -> Self {
        let n = graph.num_nodes();
        let total = n + 1;
        let src = graph.edges();
        let mut edges = Vec::with_capacity(src.len());
        let mut observables = Vec::with_capacity(src.len());
        let mut degree = vec![0u32; total];
        for e in src {
            let a = e.a;
            let b = e.b.unwrap_or(n as u32);
            edges.push(UfEdge {
                a,
                b,
                w: quantize(weight_of(e.probability)),
            });
            observables.push(e.observables);
            degree[a as usize] += 1;
            degree[b as usize] += 1;
        }
        let mut starts = vec![0u32; total + 1];
        for v in 0..total {
            starts[v + 1] = starts[v] + degree[v];
        }
        let mut cursor: Vec<u32> = starts[..total].to_vec();
        let mut incident = vec![(0u32, 0u32, 0u32); starts[total] as usize];
        for (e, edge) in edges.iter().enumerate() {
            incident[cursor[edge.a as usize] as usize] = (edge.b, e as u32, edge.w);
            cursor[edge.a as usize] += 1;
            incident[cursor[edge.b as usize] as usize] = (edge.a, e as u32, edge.w);
            cursor[edge.b as usize] += 1;
        }
        let wmin = edges.iter().map(|e| e.w).min().unwrap_or(1);
        let (db, obs_b) = boundary_tables(graph);
        UfGraph {
            num_nodes: n,
            starts,
            incident,
            edges,
            observables,
            wmin,
            db,
            obs_b,
            pairs: pair_table(graph),
        }
    }

    /// Re-derives the quantized weights from `graph`'s (reweighted)
    /// edge probabilities. The structure must be unchanged — this is
    /// the cheap `O(E)` companion to
    /// [`DecodingGraph::reweight_from`].
    ///
    /// # Panics
    ///
    /// Panics if `graph` has a different edge count than this view was
    /// built from.
    pub fn requantize(&mut self, graph: &DecodingGraph) {
        assert_eq!(
            graph.edges().len(),
            self.edges.len(),
            "reweighted graph must keep its edge structure"
        );
        for (edge, e) in self.edges.iter_mut().zip(graph.edges()) {
            edge.w = quantize(weight_of(e.probability));
        }
        self.wmin = self.edges.iter().map(|e| e.w).min().unwrap_or(1);
        for entry in &mut self.incident {
            entry.2 = self.edges[entry.1 as usize].w;
        }
        let (db, obs_b) = boundary_tables(graph);
        self.db = db;
        self.obs_b = obs_b;
        self.pairs = pair_table(graph);
    }

    /// The number of real (non-boundary) nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The number of edges (boundary edges included).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }
}

/// Per-node boundary distances and path parities, copied out of the
/// graph's all-pairs tables into small dense arrays.
fn boundary_tables(graph: &DecodingGraph) -> (Vec<f64>, Vec<u64>) {
    let n = graph.num_nodes();
    let mut db = Vec::with_capacity(n);
    let mut obs_b = Vec::with_capacity(n);
    for v in 0..n as u32 {
        db.push(graph.distance(Some(v), None));
        obs_b.push(graph.path_observables(Some(v), None));
    }
    (db, obs_b)
}

/// The interleaved pair table (see [`UfGraph::pairs`]), or empty when
/// the graph is too large to duplicate.
fn pair_table(graph: &DecodingGraph) -> Vec<(f64, u64)> {
    let n = graph.num_nodes();
    if n > PAIR_TABLE_MAX_NODES {
        return Vec::new();
    }
    let mut pairs = Vec::with_capacity(n * n);
    for a in 0..n as u32 {
        for b in 0..n as u32 {
            pairs.push((
                graph.distance(Some(a), Some(b)),
                graph.path_observables(Some(a), Some(b)),
            ));
        }
    }
    pairs
}

/// Matching weight → integer growth units.
fn quantize(w: f64) -> u32 {
    ((w * WEIGHT_SCALE).round() as u32).clamp(1, G_MASK / 4)
}

/// A boundary half-edge list entry: the `edge`, its *outward* endpoint
/// at append time (the one not in the owning cluster — the cheap
/// internal/dual test), and the next entry of the owning cluster's
/// list (indices into [`UfScratch::entries`]).
#[derive(Clone, Copy)]
struct HalfEdge {
    edge: u32,
    other: u32,
    next: u32,
}

/// Per-node scratch state, packed so DSU walks and cluster-flag checks
/// touch one cache line per node: the epoch stamp, the DSU parent, and
/// the cluster/defect flag bits.
#[derive(Clone, Copy)]
struct NodeState {
    stamp: u32,
    parent: u32,
    flags: u32,
}

/// Per-edge scratch state: the epoch stamp and the growth counter
/// (with the [`G_QUEUED`]/[`G_PEELED`] bookkeeping bits folded into its
/// high bits).
#[derive(Clone, Copy)]
struct EdgeState {
    stamp: u32,
    growth: u32,
}

/// Reusable working memory for one union-find decode: the DSU, cluster
/// flags and boundary half-edge lists, per-edge growth counters, the
/// spanning forest, and the peeling queues. Per-node and per-edge
/// arrays are *epoch-stamped*: instead of clearing `O(graph)` state per
/// shot, every slot remembers the epoch that last initialized it and is
/// lazily reset on first touch, so a shot only ever pays for what it
/// visits. One scratch serves any number of decoders and graph sizes
/// (buffers grow to the largest seen) and carries no results between
/// shots.
pub struct UfScratch {
    epoch: u32,
    // Per-node state (boundary included), valid when stamp == epoch.
    nodes_st: Vec<NodeState>,
    csize: Vec<u32>,
    head: Vec<u32>,
    tail: Vec<u32>,
    // Per-edge state, valid when stamp == epoch.
    edges_st: Vec<EdgeState>,
    // Per-shot buffers (cleared, but capacity persists).
    entries: Vec<HalfEdge>,
    clusters: Vec<u32>,
    forest: Vec<u32>,
    frontier: Vec<u32>,
    grown: Vec<u32>,
    // Peeling state: forest adjacency over touched nodes.
    peel_stamp: Vec<u32>,
    peel_deg: Vec<u32>,
    peel_head: Vec<u32>,
    peel_entries: Vec<(u32, u32, u32)>, // (other node, edge, next)
    peel_stack: Vec<u32>,
    // Basis split buffers for full-shot decoding.
    z_events: Vec<u32>,
    x_events: Vec<u32>,
    nodes: Vec<u32>,
}

impl Default for UfScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl UfScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        UfScratch {
            epoch: 0,
            nodes_st: Vec::new(),
            csize: Vec::new(),
            head: Vec::new(),
            tail: Vec::new(),
            edges_st: Vec::new(),
            entries: Vec::new(),
            clusters: Vec::new(),
            forest: Vec::new(),
            frontier: Vec::new(),
            grown: Vec::new(),
            peel_stamp: Vec::new(),
            peel_deg: Vec::new(),
            peel_head: Vec::new(),
            peel_entries: Vec::new(),
            peel_stack: Vec::new(),
            z_events: Vec::new(),
            x_events: Vec::new(),
            nodes: Vec::new(),
        }
    }

    /// Starts a new shot over `graph`: bumps the epoch (invalidating
    /// all stamped state in O(1)) and clears the per-shot buffers.
    fn begin(&mut self, graph: &UfGraph) {
        let total = graph.num_nodes + 1;
        if self.nodes_st.len() < total {
            self.nodes_st.resize(
                total,
                NodeState {
                    stamp: 0,
                    parent: 0,
                    flags: 0,
                },
            );
            self.csize.resize(total, 0);
            self.head.resize(total, NIL);
            self.tail.resize(total, NIL);
            self.peel_stamp.resize(total, 0);
            self.peel_deg.resize(total, 0);
            self.peel_head.resize(total, NIL);
        }
        if self.edges_st.len() < graph.num_edges() {
            self.edges_st.resize(
                graph.num_edges(),
                EdgeState {
                    stamp: 0,
                    growth: 0,
                },
            );
        }
        // Epoch 0 marks "never touched"; skipping it keeps fresh slots
        // invalid. On wrap, restart from a clean slate.
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            for n in &mut self.nodes_st {
                n.stamp = 0;
            }
            for e in &mut self.edges_st {
                e.stamp = 0;
            }
            self.peel_stamp.fill(0);
            self.epoch = 1;
        }
        self.entries.clear();
        self.clusters.clear();
        self.forest.clear();
        self.frontier.clear();
        self.grown.clear();
        self.peel_entries.clear();
        self.peel_stack.clear();
    }

    /// Lazily initializes node `v` for this epoch as a fresh singleton.
    fn touch(&mut self, v: u32) {
        let n = &mut self.nodes_st[v as usize];
        if n.stamp != self.epoch {
            n.stamp = self.epoch;
            n.parent = v;
            n.flags = 0;
            let i = v as usize;
            self.csize[i] = 1;
            self.head[i] = NIL;
            self.tail[i] = NIL;
        }
    }

    /// DSU find with path halving. Untouched nodes are their own
    /// (virtual) roots without being initialized.
    fn find(&mut self, v: u32) -> u32 {
        if self.nodes_st[v as usize].stamp != self.epoch {
            return v;
        }
        let mut cur = v;
        loop {
            let p = self.nodes_st[cur as usize].parent;
            if p == cur {
                return cur;
            }
            let gp = self.nodes_st[p as usize].parent;
            self.nodes_st[cur as usize].parent = gp;
            cur = gp;
        }
    }

    /// Growth counter of `edge` (with flag bits), lazily zeroed for
    /// this epoch.
    fn growth_of(&mut self, edge: u32) -> u32 {
        let e = &mut self.edges_st[edge as usize];
        if e.stamp != self.epoch {
            e.stamp = self.epoch;
            e.growth = 0;
        }
        e.growth
    }

    /// Appends `v`'s incident half-edges to root `r`'s boundary list,
    /// skipping edges that already lead back into the same cluster
    /// (they could never leave the frontier usefully; filtering here
    /// saves a scan-and-unlink later).
    fn append_incident(&mut self, graph: &UfGraph, r: u32, v: u32) {
        let lo = graph.starts[v as usize] as usize;
        let hi = graph.starts[v as usize + 1] as usize;
        for ii in lo..hi {
            let (other, e, _) = graph.incident[ii];
            if self.nodes_st[other as usize].stamp == self.epoch && self.find(other) == r {
                continue;
            }
            let idx = self.entries.len() as u32;
            self.entries.push(HalfEdge {
                edge: e,
                other,
                next: NIL,
            });
            if self.head[r as usize] == NIL {
                self.head[r as usize] = idx;
            } else {
                self.entries[self.tail[r as usize] as usize].next = idx;
            }
            self.tail[r as usize] = idx;
        }
    }

    /// Credits `radius` of accumulated growth to every incident edge
    /// of `v`: the materialized footprint of a ball a first-event
    /// shortcut grew and froze without running the growth loop.
    fn credit_region(&mut self, graph: &UfGraph, v: u32, radius: u32) {
        let lo = graph.starts[v as usize] as usize;
        let hi = graph.starts[v as usize + 1] as usize;
        for &(_, e, _) in &graph.incident[lo..hi] {
            self.growth_of(e);
            self.edges_st[e as usize].growth += radius;
        }
    }

    /// Unions the clusters rooted at `ra` and `rb` (touched, distinct)
    /// by size, XOR-merging parity, OR-merging boundary absorption, and
    /// concatenating boundary lists in O(1). A stuck mark does *not*
    /// survive the union — the merged cluster may have growable edges
    /// again, and the growth loop re-derives stuckness from an empty
    /// list anyway. Returns the new root.
    fn union(&mut self, ra: u32, rb: u32) -> u32 {
        let (win, lose) = if (self.csize[ra as usize], rb) < (self.csize[rb as usize], ra) {
            (rb, ra)
        } else {
            (ra, rb)
        };
        let (wi, li) = (win as usize, lose as usize);
        self.nodes_st[li].parent = win;
        self.csize[wi] += self.csize[li];
        let lf = self.nodes_st[li].flags;
        let wf = self.nodes_st[wi].flags;
        let parity = (wf ^ lf) & F_ODD;
        let absorbed = (wf | lf) & F_BOUNDARY;
        self.nodes_st[wi].flags = (wf & F_NODE) | parity | absorbed;
        if self.head[li] != NIL {
            if self.head[wi] == NIL {
                self.head[wi] = self.head[li];
            } else {
                self.entries[self.tail[wi] as usize].next = self.head[li];
            }
            self.tail[wi] = self.tail[li];
        }
        win
    }
}

/// Decodes one basis's `nodes` (sorted graph node ids, `len >= 1`)
/// through cluster growth and peeling, returning the predicted
/// observable mask.
fn uf_decode_nodes(graph: &UfGraph, nodes: &[u32], s: &mut UfScratch) -> u64 {
    s.begin(graph);
    let boundary = graph.num_nodes as u32;
    let mut correction = 0u64;
    for &v in nodes {
        s.touch(v);
        s.nodes_st[v as usize].flags |= F_ODD | F_DEFECT;
    }

    // First-growth-event shortcuts: for the two dominant cluster
    // archetypes the earliest completion is decided by one scan of the
    // incident lists, so the whole grow/merge/peel cycle collapses to a
    // closed form. Both are exactly what the event-driven growth would
    // do in the cluster's first round — computed without ever building
    // a frontier. To keep the closed forms sound they fire only in
    // *isolated* neighbourhoods: every 1-hop neighbour untouched
    // (except the unique pair partner), and the first event must beat
    // the earliest possible contact with growth from 2+ hops away
    // (`single_w/2 + wmin/2`: the cheapest outgoing edge shared with an
    // approaching cluster, plus at least half a minimum-weight hop).
    //
    // * A lone defect whose lightest boundary edge beats that bound is
    //   absorbed before anything can reach it: emit the boundary edge.
    //   The node stays marked as an inactive boundary-connected exit
    //   region with its ball's growth credited to its edges, so later
    //   growth reaches it at reduced distance and is absorbed exactly
    //   as it would be by the grown cluster in full union-find.
    // * Two defects that are each other's only event neighbour merge
    //   along their shared edge at *half* its weight (it grows from
    //   both sides); when that beats both boundary options and both
    //   far-contact bounds, the pair annihilates: emit the shared edge.
    for &v in nodes.iter() {
        if s.nodes_st[v as usize].flags & F_ODD == 0 {
            continue; // already resolved by a pair shortcut
        }
        let lo = graph.starts[v as usize] as usize;
        let hi = graph.starts[v as usize + 1] as usize;
        // One scan: the lightest boundary edge, the stamped (event)
        // neighbours, and the lightest edge into untouched territory.
        let (mut bnd_w, mut bnd_e) = (u32::MAX, NIL);
        let (mut dual_w, mut dual_e, mut dual_n) = (u32::MAX, NIL, NIL);
        let mut stamped = 0u32;
        let mut single_w = u32::MAX;
        for &(other, e, w) in &graph.incident[lo..hi] {
            if other == boundary {
                if w < bnd_w {
                    bnd_w = w;
                    bnd_e = e;
                }
            } else if s.nodes_st[other as usize].stamp == s.epoch {
                stamped += 1;
                if w < dual_w {
                    dual_w = w;
                    dual_e = e;
                    dual_n = other;
                }
            } else if w < single_w {
                single_w = w;
            }
        }
        let far_contact = (single_w / 2).saturating_add(graph.wmin / 2);
        if stamped == 0 && bnd_e != NIL && bnd_w <= far_contact {
            correction ^= graph.observables[bnd_e as usize];
            s.nodes_st[v as usize].flags = F_BOUNDARY | F_EXIT;
            s.credit_region(graph, v, bnd_w);
            continue;
        }
        let dual_need = dual_w.div_ceil(2); // dual edges close twice as fast
        if stamped == 1
            && dual_n > v
            && is_active(s.nodes_st[dual_n as usize].flags)
            && dual_need <= bnd_w
            && dual_need <= far_contact
        {
            // Is v also u's unique event neighbour, and does the pair
            // event beat u's own boundary and far-contact options?
            let u = dual_n;
            let ulo = graph.starts[u as usize] as usize;
            let uhi = graph.starts[u as usize + 1] as usize;
            let mut ok = true;
            let (mut u_bnd, mut u_single) = (u32::MAX, u32::MAX);
            for &(other, _, w) in &graph.incident[ulo..uhi] {
                if other == boundary {
                    u_bnd = u_bnd.min(w);
                } else if other == v {
                    // the shared edge (and any parallel ones)
                } else if s.nodes_st[other as usize].stamp == s.epoch {
                    ok = false; // u has another event neighbour
                    break;
                } else {
                    u_single = u_single.min(w);
                }
            }
            ok = ok
                && dual_need <= u_bnd
                && dual_need <= (u_single / 2).saturating_add(graph.wmin / 2);
            if ok {
                // The pair annihilates after each ball grew to half the
                // shared edge; credit both regions before freezing.
                correction ^= graph.observables[dual_e as usize];
                s.nodes_st[v as usize].flags = 0;
                s.nodes_st[u as usize].flags = 0;
                s.credit_region(graph, v, dual_need);
                s.credit_region(graph, u, dual_need);
                continue;
            }
        }
        s.clusters.push(v);
    }
    if s.clusters.is_empty() {
        return correction;
    }

    // Cluster-level race for up to RACE_MAX_CLUSTERS residual defects
    // (everything else shortcut away). With so few balls left, the
    // whole growth schedule is a discrete race between known event
    // times — pairs of balls meeting, or a ball reaching the boundary —
    // all derived from the cached shortest-path tables, so the
    // grow/merge/peel machinery never has to run. (Frozen shortcut
    // regions are ignored here: they are neutral waypoints whose credit
    // only shifts timings, and routing through them reduces to the same
    // shortest paths.) Falls through to the growth loop when the graph
    // carries no pair table or the geometry is degenerate.
    if s.clusters.len() == 1 {
        let u = s.clusters[0] as usize;
        if graph.db[u] < FAR {
            return correction ^ graph.obs_b[u];
        }
    } else if s.clusters.len() <= RACE_MAX_CLUSTERS && !graph.pairs.is_empty() {
        if let Some(race) = race_residual(graph, &s.clusters) {
            return correction ^ race;
        }
    }

    for ci in 0..s.clusters.len() {
        let v = s.clusters[ci];
        s.nodes_st[v as usize].flags |= F_EXPOSED;
        s.append_incident(graph, v, v);
    }

    // Growth rounds: expand all active clusters in lockstep until every
    // cluster is even, absorbed by the boundary, or stuck.
    loop {
        // Canonicalize the live-cluster list: merges may move a root to
        // a node that was never an event (a fresh singleton can win a
        // size tie), so map every tracked cluster to its current root
        // and deduplicate — otherwise a still-odd cluster would freeze
        // mid-growth and silently drop its defects.
        let mut keep = 0;
        for ci in 0..s.clusters.len() {
            let r = s.find(s.clusters[ci]);
            if s.nodes_st[r as usize].flags & F_IN_LIST == 0 {
                s.nodes_st[r as usize].flags |= F_IN_LIST;
                s.clusters[keep] = r;
                keep += 1;
            }
        }
        s.clusters.truncate(keep);
        for ci in 0..s.clusters.len() {
            let r = s.clusters[ci];
            s.nodes_st[r as usize].flags &= !F_IN_LIST;
        }

        // Pass 1 — prune each active cluster's boundary list, find the
        // smallest increment that completes some pending edge (an edge
        // growing from both sides this round closes twice as fast), and
        // flatten the surviving entries into a dense frontier so the
        // growth pass is a linear sweep. The stored `other` endpoint
        // makes the internal/dual tests cheap: growth into untouched
        // territory (the common case) needs no DSU lookup at all.
        let mut delta = u32::MAX;
        let mut any_active = false;
        s.frontier.clear();
        for ci in 0..s.clusters.len() {
            let r = s.clusters[ci];
            if !is_active(s.nodes_st[r as usize].flags) {
                continue;
            }
            let mut prev = NIL;
            let mut cur = s.head[r as usize];
            while cur != NIL {
                let HalfEdge { edge, other, next } = s.entries[cur as usize];
                let i = edge as usize;
                let g = s.growth_of(edge) & G_MASK;
                let w = graph.edges[i].w;
                // Untouched `other`: pending single-sided growth into
                // fresh territory, no DSU lookups needed. A shortcut
                // region's credited edges can be fully grown without
                // ever passing through the grown queue, so a completed
                // edge that still bridges two components is queued here
                // for the merge pass rather than silently dropped.
                let (pending, dual) = if g >= w {
                    let bridges = if s.nodes_st[other as usize].stamp != s.epoch {
                        true
                    } else {
                        s.find(other) != r
                    };
                    if bridges && s.edges_st[i].growth & G_QUEUED == 0 {
                        s.edges_st[i].growth |= G_QUEUED;
                        s.grown.push(edge);
                    }
                    (false, false)
                } else if s.nodes_st[other as usize].stamp != s.epoch {
                    (true, false)
                } else {
                    let ro = s.find(other);
                    (
                        ro != r,
                        ro != boundary && is_active(s.nodes_st[ro as usize].flags),
                    )
                };
                if pending {
                    let remaining = w - g;
                    let need = if dual {
                        remaining.div_ceil(2)
                    } else {
                        remaining
                    };
                    delta = delta.min(need);
                    s.frontier.push(edge);
                    prev = cur;
                } else {
                    // Grown or internal: unlink and forget.
                    if prev == NIL {
                        s.head[r as usize] = next;
                    } else {
                        s.entries[prev as usize].next = next;
                    }
                    if next == NIL {
                        s.tail[r as usize] = prev;
                    }
                }
                cur = next;
            }
            if s.head[r as usize] == NIL {
                // Nothing left to grow (degenerate component with no
                // boundary): give up on this cluster deterministically.
                s.nodes_st[r as usize].flags |= F_STUCK;
            } else {
                any_active = true;
            }
        }
        // Credit-completed bridges found during the prune must merge
        // even when nothing is left to grow (the merge itself can
        // change what is active), so only stop on a round that found
        // neither growth nor pending merges.
        if s.grown.is_empty() && (!any_active || delta == u32::MAX) {
            break;
        }

        // Pass 2 — grow the flattened frontier by delta (dual-active
        // edges appear once per side, so they advance twice) and queue
        // the edges that completed.
        if !s.frontier.is_empty() && delta != u32::MAX {
            for fi in 0..s.frontier.len() {
                let e = s.frontier[fi];
                let i = e as usize;
                let st = &mut s.edges_st[i];
                st.growth += delta;
                if st.growth & G_MASK >= graph.edges[i].w && st.growth & G_QUEUED == 0 {
                    st.growth |= G_QUEUED;
                    s.grown.push(e);
                }
            }
        }

        // Pass 3 — merge along completed edges; each union event is a
        // spanning-forest edge for the peeling pass. Endpoints seen for
        // the first time (untouched before this merge) join the cluster
        // and expose their own incident edges — except the boundary,
        // which absorbs the cluster instead of growing it.
        for gi in 0..s.grown.len() {
            let e = s.grown[gi];
            let UfEdge { a, b, .. } = graph.edges[e as usize];
            let ra = s.find(a);
            let rb = s.find(b);
            if ra == rb {
                continue;
            }
            s.touch(ra);
            s.touch(rb);
            let root = s.union(ra, rb);
            s.forest.push(e);
            if a == boundary || b == boundary {
                s.nodes_st[root as usize].flags |= F_BOUNDARY;
            }
            // Expose each endpoint's incident edges the first time it
            // joins any cluster (fresh territory, or a frozen shortcut
            // region resuming growth inside a bigger cluster).
            for v in [a, b] {
                if v != boundary && s.nodes_st[v as usize].flags & F_EXPOSED == 0 {
                    s.nodes_st[v as usize].flags |= F_EXPOSED;
                    let rv = s.find(v);
                    s.append_incident(graph, rv, v);
                }
            }
        }
        s.grown.clear();
    }
    correction ^ peel(graph, s)
}

/// Unreachable-node sentinel guard (distances above this are the
/// graph's "no path" stand-in, as in the MWPM fast paths).
const FAR: f64 = 1e11;

/// Most residual clusters the closed-form race handles; beyond this the
/// full growth loop runs (a handful of mutually entangled clusters is
/// already deep in the tail at the error rates of interest).
const RACE_MAX_CLUSTERS: usize = 4;

/// Simulates the growth race between at most [`RACE_MAX_CLUSTERS`]
/// residual single-defect clusters at cluster level: every ball grows
/// while its group's defect parity is odd, groups merge when their
/// balls meet (single-linkage over per-member radii; frozen members
/// keep their radius until their group reactivates), and the boundary
/// absorbs. Each resolution's correction comes straight from the
/// cached shortest-path parities: two defects annihilate along their
/// connecting path, and a defect reaching the boundary (directly or
/// through an absorbed group) exits along the absorbing member's
/// boundary path. Returns `None` when a needed distance is degenerate
/// (unreachable sentinel), leaving the syndrome to the full growth
/// loop.
fn race_residual(graph: &UfGraph, clusters: &[u32]) -> Option<u64> {
    const M: usize = RACE_MAX_CLUSTERS;
    let m = clusters.len();
    debug_assert!((2..=M).contains(&m));
    let n = graph.num_nodes;

    // Geometry, loaded once from the cached tables.
    let mut db = [0.0f64; M];
    let mut d = [[0.0f64; M]; M];
    let mut pobs = [[0u64; M]; M];
    for (i, &c) in clusters.iter().enumerate() {
        db[i] = graph.db[c as usize];
        if db[i] >= FAR {
            return None;
        }
        for (j, &c2) in clusters.iter().enumerate().take(i) {
            let (dij, oij) = graph.pairs[c as usize * n + c2 as usize];
            if dij >= FAR {
                return None;
            }
            d[i][j] = dij;
            d[j][i] = dij;
            pobs[i][j] = oij;
            pobs[j][i] = oij;
        }
    }

    // Per original cluster: its group (index of a representative),
    // its ball radius. Per group (indexed by representative): the
    // surviving defect (cluster index) and the boundary anchor (member
    // whose boundary path absorbed the group). A group grows iff it
    // carries a defect and has no anchor.
    let mut group = [0usize; M];
    let mut radius = [0.0f64; M];
    let mut defect: [Option<usize>; M] = [None; M];
    let mut anchor: [Option<usize>; M] = [None; M];
    for i in 0..m {
        group[i] = i;
        defect[i] = Some(i);
    }
    let active = |g: usize, defect: &[Option<usize>; M], anchor: &[Option<usize>; M]| {
        defect[g].is_some() && anchor[g].is_none()
    };

    let mut correction = 0u64;
    // Each event either absorbs a group or merges two, so the race ends
    // within 2m - 1 steps.
    for _ in 0..2 * M {
        // Next event: the soonest of any active ball reaching the
        // boundary or any two balls meeting (closing speed 2 when both
        // grow, 1 when one side is frozen). Ties break toward
        // absorption, then lowest indices, so the schedule is a pure
        // function of the inputs.
        let mut best: Option<(f64, usize, usize, usize)> = None; // (t, kind, i, j)
        for i in 0..m {
            if !active(group[i], &defect, &anchor) {
                continue;
            }
            let t = (db[i] - radius[i]).max(0.0);
            let cand = (t, 0usize, i, i);
            if best.is_none_or(|b| cand < b) {
                best = Some(cand);
            }
        }
        for i in 0..m {
            for j in (i + 1)..m {
                if group[i] == group[j] {
                    continue;
                }
                let speed = active(group[i], &defect, &anchor) as u32
                    + active(group[j], &defect, &anchor) as u32;
                if speed == 0 {
                    continue;
                }
                let gap = (d[i][j] - radius[i] - radius[j]).max(0.0);
                let cand = (gap / f64::from(speed), 1usize, i, j);
                if best.is_none_or(|b| cand < b) {
                    best = Some(cand);
                }
            }
        }
        let Some((t, kind, i, j)) = best else {
            break; // nothing active: the race is resolved
        };
        for k in 0..m {
            if active(group[k], &defect, &anchor) {
                radius[k] += t;
            }
        }
        if kind == 0 {
            // Group absorbed through member i: its defect exits via the
            // path to i and i's boundary path.
            let g = group[i];
            let dn = defect[g].take().expect("absorbing group was active");
            correction ^= if dn == i { 0 } else { pobs[dn][i] };
            correction ^= graph.obs_b[clusters[i] as usize];
            anchor[g] = Some(i);
        } else {
            // Groups meet between members i and j. Resolution routes
            // follow the peel tree: from a defect through its own
            // group to the contact member, across the contact, and on
            // through the other group — never the direct defect-to-
            // endpoint shortest path, which can wind around the
            // logical differently near boundaries.
            let (gi, gj) = (group[i], group[j]);
            let merged_anchor = anchor[gi].or(anchor[gj]);
            let via = pobs[i][j];
            let merged_defect = match (defect[gi], defect[gj]) {
                (Some(a), Some(b)) => {
                    // Two defects annihilate through the contact.
                    correction ^= pobs[a][i] ^ via ^ pobs[j][b];
                    None
                }
                (Some(a), None) | (None, Some(a)) => {
                    // Orient the route: the defect sits on the active
                    // side, the anchor (if any) on the frozen side.
                    let (near, far) = if defect[gi].is_some() { (i, j) } else { (j, i) };
                    match merged_anchor {
                        // A lone defect reaching a boundary-connected
                        // region exits through that region's anchor.
                        Some(x) => {
                            correction ^= pobs[a][near]
                                ^ via
                                ^ pobs[far][x]
                                ^ graph.obs_b[clusters[x] as usize];
                            None
                        }
                        None => Some(a),
                    }
                }
                (None, None) => None,
            };
            for g in group.iter_mut().take(m) {
                if *g == gj {
                    *g = gi;
                }
            }
            defect[gi] = merged_defect;
            anchor[gi] = merged_anchor;
        }
    }
    Some(correction)
}

/// The observable mask of `v`'s lightest boundary edge (first minimum
/// in incident order — the same deterministic tie-break the
/// boundary-absorption shortcut uses).
fn exit_observables(graph: &UfGraph, v: u32) -> u64 {
    let boundary = graph.num_nodes as u32;
    let lo = graph.starts[v as usize] as usize;
    let hi = graph.starts[v as usize + 1] as usize;
    let (mut w_min, mut obs) = (u32::MAX, 0u64);
    for &(other, e, w) in &graph.incident[lo..hi] {
        if other == boundary && w < w_min {
            w_min = w;
            obs = graph.observables[e as usize];
        }
    }
    obs
}

/// Peels every cluster's spanning forest from the leaves inward,
/// collecting the correction's observable mask. A leaf carrying a
/// defect contributes its unique edge and hands the defect to its
/// neighbour; the virtual boundary absorbs anything that reaches it.
fn peel(graph: &UfGraph, s: &mut UfScratch) -> u64 {
    let boundary = graph.num_nodes as u32;
    // Build the forest adjacency over touched nodes only.
    for fi in 0..s.forest.len() {
        let e = s.forest[fi];
        let UfEdge { a, b, .. } = graph.edges[e as usize];
        for (v, o) in [(a, b), (b, a)] {
            let i = v as usize;
            if s.peel_stamp[i] != s.epoch {
                s.peel_stamp[i] = s.epoch;
                s.peel_deg[i] = 0;
                s.peel_head[i] = NIL;
            }
            let idx = s.peel_entries.len() as u32;
            s.peel_entries.push((o, e, s.peel_head[i]));
            s.peel_head[i] = idx;
            s.peel_deg[i] += 1;
        }
    }
    // Seed the stack with every initial leaf, in forest order for
    // determinism. The virtual boundary and shortcut exit nodes are
    // never peeled: they absorb defects, so peeling must push defects
    // *toward* them, not remove them first.
    for fi in 0..s.forest.len() {
        let e = s.forest[fi];
        let UfEdge { a, b, .. } = graph.edges[e as usize];
        for v in [a, b] {
            if v != boundary
                && s.peel_deg[v as usize] == 1
                && s.nodes_st[v as usize].flags & F_EXIT == 0
            {
                s.peel_stack.push(v);
            }
        }
    }
    let mut correction = 0u64;
    while let Some(v) = s.peel_stack.pop() {
        let i = v as usize;
        if s.peel_deg[i] != 1 {
            continue; // stale entry (already peeled or degree changed)
        }
        // The unique remaining edge of v.
        let mut cur = s.peel_head[i];
        let (mut other, mut edge) = (NIL, NIL);
        while cur != NIL {
            let (o, e, next) = s.peel_entries[cur as usize];
            if s.edges_st[e as usize].growth & G_PEELED == 0 {
                other = o;
                edge = e;
                break;
            }
            cur = next;
        }
        debug_assert_ne!(edge, NIL, "leaf must have one un-peeled edge");
        s.edges_st[edge as usize].growth |= G_PEELED;
        s.peel_deg[i] = 0;
        s.peel_deg[other as usize] -= 1;
        if s.nodes_st[i].flags & F_DEFECT != 0 {
            correction ^= graph.observables[edge as usize];
            s.nodes_st[i].flags &= !F_DEFECT;
            if s.nodes_st[other as usize].flags & F_EXIT != 0 {
                // The defect reached a shortcut-absorbed node: it exits
                // through that node's own boundary edge, the same one
                // its first-event shortcut used.
                correction ^= exit_observables(graph, other);
            } else {
                s.nodes_st[other as usize].flags ^= F_DEFECT;
            }
        }
        if other != boundary
            && s.peel_deg[other as usize] == 1
            && s.nodes_st[other as usize].flags & F_EXIT == 0
        {
            s.peel_stack.push(other);
        }
    }
    // Leaf-peeling cannot reach a defect whose remaining tree hangs
    // entirely between absorbers (every leaf is the boundary or an exit
    // node, which are never peeled — e.g. two simultaneous completions
    // attach one interior node to both). Flush each such defect along
    // its tree path to the nearest absorber.
    for fi in 0..s.forest.len() {
        let e = s.forest[fi];
        if s.edges_st[e as usize].growth & G_PEELED != 0 {
            continue;
        }
        let UfEdge { a, b, .. } = graph.edges[e as usize];
        for v in [a, b] {
            if v != boundary && s.nodes_st[v as usize].flags & F_DEFECT != 0 {
                if let Some(obs) = flush_to_absorber(graph, s, v) {
                    correction ^= obs;
                    s.nodes_st[v as usize].flags &= !F_DEFECT;
                }
                // No absorber in this component: a stuck boundary-less
                // tree; the defect is dropped, like MWPM's
                // unreachable-sentinel matches.
            }
        }
    }
    correction
}

/// Walks the un-peeled spanning forest from defect node `start` to the
/// nearest absorber (the virtual boundary or an exit node) by
/// depth-first search, returning the XOR of edge observables along the
/// path plus the absorber's own exit parity; `None` when the component
/// has no absorber. The forest is a tree, so tracking the parent node
/// suffices to avoid revisits.
fn flush_to_absorber(graph: &UfGraph, s: &UfScratch, start: u32) -> Option<u64> {
    let boundary = graph.num_nodes as u32;
    // (node, parent, obs accumulated from `start` to node)
    let mut stack: Vec<(u32, u32, u64)> = vec![(start, NIL, 0)];
    while let Some((v, parent, obs)) = stack.pop() {
        if v == boundary {
            return Some(obs);
        }
        if v != start && s.nodes_st[v as usize].flags & F_EXIT != 0 {
            return Some(obs ^ exit_observables(graph, v));
        }
        let mut cur = s.peel_head[v as usize];
        while cur != NIL {
            let (o, e, next) = s.peel_entries[cur as usize];
            if o != parent && s.edges_st[e as usize].growth & G_PEELED == 0 {
                stack.push((o, v, obs ^ graph.observables[e as usize]));
            }
            cur = next;
        }
    }
    None
}

/// Decodes one basis: closed-form shortest-path fast paths for at most
/// two events (bit-identical to the MWPM fast paths), cluster growth
/// otherwise.
fn decode_basis_uf(
    graph: &DecodingGraph,
    ufg: &UfGraph,
    events: &[u32],
    scratch: &mut UfScratch,
) -> u64 {
    let mut nodes = std::mem::take(&mut scratch.nodes);
    nodes.clear();
    nodes.extend(events.iter().filter_map(|&d| graph.node_of_detector(d)));
    // Batch callers hand events ascending (and node ids follow detector
    // order), so the defensive sort for hand-built event lists almost
    // always short-circuits.
    if !nodes.is_sorted() {
        nodes.sort_unstable();
    }
    // The ≤ 2-event fast paths make the *same* decisions from the same
    // shortest-path data as the MWPM fast paths (the per-node boundary
    // values come from small mirrored arrays instead of the big
    // all-pairs tables; only the pair lookup still goes there).
    let out = match nodes.len() {
        0 => 0,
        1 => ufg.obs_b[nodes[0] as usize],
        2 => {
            let (a, b) = (nodes[0] as usize, nodes[1] as usize);
            let (d01, obs01) = if ufg.pairs.is_empty() {
                (
                    graph.distance(Some(nodes[0]), Some(nodes[1])),
                    graph.path_observables(Some(nodes[0]), Some(nodes[1])),
                )
            } else {
                ufg.pairs[a * ufg.num_nodes + b]
            };
            if d01 < ufg.db[a] + ufg.db[b] {
                obs01
            } else {
                ufg.obs_b[a] ^ ufg.obs_b[b]
            }
        }
        _ => uf_decode_nodes(ufg, &nodes, scratch),
    };
    scratch.nodes = nodes;
    out
}

/// A weighted union-find decoder for a fixed noisy circuit.
///
/// Construction mirrors [`MwpmDecoder`](crate::MwpmDecoder): the same
/// per-basis [`DecodingGraph`]s are built (their cached shortest paths
/// also power the ≤ 2-event fast paths), plus a [`UfGraph`] view per
/// basis for cluster growth. Decoders built with
/// [`UfDecoder::from_clean`] support in-place
/// [`reweighting`](Decoder::reweight) across an error-rate sweep.
///
/// # Examples
///
/// ```
/// use dqec_matching::{Decoder, UfDecoder};
/// use dqec_sim::circuit::{CheckBasis, Circuit, Noise1};
/// use dqec_sim::frame::FrameSampler;
/// use rand::SeedableRng;
///
/// let mut c = Circuit::new(2);
/// c.reset(0)?;
/// c.reset(1)?;
/// c.noise1(Noise1::XError, 0, 0.05)?;
/// c.cx(0, 1)?;
/// let m = c.measure_reset(1)?;
/// c.add_detector(&[m], CheckBasis::Z, (0, 0, 0))?;
/// let d = c.measure(0)?;
/// c.add_detector(&[m, d], CheckBasis::Z, (0, 0, 1))?;
/// c.include_observable(0, &[d])?;
///
/// let decoder = UfDecoder::new(&c);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let batch = FrameSampler::new(&c).sample(2000, &mut rng);
/// let stats = decoder.decode_batch(&batch);
/// // A single qubit's flip is always detected and corrected here.
/// assert_eq!(stats.failures[0], 0);
/// # Ok::<(), dqec_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct UfDecoder {
    z_graph: DecodingGraph,
    x_graph: DecodingGraph,
    z_uf: UfGraph,
    x_uf: UfGraph,
    det_basis: Vec<CheckBasis>,
    num_observables: usize,
    parametric: Option<Box<UfParametric>>,
    /// Pooled per-chunk scratch/cache pairs reused across batch
    /// decodes; cleared on reweight (memoized predictions go stale).
    scratch_pool: ScratchPool<UfScratch>,
}

#[derive(Debug, Clone)]
struct UfParametric {
    pdem: ParametricDem,
    overrides: HashMap<u32, f64>,
    current_p: f64,
}

impl UfDecoder {
    /// Builds a decoder for `circuit` from its detector error model.
    pub fn new(circuit: &Circuit) -> Self {
        let dem = DetectorErrorModel::from_circuit(circuit);
        Self::with_dem(circuit, &dem)
    }

    /// Builds a decoder from a precomputed DEM.
    pub fn with_dem(circuit: &Circuit, dem: &DetectorErrorModel) -> Self {
        let (z_mask, x_mask) = DecodingGraph::split_observables(circuit, dem);
        let z_graph = DecodingGraph::build_with_observables(circuit, dem, CheckBasis::Z, z_mask);
        let x_graph = DecodingGraph::build_with_observables(circuit, dem, CheckBasis::X, x_mask);
        let z_uf = UfGraph::from_graph(&z_graph);
        let x_uf = UfGraph::from_graph(&x_graph);
        UfDecoder {
            z_graph,
            x_graph,
            z_uf,
            x_uf,
            det_basis: circuit.detectors().iter().map(|d| d.basis).collect(),
            num_observables: circuit.observables().len(),
            parametric: None,
            scratch_pool: ScratchPool::new(),
        }
    }

    /// Builds a *reweightable* decoder from a clean circuit and a noise
    /// model, exactly like
    /// [`MwpmDecoder::from_clean`](crate::MwpmDecoder::from_clean):
    /// build at the sweep's largest `p`, then
    /// [`reweight`](Decoder::reweight) per point.
    pub fn from_clean(clean: &Circuit, noise: &NoiseModel) -> Self {
        let (noisy, params) = noise.apply_with_params(clean);
        let pdem = ParametricDem::from_noisy(&noisy, &params);
        let dem = pdem.concretize(noise.p());
        let mut decoder = Self::with_dem(&noisy, &dem);
        decoder.parametric = Some(Box::new(UfParametric {
            pdem,
            overrides: noise.overrides().clone(),
            current_p: noise.p(),
        }));
        decoder
    }

    /// The Z-basis decoding graph.
    pub fn z_graph(&self) -> &DecodingGraph {
        &self.z_graph
    }

    /// The X-basis decoding graph.
    pub fn x_graph(&self) -> &DecodingGraph {
        &self.x_graph
    }

    /// Splits `events` by basis into `scratch`'s buffers and decodes
    /// both graphs; equivalent to [`Decoder::decode_events`] but with
    /// caller-owned scratch so tight loops never allocate.
    pub fn decode_events_with(&self, events: &[u32], scratch: &mut UfScratch) -> u64 {
        let mut z = std::mem::take(&mut scratch.z_events);
        let mut x = std::mem::take(&mut scratch.x_events);
        z.clear();
        x.clear();
        for &d in events {
            match self.det_basis[d as usize] {
                CheckBasis::Z => z.push(d),
                CheckBasis::X => x.push(d),
            }
        }
        let zo = decode_basis_uf(&self.z_graph, &self.z_uf, &z, scratch);
        let xo = decode_basis_uf(&self.x_graph, &self.x_uf, &x, scratch);
        scratch.z_events = z;
        scratch.x_events = x;
        zo ^ xo
    }
}

impl Decoder for UfDecoder {
    fn num_observables(&self) -> usize {
        self.num_observables
    }

    fn decode_events(&self, events: &[u32]) -> u64 {
        thread_local! {
            static SCRATCH: RefCell<UfScratch> = RefCell::new(UfScratch::new());
        }
        SCRATCH.with(|s| self.decode_events_with(events, &mut s.borrow_mut()))
    }

    /// Shot-parallel batch decode with per-chunk scratch reuse and
    /// syndrome memoization — the same fixed-chunk machinery as the
    /// MWPM decoder, so predictions are identical for any worker count.
    fn decode_all(&self, batch: &ShotBatch) -> Vec<u64> {
        decode_all_chunked(
            batch,
            &self.scratch_pool,
            UfScratch::new,
            |events, scratch| self.decode_events_with(events, scratch),
        )
        .0
    }

    /// Same tallies as the default implementation, plus the batch's
    /// syndrome-cache hit/miss counts in the stats.
    fn decode_batch(&self, batch: &ShotBatch) -> crate::decoder::DecodeStats {
        let (preds, counters) = decode_all_chunked(
            batch,
            &self.scratch_pool,
            UfScratch::new,
            |events, scratch| self.decode_events_with(events, scratch),
        );
        let mut stats = crate::decoder::tally_failures(self.num_observables(), &preds, batch);
        stats.cache_hits = counters.hits;
        stats.cache_misses = counters.misses;
        stats
    }

    /// Reweights both basis graphs (and requantizes the growth weights)
    /// from the cached parametric DEM. Requires construction via
    /// [`UfDecoder::from_clean`] and unchanged per-qubit overrides.
    fn reweight(&mut self, noise: &NoiseModel) -> bool {
        let Some(state) = &mut self.parametric else {
            return false;
        };
        if state.overrides != *noise.overrides() {
            return false;
        }
        if state.current_p == noise.p() {
            return true;
        }
        let dem = state.pdem.concretize(noise.p());
        self.z_graph.reweight_from(&dem);
        self.x_graph.reweight_from(&dem);
        self.z_uf.requantize(&self.z_graph);
        self.x_uf.requantize(&self.x_graph);
        state.current_p = noise.p();
        // Pooled syndrome caches memoize predictions under the *old*
        // weights; drop them so no stale prediction survives.
        self.scratch_pool.clear();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqec_sim::circuit::Noise1;
    use dqec_sim::frame::FrameSampler;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Distance-3 repetition code over `rounds` rounds with data-flip
    /// probability `p` per round; observable = data qubit 0.
    fn repetition(rounds: usize, p: f64) -> Circuit {
        let mut c = Circuit::new(5);
        for q in 0..5 {
            c.reset(q).unwrap();
        }
        let mut prev: Option<[dqec_sim::MeasRecord; 2]> = None;
        for t in 0..rounds {
            for q in 0..3 {
                c.noise1(Noise1::XError, q, p).unwrap();
            }
            c.cx(0, 3).unwrap();
            c.cx(1, 3).unwrap();
            c.cx(1, 4).unwrap();
            c.cx(2, 4).unwrap();
            let m3 = c.measure_reset(3).unwrap();
            let m4 = c.measure_reset(4).unwrap();
            match prev {
                None => {
                    c.add_detector(&[m3], CheckBasis::Z, (0, 0, t as i32))
                        .unwrap();
                    c.add_detector(&[m4], CheckBasis::Z, (1, 0, t as i32))
                        .unwrap();
                }
                Some([p3, p4]) => {
                    c.add_detector(&[m3, p3], CheckBasis::Z, (0, 0, t as i32))
                        .unwrap();
                    c.add_detector(&[m4, p4], CheckBasis::Z, (1, 0, t as i32))
                        .unwrap();
                }
            }
            prev = Some([m3, m4]);
        }
        let d0 = c.measure(0).unwrap();
        let d1 = c.measure(1).unwrap();
        let d2 = c.measure(2).unwrap();
        let [p3, p4] = prev.unwrap();
        c.add_detector(&[d0, d1, p3], CheckBasis::Z, (0, 0, rounds as i32))
            .unwrap();
        c.add_detector(&[d1, d2, p4], CheckBasis::Z, (1, 0, rounds as i32))
            .unwrap();
        c.include_observable(0, &[d0]).unwrap();
        c
    }

    /// A 1D matching chain: n checks in a row, data errors between
    /// them; both ends connect to the boundary (data 0 flips obs 0).
    fn chain_circuit(n: u32, p: f64) -> Circuit {
        let mut c = Circuit::new(2 * n + 1);
        for q in 0..=2 * n {
            c.reset(q).unwrap();
        }
        for q in 0..=n {
            c.noise1(Noise1::XError, q, p).unwrap();
        }
        let mut records = Vec::new();
        for i in 0..n {
            let anc = n + 1 + i;
            c.cx(i, anc).unwrap();
            c.cx(i + 1, anc).unwrap();
            records.push(c.measure(anc).unwrap());
        }
        for (i, &m) in records.iter().enumerate() {
            c.add_detector(&[m], CheckBasis::Z, (i as i32, 0, 0))
                .unwrap();
        }
        let d0 = c.measure(0).unwrap();
        c.include_observable(0, &[d0]).unwrap();
        c
    }

    #[test]
    fn chain_pairs_adjacent_and_boundary_matches_far_event() {
        // Events 0,1 pair up (one data error between them); event 4
        // goes to the nearby right boundary. Same as MWPM.
        let c = chain_circuit(6, 0.01);
        let uf = UfDecoder::new(&c);
        let mwpm = crate::MwpmDecoder::new(&c);
        for events in [vec![0u32, 1, 4], vec![0, 3, 4], vec![1, 2, 5]] {
            assert_eq!(
                uf.decode_events(&events),
                mwpm.decode_events(&events),
                "events {events:?}"
            );
        }
    }

    #[test]
    fn uf_graph_mirrors_decoding_graph() {
        let c = repetition(3, 0.01);
        let dem = DetectorErrorModel::from_circuit(&c);
        let g = DecodingGraph::build(&c, &dem, CheckBasis::Z);
        let ufg = UfGraph::from_graph(&g);
        assert_eq!(ufg.num_nodes(), g.num_nodes());
        assert_eq!(ufg.num_edges(), g.edges().len());
        // CSR covers each edge exactly twice (once per endpoint).
        assert_eq!(ufg.incident.len(), 2 * ufg.num_edges());
        assert!(ufg
            .incident
            .iter()
            .all(|&(_, e, _)| (e as usize) < ufg.num_edges()));
        assert!(ufg.edges.iter().all(|e| e.w >= 1));
    }

    #[test]
    fn quantize_orders_like_weights() {
        assert!(quantize(weight_of(1e-4)) > quantize(weight_of(1e-2)));
        assert_eq!(quantize(0.0), 1, "weights never quantize to zero");
    }

    #[test]
    fn noiseless_batch_has_no_failures() {
        let c = repetition(3, 0.0);
        let decoder = UfDecoder::new(&c);
        let batch = FrameSampler::new(&c).sample(500, &mut StdRng::seed_from_u64(1));
        let stats = decoder.decode_batch(&batch);
        assert_eq!(stats.failures[0], 0);
    }

    #[test]
    fn single_flips_are_always_corrected() {
        let p = 0.02;
        let c = repetition(3, p);
        let decoder = UfDecoder::new(&c);
        let batch = FrameSampler::new(&c).sample(20_000, &mut StdRng::seed_from_u64(2));
        let stats = decoder.decode_batch(&batch);
        let ler = stats.logical_error_rate(0);
        assert!(ler < p / 2.0, "LER {ler} should be well below p {p}");
    }

    #[test]
    fn ler_decreases_with_lower_p() {
        let mut lers = Vec::new();
        for &p in &[0.08, 0.04, 0.02] {
            let c = repetition(3, p);
            let decoder = UfDecoder::new(&c);
            let batch = FrameSampler::new(&c).sample(30_000, &mut StdRng::seed_from_u64(99));
            lers.push(decoder.decode_batch(&batch).logical_error_rate(0));
        }
        assert!(lers[0] > lers[1] && lers[1] > lers[2], "{lers:?}");
    }

    #[test]
    fn scratch_reuse_matches_fresh_scratch() {
        // One warm scratch across many syndromes must decode exactly
        // like a cold scratch per syndrome — the epoch stamping must
        // never leak state between shots.
        let c = repetition(4, 0.03);
        let decoder = UfDecoder::new(&c);
        let ndet = c.detectors().len() as u32;
        let mut rng = StdRng::seed_from_u64(0x0f5eed);
        let mut warm = UfScratch::new();
        for _ in 0..500 {
            let events: Vec<u32> = (0..ndet).filter(|_| rng.gen_bool(0.35)).collect();
            let mut cold = UfScratch::new();
            assert_eq!(
                decoder.decode_events_with(&events, &mut warm),
                decoder.decode_events_with(&events, &mut cold),
                "warm and cold scratch disagree on {events:?}"
            );
        }
    }

    #[test]
    fn predictions_are_event_order_independent() {
        let c = repetition(4, 0.03);
        let decoder = UfDecoder::new(&c);
        let ndet = c.detectors().len() as u32;
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let events: Vec<u32> = (0..ndet).filter(|_| rng.gen_bool(0.4)).collect();
            let mut rev: Vec<u32> = events.iter().rev().copied().collect();
            assert_eq!(
                decoder.decode_events(&events),
                decoder.decode_events(&rev),
                "{events:?}"
            );
            rev.rotate_left(events.len() / 2);
            assert_eq!(
                decoder.decode_events(&events),
                decoder.decode_events(&rev),
                "{events:?}"
            );
        }
    }

    #[test]
    fn dense_random_syndromes_decode_without_panicking() {
        // Saturating syndromes force large clusters, boundary
        // absorption, stuck components, and deep peeling.
        let c = repetition(5, 0.02);
        let decoder = UfDecoder::new(&c);
        let ndet = c.detectors().len() as u32;
        let all: Vec<u32> = (0..ndet).collect();
        decoder.decode_events(&all);
        let mut rng = StdRng::seed_from_u64(0xdead);
        for _ in 0..100 {
            let events: Vec<u32> = (0..ndet).filter(|_| rng.gen_bool(0.8)).collect();
            let a = decoder.decode_events(&events);
            let b = decoder.decode_events(&events);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn reweighted_decoder_matches_fresh_decoder() {
        let clean = repetition(3, 0.0);
        let mut reweightable = UfDecoder::from_clean(&clean, &NoiseModel::new(2e-2));
        for p in [2e-2, 8e-3, 4e-2] {
            let noise = NoiseModel::new(p);
            assert!(reweightable.reweight(&noise));
            let noisy = noise.apply(&clean);
            let fresh = UfDecoder::new(&noisy);
            let batch = FrameSampler::new(&noisy).sample(8000, &mut StdRng::seed_from_u64(17));
            let events = batch.detection_events_by_shot();
            let mismatches = events
                .iter()
                .filter(|ev| reweightable.decode_events(ev) != fresh.decode_events(ev))
                .count();
            assert!(
                mismatches <= events.len() / 100,
                "p={p}: {mismatches} of {} predictions differ from a fresh build",
                events.len()
            );
        }
    }

    #[test]
    fn plain_decoder_declines_reweighting() {
        let c = repetition(2, 0.01);
        let mut decoder = UfDecoder::new(&c);
        assert!(!decoder.reweight(&NoiseModel::new(1e-3)));
    }

    #[test]
    fn reweight_rejects_changed_overrides() {
        let clean = repetition(2, 0.0);
        let template = NoiseModel::new(1e-2).with_bad_qubit(0, 0.2);
        let mut decoder = UfDecoder::from_clean(&clean, &template);
        assert!(decoder.reweight(&NoiseModel::new(5e-3).with_bad_qubit(0, 0.2)));
        assert!(!decoder.reweight(&NoiseModel::new(5e-3)));
        assert!(!decoder.reweight(&NoiseModel::new(5e-3).with_bad_qubit(1, 0.2)));
    }
}
