//! Exact maximum/minimum weight perfect matching on dense graphs.
//!
//! Implements the classic O(n³) primal–dual blossom algorithm for
//! maximum-weight matching on general graphs (Galil's formulation with
//! lazy dual adjustment). Minimum-weight *perfect* matching — what an
//! MWPM decoder needs — is obtained by negating weights against a large
//! constant, which makes every edge profitable and therefore makes
//! maximum-weight matchings perfect on complete even-order graphs.
//!
//! The decoder calls this per shot on the complete graph over flagged
//! detectors plus virtual boundary copies; typical sizes are tens of
//! vertices, far below the algorithm's comfortable range. To keep the
//! per-shot cost allocation-free, all solver state lives in a reusable
//! [`BlossomArena`]: the `(2n+1)²` edge matrix, the blossom membership
//! tables, and every label/queue buffer are flat index-based vectors
//! that are resized (never reallocated once warm) between solves.

use std::collections::VecDeque;

/// Result of a perfect matching computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerfectMatching {
    /// `mate[v]` is the vertex matched to `v`.
    pub mate: Vec<usize>,
}

/// Computes a minimum-weight perfect matching of the complete graph on
/// `n` vertices (n even) with the given dense weight matrix.
///
/// Weights are arbitrary finite `f64`s; they are scaled internally to
/// integers, so ties may be broken arbitrarily within a relative
/// precision of about 1e-9 of the weight range.
///
/// This is the convenient one-shot entry point; hot loops should hold a
/// [`BlossomArena`] and call [`BlossomArena::solve_min_weight`] with a
/// flat row-major matrix to reuse the solver's internal buffers.
///
/// # Panics
///
/// Panics if `n` is odd, if `weights` is not `n × n`, or if any weight
/// is not finite.
///
/// # Examples
///
/// ```
/// use dqec_matching::blossom::min_weight_perfect_matching;
///
/// // 4 vertices: cheap edges (0,1) and (2,3).
/// let w = vec![
///     vec![0.0, 1.0, 10.0, 10.0],
///     vec![1.0, 0.0, 10.0, 10.0],
///     vec![10.0, 10.0, 0.0, 2.0],
///     vec![10.0, 10.0, 2.0, 0.0],
/// ];
/// let m = min_weight_perfect_matching(&w);
/// assert_eq!(m.mate[0], 1);
/// assert_eq!(m.mate[2], 3);
/// ```
pub fn min_weight_perfect_matching(weights: &[Vec<f64>]) -> PerfectMatching {
    let n = weights.len();
    let mut flat = vec![0.0f64; n * n];
    for (i, row) in weights.iter().enumerate() {
        assert_eq!(row.len(), n, "weight matrix must be square");
        flat[i * n..(i + 1) * n].copy_from_slice(row);
    }
    let mut arena = BlossomArena::new();
    let mut mate = Vec::new();
    arena.solve_min_weight(n, &flat, &mut mate);
    PerfectMatching { mate }
}

#[derive(Clone, Copy, Default)]
struct Edge {
    u: usize,
    v: usize,
    w: i64,
}

/// Reusable storage for the blossom solver.
///
/// Every solve call re-initialises (but does not reallocate, once the
/// buffers have grown to the working size) the dense edge matrix, the
/// dual labels, the blossom membership tables, and the BFS queue. One
/// arena decodes millions of shots without touching the allocator.
///
/// Results are bit-identical to the historical per-call solver: the
/// same weight matrix always yields the same mate array.
pub struct BlossomArena {
    /// Problem size of the current solve (real vertices).
    n: usize,
    /// Highest vertex id in use (real + active blossoms).
    n_x: usize,
    /// Matrix stride: `2n + 1` (ids are 1-based; 0 means "none").
    m: usize,
    /// Stride of `flower_from` rows: `n + 1`.
    fstride: usize,
    /// Flat `m × m` edge matrix; `g[u * m + v]`.
    g: Vec<Edge>,
    /// Dual labels.
    lab: Vec<i64>,
    mate: Vec<usize>,
    slack: Vec<usize>,
    /// Surface (outermost blossom) of each vertex.
    st: Vec<usize>,
    pa: Vec<usize>,
    /// Flat `m × (n + 1)`: for blossom `b` and real vertex `x`, the
    /// direct child of `b` containing `x` (0 if none).
    flower_from: Vec<usize>,
    s: Vec<i8>,
    vis: Vec<u32>,
    vis_t: u32,
    /// Blossom cycles; inner vectors are cleared, not dropped, between
    /// solves so their capacity is reused.
    flower: Vec<Vec<usize>>,
    q: VecDeque<usize>,
    /// Scaled integer weights, kept so `solve_min_weight` needs no
    /// temporary matrix.
    scaled: Vec<i64>,
}

impl Default for BlossomArena {
    fn default() -> Self {
        Self::new()
    }
}

impl BlossomArena {
    /// Creates an empty arena; buffers grow on first use.
    pub fn new() -> Self {
        BlossomArena {
            n: 0,
            n_x: 0,
            m: 0,
            fstride: 0,
            g: Vec::new(),
            lab: Vec::new(),
            mate: Vec::new(),
            slack: Vec::new(),
            st: Vec::new(),
            pa: Vec::new(),
            flower_from: Vec::new(),
            s: Vec::new(),
            vis: Vec::new(),
            vis_t: 0,
            flower: Vec::new(),
            q: VecDeque::new(),
            scaled: Vec::new(),
        }
    }

    /// Computes a minimum-weight perfect matching of the complete graph
    /// on `n` vertices with the flat row-major `n × n` matrix
    /// `weights`, writing 0-indexed mates into `mate_out`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is odd, `weights` is not `n²` long, or any weight
    /// is not finite.
    pub fn solve_min_weight(&mut self, n: usize, weights: &[f64], mate_out: &mut Vec<usize>) {
        assert!(
            n.is_multiple_of(2),
            "perfect matching needs an even vertex count, got {n}"
        );
        assert_eq!(weights.len(), n * n, "weight matrix must be n x n");
        mate_out.clear();
        if n == 0 {
            return;
        }
        // Scale to integers. Use a resolution fine enough to keep
        // ordering; transform min -> max via w' = big - w so every edge
        // is profitable (weight >= 1) and the maximum matching is
        // perfect.
        let mut max_abs = 0.0f64;
        for &w in weights {
            assert!(w.is_finite(), "weights must be finite, got {w}");
            max_abs = max_abs.max(w.abs());
        }
        let scale = if max_abs == 0.0 { 1.0 } else { 1e9 / max_abs };
        let big: i64 = (max_abs * scale).round() as i64 + 2;
        self.scaled.clear();
        self.scaled.resize(n * n, 0);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    self.scaled[i * n + j] = big - (weights[i * n + j] * scale).round() as i64;
                    debug_assert!(self.scaled[i * n + j] >= 1);
                }
            }
        }
        self.reset(n);
        self.run();
        mate_out.reserve(n);
        for v in 1..=n {
            assert!(
                self.mate[v] != 0,
                "matching is not perfect; this cannot happen on complete graphs"
            );
            mate_out.push(self.mate[v] - 1);
        }
    }

    /// Re-initialises all solver state for a size-`n` problem, reusing
    /// buffer capacity, and loads the scaled weight matrix.
    fn reset(&mut self, n: usize) {
        let m = 2 * n + 1;
        self.n = n;
        self.n_x = n;
        self.m = m;
        self.fstride = n + 1;
        self.vis_t = 0;
        self.g.clear();
        self.g.resize(m * m, Edge::default());
        for u in 1..=n {
            for v in 1..=n {
                self.g[u * m + v] = Edge {
                    u,
                    v,
                    w: self.scaled[(u - 1) * n + (v - 1)],
                };
            }
        }
        self.lab.clear();
        self.lab.resize(m, 0);
        self.mate.clear();
        self.mate.resize(m, 0);
        self.slack.clear();
        self.slack.resize(m, 0);
        self.st.clear();
        self.st.extend(0..m);
        self.pa.clear();
        self.pa.resize(m, 0);
        self.flower_from.clear();
        self.flower_from.resize(m * self.fstride, 0);
        self.s.clear();
        self.s.resize(m, -1);
        self.vis.clear();
        self.vis.resize(m, 0);
        for f in &mut self.flower {
            f.clear();
        }
        if self.flower.len() < m {
            self.flower.resize_with(m, Vec::new);
        }
        self.q.clear();
    }

    #[inline]
    fn ge(&self, u: usize, v: usize) -> Edge {
        self.g[u * self.m + v]
    }

    #[inline]
    fn e_delta(&self, e: &Edge) -> i64 {
        self.lab[e.u] + self.lab[e.v] - self.ge(e.u, e.v).w * 2
    }

    fn update_slack(&mut self, u: usize, x: usize) {
        if self.slack[x] == 0
            || self.e_delta(&self.ge(u, x)) < self.e_delta(&self.ge(self.slack[x], x))
        {
            self.slack[x] = u;
        }
    }

    fn set_slack(&mut self, x: usize) {
        self.slack[x] = 0;
        for u in 1..=self.n {
            if self.ge(u, x).w > 0 && self.st[u] != x && self.s[self.st[u]] == 0 {
                self.update_slack(u, x);
            }
        }
    }

    fn q_push(&mut self, x: usize) {
        if x <= self.n {
            self.q.push_back(x);
        } else {
            // Take the cycle out instead of cloning it: the recursion
            // only descends into children, never back into `x`.
            let children = std::mem::take(&mut self.flower[x]);
            for &y in &children {
                self.q_push(y);
            }
            self.flower[x] = children;
        }
    }

    fn set_st(&mut self, x: usize, b: usize) {
        self.st[x] = b;
        if x > self.n {
            let children = std::mem::take(&mut self.flower[x]);
            for &y in &children {
                self.set_st(y, b);
            }
            self.flower[x] = children;
        }
    }

    fn get_pr(&mut self, b: usize, xr: usize) -> usize {
        let pr = self.flower[b]
            .iter()
            .position(|&y| y == xr)
            .expect("xr in flower");
        if pr % 2 == 1 {
            self.flower[b][1..].reverse();
            self.flower[b].len() - pr
        } else {
            pr
        }
    }

    fn set_match(&mut self, u: usize, v: usize) {
        let e = self.ge(u, v);
        self.mate[u] = e.v;
        if u > self.n {
            let xr = self.flower_from[u * self.fstride + e.u];
            let pr = self.get_pr(u, xr);
            for i in 0..pr {
                let a = self.flower[u][i];
                let b = self.flower[u][i ^ 1];
                self.set_match(a, b);
            }
            self.set_match(xr, v);
            self.flower[u].rotate_left(pr);
        }
    }

    fn augment(&mut self, mut u: usize, mut v: usize) {
        loop {
            let xnv = self.st[self.mate[u]];
            self.set_match(u, v);
            if xnv == 0 {
                return;
            }
            let pa_xnv = self.st[self.pa[xnv]];
            self.set_match(xnv, pa_xnv);
            u = pa_xnv;
            v = xnv;
        }
    }

    fn get_lca(&mut self, mut u: usize, mut v: usize) -> usize {
        self.vis_t += 1;
        let t = self.vis_t;
        while u != 0 || v != 0 {
            if u != 0 {
                if self.vis[u] == t {
                    return u;
                }
                self.vis[u] = t;
                u = self.st[self.mate[u]];
                if u != 0 {
                    u = self.st[self.pa[u]];
                }
            }
            std::mem::swap(&mut u, &mut v);
        }
        0
    }

    fn add_blossom(&mut self, u: usize, lca: usize, v: usize) {
        let m = self.m;
        let mut b = self.n + 1;
        while b <= self.n_x && self.st[b] != 0 {
            b += 1;
        }
        if b > self.n_x {
            self.n_x += 1;
        }
        self.lab[b] = 0;
        self.s[b] = 0;
        self.mate[b] = self.mate[lca];
        // Build the blossom cycle in place, reusing the vector's
        // capacity from earlier solves.
        let mut cycle = std::mem::take(&mut self.flower[b]);
        cycle.clear();
        cycle.push(lca);
        let mut x = u;
        while x != lca {
            cycle.push(x);
            let y = self.st[self.mate[x]];
            cycle.push(y);
            self.q_push(y);
            x = self.st[self.pa[y]];
        }
        cycle[1..].reverse();
        let mut x = v;
        while x != lca {
            cycle.push(x);
            let y = self.st[self.mate[x]];
            cycle.push(y);
            self.q_push(y);
            x = self.st[self.pa[y]];
        }
        self.flower[b] = cycle;
        self.set_st(b, b);
        for x in 1..=self.n_x {
            self.g[b * m + x].w = 0;
            self.g[x * m + b].w = 0;
        }
        for x in 1..=self.n {
            self.flower_from[b * self.fstride + x] = 0;
        }
        let cycle = std::mem::take(&mut self.flower[b]);
        for &xs in &cycle {
            for x in 1..=self.n_x {
                if self.g[b * m + x].w == 0
                    || self.e_delta(&self.ge(xs, x)) < self.e_delta(&self.ge(b, x))
                {
                    self.g[b * m + x] = self.g[xs * m + x];
                    self.g[x * m + b] = self.g[x * m + xs];
                }
            }
            for x in 1..=self.n {
                if self.flower_from[xs * self.fstride + x] != 0 {
                    self.flower_from[b * self.fstride + x] = xs;
                }
            }
        }
        self.flower[b] = cycle;
        self.set_slack(b);
    }

    fn expand_blossom(&mut self, b: usize) {
        let cycle = std::mem::take(&mut self.flower[b]);
        for &x in &cycle {
            self.set_st(x, x);
        }
        self.flower[b] = cycle;
        let xr = self.flower_from[b * self.fstride + self.ge(b, self.pa[b]).u];
        let pr = self.get_pr(b, xr);
        let cycle = std::mem::take(&mut self.flower[b]);
        let mut i = 0;
        while i < pr {
            let xs = cycle[i];
            let xns = cycle[i + 1];
            self.pa[xs] = self.ge(xns, xs).u;
            self.s[xs] = 1;
            self.s[xns] = 0;
            self.slack[xs] = 0;
            self.set_slack(xns);
            self.q_push(xns);
            i += 2;
        }
        self.s[xr] = 1;
        self.pa[xr] = self.pa[b];
        for &xs in cycle.iter().skip(pr + 1) {
            self.s[xs] = -1;
            self.set_slack(xs);
        }
        self.flower[b] = cycle;
        self.st[b] = 0;
    }

    fn on_found_edge(&mut self, e: Edge) -> bool {
        let u = self.st[e.u];
        let v = self.st[e.v];
        if self.s[v] == -1 {
            self.pa[v] = e.u;
            self.s[v] = 1;
            let nu = self.st[self.mate[v]];
            self.slack[v] = 0;
            self.slack[nu] = 0;
            self.s[nu] = 0;
            self.q_push(nu);
        } else if self.s[v] == 0 {
            let lca = self.get_lca(u, v);
            if lca == 0 {
                self.augment(u, v);
                self.augment(v, u);
                return true;
            }
            self.add_blossom(u, lca, v);
        }
        false
    }

    fn matching_round(&mut self) -> bool {
        for x in 1..=self.n_x {
            self.s[x] = -1;
            self.slack[x] = 0;
        }
        self.q.clear();
        for x in 1..=self.n_x {
            if self.st[x] == x && self.mate[x] == 0 {
                self.pa[x] = 0;
                self.s[x] = 0;
                self.q_push(x);
            }
        }
        if self.q.is_empty() {
            return false;
        }
        loop {
            while let Some(u) = self.q.pop_front() {
                if self.s[self.st[u]] == 1 {
                    continue;
                }
                for v in 1..=self.n {
                    if self.ge(u, v).w > 0 && self.st[u] != self.st[v] {
                        if self.e_delta(&self.ge(u, v)) == 0 {
                            if self.on_found_edge(self.ge(u, v)) {
                                return true;
                            }
                        } else {
                            let sv = self.st[v];
                            self.update_slack(u, sv);
                        }
                    }
                }
            }
            let mut d = i64::MAX;
            for b in self.n + 1..=self.n_x {
                if self.st[b] == b && self.s[b] == 1 {
                    d = d.min(self.lab[b] / 2);
                }
            }
            for x in 1..=self.n_x {
                if self.st[x] == x && self.slack[x] != 0 {
                    let delta = self.e_delta(&self.ge(self.slack[x], x));
                    if self.s[x] == -1 {
                        d = d.min(delta);
                    } else if self.s[x] == 0 {
                        d = d.min(delta / 2);
                    }
                }
            }
            for u in 1..=self.n {
                match self.s[self.st[u]] {
                    0 => {
                        if self.lab[u] <= d {
                            return false;
                        }
                        self.lab[u] -= d;
                    }
                    1 => self.lab[u] += d,
                    _ => {}
                }
            }
            for b in self.n + 1..=self.n_x {
                if self.st[b] == b {
                    if self.s[b] == 0 {
                        self.lab[b] += d * 2;
                    } else if self.s[b] == 1 {
                        self.lab[b] -= d * 2;
                    }
                }
            }
            self.q.clear();
            for x in 1..=self.n_x {
                if self.st[x] == x
                    && self.slack[x] != 0
                    && self.st[self.slack[x]] != x
                    && self.e_delta(&self.ge(self.slack[x], x)) == 0
                {
                    let e = self.ge(self.slack[x], x);
                    if self.on_found_edge(e) {
                        return true;
                    }
                }
            }
            for b in self.n + 1..=self.n_x {
                if self.st[b] == b && self.s[b] == 1 && self.lab[b] == 0 {
                    self.expand_blossom(b);
                }
            }
        }
    }

    fn run(&mut self) {
        for u in 1..=self.n {
            self.mate[u] = 0;
            for v in 1..=self.n {
                self.flower_from[u * self.fstride + v] = if u == v { u } else { 0 };
            }
        }
        let mut w_max = 0;
        for u in 1..=self.n {
            for v in 1..=self.n {
                w_max = w_max.max(self.ge(u, v).w);
            }
        }
        for u in 1..=self.n {
            self.lab[u] = w_max;
        }
        while self.matching_round() {}
    }
}

#[cfg(test)]
// Index loops are the clear way to fill symmetric weight matrices.
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;

    /// Brute-force minimum-weight perfect matching by recursion.
    fn brute_force(weights: &[Vec<f64>]) -> f64 {
        let n = weights.len();
        let mut used = vec![false; n];
        fn rec(used: &mut [bool], w: &[Vec<f64>]) -> f64 {
            let Some(i) = used.iter().position(|&u| !u) else {
                return 0.0;
            };
            used[i] = true;
            let mut best = f64::INFINITY;
            for j in i + 1..used.len() {
                if !used[j] {
                    used[j] = true;
                    best = best.min(w[i][j] + rec(used, w));
                    used[j] = false;
                }
            }
            used[i] = false;
            best
        }
        rec(&mut used, weights)
    }

    fn matching_cost(weights: &[Vec<f64>], m: &PerfectMatching) -> f64 {
        let n = weights.len();
        let mut seen = vec![false; n];
        let mut total = 0.0;
        for v in 0..n {
            let u = m.mate[v];
            assert_eq!(m.mate[u], v, "mate must be symmetric");
            assert_ne!(u, v);
            if !seen[v] && !seen[u] {
                seen[v] = true;
                seen[u] = true;
                total += weights[v][u];
            }
        }
        assert!(seen.iter().all(|&s| s), "matching must be perfect");
        total
    }

    #[test]
    fn empty_graph() {
        let m = min_weight_perfect_matching(&[]);
        assert!(m.mate.is_empty());
    }

    #[test]
    fn two_vertices() {
        let w = vec![vec![0.0, 3.5], vec![3.5, 0.0]];
        let m = min_weight_perfect_matching(&w);
        assert_eq!(m.mate, vec![1, 0]);
    }

    #[test]
    fn four_vertices_prefers_cheap_pairs() {
        let w = vec![
            vec![0.0, 1.0, 4.0, 4.0],
            vec![1.0, 0.0, 4.0, 4.0],
            vec![4.0, 4.0, 0.0, 1.0],
            vec![4.0, 4.0, 1.0, 0.0],
        ];
        let m = min_weight_perfect_matching(&w);
        assert_eq!(matching_cost(&w, &m), 2.0);
    }

    #[test]
    fn forced_odd_cycle_structure() {
        // A 6-vertex graph where the best matching must "cross" an odd
        // cycle: vertices 0,1,2 form a cheap triangle but must each pair
        // outward.
        let inf = 100.0;
        let mut w = vec![vec![inf; 6]; 6];
        for i in 0..6 {
            w[i][i] = 0.0;
        }
        let set = |a: usize, b: usize, c: f64, w: &mut Vec<Vec<f64>>| {
            w[a][b] = c;
            w[b][a] = c;
        };
        set(0, 1, 1.0, &mut w);
        set(1, 2, 1.0, &mut w);
        set(0, 2, 1.0, &mut w);
        set(0, 3, 2.0, &mut w);
        set(1, 4, 2.0, &mut w);
        set(2, 5, 2.0, &mut w);
        set(3, 4, 50.0, &mut w);
        set(4, 5, 50.0, &mut w);
        set(3, 5, 50.0, &mut w);
        let m = min_weight_perfect_matching(&w);
        // Best: one triangle edge + one outward + one expensive, e.g.
        // (0,1)+(2,5)+(3,4) = 1+2+50 = 53.
        assert_eq!(matching_cost(&w, &m), brute_force(&w));
    }

    #[test]
    fn random_graphs_match_brute_force() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..200 {
            let n = 2 * rng.gen_range(1..=5usize);
            let mut w = vec![vec![0.0; n]; n];
            for i in 0..n {
                for j in i + 1..n {
                    let c = rng.gen_range(0.0..10.0f64);
                    // Round to avoid brute-force/scaled-integer tie
                    // disagreement in cost comparison.
                    let c = (c * 16.0).round() / 16.0;
                    w[i][j] = c;
                    w[j][i] = c;
                }
            }
            let m = min_weight_perfect_matching(&w);
            let got = matching_cost(&w, &m);
            let want = brute_force(&w);
            assert!(
                (got - want).abs() < 1e-6,
                "trial {trial}: got {got}, want {want} (n={n})"
            );
        }
    }

    #[test]
    fn reused_arena_matches_fresh_solver() {
        // The whole point of the arena: solving many instances through
        // one arena must give bit-identical mates to fresh solves, with
        // varying sizes in between to exercise stale-state clearing.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xa7e7a);
        let mut arena = BlossomArena::new();
        let mut mate = Vec::new();
        for trial in 0..100 {
            let n = 2 * rng.gen_range(1..=8usize);
            let mut flat = vec![0.0f64; n * n];
            let mut rows = vec![vec![0.0f64; n]; n];
            for i in 0..n {
                for j in i + 1..n {
                    let c = (rng.gen_range(0.0..10.0f64) * 16.0).round() / 16.0;
                    flat[i * n + j] = c;
                    flat[j * n + i] = c;
                    rows[i][j] = c;
                    rows[j][i] = c;
                }
            }
            arena.solve_min_weight(n, &flat, &mut mate);
            let fresh = min_weight_perfect_matching(&rows);
            assert_eq!(mate, fresh.mate, "trial {trial} (n={n})");
        }
    }

    #[test]
    fn zero_weights_are_fine() {
        let w = vec![vec![0.0; 4]; 4];
        let m = min_weight_perfect_matching(&w);
        assert_eq!(matching_cost(&w, &m), 0.0);
    }

    #[test]
    fn negative_weights_are_fine() {
        let w = vec![
            vec![0.0, -5.0, 2.0, 2.0],
            vec![-5.0, 0.0, 2.0, 2.0],
            vec![2.0, 2.0, 0.0, -1.0],
            vec![2.0, 2.0, -1.0, 0.0],
        ];
        let m = min_weight_perfect_matching(&w);
        assert_eq!(matching_cost(&w, &m), -6.0);
    }

    #[test]
    #[should_panic(expected = "even vertex count")]
    fn odd_count_panics() {
        let w = vec![vec![0.0; 3]; 3];
        let _ = min_weight_perfect_matching(&w);
    }

    #[test]
    fn larger_random_instance_is_consistent() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let n = 40;
        let mut w = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in i + 1..n {
                let c = rng.gen_range(0.0..1.0f64);
                w[i][j] = c;
                w[j][i] = c;
            }
        }
        let m = min_weight_perfect_matching(&w);
        // Sanity: perfect and symmetric (checked inside), cost below a
        // greedy upper bound.
        let cost = matching_cost(&w, &m);
        let mut greedy_used = vec![false; n];
        let mut greedy_cost = 0.0;
        for i in 0..n {
            if greedy_used[i] {
                continue;
            }
            let mut best = (f64::INFINITY, usize::MAX);
            for j in i + 1..n {
                if !greedy_used[j] && w[i][j] < best.0 {
                    best = (w[i][j], j);
                }
            }
            greedy_used[i] = true;
            greedy_used[best.1] = true;
            greedy_cost += best.0;
        }
        assert!(
            cost <= greedy_cost + 1e-9,
            "blossom ({cost}) beat by greedy ({greedy_cost})"
        );
    }
}
