//! Exact maximum/minimum weight perfect matching on dense graphs.
//!
//! Implements the classic O(n³) primal–dual blossom algorithm for
//! maximum-weight matching on general graphs (Galil's formulation with
//! lazy dual adjustment). Minimum-weight *perfect* matching — what an
//! MWPM decoder needs — is obtained by negating weights against a large
//! constant, which makes every edge profitable and therefore makes
//! maximum-weight matchings perfect on complete even-order graphs.
//!
//! The decoder calls this per shot on the complete graph over flagged
//! detectors plus virtual boundary copies; typical sizes are tens of
//! vertices, far below the algorithm's comfortable range.

/// Result of a perfect matching computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerfectMatching {
    /// `mate[v]` is the vertex matched to `v`.
    pub mate: Vec<usize>,
}

/// Computes a minimum-weight perfect matching of the complete graph on
/// `n` vertices (n even) with the given dense weight matrix.
///
/// Weights are arbitrary finite `f64`s; they are scaled internally to
/// integers, so ties may be broken arbitrarily within a relative
/// precision of about 1e-9 of the weight range.
///
/// # Panics
///
/// Panics if `n` is odd, if `weights` is not `n × n`, or if any weight
/// is not finite.
///
/// # Examples
///
/// ```
/// use dqec_matching::blossom::min_weight_perfect_matching;
///
/// // 4 vertices: cheap edges (0,1) and (2,3).
/// let w = vec![
///     vec![0.0, 1.0, 10.0, 10.0],
///     vec![1.0, 0.0, 10.0, 10.0],
///     vec![10.0, 10.0, 0.0, 2.0],
///     vec![10.0, 10.0, 2.0, 0.0],
/// ];
/// let m = min_weight_perfect_matching(&w);
/// assert_eq!(m.mate[0], 1);
/// assert_eq!(m.mate[2], 3);
/// ```
pub fn min_weight_perfect_matching(weights: &[Vec<f64>]) -> PerfectMatching {
    let n = weights.len();
    assert!(
        n.is_multiple_of(2),
        "perfect matching needs an even vertex count, got {n}"
    );
    if n == 0 {
        return PerfectMatching { mate: Vec::new() };
    }
    for row in weights {
        assert_eq!(row.len(), n, "weight matrix must be square");
        for &w in row {
            assert!(w.is_finite(), "weights must be finite, got {w}");
        }
    }
    // Scale to integers. Use a resolution fine enough to keep ordering.
    let mut max_abs = 0.0f64;
    for row in weights {
        for &w in row {
            max_abs = max_abs.max(w.abs());
        }
    }
    let scale = if max_abs == 0.0 { 1.0 } else { 1e9 / max_abs };
    // Transform min -> max: w' = big - w, all >= 1.
    let big: i64 = (max_abs * scale).round() as i64 + 2;
    let mut g = vec![vec![0i64; n + 1]; n + 1];
    for i in 0..n {
        for j in 0..n {
            if i != j {
                g[i + 1][j + 1] = big - (weights[i][j] * scale).round() as i64;
                debug_assert!(g[i + 1][j + 1] >= 1);
            }
        }
    }
    let mate1 = max_weight_matching_1idx(n, &g);
    let mate: Vec<usize> = (1..=n)
        .map(|v| {
            assert!(
                mate1[v] != 0,
                "matching is not perfect; this cannot happen on complete graphs"
            );
            mate1[v] - 1
        })
        .collect();
    PerfectMatching { mate }
}

/// Maximum-weight matching on a 1-indexed dense graph; `g[u][v]` is the
/// weight of edge (u, v), 0 meaning "no edge". Returns the 1-indexed
/// mate array (0 = unmatched).
fn max_weight_matching_1idx(n: usize, w: &[Vec<i64>]) -> Vec<usize> {
    Solver::new(n, w).run()
}

#[derive(Clone, Copy, Default)]
struct Edge {
    u: usize,
    v: usize,
    w: i64,
}

struct Solver {
    n: usize,
    n_x: usize,
    g: Vec<Vec<Edge>>,
    lab: Vec<i64>,
    mate: Vec<usize>,
    slack: Vec<usize>,
    st: Vec<usize>,
    pa: Vec<usize>,
    flower_from: Vec<Vec<usize>>,
    s: Vec<i8>,
    vis: Vec<u32>,
    vis_t: u32,
    flower: Vec<Vec<usize>>,
    q: std::collections::VecDeque<usize>,
}

impl Solver {
    fn new(n: usize, w: &[Vec<i64>]) -> Self {
        let m = 2 * n + 1;
        let mut g = vec![vec![Edge::default(); m]; m];
        for u in 1..=n {
            for v in 1..=n {
                g[u][v] = Edge { u, v, w: w[u][v] };
            }
        }
        Solver {
            n,
            n_x: n,
            g,
            lab: vec![0; m],
            mate: vec![0; m],
            slack: vec![0; m],
            st: (0..m).collect(),
            pa: vec![0; m],
            flower_from: vec![vec![0; n + 1]; m],
            s: vec![-1; m],
            vis: vec![0; m],
            vis_t: 0,
            flower: vec![Vec::new(); m],
            q: std::collections::VecDeque::new(),
        }
    }

    #[inline]
    fn e_delta(&self, e: &Edge) -> i64 {
        self.lab[e.u] + self.lab[e.v] - self.g[e.u][e.v].w * 2
    }

    fn update_slack(&mut self, u: usize, x: usize) {
        if self.slack[x] == 0
            || self.e_delta(&self.g[u][x]) < self.e_delta(&self.g[self.slack[x]][x])
        {
            self.slack[x] = u;
        }
    }

    fn set_slack(&mut self, x: usize) {
        self.slack[x] = 0;
        for u in 1..=self.n {
            if self.g[u][x].w > 0 && self.st[u] != x && self.s[self.st[u]] == 0 {
                self.update_slack(u, x);
            }
        }
    }

    fn q_push(&mut self, x: usize) {
        if x <= self.n {
            self.q.push_back(x);
        } else {
            let children = self.flower[x].clone();
            for y in children {
                self.q_push(y);
            }
        }
    }

    fn set_st(&mut self, x: usize, b: usize) {
        self.st[x] = b;
        if x > self.n {
            let children = self.flower[x].clone();
            for y in children {
                self.set_st(y, b);
            }
        }
    }

    fn get_pr(&mut self, b: usize, xr: usize) -> usize {
        let pr = self.flower[b]
            .iter()
            .position(|&y| y == xr)
            .expect("xr in flower");
        if pr % 2 == 1 {
            self.flower[b][1..].reverse();
            self.flower[b].len() - pr
        } else {
            pr
        }
    }

    fn set_match(&mut self, u: usize, v: usize) {
        self.mate[u] = self.g[u][v].v;
        if u > self.n {
            let e = self.g[u][v];
            let xr = self.flower_from[u][e.u];
            let pr = self.get_pr(u, xr);
            for i in 0..pr {
                let a = self.flower[u][i];
                let b = self.flower[u][i ^ 1];
                self.set_match(a, b);
            }
            self.set_match(xr, v);
            self.flower[u].rotate_left(pr);
        }
    }

    fn augment(&mut self, mut u: usize, mut v: usize) {
        loop {
            let xnv = self.st[self.mate[u]];
            self.set_match(u, v);
            if xnv == 0 {
                return;
            }
            let pa_xnv = self.st[self.pa[xnv]];
            self.set_match(xnv, pa_xnv);
            u = pa_xnv;
            v = xnv;
        }
    }

    fn get_lca(&mut self, mut u: usize, mut v: usize) -> usize {
        self.vis_t += 1;
        let t = self.vis_t;
        while u != 0 || v != 0 {
            if u != 0 {
                if self.vis[u] == t {
                    return u;
                }
                self.vis[u] = t;
                u = self.st[self.mate[u]];
                if u != 0 {
                    u = self.st[self.pa[u]];
                }
            }
            std::mem::swap(&mut u, &mut v);
        }
        0
    }

    fn add_blossom(&mut self, u: usize, lca: usize, v: usize) {
        let mut b = self.n + 1;
        while b <= self.n_x && self.st[b] != 0 {
            b += 1;
        }
        if b > self.n_x {
            self.n_x += 1;
        }
        self.lab[b] = 0;
        self.s[b] = 0;
        self.mate[b] = self.mate[lca];
        self.flower[b] = vec![lca];
        let mut x = u;
        while x != lca {
            self.flower[b].push(x);
            let y = self.st[self.mate[x]];
            self.flower[b].push(y);
            self.q_push(y);
            x = self.st[self.pa[y]];
        }
        self.flower[b][1..].reverse();
        let mut x = v;
        while x != lca {
            self.flower[b].push(x);
            let y = self.st[self.mate[x]];
            self.flower[b].push(y);
            self.q_push(y);
            x = self.st[self.pa[y]];
        }
        let fl = self.flower[b].clone();
        self.set_st(b, b);
        for x in 1..=self.n_x {
            self.g[b][x].w = 0;
            self.g[x][b].w = 0;
        }
        for x in 1..=self.n {
            self.flower_from[b][x] = 0;
        }
        for &xs in &fl {
            for x in 1..=self.n_x {
                if self.g[b][x].w == 0 || self.e_delta(&self.g[xs][x]) < self.e_delta(&self.g[b][x])
                {
                    self.g[b][x] = self.g[xs][x];
                    self.g[x][b] = self.g[x][xs];
                }
            }
            for x in 1..=self.n {
                if self.flower_from[xs][x] != 0 {
                    self.flower_from[b][x] = xs;
                }
            }
        }
        self.set_slack(b);
    }

    fn expand_blossom(&mut self, b: usize) {
        let fl = self.flower[b].clone();
        for &x in &fl {
            self.set_st(x, x);
        }
        let xr = self.flower_from[b][self.g[b][self.pa[b]].u];
        let pr = self.get_pr(b, xr);
        let fl = self.flower[b].clone();
        let mut i = 0;
        while i < pr {
            let xs = fl[i];
            let xns = fl[i + 1];
            self.pa[xs] = self.g[xns][xs].u;
            self.s[xs] = 1;
            self.s[xns] = 0;
            self.slack[xs] = 0;
            self.set_slack(xns);
            self.q_push(xns);
            i += 2;
        }
        self.s[xr] = 1;
        self.pa[xr] = self.pa[b];
        for &xs in fl.iter().skip(pr + 1) {
            self.s[xs] = -1;
            self.set_slack(xs);
        }
        self.st[b] = 0;
    }

    fn on_found_edge(&mut self, e: Edge) -> bool {
        let u = self.st[e.u];
        let v = self.st[e.v];
        if self.s[v] == -1 {
            self.pa[v] = e.u;
            self.s[v] = 1;
            let nu = self.st[self.mate[v]];
            self.slack[v] = 0;
            self.slack[nu] = 0;
            self.s[nu] = 0;
            self.q_push(nu);
        } else if self.s[v] == 0 {
            let lca = self.get_lca(u, v);
            if lca == 0 {
                self.augment(u, v);
                self.augment(v, u);
                return true;
            }
            self.add_blossom(u, lca, v);
        }
        false
    }

    fn matching_round(&mut self) -> bool {
        for x in 1..=self.n_x {
            self.s[x] = -1;
            self.slack[x] = 0;
        }
        self.q.clear();
        for x in 1..=self.n_x {
            if self.st[x] == x && self.mate[x] == 0 {
                self.pa[x] = 0;
                self.s[x] = 0;
                self.q_push(x);
            }
        }
        if self.q.is_empty() {
            return false;
        }
        loop {
            while let Some(u) = self.q.pop_front() {
                if self.s[self.st[u]] == 1 {
                    continue;
                }
                for v in 1..=self.n {
                    if self.g[u][v].w > 0 && self.st[u] != self.st[v] {
                        if self.e_delta(&self.g[u][v]) == 0 {
                            if self.on_found_edge(self.g[u][v]) {
                                return true;
                            }
                        } else {
                            let sv = self.st[v];
                            self.update_slack(u, sv);
                        }
                    }
                }
            }
            let mut d = i64::MAX;
            for b in self.n + 1..=self.n_x {
                if self.st[b] == b && self.s[b] == 1 {
                    d = d.min(self.lab[b] / 2);
                }
            }
            for x in 1..=self.n_x {
                if self.st[x] == x && self.slack[x] != 0 {
                    let delta = self.e_delta(&self.g[self.slack[x]][x]);
                    if self.s[x] == -1 {
                        d = d.min(delta);
                    } else if self.s[x] == 0 {
                        d = d.min(delta / 2);
                    }
                }
            }
            for u in 1..=self.n {
                match self.s[self.st[u]] {
                    0 => {
                        if self.lab[u] <= d {
                            return false;
                        }
                        self.lab[u] -= d;
                    }
                    1 => self.lab[u] += d,
                    _ => {}
                }
            }
            for b in self.n + 1..=self.n_x {
                if self.st[b] == b {
                    if self.s[b] == 0 {
                        self.lab[b] += d * 2;
                    } else if self.s[b] == 1 {
                        self.lab[b] -= d * 2;
                    }
                }
            }
            self.q.clear();
            for x in 1..=self.n_x {
                if self.st[x] == x
                    && self.slack[x] != 0
                    && self.st[self.slack[x]] != x
                    && self.e_delta(&self.g[self.slack[x]][x]) == 0
                {
                    let e = self.g[self.slack[x]][x];
                    if self.on_found_edge(e) {
                        return true;
                    }
                }
            }
            for b in self.n + 1..=self.n_x {
                if self.st[b] == b && self.s[b] == 1 && self.lab[b] == 0 {
                    self.expand_blossom(b);
                }
            }
        }
    }

    fn run(mut self) -> Vec<usize> {
        for u in 1..=self.n {
            self.mate[u] = 0;
            for v in 1..=self.n {
                self.flower_from[u][v] = if u == v { u } else { 0 };
            }
        }
        let mut w_max = 0;
        for u in 1..=self.n {
            for v in 1..=self.n {
                w_max = w_max.max(self.g[u][v].w);
            }
        }
        for u in 1..=self.n {
            self.lab[u] = w_max;
        }
        while self.matching_round() {}
        let mut mate = vec![0usize; self.n + 1];
        mate[1..(self.n + 1)].copy_from_slice(&self.mate[1..(self.n + 1)]);
        mate
    }
}

#[cfg(test)]
// Index loops are the clear way to fill symmetric weight matrices.
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;

    /// Brute-force minimum-weight perfect matching by recursion.
    fn brute_force(weights: &[Vec<f64>]) -> f64 {
        let n = weights.len();
        let mut used = vec![false; n];
        fn rec(used: &mut [bool], w: &[Vec<f64>]) -> f64 {
            let Some(i) = used.iter().position(|&u| !u) else {
                return 0.0;
            };
            used[i] = true;
            let mut best = f64::INFINITY;
            for j in i + 1..used.len() {
                if !used[j] {
                    used[j] = true;
                    best = best.min(w[i][j] + rec(used, w));
                    used[j] = false;
                }
            }
            used[i] = false;
            best
        }
        rec(&mut used, weights)
    }

    fn matching_cost(weights: &[Vec<f64>], m: &PerfectMatching) -> f64 {
        let n = weights.len();
        let mut seen = vec![false; n];
        let mut total = 0.0;
        for v in 0..n {
            let u = m.mate[v];
            assert_eq!(m.mate[u], v, "mate must be symmetric");
            assert_ne!(u, v);
            if !seen[v] && !seen[u] {
                seen[v] = true;
                seen[u] = true;
                total += weights[v][u];
            }
        }
        assert!(seen.iter().all(|&s| s), "matching must be perfect");
        total
    }

    #[test]
    fn empty_graph() {
        let m = min_weight_perfect_matching(&[]);
        assert!(m.mate.is_empty());
    }

    #[test]
    fn two_vertices() {
        let w = vec![vec![0.0, 3.5], vec![3.5, 0.0]];
        let m = min_weight_perfect_matching(&w);
        assert_eq!(m.mate, vec![1, 0]);
    }

    #[test]
    fn four_vertices_prefers_cheap_pairs() {
        let w = vec![
            vec![0.0, 1.0, 4.0, 4.0],
            vec![1.0, 0.0, 4.0, 4.0],
            vec![4.0, 4.0, 0.0, 1.0],
            vec![4.0, 4.0, 1.0, 0.0],
        ];
        let m = min_weight_perfect_matching(&w);
        assert_eq!(matching_cost(&w, &m), 2.0);
    }

    #[test]
    fn forced_odd_cycle_structure() {
        // A 6-vertex graph where the best matching must "cross" an odd
        // cycle: vertices 0,1,2 form a cheap triangle but must each pair
        // outward.
        let inf = 100.0;
        let mut w = vec![vec![inf; 6]; 6];
        for i in 0..6 {
            w[i][i] = 0.0;
        }
        let set = |a: usize, b: usize, c: f64, w: &mut Vec<Vec<f64>>| {
            w[a][b] = c;
            w[b][a] = c;
        };
        set(0, 1, 1.0, &mut w);
        set(1, 2, 1.0, &mut w);
        set(0, 2, 1.0, &mut w);
        set(0, 3, 2.0, &mut w);
        set(1, 4, 2.0, &mut w);
        set(2, 5, 2.0, &mut w);
        set(3, 4, 50.0, &mut w);
        set(4, 5, 50.0, &mut w);
        set(3, 5, 50.0, &mut w);
        let m = min_weight_perfect_matching(&w);
        // Best: one triangle edge + one outward + one expensive, e.g.
        // (0,1)+(2,5)+(3,4) = 1+2+50 = 53.
        assert_eq!(matching_cost(&w, &m), brute_force(&w));
    }

    #[test]
    fn random_graphs_match_brute_force() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..200 {
            let n = 2 * rng.gen_range(1..=5usize);
            let mut w = vec![vec![0.0; n]; n];
            for i in 0..n {
                for j in i + 1..n {
                    let c = rng.gen_range(0.0..10.0f64);
                    // Round to avoid brute-force/scaled-integer tie
                    // disagreement in cost comparison.
                    let c = (c * 16.0).round() / 16.0;
                    w[i][j] = c;
                    w[j][i] = c;
                }
            }
            let m = min_weight_perfect_matching(&w);
            let got = matching_cost(&w, &m);
            let want = brute_force(&w);
            assert!(
                (got - want).abs() < 1e-6,
                "trial {trial}: got {got}, want {want} (n={n})"
            );
        }
    }

    #[test]
    fn zero_weights_are_fine() {
        let w = vec![vec![0.0; 4]; 4];
        let m = min_weight_perfect_matching(&w);
        assert_eq!(matching_cost(&w, &m), 0.0);
    }

    #[test]
    fn negative_weights_are_fine() {
        let w = vec![
            vec![0.0, -5.0, 2.0, 2.0],
            vec![-5.0, 0.0, 2.0, 2.0],
            vec![2.0, 2.0, 0.0, -1.0],
            vec![2.0, 2.0, -1.0, 0.0],
        ];
        let m = min_weight_perfect_matching(&w);
        assert_eq!(matching_cost(&w, &m), -6.0);
    }

    #[test]
    #[should_panic(expected = "even vertex count")]
    fn odd_count_panics() {
        let w = vec![vec![0.0; 3]; 3];
        let _ = min_weight_perfect_matching(&w);
    }

    #[test]
    fn larger_random_instance_is_consistent() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let n = 40;
        let mut w = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in i + 1..n {
                let c = rng.gen_range(0.0..1.0f64);
                w[i][j] = c;
                w[j][i] = c;
            }
        }
        let m = min_weight_perfect_matching(&w);
        // Sanity: perfect and symmetric (checked inside), cost below a
        // greedy upper bound.
        let cost = matching_cost(&w, &m);
        let mut greedy_used = vec![false; n];
        let mut greedy_cost = 0.0;
        for i in 0..n {
            if greedy_used[i] {
                continue;
            }
            let mut best = (f64::INFINITY, usize::MAX);
            for j in i + 1..n {
                if !greedy_used[j] && w[i][j] < best.0 {
                    best = (w[i][j], j);
                }
            }
            greedy_used[i] = true;
            greedy_used[best.1] = true;
            greedy_cost += best.0;
        }
        assert!(
            cost <= greedy_cost + 1e-9,
            "blossom ({cost}) beat by greedy ({greedy_cost})"
        );
    }
}
