//! Per-basis decoding graphs derived from a detector error model.
//!
//! CSS decoding splits detectors into an X graph and a Z graph. Error
//! mechanisms become edges: a mechanism flipping two same-basis
//! detectors is an internal edge, one flipping a single detector is a
//! boundary edge, and rarer multi-detector mechanisms (hook errors) are
//! decomposed into known edges, mirroring Stim's `decompose_errors`.

use dqec_sim::circuit::{CheckBasis, Circuit};
use dqec_sim::dem::DetectorErrorModel;
use std::collections::HashMap;

/// Smallest probability an edge is allowed to carry (avoids infinite
/// weights).
const P_FLOOR: f64 = 1e-14;
/// Largest probability (keeps weights positive).
const P_CEIL: f64 = 0.4999;
/// Stand-in weight for unreachable node pairs.
const UNREACHABLE: f64 = 1e12;

/// One edge of a decoding graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphEdge {
    /// First endpoint (node id).
    pub a: u32,
    /// Second endpoint, or `None` for the virtual boundary.
    pub b: Option<u32>,
    /// Combined firing probability.
    pub probability: f64,
    /// Observables flipped when this edge fires.
    pub observables: u64,
}

/// Diagnostics accumulated while building a graph.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GraphDiagnostics {
    /// Mechanisms whose same-basis symptom had more than two detectors
    /// and were decomposed into existing edges.
    pub decomposed_mechanisms: usize,
    /// Mechanisms that could not be decomposed and fell back to
    /// consecutive pairing.
    pub undecomposable_mechanisms: usize,
    /// Parallel edges that disagreed on their observable mask.
    pub conflicting_observable_edges: usize,
    /// Mechanisms flipping a tracked observable with an empty symptom in
    /// both bases (true undetectable logical errors).
    pub undetectable_logical_mechanisms: usize,
}

/// A single-basis matching graph with cached all-pairs shortest paths.
#[derive(Debug, Clone)]
pub struct DecodingGraph {
    basis: CheckBasis,
    node_of_det: Vec<Option<u32>>,
    det_of_node: Vec<u32>,
    edges: Vec<GraphEdge>,
    /// Per edge, the indices (into the source DEM's mechanism list, in
    /// accumulation order) whose XOR-combination gives its probability;
    /// kept so [`DecodingGraph::reweight_from`] can recompute weights.
    edge_sources: Vec<Vec<u32>>,
    /// Row-major `(n+1) x (n+1)` distances; index `n` is the boundary.
    dist: Vec<f64>,
    /// Observable parity along the corresponding shortest path.
    parity: Vec<u64>,
    /// Row-major shortest-path trees: `pred[s*(n+1)+t]` is the edge
    /// index reaching `t` on the cached `s → t` path (`NO_PRED` for
    /// the source itself and unreachable nodes). Reweighting re-derives
    /// distances along these trees instead of re-running Dijkstra.
    pred: Vec<u32>,
    diagnostics: GraphDiagnostics,
}

/// Sentinel for "no predecessor edge" in the shortest-path trees.
const NO_PRED: u32 = u32::MAX;

impl DecodingGraph {
    /// Builds the decoding graph for `basis` from a circuit's DEM,
    /// responsible for every observable.
    ///
    /// Prefer [`DecodingGraph::build_with_observables`]: in CSS decoding
    /// each observable must be owned by exactly one basis graph.
    pub fn build(circuit: &Circuit, dem: &DetectorErrorModel, basis: CheckBasis) -> Self {
        Self::build_with_observables(circuit, dem, basis, u64::MAX)
    }

    /// Determines which basis should own each observable: the basis
    /// whose detectors see *every* mechanism that flips it. (A logical-Z
    /// readout is flipped by X-type errors, which always trip Z checks;
    /// Y errors additionally trip X checks, so the X basis fails the
    /// "every mechanism" test.) Returns `(z_mask, x_mask)`.
    pub fn split_observables(circuit: &Circuit, dem: &DetectorErrorModel) -> (u64, u64) {
        let det_basis: Vec<CheckBasis> = circuit.detectors().iter().map(|d| d.basis).collect();
        let mut always_z = u64::MAX;
        let mut always_x = u64::MAX;
        for mech in &dem.mechanisms {
            if mech.observables == 0 {
                continue;
            }
            let mut has = [false, false]; // [z, x]
            for &d in &mech.detectors {
                match det_basis[d as usize] {
                    CheckBasis::Z => has[0] = true,
                    CheckBasis::X => has[1] = true,
                }
            }
            if !has[0] {
                always_z &= !mech.observables;
            }
            if !has[1] {
                always_x &= !mech.observables;
            }
        }
        // Own what you always see; ties go to Z; orphans (seen by
        // neither) also go to Z so they are at least counted once.
        let z_mask = always_z;
        let x_mask = always_x & !always_z;
        (z_mask | !(always_z | always_x), x_mask)
    }

    /// Builds the decoding graph for `basis`, owning only the
    /// observables in `obs_mask`.
    pub fn build_with_observables(
        circuit: &Circuit,
        dem: &DetectorErrorModel,
        basis: CheckBasis,
        obs_mask: u64,
    ) -> Self {
        let det_basis: Vec<CheckBasis> = circuit.detectors().iter().map(|d| d.basis).collect();
        let mut node_of_det: Vec<Option<u32>> = vec![None; det_basis.len()];
        let mut det_of_node: Vec<u32> = Vec::new();
        for (d, &b) in det_basis.iter().enumerate() {
            if b == basis {
                node_of_det[d] = Some(det_of_node.len() as u32);
                det_of_node.push(d as u32);
            }
        }
        let n = det_of_node.len();
        let mut diagnostics = GraphDiagnostics::default();

        // Key: (a, b) with a < b, or (a, u32::MAX) for boundary.
        type Key = (u32, u32);
        #[derive(Default)]
        struct Accum {
            p: f64,
            obs_votes: HashMap<u64, f64>,
            sources: Vec<u32>,
        }
        let mut accum: HashMap<Key, Accum> = HashMap::new();
        let key_of = |dets: &[u32]| -> Key {
            match dets {
                [a] => (*a, u32::MAX),
                [a, b] => (*a.min(b), *a.max(b)),
                _ => unreachable!(),
            }
        };
        let add_edge =
            |nodes: &[u32], p: f64, obs: u64, mech: u32, accum: &mut HashMap<Key, Accum>| {
                let e = accum.entry(key_of(nodes)).or_default();
                e.p = e.p * (1.0 - p) + p * (1.0 - e.p);
                *e.obs_votes.entry(obs).or_insert(0.0) += p;
                e.sources.push(mech);
            };

        // Pass 1: simple mechanisms (<= 2 same-basis detectors).
        let mut deferred: Vec<(u32, &Vec<u32>, u64, f64)> = Vec::new();
        for (m, mech) in dem.mechanisms.iter().enumerate() {
            let nodes: Vec<u32> = mech
                .detectors
                .iter()
                .filter_map(|&d| node_of_det[d as usize])
                .collect();
            // An observable flip is charged to the graph that detects it;
            // if neither basis sees the mechanism at all it is a genuine
            // undetectable logical error.
            if nodes.is_empty() {
                if mech.observables != 0 && mech.detectors.is_empty() {
                    diagnostics.undetectable_logical_mechanisms += 1;
                }
                continue;
            }
            let obs = mech.observables & obs_mask;
            match nodes.len() {
                1 | 2 => add_edge(&nodes, mech.probability, obs, m as u32, &mut accum),
                _ => deferred.push((m as u32, &mech.detectors, obs, mech.probability)),
            }
        }

        // Pass 2: decompose multi-detector mechanisms into known edges.
        let known: std::collections::HashSet<Key> = accum.keys().copied().collect();
        for (m, dets, obs, p) in deferred {
            let nodes: Vec<u32> = dets
                .iter()
                .filter_map(|&d| node_of_det[d as usize])
                .collect();
            if let Some(parts) = decompose(&nodes, &known) {
                diagnostics.decomposed_mechanisms += 1;
                // Assign the observable to the first component (the vote
                // mechanism resolves disagreements below).
                for (i, part) in parts.iter().enumerate() {
                    let part_obs = if i == 0 { obs } else { 0 };
                    add_edge(part, p, part_obs, m, &mut accum);
                }
            } else {
                diagnostics.undecomposable_mechanisms += 1;
                let mut i = 0;
                while i < nodes.len() {
                    let part: Vec<u32> = nodes[i..(i + 2).min(nodes.len())].to_vec();
                    let part_obs = if i == 0 { obs } else { 0 };
                    add_edge(&part, p, part_obs, m, &mut accum);
                    i += 2;
                }
            }
        }

        // Finalize edges: pick the dominant observable mask per edge.
        let mut paired = Vec::with_capacity(accum.len());
        for ((a, b), acc) in accum {
            // Every accumulated edge carries at least one vote (it was
            // created by `add_edge`); an empty map degrades to mask 0.
            let obs = acc
                .obs_votes
                .iter()
                .max_by(|x, y| x.1.total_cmp(y.1))
                .map(|(&obs, _)| obs)
                .unwrap_or(0);
            if acc.obs_votes.len() > 1 {
                diagnostics.conflicting_observable_edges += 1;
            }
            paired.push((
                GraphEdge {
                    a,
                    b: (b != u32::MAX).then_some(b),
                    probability: acc.p,
                    observables: obs,
                },
                acc.sources,
            ));
        }
        paired.sort_by_key(|(e, _)| (e.a, e.b));
        let (edges, edge_sources): (Vec<GraphEdge>, Vec<Vec<u32>>) = paired.into_iter().unzip();

        let (dist, parity, pred) = all_pairs(n, &edges);
        DecodingGraph {
            basis,
            node_of_det,
            det_of_node,
            edges,
            edge_sources,
            dist,
            parity,
            pred,
            diagnostics,
        }
    }

    /// Recomputes every edge's probability from `dem` — which must be a
    /// reweighting of the DEM this graph was built from, i.e. have the
    /// same mechanisms in the same order (as produced by
    /// `dqec_sim::dem::ParametricDem::concretize`) — then refreshes the
    /// cached shortest-path tables. The graph *structure* (nodes, edges,
    /// observable masks) is reused, and so are the cached shortest-path
    /// trees: each row's distances are first re-derived along its old
    /// tree in O(V + E) and accepted when the shortest-path certificate
    /// (no edge can relax any distance further) holds; only rows whose
    /// tree went stale re-run Dijkstra. Under the paper's noise model a
    /// p-change shifts every edge weight by nearly the same amount, so
    /// trees almost always survive — this is what makes sweeping a
    /// logical-error-rate curve much cheaper than rebuilding the decoder
    /// at every physical error rate.
    ///
    /// # Panics
    ///
    /// Panics if `dem` has fewer mechanisms than the graph was built
    /// with.
    pub fn reweight_from(&mut self, dem: &DetectorErrorModel) {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        for (edge, sources) in self.edges.iter_mut().zip(&self.edge_sources) {
            let mut p_acc = 0.0;
            for &m in sources {
                let p = dem.mechanisms[m as usize].probability;
                p_acc = p_acc * (1.0 - p) + p * (1.0 - p_acc);
            }
            edge.probability = p_acc;
        }

        let n = self.det_of_node.len();
        let total = n + 1;
        let weights: Vec<f64> = self
            .edges
            .iter()
            .map(|e| weight_of(e.probability))
            .collect();
        let endpoints: Vec<(usize, usize)> = self
            .edges
            .iter()
            .map(|e| (e.a as usize, e.b.map_or(n, |x| x as usize)))
            .collect();
        let csr = Csr::build(total, &endpoints, &weights);

        // Row scratch, reused across sources.
        let mut order: Vec<u32> = (0..total as u32).collect();
        let mut d = vec![f64::INFINITY; total];
        let mut par = vec![0u64; total];
        let mut heap: BinaryHeap<Reverse<HeapItem>> = BinaryHeap::new();
        for src in 0..total {
            let row = src * total;
            let old = &self.dist[row..row + total];
            // Parents settled before children, so increasing old
            // distance is a topological order of the old tree.
            order.sort_unstable_by(|&a, &b| {
                old[a as usize].total_cmp(&old[b as usize]).then(a.cmp(&b))
            });
            let pred = &mut self.pred[row..row + total];
            for &t in order.iter() {
                let t = t as usize;
                if t == src {
                    d[t] = 0.0;
                    par[t] = 0;
                    continue;
                }
                match pred[t] {
                    NO_PRED => {
                        // Unreachable before; weights cannot change that.
                        d[t] = f64::INFINITY;
                        par[t] = 0;
                    }
                    e => {
                        let e = e as usize;
                        let (a, b) = endpoints[e];
                        let parent = if a == t { b } else { a };
                        d[t] = d[parent] + weights[e];
                        par[t] = par[parent] ^ self.edges[e].observables;
                    }
                }
            }
            // The tree distances are upper bounds achieved by real
            // paths. Repair them to the exact optimum with a
            // warm-started Dijkstra: seed the heap with every edge
            // relaxation that still improves a bound, then run the
            // usual pop-min/relax loop to the fixed point. Rows whose
            // tree survived the weight change (the common case under a
            // uniform p-shift) skip the loop entirely.
            heap.clear();
            for (e, &(a, b)) in endpoints.iter().enumerate() {
                let w = weights[e];
                let obs = self.edges[e].observables;
                if d[a] + w < d[b] {
                    d[b] = d[a] + w;
                    par[b] = par[a] ^ obs;
                    pred[b] = e as u32;
                    heap.push(Reverse(HeapItem(d[b], b as u32)));
                }
                if d[b] + w < d[a] {
                    d[a] = d[b] + w;
                    par[a] = par[b] ^ obs;
                    pred[a] = e as u32;
                    heap.push(Reverse(HeapItem(d[a], a as u32)));
                }
            }
            while let Some(Reverse(HeapItem(du, u))) = heap.pop() {
                let u = u as usize;
                if du > d[u] {
                    continue;
                }
                for &(v, w, _, e) in &csr.entries[csr.starts[u]..csr.starts[u + 1]] {
                    let v = v as usize;
                    let nd = du + w;
                    if nd < d[v] {
                        d[v] = nd;
                        par[v] = par[u] ^ self.edges[e as usize].observables;
                        pred[v] = e;
                        heap.push(Reverse(HeapItem(nd, v as u32)));
                    }
                }
            }
            for t in 0..total {
                self.dist[row + t] = if d[t].is_finite() { d[t] } else { UNREACHABLE };
                self.parity[row + t] = par[t];
            }
        }
    }

    /// The basis this graph decodes.
    pub fn basis(&self) -> CheckBasis {
        self.basis
    }

    /// The number of real (non-boundary) nodes.
    pub fn num_nodes(&self) -> usize {
        self.det_of_node.len()
    }

    /// The edges of the graph.
    pub fn edges(&self) -> &[GraphEdge] {
        &self.edges
    }

    /// Build-time diagnostics.
    pub fn diagnostics(&self) -> &GraphDiagnostics {
        &self.diagnostics
    }

    /// Maps a detector id to this graph's node id (if it has this basis).
    pub fn node_of_detector(&self, det: u32) -> Option<u32> {
        self.node_of_det.get(det as usize).copied().flatten()
    }

    /// Shortest-path weight between two nodes (`None` = boundary).
    pub fn distance(&self, a: Option<u32>, b: Option<u32>) -> f64 {
        let n = self.num_nodes();
        let ia = a.map_or(n, |x| x as usize);
        let ib = b.map_or(n, |x| x as usize);
        self.dist[ia * (n + 1) + ib]
    }

    /// Observable parity along the shortest path between two nodes.
    pub fn path_observables(&self, a: Option<u32>, b: Option<u32>) -> u64 {
        let n = self.num_nodes();
        let ia = a.map_or(n, |x| x as usize);
        let ib = b.map_or(n, |x| x as usize);
        self.parity[ia * (n + 1) + ib]
    }

    /// The graphlike circuit-level distance for observable `obs`: the
    /// minimum number of error mechanisms (edges) whose combined
    /// symptom is trivial but which flip the observable — i.e. the
    /// shortest undetectable logical error under this noise model.
    ///
    /// Computed by Dijkstra on the parity-doubled graph with unit edge
    /// weights: an undetectable logical is a closed walk (through the
    /// boundary or around a cycle) with odd observable parity. Returns
    /// `None` when no such error exists in the graph.
    pub fn graphlike_distance(&self, obs: u32) -> Option<u32> {
        use std::collections::BinaryHeap;
        let n = self.num_nodes() + 1; // + boundary
        let mut adj: Vec<Vec<(usize, bool)>> = vec![Vec::new(); n];
        for e in &self.edges {
            let b = e.b.map_or(n - 1, |x| x as usize);
            let flips = (e.observables >> obs) & 1 == 1;
            adj[e.a as usize].push((b, flips));
            adj[b].push((e.a as usize, flips));
        }
        // State (node, parity); start at every node with parity 0 and
        // look for returning to the same node with parity 1. Starting
        // from the boundary covers boundary-to-boundary strings; cycle
        // cases are covered by starting from each edge's endpoint.
        let mut best: Option<u32> = None;
        for start in 0..n {
            let mut dist = vec![[u32::MAX; 2]; n];
            dist[start][0] = 0;
            let mut heap: BinaryHeap<std::cmp::Reverse<(u32, usize, u8)>> = BinaryHeap::new();
            heap.push(std::cmp::Reverse((0, start, 0)));
            while let Some(std::cmp::Reverse((d, v, p))) = heap.pop() {
                if d > dist[v][p as usize] {
                    continue;
                }
                for &(w, flips) in &adj[v] {
                    let np = p ^ (flips as u8);
                    let nd = d + 1;
                    if nd < dist[w][np as usize] {
                        dist[w][np as usize] = nd;
                        heap.push(std::cmp::Reverse((nd, w, np)));
                    }
                }
            }
            if dist[start][1] != u32::MAX {
                best = Some(best.map_or(dist[start][1], |b| b.min(dist[start][1])));
            }
        }
        best
    }
}

/// Edge probability -> matching weight (shared with the union-find
/// decoder's integer quantization).
pub(crate) fn weight_of(p: f64) -> f64 {
    let p = p.clamp(P_FLOOR, P_CEIL);
    ((1.0 - p) / p).ln()
}

/// Tries to split `nodes` (sorted, len >= 3) into parts that all exist
/// as known edges; parts are pairs or boundary singletons.
fn decompose(
    nodes: &[u32],
    known: &std::collections::HashSet<(u32, u32)>,
) -> Option<Vec<Vec<u32>>> {
    if nodes.is_empty() {
        return Some(Vec::new());
    }
    let first = nodes[0];
    // Option A: first matches the boundary.
    if known.contains(&(first, u32::MAX)) {
        let rest: Vec<u32> = nodes[1..].to_vec();
        if let Some(mut parts) = decompose(&rest, known) {
            parts.insert(0, vec![first]);
            return Some(parts);
        }
    }
    // Option B: pair first with a later node.
    for i in 1..nodes.len() {
        let other = nodes[i];
        let key = (first.min(other), first.max(other));
        if known.contains(&key) {
            let rest: Vec<u32> = nodes[1..].iter().copied().filter(|&x| x != other).collect();
            if let Some(mut parts) = decompose(&rest, known) {
                parts.insert(0, vec![first, other]);
                return Some(parts);
            }
        }
    }
    None
}

/// Flat CSR adjacency shared by the all-pairs build and per-row
/// Dijkstra fallbacks; entries carry the edge index so predecessor
/// trees can be recorded.
struct Csr {
    starts: Vec<usize>,
    /// `(neighbor, weight, observables, edge index)`.
    entries: Vec<(u32, f64, u64, u32)>,
}

impl Csr {
    fn build(total: usize, endpoints: &[(usize, usize)], weights: &[f64]) -> Csr {
        let mut degree = vec![0usize; total];
        for &(a, b) in endpoints {
            degree[a] += 1;
            degree[b] += 1;
        }
        let mut starts = vec![0usize; total + 1];
        for v in 0..total {
            starts[v + 1] = starts[v] + degree[v];
        }
        let mut cursor = starts.clone();
        let mut entries = vec![(0u32, 0.0f64, 0u64, 0u32); starts[total]];
        for (e, &(a, b)) in endpoints.iter().enumerate() {
            let w = weights[e];
            entries[cursor[a]] = (b as u32, w, 0, e as u32);
            cursor[a] += 1;
            entries[cursor[b]] = (a as u32, w, 0, e as u32);
            cursor[b] += 1;
        }
        Csr { starts, entries }
    }
}

#[derive(PartialEq)]
struct HeapItem(f64, u32);
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
    }
}

/// One full Dijkstra from `src`, writing distances, path parities, and
/// the predecessor-edge tree into the provided row buffers.
fn dijkstra_row(
    src: usize,
    csr: &Csr,
    edges: &[GraphEdge],
    d: &mut [f64],
    par: &mut [u64],
    pred: &mut [u32],
) {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    d.fill(f64::INFINITY);
    par.fill(0);
    pred.fill(NO_PRED);
    let mut done = vec![false; d.len()];
    let mut heap: BinaryHeap<Reverse<HeapItem>> = BinaryHeap::new();
    d[src] = 0.0;
    heap.push(Reverse(HeapItem(0.0, src as u32)));
    while let Some(Reverse(HeapItem(du, u))) = heap.pop() {
        let u = u as usize;
        if done[u] {
            continue;
        }
        done[u] = true;
        for &(v, w, _, e) in &csr.entries[csr.starts[u]..csr.starts[u + 1]] {
            let v = v as usize;
            let nd = du + w;
            if nd < d[v] {
                d[v] = nd;
                par[v] = par[u] ^ edges[e as usize].observables;
                pred[v] = e;
                heap.push(Reverse(HeapItem(nd, v as u32)));
            }
        }
    }
}

/// All-pairs Dijkstra over `n` real nodes plus the boundary (index `n`),
/// also recording each row's shortest-path tree (predecessor edges) so
/// [`DecodingGraph::reweight_from`] can refresh distances without
/// re-running every Dijkstra.
fn all_pairs(n: usize, edges: &[GraphEdge]) -> (Vec<f64>, Vec<u64>, Vec<u32>) {
    let total = n + 1;
    let endpoints: Vec<(usize, usize)> = edges
        .iter()
        .map(|e| (e.a as usize, e.b.map_or(n, |x| x as usize)))
        .collect();
    let weights: Vec<f64> = edges.iter().map(|e| weight_of(e.probability)).collect();
    let csr = Csr::build(total, &endpoints, &weights);

    let mut dist = vec![UNREACHABLE; total * total];
    let mut parity = vec![0u64; total * total];
    let mut pred = vec![NO_PRED; total * total];
    let mut d = vec![f64::INFINITY; total];
    let mut par = vec![0u64; total];
    for src in 0..total {
        let row = src * total;
        dijkstra_row(
            src,
            &csr,
            edges,
            &mut d,
            &mut par,
            &mut pred[row..row + total],
        );
        for t in 0..total {
            dist[row + t] = if d[t].is_finite() { d[t] } else { UNREACHABLE };
            parity[row + t] = par[t];
        }
    }
    (dist, parity, pred)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqec_sim::circuit::Noise1;

    /// A 3-qubit repetition code measured for `rounds` rounds, with a
    /// data X error probability `p` before each round.
    fn repetition_circuit(rounds: usize, p: f64) -> Circuit {
        let mut c = Circuit::new(5); // data 0,1,2; ancilla 3,4
        for q in 0..5 {
            c.reset(q).unwrap();
        }
        let mut prev: Option<[dqec_sim::MeasRecord; 2]> = None;
        for t in 0..rounds {
            for q in 0..3 {
                c.noise1(Noise1::XError, q, p).unwrap();
            }
            c.cx(0, 3).unwrap();
            c.cx(1, 3).unwrap();
            c.cx(1, 4).unwrap();
            c.cx(2, 4).unwrap();
            let m3 = c.measure_reset(3).unwrap();
            let m4 = c.measure_reset(4).unwrap();
            match prev {
                None => {
                    c.add_detector(&[m3], CheckBasis::Z, (0, 0, t as i32))
                        .unwrap();
                    c.add_detector(&[m4], CheckBasis::Z, (1, 0, t as i32))
                        .unwrap();
                }
                Some([p3, p4]) => {
                    c.add_detector(&[m3, p3], CheckBasis::Z, (0, 0, t as i32))
                        .unwrap();
                    c.add_detector(&[m4, p4], CheckBasis::Z, (1, 0, t as i32))
                        .unwrap();
                }
            }
            prev = Some([m3, m4]);
        }
        // Final data readout.
        let d0 = c.measure(0).unwrap();
        let d1 = c.measure(1).unwrap();
        let d2 = c.measure(2).unwrap();
        let [p3, p4] = prev.unwrap();
        c.add_detector(&[d0, d1, p3], CheckBasis::Z, (0, 0, rounds as i32))
            .unwrap();
        c.add_detector(&[d1, d2, p4], CheckBasis::Z, (1, 0, rounds as i32))
            .unwrap();
        c.include_observable(0, &[d0]).unwrap();
        c
    }

    #[test]
    fn repetition_graph_structure() {
        let c = repetition_circuit(2, 0.01);
        let dem = DetectorErrorModel::from_circuit(&c);
        let g = DecodingGraph::build(&c, &dem, CheckBasis::Z);
        assert_eq!(g.num_nodes(), 6); // 2 checks x 3 detector layers
        assert!(g.diagnostics().undecomposable_mechanisms == 0);
        // Boundary edges must exist (X on data 0 or data 2 flips one check).
        assert!(g.edges().iter().any(|e| e.b.is_none()));
        // Observable-carrying edges exist (data 0 errors flip obs 0).
        assert!(g.edges().iter().any(|e| e.observables == 1));
    }

    #[test]
    fn distances_are_symmetric_and_triangle() {
        let c = repetition_circuit(3, 0.01);
        let dem = DetectorErrorModel::from_circuit(&c);
        let g = DecodingGraph::build(&c, &dem, CheckBasis::Z);
        let n = g.num_nodes() as u32;
        for a in 0..n {
            assert_eq!(g.distance(Some(a), Some(a)), 0.0);
            for b in 0..n {
                let dab = g.distance(Some(a), Some(b));
                let dba = g.distance(Some(b), Some(a));
                assert!((dab - dba).abs() < 1e-9);
                let via_boundary = g.distance(Some(a), None) + g.distance(None, Some(b));
                assert!(dab <= via_boundary + 1e-9, "triangle through boundary");
            }
        }
    }

    #[test]
    fn reweighted_graph_matches_fresh_build() {
        use dqec_sim::dem::ParametricDem;
        use dqec_sim::noise::NoiseModel;

        // Strip the hand-placed noise and let the model decorate the
        // clean circuit, so rates follow the parametric form.
        let clean = repetition_circuit(3, 0.0);
        let template = NoiseModel::new(1e-3);
        let (noisy, params) = template.apply_with_params(&clean);
        let pdem = ParametricDem::from_noisy(&noisy, &params);
        let mut graph = DecodingGraph::build(&noisy, &pdem.concretize(template.p()), CheckBasis::Z);

        for p in [5e-4, 2e-3, 1e-2] {
            graph.reweight_from(&pdem.concretize(p));
            let fresh_noisy = NoiseModel::new(p).apply(&clean);
            let fresh = DecodingGraph::build(
                &fresh_noisy,
                &DetectorErrorModel::from_circuit(&fresh_noisy),
                CheckBasis::Z,
            );
            assert_eq!(graph.edges().len(), fresh.edges().len());
            for (a, b) in graph.edges().iter().zip(fresh.edges()) {
                assert_eq!((a.a, a.b), (b.a, b.b));
                assert!(
                    (a.probability - b.probability).abs() < 1e-12,
                    "p={p}: edge ({},{:?}) prob {} vs {}",
                    a.a,
                    a.b,
                    a.probability,
                    b.probability
                );
            }
            let n = graph.num_nodes() as u32;
            for x in 0..n {
                for y in 0..n {
                    let d_re = graph.distance(Some(x), Some(y));
                    let d_fr = fresh.distance(Some(x), Some(y));
                    assert!(
                        (d_re - d_fr).abs() < 1e-9,
                        "p={p}: dist({x},{y}) {d_re} vs {d_fr}"
                    );
                }
            }
        }
    }

    #[test]
    fn lower_probability_means_larger_weight() {
        assert!(weight_of(1e-4) > weight_of(1e-2));
        assert!(weight_of(0.499) < 0.01);
        assert!(weight_of(0.0).is_finite());
    }

    #[test]
    fn decompose_finds_boundary_plus_pair() {
        let mut known = std::collections::HashSet::new();
        known.insert((0u32, u32::MAX));
        known.insert((1u32, 2u32));
        let parts = decompose(&[0, 1, 2], &known).unwrap();
        assert_eq!(parts, vec![vec![0], vec![1, 2]]);
    }

    #[test]
    fn decompose_fails_when_no_edges_known() {
        let known = std::collections::HashSet::new();
        assert!(decompose(&[0, 1, 2], &known).is_none());
    }

    #[test]
    fn decompose_two_pairs() {
        let mut known = std::collections::HashSet::new();
        known.insert((0u32, 3u32));
        known.insert((1u32, 2u32));
        let parts = decompose(&[0, 1, 2, 3], &known).unwrap();
        assert_eq!(parts.len(), 2);
    }
}
