//! Per-basis decoding graphs derived from a detector error model.
//!
//! CSS decoding splits detectors into an X graph and a Z graph. Error
//! mechanisms become edges: a mechanism flipping two same-basis
//! detectors is an internal edge, one flipping a single detector is a
//! boundary edge, and rarer multi-detector mechanisms (hook errors) are
//! decomposed into known edges, mirroring Stim's `decompose_errors`.

use dqec_sim::circuit::{CheckBasis, Circuit};
use dqec_sim::dem::DetectorErrorModel;
use std::collections::HashMap;

/// Smallest probability an edge is allowed to carry (avoids infinite
/// weights).
const P_FLOOR: f64 = 1e-14;
/// Largest probability (keeps weights positive).
const P_CEIL: f64 = 0.4999;
/// Stand-in weight for unreachable node pairs.
const UNREACHABLE: f64 = 1e12;

/// One edge of a decoding graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphEdge {
    /// First endpoint (node id).
    pub a: u32,
    /// Second endpoint, or `None` for the virtual boundary.
    pub b: Option<u32>,
    /// Combined firing probability.
    pub probability: f64,
    /// Observables flipped when this edge fires.
    pub observables: u64,
}

/// Diagnostics accumulated while building a graph.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GraphDiagnostics {
    /// Mechanisms whose same-basis symptom had more than two detectors
    /// and were decomposed into existing edges.
    pub decomposed_mechanisms: usize,
    /// Mechanisms that could not be decomposed and fell back to
    /// consecutive pairing.
    pub undecomposable_mechanisms: usize,
    /// Parallel edges that disagreed on their observable mask.
    pub conflicting_observable_edges: usize,
    /// Mechanisms flipping a tracked observable with an empty symptom in
    /// both bases (true undetectable logical errors).
    pub undetectable_logical_mechanisms: usize,
}

/// A single-basis matching graph with cached all-pairs shortest paths.
#[derive(Debug, Clone)]
pub struct DecodingGraph {
    basis: CheckBasis,
    node_of_det: Vec<Option<u32>>,
    det_of_node: Vec<u32>,
    edges: Vec<GraphEdge>,
    /// Row-major `(n+1) x (n+1)` distances; index `n` is the boundary.
    dist: Vec<f64>,
    /// Observable parity along the corresponding shortest path.
    parity: Vec<u64>,
    diagnostics: GraphDiagnostics,
}

impl DecodingGraph {
    /// Builds the decoding graph for `basis` from a circuit's DEM,
    /// responsible for every observable.
    ///
    /// Prefer [`DecodingGraph::build_with_observables`]: in CSS decoding
    /// each observable must be owned by exactly one basis graph.
    pub fn build(circuit: &Circuit, dem: &DetectorErrorModel, basis: CheckBasis) -> Self {
        Self::build_with_observables(circuit, dem, basis, u64::MAX)
    }

    /// Determines which basis should own each observable: the basis
    /// whose detectors see *every* mechanism that flips it. (A logical-Z
    /// readout is flipped by X-type errors, which always trip Z checks;
    /// Y errors additionally trip X checks, so the X basis fails the
    /// "every mechanism" test.) Returns `(z_mask, x_mask)`.
    pub fn split_observables(circuit: &Circuit, dem: &DetectorErrorModel) -> (u64, u64) {
        let det_basis: Vec<CheckBasis> = circuit.detectors().iter().map(|d| d.basis).collect();
        let mut always_z = u64::MAX;
        let mut always_x = u64::MAX;
        for mech in &dem.mechanisms {
            if mech.observables == 0 {
                continue;
            }
            let mut has = [false, false]; // [z, x]
            for &d in &mech.detectors {
                match det_basis[d as usize] {
                    CheckBasis::Z => has[0] = true,
                    CheckBasis::X => has[1] = true,
                }
            }
            if !has[0] {
                always_z &= !mech.observables;
            }
            if !has[1] {
                always_x &= !mech.observables;
            }
        }
        // Own what you always see; ties go to Z; orphans (seen by
        // neither) also go to Z so they are at least counted once.
        let z_mask = always_z;
        let x_mask = always_x & !always_z;
        (z_mask | !(always_z | always_x), x_mask)
    }

    /// Builds the decoding graph for `basis`, owning only the
    /// observables in `obs_mask`.
    pub fn build_with_observables(
        circuit: &Circuit,
        dem: &DetectorErrorModel,
        basis: CheckBasis,
        obs_mask: u64,
    ) -> Self {
        let det_basis: Vec<CheckBasis> = circuit.detectors().iter().map(|d| d.basis).collect();
        let mut node_of_det: Vec<Option<u32>> = vec![None; det_basis.len()];
        let mut det_of_node: Vec<u32> = Vec::new();
        for (d, &b) in det_basis.iter().enumerate() {
            if b == basis {
                node_of_det[d] = Some(det_of_node.len() as u32);
                det_of_node.push(d as u32);
            }
        }
        let n = det_of_node.len();
        let mut diagnostics = GraphDiagnostics::default();

        // Key: (a, b) with a < b, or (a, u32::MAX) for boundary.
        type Key = (u32, u32);
        #[derive(Default)]
        struct Accum {
            p: f64,
            obs_votes: HashMap<u64, f64>,
        }
        let mut accum: HashMap<Key, Accum> = HashMap::new();
        let key_of = |dets: &[u32]| -> Key {
            match dets {
                [a] => (*a, u32::MAX),
                [a, b] => (*a.min(b), *a.max(b)),
                _ => unreachable!(),
            }
        };
        let add_edge = |nodes: &[u32], p: f64, obs: u64, accum: &mut HashMap<Key, Accum>| {
            let e = accum.entry(key_of(nodes)).or_default();
            e.p = e.p * (1.0 - p) + p * (1.0 - e.p);
            *e.obs_votes.entry(obs).or_insert(0.0) += p;
        };

        // Pass 1: simple mechanisms (<= 2 same-basis detectors).
        let mut deferred: Vec<(&Vec<u32>, u64, f64)> = Vec::new();
        for mech in &dem.mechanisms {
            let nodes: Vec<u32> = mech
                .detectors
                .iter()
                .filter_map(|&d| node_of_det[d as usize])
                .collect();
            // An observable flip is charged to the graph that detects it;
            // if neither basis sees the mechanism at all it is a genuine
            // undetectable logical error.
            if nodes.is_empty() {
                if mech.observables != 0 && mech.detectors.is_empty() {
                    diagnostics.undetectable_logical_mechanisms += 1;
                }
                continue;
            }
            let obs = mech.observables & obs_mask;
            match nodes.len() {
                1 | 2 => add_edge(&nodes, mech.probability, obs, &mut accum),
                _ => deferred.push((&mech.detectors, obs, mech.probability)),
            }
        }

        // Pass 2: decompose multi-detector mechanisms into known edges.
        let known: std::collections::HashSet<Key> = accum.keys().copied().collect();
        for (dets, obs, p) in deferred {
            let nodes: Vec<u32> = dets
                .iter()
                .filter_map(|&d| node_of_det[d as usize])
                .collect();
            if let Some(parts) = decompose(&nodes, &known) {
                diagnostics.decomposed_mechanisms += 1;
                // Assign the observable to the first component (the vote
                // mechanism resolves disagreements below).
                for (i, part) in parts.iter().enumerate() {
                    let part_obs = if i == 0 { obs } else { 0 };
                    add_edge(part, p, part_obs, &mut accum);
                }
            } else {
                diagnostics.undecomposable_mechanisms += 1;
                let mut i = 0;
                while i < nodes.len() {
                    let part: Vec<u32> = nodes[i..(i + 2).min(nodes.len())].to_vec();
                    let part_obs = if i == 0 { obs } else { 0 };
                    add_edge(&part, p, part_obs, &mut accum);
                    i += 2;
                }
            }
        }

        // Finalize edges: pick the dominant observable mask per edge.
        let mut edges = Vec::with_capacity(accum.len());
        for ((a, b), acc) in accum {
            let (&obs, _) = acc
                .obs_votes
                .iter()
                .max_by(|x, y| x.1.partial_cmp(y.1).expect("finite votes"))
                .expect("at least one vote");
            if acc.obs_votes.len() > 1 {
                diagnostics.conflicting_observable_edges += 1;
            }
            edges.push(GraphEdge {
                a,
                b: (b != u32::MAX).then_some(b),
                probability: acc.p,
                observables: obs,
            });
        }
        edges.sort_by_key(|e| (e.a, e.b));

        let (dist, parity) = all_pairs(n, &edges);
        DecodingGraph {
            basis,
            node_of_det,
            det_of_node,
            edges,
            dist,
            parity,
            diagnostics,
        }
    }

    /// The basis this graph decodes.
    pub fn basis(&self) -> CheckBasis {
        self.basis
    }

    /// The number of real (non-boundary) nodes.
    pub fn num_nodes(&self) -> usize {
        self.det_of_node.len()
    }

    /// The edges of the graph.
    pub fn edges(&self) -> &[GraphEdge] {
        &self.edges
    }

    /// Build-time diagnostics.
    pub fn diagnostics(&self) -> &GraphDiagnostics {
        &self.diagnostics
    }

    /// Maps a detector id to this graph's node id (if it has this basis).
    pub fn node_of_detector(&self, det: u32) -> Option<u32> {
        self.node_of_det.get(det as usize).copied().flatten()
    }

    /// Shortest-path weight between two nodes (`None` = boundary).
    pub fn distance(&self, a: Option<u32>, b: Option<u32>) -> f64 {
        let n = self.num_nodes();
        let ia = a.map_or(n, |x| x as usize);
        let ib = b.map_or(n, |x| x as usize);
        self.dist[ia * (n + 1) + ib]
    }

    /// Observable parity along the shortest path between two nodes.
    pub fn path_observables(&self, a: Option<u32>, b: Option<u32>) -> u64 {
        let n = self.num_nodes();
        let ia = a.map_or(n, |x| x as usize);
        let ib = b.map_or(n, |x| x as usize);
        self.parity[ia * (n + 1) + ib]
    }

    /// The graphlike circuit-level distance for observable `obs`: the
    /// minimum number of error mechanisms (edges) whose combined
    /// symptom is trivial but which flip the observable — i.e. the
    /// shortest undetectable logical error under this noise model.
    ///
    /// Computed by Dijkstra on the parity-doubled graph with unit edge
    /// weights: an undetectable logical is a closed walk (through the
    /// boundary or around a cycle) with odd observable parity. Returns
    /// `None` when no such error exists in the graph.
    pub fn graphlike_distance(&self, obs: u32) -> Option<u32> {
        use std::collections::BinaryHeap;
        let n = self.num_nodes() + 1; // + boundary
        let mut adj: Vec<Vec<(usize, bool)>> = vec![Vec::new(); n];
        for e in &self.edges {
            let b = e.b.map_or(n - 1, |x| x as usize);
            let flips = (e.observables >> obs) & 1 == 1;
            adj[e.a as usize].push((b, flips));
            adj[b].push((e.a as usize, flips));
        }
        // State (node, parity); start at every node with parity 0 and
        // look for returning to the same node with parity 1. Starting
        // from the boundary covers boundary-to-boundary strings; cycle
        // cases are covered by starting from each edge's endpoint.
        let mut best: Option<u32> = None;
        for start in 0..n {
            let mut dist = vec![[u32::MAX; 2]; n];
            dist[start][0] = 0;
            let mut heap: BinaryHeap<std::cmp::Reverse<(u32, usize, u8)>> = BinaryHeap::new();
            heap.push(std::cmp::Reverse((0, start, 0)));
            while let Some(std::cmp::Reverse((d, v, p))) = heap.pop() {
                if d > dist[v][p as usize] {
                    continue;
                }
                for &(w, flips) in &adj[v] {
                    let np = p ^ (flips as u8);
                    let nd = d + 1;
                    if nd < dist[w][np as usize] {
                        dist[w][np as usize] = nd;
                        heap.push(std::cmp::Reverse((nd, w, np)));
                    }
                }
            }
            if dist[start][1] != u32::MAX {
                best = Some(best.map_or(dist[start][1], |b| b.min(dist[start][1])));
            }
        }
        best
    }
}

/// Edge probability -> matching weight.
fn weight_of(p: f64) -> f64 {
    let p = p.clamp(P_FLOOR, P_CEIL);
    ((1.0 - p) / p).ln()
}

/// Tries to split `nodes` (sorted, len >= 3) into parts that all exist
/// as known edges; parts are pairs or boundary singletons.
fn decompose(
    nodes: &[u32],
    known: &std::collections::HashSet<(u32, u32)>,
) -> Option<Vec<Vec<u32>>> {
    if nodes.is_empty() {
        return Some(Vec::new());
    }
    let first = nodes[0];
    // Option A: first matches the boundary.
    if known.contains(&(first, u32::MAX)) {
        let rest: Vec<u32> = nodes[1..].to_vec();
        if let Some(mut parts) = decompose(&rest, known) {
            parts.insert(0, vec![first]);
            return Some(parts);
        }
    }
    // Option B: pair first with a later node.
    for i in 1..nodes.len() {
        let other = nodes[i];
        let key = (first.min(other), first.max(other));
        if known.contains(&key) {
            let rest: Vec<u32> = nodes[1..].iter().copied().filter(|&x| x != other).collect();
            if let Some(mut parts) = decompose(&rest, known) {
                parts.insert(0, vec![first, other]);
                return Some(parts);
            }
        }
    }
    None
}

/// All-pairs Dijkstra over `n` real nodes plus the boundary (index `n`).
fn all_pairs(n: usize, edges: &[GraphEdge]) -> (Vec<f64>, Vec<u64>) {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let total = n + 1;
    let mut adj: Vec<Vec<(u32, f64, u64)>> = vec![Vec::new(); total];
    for e in edges {
        let w = weight_of(e.probability);
        let b = e.b.map_or(n, |x| x as usize);
        adj[e.a as usize].push((b as u32, w, e.observables));
        adj[b].push((e.a, w, e.observables));
    }
    let mut dist = vec![UNREACHABLE; total * total];
    let mut parity = vec![0u64; total * total];

    #[derive(PartialEq)]
    struct HeapItem(f64, u32);
    impl Eq for HeapItem {}
    impl PartialOrd for HeapItem {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for HeapItem {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0
                .partial_cmp(&other.0)
                .expect("finite weights")
                .then(self.1.cmp(&other.1))
        }
    }

    let mut d = vec![f64::INFINITY; total];
    let mut par = vec![0u64; total];
    let mut done = vec![false; total];
    for src in 0..total {
        d.fill(f64::INFINITY);
        par.fill(0);
        done.fill(false);
        d[src] = 0.0;
        let mut heap: BinaryHeap<Reverse<HeapItem>> = BinaryHeap::new();
        heap.push(Reverse(HeapItem(0.0, src as u32)));
        while let Some(Reverse(HeapItem(du, u))) = heap.pop() {
            let u = u as usize;
            if done[u] {
                continue;
            }
            done[u] = true;
            for &(v, w, obs) in &adj[u] {
                let v = v as usize;
                let nd = du + w;
                if nd < d[v] {
                    d[v] = nd;
                    par[v] = par[u] ^ obs;
                    heap.push(Reverse(HeapItem(nd, v as u32)));
                }
            }
        }
        for v in 0..total {
            dist[src * total + v] = if d[v].is_finite() { d[v] } else { UNREACHABLE };
            parity[src * total + v] = par[v];
        }
    }
    (dist, parity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqec_sim::circuit::Noise1;

    /// A 3-qubit repetition code measured for `rounds` rounds, with a
    /// data X error probability `p` before each round.
    fn repetition_circuit(rounds: usize, p: f64) -> Circuit {
        let mut c = Circuit::new(5); // data 0,1,2; ancilla 3,4
        for q in 0..5 {
            c.reset(q).unwrap();
        }
        let mut prev: Option<[dqec_sim::MeasRecord; 2]> = None;
        for t in 0..rounds {
            for q in 0..3 {
                c.noise1(Noise1::XError, q, p).unwrap();
            }
            c.cx(0, 3).unwrap();
            c.cx(1, 3).unwrap();
            c.cx(1, 4).unwrap();
            c.cx(2, 4).unwrap();
            let m3 = c.measure_reset(3).unwrap();
            let m4 = c.measure_reset(4).unwrap();
            match prev {
                None => {
                    c.add_detector(&[m3], CheckBasis::Z, (0, 0, t as i32))
                        .unwrap();
                    c.add_detector(&[m4], CheckBasis::Z, (1, 0, t as i32))
                        .unwrap();
                }
                Some([p3, p4]) => {
                    c.add_detector(&[m3, p3], CheckBasis::Z, (0, 0, t as i32))
                        .unwrap();
                    c.add_detector(&[m4, p4], CheckBasis::Z, (1, 0, t as i32))
                        .unwrap();
                }
            }
            prev = Some([m3, m4]);
        }
        // Final data readout.
        let d0 = c.measure(0).unwrap();
        let d1 = c.measure(1).unwrap();
        let d2 = c.measure(2).unwrap();
        let [p3, p4] = prev.unwrap();
        c.add_detector(&[d0, d1, p3], CheckBasis::Z, (0, 0, rounds as i32))
            .unwrap();
        c.add_detector(&[d1, d2, p4], CheckBasis::Z, (1, 0, rounds as i32))
            .unwrap();
        c.include_observable(0, &[d0]).unwrap();
        c
    }

    #[test]
    fn repetition_graph_structure() {
        let c = repetition_circuit(2, 0.01);
        let dem = DetectorErrorModel::from_circuit(&c);
        let g = DecodingGraph::build(&c, &dem, CheckBasis::Z);
        assert_eq!(g.num_nodes(), 6); // 2 checks x 3 detector layers
        assert!(g.diagnostics().undecomposable_mechanisms == 0);
        // Boundary edges must exist (X on data 0 or data 2 flips one check).
        assert!(g.edges().iter().any(|e| e.b.is_none()));
        // Observable-carrying edges exist (data 0 errors flip obs 0).
        assert!(g.edges().iter().any(|e| e.observables == 1));
    }

    #[test]
    fn distances_are_symmetric_and_triangle() {
        let c = repetition_circuit(3, 0.01);
        let dem = DetectorErrorModel::from_circuit(&c);
        let g = DecodingGraph::build(&c, &dem, CheckBasis::Z);
        let n = g.num_nodes() as u32;
        for a in 0..n {
            assert_eq!(g.distance(Some(a), Some(a)), 0.0);
            for b in 0..n {
                let dab = g.distance(Some(a), Some(b));
                let dba = g.distance(Some(b), Some(a));
                assert!((dab - dba).abs() < 1e-9);
                let via_boundary = g.distance(Some(a), None) + g.distance(None, Some(b));
                assert!(dab <= via_boundary + 1e-9, "triangle through boundary");
            }
        }
    }

    #[test]
    fn lower_probability_means_larger_weight() {
        assert!(weight_of(1e-4) > weight_of(1e-2));
        assert!(weight_of(0.499) < 0.01);
        assert!(weight_of(0.0).is_finite());
    }

    #[test]
    fn decompose_finds_boundary_plus_pair() {
        let mut known = std::collections::HashSet::new();
        known.insert((0u32, u32::MAX));
        known.insert((1u32, 2u32));
        let parts = decompose(&[0, 1, 2], &known).unwrap();
        assert_eq!(parts, vec![vec![0], vec![1, 2]]);
    }

    #[test]
    fn decompose_fails_when_no_edges_known() {
        let known = std::collections::HashSet::new();
        assert!(decompose(&[0, 1, 2], &known).is_none());
    }

    #[test]
    fn decompose_two_pairs() {
        let mut known = std::collections::HashSet::new();
        known.insert((0u32, 3u32));
        known.insert((1u32, 2u32));
        let parts = decompose(&[0, 1, 2, 3], &known).unwrap();
        assert_eq!(parts.len(), 2);
    }
}
