//! Syndrome-measurement circuit generation for adapted patches.
//!
//! Builds Stim-style circuits (on the `dqec-sim` IR) implementing the
//! paper's measurement schedule: full stabilizers every round; around
//! each defect cluster, X and Z gauge operators measured in alternating
//! blocks whose length equals the cluster diameter (XZXZ… for single
//! cells, XXZZ… for larger clusters, following Strikis et al.).
//!
//! Detectors: full faces compare consecutive rounds; gauge operators
//! compare individually within a block and as super-stabilizer products
//! across opposite-basis blocks; first/final rounds close against the
//! |0…0> initialization and the transversal Z readout.

use crate::adapt::AdaptedPatch;
use crate::coords::Coord;
use crate::error::CoreError;
use crate::graphs::CheckGraph;
use dqec_sim::circuit::{CheckBasis, Circuit, MeasRecord};
use dqec_sim::SimError;
use std::collections::BTreeMap;

/// Maps a simulator rejection into a typed [`CoreError`], tagging the
/// schedule stage it came from.
fn build_err(stage: &'static str) -> impl Fn(SimError) -> CoreError {
    move |e| CoreError::CircuitBuild {
        detail: format!("{stage}: {e}"),
    }
}

/// A generated experiment circuit (noiseless; apply a
/// [`dqec_sim::NoiseModel`] before sampling).
#[derive(Debug, Clone)]
pub struct ExperimentCircuit {
    /// The clean circuit with detectors and observable 0 defined.
    pub circuit: Circuit,
    /// Mapping from lattice coordinate to circuit qubit index.
    pub qubit_of: BTreeMap<Coord, u32>,
    /// Number of syndrome-measurement rounds.
    pub rounds: u32,
}

/// The kind of experiment to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Experiment {
    /// Z-basis memory: observable = logical Z readout.
    MemoryZ,
    /// Stability: observable = product of all X checks at one round.
    Stability,
}

/// Builds a Z-basis memory experiment: initialize |0…0>, run `rounds`
/// syndrome rounds, read all data in Z, track logical Z as observable 0.
///
/// # Errors
///
/// Fails when the patch is degenerate, no gauge-free logical-Z path
/// exists, or `rounds` is too small for the gauge schedule (two full
/// blocks are required when clusters exist).
///
/// # Examples
///
/// ```
/// use dqec_core::adapt::AdaptedPatch;
/// use dqec_core::circuit_gen::memory_z;
/// use dqec_core::defect::DefectSet;
/// use dqec_core::layout::PatchLayout;
/// use dqec_sim::ReferenceSample;
///
/// let patch = AdaptedPatch::new(PatchLayout::memory(3), &DefectSet::new());
/// let exp = memory_z(&patch, 3)?;
/// // All detectors are deterministic in the noiseless circuit.
/// assert!(ReferenceSample::violated_detectors(&exp.circuit).is_empty());
/// # Ok::<(), dqec_core::CoreError>(())
/// ```
pub fn memory_z(patch: &AdaptedPatch, rounds: u32) -> Result<ExperimentCircuit, CoreError> {
    build(patch, rounds, Experiment::MemoryZ)
}

/// Builds a stability experiment: initialize |0…0>, run `rounds` rounds,
/// read data in Z; observable 0 is the product of every X check at the
/// final round (deterministically +1 because the X checks multiply to
/// identity on an all-X-boundary patch).
///
/// # Errors
///
/// Fails when the patch is degenerate, the live X checks do not
/// multiply to identity, or `rounds` is too small for the schedule.
pub fn stability(patch: &AdaptedPatch, rounds: u32) -> Result<ExperimentCircuit, CoreError> {
    build(patch, rounds, Experiment::Stability)
}

fn build(
    patch: &AdaptedPatch,
    rounds: u32,
    experiment: Experiment,
) -> Result<ExperimentCircuit, CoreError> {
    if !patch.is_valid() {
        let reason = format!("{:?}", patch.status());
        return Err(CoreError::DegeneratePatch { reason });
    }
    let max_reps = patch
        .clusters()
        .iter()
        .filter(|c| c.has_gauges())
        .map(|c| c.repetitions)
        .max();
    let needed = max_reps.map_or(1, |r| 2 * r);
    if rounds < needed {
        return Err(CoreError::TooFewRounds {
            requested: rounds,
            needed,
        });
    }

    // For memory: route the logical-Z observable through a gauge-free
    // shortest path of the X-check graph (Z chains connect the two
    // Z-boundary voids).
    let obs_path: Vec<Coord> = match experiment {
        Experiment::MemoryZ => CheckGraph::build(patch, CheckBasis::X)?
            .gauge_free_logical_support()
            .ok_or(CoreError::NoObservablePath)?,
        Experiment::Stability => {
            // Verify the X checks multiply to identity.
            let mut parity: BTreeMap<Coord, usize> = BTreeMap::new();
            for f in all_live_faces(patch) {
                if f.face_basis() == CheckBasis::X {
                    for q in patch.face_live_support(f) {
                        *parity.entry(q).or_insert(0) += 1;
                    }
                }
            }
            if let Some((q, _)) = parity.iter().find(|(_, &n)| n % 2 == 1) {
                return Err(CoreError::MalformedSyndromeGraph {
                    detail: format!("X checks do not multiply to identity (qubit {q})"),
                });
            }
            Vec::new()
        }
    };

    // Qubit numbering: live data first, then live faces.
    let live_data = patch.live_data();
    let live_faces: Vec<Coord> = all_live_faces(patch);
    let mut qubit_of: BTreeMap<Coord, u32> = BTreeMap::new();
    for (i, &c) in live_data.iter().chain(live_faces.iter()).enumerate() {
        qubit_of.insert(c, i as u32);
    }
    let mut circuit = Circuit::new(qubit_of.len() as u32);
    let q = |c: Coord| qubit_of[&c];

    // Initialize all qubits in |0>.
    for &c in live_data.iter().chain(live_faces.iter()) {
        circuit.reset(q(c)).map_err(build_err("initial reset"))?;
    }
    circuit.tick();

    // Gauge bookkeeping.
    let cluster_basis = |cluster: &crate::adapt::Cluster, t: u32| -> CheckBasis {
        if (t / cluster.repetitions).is_multiple_of(2) {
            CheckBasis::Z
        } else {
            CheckBasis::X
        }
    };
    let mut prev_rec: BTreeMap<Coord, MeasRecord> = BTreeMap::new();
    let mut prev_round: BTreeMap<Coord, u32> = BTreeMap::new();

    for t in 0..rounds {
        // Which faces are measured this round.
        let mut measured: Vec<Coord> = patch.full_faces().to_vec();
        for cluster in patch.clusters() {
            if !cluster.has_gauges() {
                continue;
            }
            let basis = cluster_basis(cluster, t);
            let gauges = match basis {
                CheckBasis::X => &cluster.x_gauges,
                CheckBasis::Z => &cluster.z_gauges,
            };
            measured.extend(gauges.iter().copied());
        }
        measured.sort_unstable();

        // Ancilla preparation.
        for &f in &measured {
            if t > 0 {
                // measure_reset below already reset ancillas at t-1; but
                // gauge ancillas idle in opposite blocks keep their
                // reset state, so nothing to do here.
            }
            if f.face_basis() == CheckBasis::X {
                circuit.h(q(f)).map_err(build_err("ancilla H"))?;
            }
        }
        circuit.tick();
        // Four CX steps; the standard interleaving avoids data conflicts
        // and hook-error distance loss: X faces touch NE,NW,SE,SW; Z
        // faces NE,SE,NW,SW (y grows downward).
        let x_order = [(1, -1), (-1, -1), (1, 1), (-1, 1)];
        let z_order = [(1, -1), (1, 1), (-1, -1), (-1, 1)];
        for step in 0..4 {
            for &f in &measured {
                let (dx, dy) = match f.face_basis() {
                    CheckBasis::X => x_order[step],
                    CheckBasis::Z => z_order[step],
                };
                let d = Coord::new(f.x + dx, f.y + dy);
                if patch.is_live_data(d) {
                    match f.face_basis() {
                        CheckBasis::X => circuit.cx(q(f), q(d)).map_err(build_err("CX step"))?,
                        CheckBasis::Z => circuit.cx(q(d), q(f)).map_err(build_err("CX step"))?,
                    }
                }
            }
            circuit.tick();
        }
        for &f in &measured {
            if f.face_basis() == CheckBasis::X {
                circuit.h(q(f)).map_err(build_err("ancilla un-H"))?;
            }
        }
        circuit.tick();
        // Measure (and reset for reuse).
        let mut this_rec: BTreeMap<Coord, MeasRecord> = BTreeMap::new();
        for &f in &measured {
            let m = circuit
                .measure_reset(q(f))
                .map_err(build_err("ancilla readout"))?;
            this_rec.insert(f, m);
        }
        circuit.tick();

        // Detectors for full faces.
        for &f in patch.full_faces() {
            let m = this_rec[&f];
            let coord = (f.x, f.y, t as i32);
            match (f.face_basis(), prev_rec.get(&f)) {
                (CheckBasis::Z, None) => {
                    circuit
                        .add_detector(&[m], CheckBasis::Z, coord)
                        .map_err(build_err("first-round detector"))?;
                }
                (CheckBasis::X, None) => {}
                (basis, Some(&p)) => {
                    circuit
                        .add_detector(&[m, p], basis, coord)
                        .map_err(build_err("round-pair detector"))?;
                }
            }
        }
        // Detectors for gauges.
        for cluster in patch.clusters() {
            if !cluster.has_gauges() {
                continue;
            }
            let basis = cluster_basis(cluster, t);
            let gauges = match basis {
                CheckBasis::X => &cluster.x_gauges,
                CheckBasis::Z => &cluster.z_gauges,
            };
            let block_start = gauges
                .iter()
                .any(|g| prev_round.get(g).is_none_or(|&r| r != t.wrapping_sub(1)));
            if !block_start {
                // Within a block: individual repeats.
                for &g in gauges {
                    let coord = (g.x, g.y, t as i32);
                    circuit
                        .add_detector(&[this_rec[&g], prev_rec[&g]], basis, coord)
                        .map_err(build_err("gauge repeat detector"))?;
                }
            } else if basis == CheckBasis::Z && !prev_rec.contains_key(&gauges[0]) {
                // First Z block: each Z gauge is deterministic in |0…0>.
                for &g in gauges {
                    circuit
                        .add_detector(&[this_rec[&g]], basis, (g.x, g.y, t as i32))
                        .map_err(build_err("first Z-block detector"))?;
                }
            } else if prev_rec.contains_key(&gauges[0]) {
                // New block with an earlier same-basis block: compare
                // super-stabilizer products.
                let mut records: Vec<MeasRecord> = Vec::new();
                for &g in gauges {
                    records.push(this_rec[&g]);
                    records.push(prev_rec[&g]);
                }
                let anchor = gauges[0];
                circuit
                    .add_detector(&records, basis, (anchor.x, anchor.y, t as i32))
                    .map_err(build_err("super-stabilizer detector"))?;
            }
            // else: first X block — X gauges start out random.
        }
        for (f, m) in this_rec {
            prev_rec.insert(f, m);
            prev_round.insert(f, t);
        }
    }

    // Final transversal Z readout of the data qubits.
    let mut data_rec: BTreeMap<Coord, MeasRecord> = BTreeMap::new();
    for &d in &live_data {
        let m = circuit.measure(q(d)).map_err(build_err("data readout"))?;
        data_rec.insert(d, m);
    }
    // Closing detectors for Z-type checks.
    for &f in patch.full_faces() {
        if f.face_basis() != CheckBasis::Z {
            continue;
        }
        let mut records: Vec<MeasRecord> = patch
            .face_live_support(f)
            .iter()
            .map(|d| data_rec[d])
            .collect();
        records.push(prev_rec[&f]);
        circuit
            .add_detector(&records, CheckBasis::Z, (f.x, f.y, rounds as i32))
            .map_err(build_err("closing detector"))?;
    }
    for cluster in patch.clusters() {
        if cluster.z_gauges.is_empty() {
            continue;
        }
        let last_basis = cluster_basis(cluster, rounds - 1);
        if last_basis == CheckBasis::Z {
            // Ended on a Z block: per-gauge closure.
            for &g in &cluster.z_gauges {
                let mut records: Vec<MeasRecord> = patch
                    .face_live_support(g)
                    .iter()
                    .map(|d| data_rec[d])
                    .collect();
                records.push(prev_rec[&g]);
                circuit
                    .add_detector(&records, CheckBasis::Z, (g.x, g.y, rounds as i32))
                    .map_err(build_err("closing gauge detector"))?;
            }
        } else {
            // Ended on an X block: close the Z super-stabilizer product.
            let mut records: Vec<MeasRecord> = Vec::new();
            for &g in &cluster.z_gauges {
                records.extend(patch.face_live_support(g).iter().map(|d| data_rec[d]));
                records.push(prev_rec[&g]);
            }
            let anchor = cluster.z_gauges[0];
            circuit
                .add_detector(&records, CheckBasis::Z, (anchor.x, anchor.y, rounds as i32))
                .map_err(build_err("closing super-stabilizer detector"))?;
        }
    }

    // Observable.
    match experiment {
        Experiment::MemoryZ => {
            let records: Vec<MeasRecord> = obs_path.iter().map(|d| data_rec[d]).collect();
            circuit
                .include_observable(0, &records)
                .map_err(build_err("memory observable"))?;
        }
        Experiment::Stability => {
            let mut records: Vec<MeasRecord> = Vec::new();
            for &f in patch.full_faces() {
                if f.face_basis() == CheckBasis::X {
                    records.push(prev_rec[&f]);
                }
            }
            for cluster in patch.clusters() {
                for &g in &cluster.x_gauges {
                    records.push(*prev_rec.get(&g).ok_or(CoreError::TooFewRounds {
                        requested: rounds,
                        needed: 2 * cluster.repetitions,
                    })?);
                }
            }
            circuit
                .include_observable(0, &records)
                .map_err(build_err("stability observable"))?;
        }
    }

    Ok(ExperimentCircuit {
        circuit,
        qubit_of,
        rounds,
    })
}

fn all_live_faces(patch: &AdaptedPatch) -> Vec<Coord> {
    let mut faces: Vec<Coord> = patch.full_faces().to_vec();
    for cluster in patch.clusters() {
        faces.extend(cluster.x_gauges.iter().copied());
        faces.extend(cluster.z_gauges.iter().copied());
    }
    faces.sort_unstable();
    faces
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defect::DefectSet;
    use crate::layout::PatchLayout;
    use dqec_sim::ReferenceSample;

    fn check_deterministic(patch: &AdaptedPatch, rounds: u32) {
        let exp = memory_z(patch, rounds).expect("circuit builds");
        let bad = ReferenceSample::violated_detectors(&exp.circuit);
        assert!(bad.is_empty(), "non-deterministic detectors: {bad:?}");
    }

    #[test]
    fn defect_free_memory_is_deterministic() {
        for l in [3u32, 5] {
            let patch = AdaptedPatch::new(PatchLayout::memory(l), &DefectSet::new());
            check_deterministic(&patch, l);
        }
    }

    #[test]
    fn defect_free_detector_count() {
        // d rounds: Z checks give (d^2-1)/2 * (rounds+1) detectors
        // (first round + comparisons + final closure); X checks give
        // (d^2-1)/2 * (rounds-1).
        let l = 3u32;
        let rounds = 4u32;
        let patch = AdaptedPatch::new(PatchLayout::memory(l), &DefectSet::new());
        let exp = memory_z(&patch, rounds).unwrap();
        let half = ((l * l - 1) / 2) as usize;
        let expected = half * (rounds as usize + 1) + half * (rounds as usize - 1);
        assert_eq!(exp.circuit.detectors().len(), expected);
        assert_eq!(exp.circuit.observables().len(), 1);
    }

    #[test]
    fn single_data_defect_memory_is_deterministic() {
        let mut d = DefectSet::new();
        d.add_data(Coord::new(5, 5));
        let patch = AdaptedPatch::new(PatchLayout::memory(5), &d);
        check_deterministic(&patch, 4);
    }

    #[test]
    fn syndrome_defect_memory_is_deterministic() {
        let mut d = DefectSet::new();
        d.add_synd(Coord::new(6, 6));
        let patch = AdaptedPatch::new(PatchLayout::memory(7), &d);
        // repetitions = 2 -> blocks ZZXXZZ...
        check_deterministic(&patch, 8);
    }

    #[test]
    fn boundary_defect_memory_is_deterministic() {
        let mut d = DefectSet::new();
        d.add_data(Coord::new(5, 1));
        let patch = AdaptedPatch::new(PatchLayout::memory(5), &d);
        check_deterministic(&patch, 5);
    }

    #[test]
    fn too_few_rounds_is_an_error() {
        let mut d = DefectSet::new();
        d.add_synd(Coord::new(6, 6));
        let patch = AdaptedPatch::new(PatchLayout::memory(7), &d);
        assert!(matches!(
            memory_z(&patch, 2),
            Err(CoreError::TooFewRounds { needed: 4, .. })
        ));
    }

    #[test]
    fn stability_circuit_is_deterministic() {
        let patch = AdaptedPatch::new(PatchLayout::stability(4, 4), &DefectSet::new());
        let exp = stability(&patch, 4).unwrap();
        let bad = ReferenceSample::violated_detectors(&exp.circuit);
        assert!(bad.is_empty(), "non-deterministic detectors: {bad:?}");
        // The observable itself must be deterministic: compare across
        // differently-resolved reference runs.
        let base = ReferenceSample::of(&exp.circuit);
        let alt = ReferenceSample::of_choosing(&exp.circuit, |i| i % 2 == 1);
        let parity = |r: &ReferenceSample| {
            exp.circuit.observables()[0]
                .iter()
                .fold(false, |acc, &m| acc ^ r.outcomes[m as usize])
        };
        assert_eq!(
            parity(&base),
            parity(&alt),
            "stability observable must be deterministic"
        );
        assert!(!parity(&base), "product of all X checks is +1");
    }

    #[test]
    fn stability_with_center_defect_is_deterministic() {
        let mut d = DefectSet::new();
        d.add_data(Coord::new(5, 5));
        let patch = AdaptedPatch::new(PatchLayout::stability(6, 6), &d);
        let exp = stability(&patch, 6).unwrap();
        let bad = ReferenceSample::violated_detectors(&exp.circuit);
        assert!(bad.is_empty(), "non-deterministic detectors: {bad:?}");
    }

    #[test]
    fn degenerate_patch_is_rejected() {
        let mut d = DefectSet::new();
        for site in PatchLayout::memory(3).data_sites() {
            d.add_data(site);
        }
        let patch = AdaptedPatch::new(PatchLayout::memory(3), &d);
        assert!(matches!(
            memory_z(&patch, 3),
            Err(CoreError::DegeneratePatch { .. })
        ));
    }

    #[test]
    fn random_defective_circuits_are_deterministic() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let layout = PatchLayout::memory(7);
        let data: Vec<Coord> = layout.data_sites().collect();
        let faces: Vec<Coord> = layout.face_sites().collect();
        let mut built = 0;
        for _ in 0..60 {
            let mut d = DefectSet::new();
            for &c in &data {
                if rng.gen_bool(0.03) {
                    d.add_data(c);
                }
            }
            for &c in &faces {
                if rng.gen_bool(0.03) {
                    d.add_synd(c);
                }
            }
            let patch = AdaptedPatch::new(PatchLayout::memory(7), &d);
            if !patch.is_valid() {
                continue;
            }
            let reps = patch
                .clusters()
                .iter()
                .filter(|c| c.has_gauges())
                .map(|c| c.repetitions)
                .max()
                .unwrap_or(1);
            match memory_z(&patch, (2 * reps).max(4)) {
                Ok(exp) => {
                    built += 1;
                    let bad = ReferenceSample::violated_detectors(&exp.circuit);
                    assert!(bad.is_empty(), "bad detectors for {d:?}: {bad:?}");
                }
                Err(CoreError::NoObservablePath) => {}
                Err(e) => panic!("unexpected error for {d:?}: {e}"),
            }
        }
        assert!(built > 20, "only {built} circuits built");
    }
}

#[cfg(test)]
mod closure_tests {
    use super::*;
    use crate::defect::DefectSet;
    use crate::layout::PatchLayout;
    use dqec_sim::ReferenceSample;

    /// Rounds chosen so the schedule ends mid-X-block: the final Z
    /// closure must use the super-stabilizer product branch.
    #[test]
    fn final_readout_closes_through_x_block() {
        let mut d = DefectSet::new();
        d.add_synd(Coord::new(6, 6)); // reps = 2: blocks ZZXXZZ...
        let patch = AdaptedPatch::new(PatchLayout::memory(7), &d);
        for rounds in [4u32, 5, 6, 7, 8] {
            // rounds=4 ends after XX; rounds=6 after ZZ; both must close.
            let exp = memory_z(&patch, rounds).unwrap();
            let bad = ReferenceSample::violated_detectors(&exp.circuit);
            assert!(bad.is_empty(), "rounds={rounds}: {bad:?}");
        }
    }

    /// Alternating single-cell schedule (reps = 1) across many rounds.
    #[test]
    fn alternating_schedule_all_roundcounts() {
        let mut d = DefectSet::new();
        d.add_data(Coord::new(5, 5));
        let patch = AdaptedPatch::new(PatchLayout::memory(5), &d);
        for rounds in 2..=7u32 {
            let exp = memory_z(&patch, rounds).unwrap();
            let bad = ReferenceSample::violated_detectors(&exp.circuit);
            assert!(bad.is_empty(), "rounds={rounds}: {bad:?}");
        }
    }

    /// Two clusters with different repetition counts coexist.
    #[test]
    fn mixed_cluster_schedules_are_deterministic() {
        let mut d = DefectSet::new();
        d.add_data(Coord::new(5, 5)); // reps 1
        d.add_synd(Coord::new(12, 12)); // reps 2
        let patch = AdaptedPatch::new(PatchLayout::memory(9), &d);
        assert!(patch.is_valid());
        let exp = memory_z(&patch, 8).unwrap();
        let bad = ReferenceSample::violated_detectors(&exp.circuit);
        assert!(bad.is_empty(), "{bad:?}");
    }

    /// Every qubit is touched at most once per CX step (the interleaved
    /// dance must never double-book a data qubit).
    #[test]
    fn cx_steps_never_conflict() {
        use dqec_sim::circuit::Op;
        let mut d = DefectSet::new();
        d.add_synd(Coord::new(6, 6));
        let patch = AdaptedPatch::new(PatchLayout::memory(7), &d);
        let exp = memory_z(&patch, 4).unwrap();
        let mut in_step: std::collections::HashSet<u32> = Default::default();
        for op in exp.circuit.ops() {
            match op {
                Op::Tick => in_step.clear(),
                Op::Gate2 { a, b, .. } => {
                    assert!(in_step.insert(*a), "qubit {a} double-booked in a step");
                    assert!(in_step.insert(*b), "qubit {b} double-booked in a step");
                }
                _ => {}
            }
        }
    }
}
