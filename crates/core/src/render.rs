//! ASCII rendering of adapted patches, for diagnostics and examples.
//!
//! Legend: `.` active data qubit, `#` disabled site, `Z`/`X` full
//! stabilizers, `z`/`x` gauge operators, space for sites outside the
//! layout.

use crate::adapt::AdaptedPatch;
use crate::coords::Coord;
use dqec_sim::circuit::CheckBasis;

/// Renders the patch as an ASCII map, one lattice row per line.
///
/// # Examples
///
/// ```
/// use dqec_core::adapt::AdaptedPatch;
/// use dqec_core::defect::DefectSet;
/// use dqec_core::layout::PatchLayout;
/// use dqec_core::render::render_patch;
///
/// let patch = AdaptedPatch::new(PatchLayout::memory(3), &DefectSet::new());
/// let art = render_patch(&patch);
/// assert!(art.contains('Z') && art.contains('X') && art.contains('.'));
/// ```
pub fn render_patch(patch: &AdaptedPatch) -> String {
    let layout = patch.layout();
    let (w, h) = (2 * layout.width() as i32, 2 * layout.height() as i32);
    let mut out = String::new();
    for y in 0..=h {
        for x in 0..=w {
            out.push(site_char(patch, Coord::new(x, y)));
        }
        // Trim trailing spaces for stable snapshots.
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    }
    out
}

fn site_char(patch: &AdaptedPatch, c: Coord) -> char {
    let layout = patch.layout();
    if c.is_data_site() && layout.contains_data(c) {
        if patch.is_live_data(c) {
            '.'
        } else {
            '#'
        }
    } else if c.is_face_site() && layout.contains_face(c) {
        if !patch.is_live_face(c) {
            return '#';
        }
        let gauge = patch.gauge_cluster_of(c).is_some();
        match (c.face_basis(), gauge) {
            (CheckBasis::Z, false) => 'Z',
            (CheckBasis::Z, true) => 'z',
            (CheckBasis::X, false) => 'X',
            (CheckBasis::X, true) => 'x',
        }
    } else {
        ' '
    }
}

/// Summarizes the patch in one line: size, live counts, clusters,
/// status.
pub fn summarize_patch(patch: &AdaptedPatch) -> String {
    format!(
        "{}x{} patch: {} live data, {} full checks, {} gauge clusters, {}",
        patch.layout().width(),
        patch.layout().height(),
        patch.num_live_data(),
        patch.full_faces().len(),
        patch.clusters().iter().filter(|c| c.has_gauges()).count(),
        if patch.is_valid() {
            "valid"
        } else {
            "degenerate"
        }
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defect::DefectSet;
    use crate::layout::PatchLayout;

    #[test]
    fn defect_free_map_has_no_dead_sites() {
        let patch = AdaptedPatch::new(PatchLayout::memory(5), &DefectSet::new());
        let art = render_patch(&patch);
        assert!(!art.contains('#'));
        assert!(!art.contains('z') && !art.contains('x'));
        assert_eq!(art.matches('.').count(), 25);
        assert_eq!(art.lines().count(), 11);
    }

    #[test]
    fn defective_map_marks_dead_and_gauges() {
        let mut d = DefectSet::new();
        d.add_data(Coord::new(5, 5));
        let patch = AdaptedPatch::new(PatchLayout::memory(5), &d);
        let art = render_patch(&patch);
        assert_eq!(art.matches('#').count(), 1);
        assert_eq!(art.matches('z').count(), 2);
        assert_eq!(art.matches('x').count(), 2);
    }

    #[test]
    fn summary_mentions_validity() {
        let patch = AdaptedPatch::new(PatchLayout::memory(3), &DefectSet::new());
        let s = summarize_patch(&patch);
        assert!(s.contains("valid"));
        assert!(s.contains("9 live data"));
    }

    #[test]
    fn d3_symbol_counts() {
        let patch = AdaptedPatch::new(PatchLayout::memory(3), &DefectSet::new());
        let art = render_patch(&patch);
        let count = |ch: char| art.matches(ch).count();
        assert_eq!(count('X'), 4);
        assert_eq!(count('Z'), 4);
        assert_eq!(count('.'), 9);
    }
}
