//! Rotated surface code patch layouts with parametric boundary types.

use crate::coords::{Coord, Side};
use dqec_sim::circuit::CheckBasis;

/// Which stabilizer type each boundary side carries.
///
/// The standard memory patch keeps X faces on the top/bottom rows and Z
/// faces on the left/right columns (logical X vertical, logical Z
/// horizontal). The stability experiment uses X faces on all four sides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BoundarySpec {
    /// Basis kept on the y = 0 row.
    pub top: CheckBasis,
    /// Basis kept on the y = 2·height row.
    pub bottom: CheckBasis,
    /// Basis kept on the x = 0 column.
    pub left: CheckBasis,
    /// Basis kept on the x = 2·width column.
    pub right: CheckBasis,
}

impl BoundarySpec {
    /// The standard memory boundary: X top/bottom, Z left/right.
    pub const MEMORY: BoundarySpec = BoundarySpec {
        top: CheckBasis::X,
        bottom: CheckBasis::X,
        left: CheckBasis::Z,
        right: CheckBasis::Z,
    };

    /// All four sides X (used by the stability experiment).
    pub const ALL_X: BoundarySpec = BoundarySpec {
        top: CheckBasis::X,
        bottom: CheckBasis::X,
        left: CheckBasis::X,
        right: CheckBasis::X,
    };

    /// The basis kept on `side`.
    pub fn of(&self, side: Side) -> CheckBasis {
        match side {
            Side::Top => self.top,
            Side::Bottom => self.bottom,
            Side::Left => self.left,
            Side::Right => self.right,
        }
    }
}

/// A `width x height` rotated surface code patch layout.
///
/// # Examples
///
/// ```
/// use dqec_core::layout::PatchLayout;
///
/// let l = PatchLayout::memory(3);
/// assert_eq!(l.data_sites().count(), 9);
/// assert_eq!(l.face_sites().count(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PatchLayout {
    width: u32,
    height: u32,
    boundary: BoundarySpec,
}

impl PatchLayout {
    /// A standard `l x l` memory patch (distance `l` when defect-free).
    ///
    /// # Panics
    ///
    /// Panics if `l < 2`.
    pub fn memory(l: u32) -> Self {
        Self::new(l, l, BoundarySpec::MEMORY)
    }

    /// A `width x height` stability patch with X faces on all sides.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is odd or below 2 (odd all-same-color
    /// patches have defective corners and do not satisfy `k = 0`).
    pub fn stability(width: u32, height: u32) -> Self {
        assert!(
            width.is_multiple_of(2) && height.is_multiple_of(2),
            "stability patches must be even x even"
        );
        Self::new(width, height, BoundarySpec::ALL_X)
    }

    /// A general layout.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is below 2 or the boundary spec is not one
    /// of the supported arrangements (memory-style with opposite sides
    /// equal and the two axes different, or all four sides equal).
    pub fn new(width: u32, height: u32, boundary: BoundarySpec) -> Self {
        assert!(width >= 2 && height >= 2, "patch must be at least 2x2");
        let supported = boundary.top == boundary.bottom && boundary.left == boundary.right;
        assert!(supported, "unsupported boundary arrangement");
        PatchLayout {
            width,
            height,
            boundary,
        }
    }

    /// Number of data-qubit columns.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Number of data-qubit rows.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// The boundary specification.
    pub fn boundary(&self) -> &BoundarySpec {
        &self.boundary
    }

    /// Number of logical qubits the defect-free layout encodes.
    pub fn expected_logicals(&self) -> usize {
        let b = &self.boundary;
        if b.top == b.bottom && b.left == b.right && b.top != b.left {
            1
        } else {
            0
        }
    }

    /// Whether a data site lies inside the patch.
    pub fn contains_data(&self, c: Coord) -> bool {
        c.is_data_site()
            && c.x >= 1
            && c.x < 2 * self.width as i32
            && c.y >= 1
            && c.y < 2 * self.height as i32
    }

    /// Whether a face exists at the given site in the defect-free layout.
    pub fn contains_face(&self, c: Coord) -> bool {
        if !c.is_face_site() {
            return false;
        }
        let (w, h) = (2 * self.width as i32, 2 * self.height as i32);
        if c.x < 0 || c.x > w || c.y < 0 || c.y > h {
            return false;
        }
        let corner = (c.x == 0 || c.x == w) && (c.y == 0 || c.y == h);
        if corner {
            return false;
        }
        let interior = c.x > 0 && c.x < w && c.y > 0 && c.y < h;
        if interior {
            return true;
        }
        let side = if c.y == 0 {
            Side::Top
        } else if c.y == h {
            Side::Bottom
        } else if c.x == 0 {
            Side::Left
        } else {
            Side::Right
        };
        c.face_basis() == self.boundary.of(side)
    }

    /// Iterates over all data sites.
    pub fn data_sites(&self) -> impl Iterator<Item = Coord> + '_ {
        let (w, h) = (self.width as i32, self.height as i32);
        (0..w).flat_map(move |i| (0..h).map(move |j| Coord::new(2 * i + 1, 2 * j + 1)))
    }

    /// Iterates over all face sites that exist in the defect-free layout.
    pub fn face_sites(&self) -> impl Iterator<Item = Coord> + '_ {
        let (w, h) = (self.width as i32, self.height as i32);
        (0..=w)
            .flat_map(move |i| (0..=h).map(move |j| Coord::new(2 * i, 2 * j)))
            .filter(move |&c| self.contains_face(c))
    }

    /// The data sites a face touches in the defect-free layout.
    pub fn face_support(&self, face: Coord) -> Vec<Coord> {
        face.diagonal_neighbors()
            .into_iter()
            .filter(|&d| self.contains_data(d))
            .collect()
    }

    /// All (data, face) adjacency pairs — the couplers/links of the
    /// defect-free layout.
    pub fn links(&self) -> Vec<(Coord, Coord)> {
        let mut out = Vec::new();
        for f in self.face_sites() {
            for d in self.face_support(f) {
                out.push((d, f));
            }
        }
        out
    }

    /// Number of physical qubits (data + syndrome) in the layout.
    pub fn num_qubits(&self) -> usize {
        self.data_sites().count() + self.face_sites().count()
    }

    /// Distance from a coordinate to the given side, in doubled units.
    pub fn distance_to_side(&self, c: Coord, side: Side) -> i32 {
        match side {
            Side::Top => c.y,
            Side::Bottom => 2 * self.height as i32 - c.y,
            Side::Left => c.x,
            Side::Right => 2 * self.width as i32 - c.x,
        }
    }

    /// The nearest side to a coordinate (ties broken in `Side::ALL`
    /// order) and its distance.
    pub fn nearest_side(&self, c: Coord) -> (Side, i32) {
        let mut best = (Side::Top, i32::MAX);
        for side in Side::ALL {
            let d = self.distance_to_side(c, side);
            if d < best.1 {
                best = (side, d);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_counts_match_formula() {
        for l in [3u32, 5, 7, 9, 11] {
            let layout = PatchLayout::memory(l);
            assert_eq!(layout.data_sites().count(), (l * l) as usize);
            assert_eq!(layout.face_sites().count(), (l * l - 1) as usize);
            assert_eq!(layout.num_qubits(), (2 * l * l - 1) as usize);
            let x = layout
                .face_sites()
                .filter(|f| f.face_basis() == CheckBasis::X)
                .count();
            assert_eq!(x, ((l * l - 1) / 2) as usize);
        }
    }

    #[test]
    fn memory_link_count_matches_formula() {
        // Total link count = sum of face weights = 4l^2 - 4l.
        for l in [3u32, 5, 9, 27] {
            let layout = PatchLayout::memory(l);
            assert_eq!(layout.links().len(), (4 * l * l - 4 * l) as usize);
        }
    }

    #[test]
    fn d3_face_positions() {
        let layout = PatchLayout::memory(3);
        let faces: Vec<Coord> = layout.face_sites().collect();
        // Interior: all four; boundary: one per side.
        for c in [
            Coord::new(2, 2),
            Coord::new(4, 2),
            Coord::new(2, 4),
            Coord::new(4, 4),
            Coord::new(2, 0),
            Coord::new(4, 6),
            Coord::new(0, 4),
            Coord::new(6, 2),
        ] {
            assert!(faces.contains(&c), "missing face {c}");
        }
        assert_eq!(faces.len(), 8);
    }

    #[test]
    fn boundary_faces_have_weight_two() {
        let layout = PatchLayout::memory(5);
        for f in layout.face_sites() {
            let w = layout.face_support(f).len();
            let on_edge = f.x == 0 || f.y == 0 || f.x == 10 || f.y == 10;
            assert_eq!(w, if on_edge { 2 } else { 4 });
        }
    }

    #[test]
    fn corners_never_host_faces() {
        let layout = PatchLayout::memory(5);
        for c in [(0, 0), (10, 0), (0, 10), (10, 10)] {
            assert!(!layout.contains_face(Coord::new(c.0, c.1)));
        }
    }

    #[test]
    fn stability_layout_coverage() {
        let layout = PatchLayout::stability(6, 6);
        assert_eq!(layout.expected_logicals(), 0);
        // Every data qubit is in exactly two X faces (product relation).
        for d in layout.data_sites() {
            let x_count = d
                .diagonal_neighbors()
                .into_iter()
                .filter(|&f| layout.contains_face(f) && f.face_basis() == CheckBasis::X)
                .count();
            assert_eq!(x_count, 2, "data {d} has {x_count} X faces");
        }
    }

    #[test]
    fn memory_every_data_covered_both_bases() {
        let layout = PatchLayout::memory(7);
        for d in layout.data_sites() {
            for basis in [CheckBasis::X, CheckBasis::Z] {
                let n = d
                    .diagonal_neighbors()
                    .into_iter()
                    .filter(|&f| layout.contains_face(f) && f.face_basis() == basis)
                    .count();
                assert!(n >= 1, "data {d} uncovered in {basis:?}");
            }
        }
    }

    #[test]
    fn nearest_side_and_distance() {
        let layout = PatchLayout::memory(5);
        assert_eq!(layout.nearest_side(Coord::new(1, 5)).0, Side::Left);
        assert_eq!(layout.distance_to_side(Coord::new(1, 5), Side::Left), 1);
        assert_eq!(layout.nearest_side(Coord::new(5, 9)).0, Side::Bottom);
    }

    #[test]
    fn expected_logicals_by_boundary() {
        assert_eq!(PatchLayout::memory(5).expected_logicals(), 1);
        assert_eq!(PatchLayout::stability(4, 4).expected_logicals(), 0);
    }
}
