//! Syndrome-lattice graphs: void components, code distance, and
//! counting of minimum-weight logical operators.
//!
//! For check basis `B` (say Z, which detects X errors), the B-colored
//! face sites form a 45°-rotated square lattice whose edges are data
//! qubits: the two B-faces of a data qubit are its diagonal pair. Sites
//! without a live face are *void*: undetected error chains terminate
//! there. Two void sites are equivalent (same boundary component) when
//! a live face of the opposite basis has both in its 4-neighbourhood —
//! multiplying a chain by that face moves its endpoint between them.
//!
//! A valid memory patch has exactly two reachable void components per
//! basis (the deformed rough boundary pair); the code distance is the
//! shortest chain connecting them, and the paper's secondary indicator
//! is the number of such shortest chains (counted by multigraph BFS).

use crate::adapt::AdaptedPatch;
use crate::coords::Coord;
use crate::error::CoreError;
use crate::layout::PatchLayout;
use dqec_sim::circuit::CheckBasis;
use std::collections::BTreeMap;

/// One reachable void component of a syndrome lattice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VoidComponent {
    /// The void sites in the component.
    pub sites: Vec<Coord>,
    /// Live data qubits adjacent to the component (chains can terminate
    /// through these).
    pub adjacent_live_data: Vec<Coord>,
    /// Whether the component includes a site on or beyond the layout
    /// boundary rows — i.e. it is a genuine boundary rather than an
    /// interior puncture.
    pub touches_boundary: bool,
}

/// Computes the reachable void components of the `check_basis` lattice.
///
/// `is_live_data` / `is_live_face` describe the (possibly mid-
/// adaptation) patch state; mediators are live faces of the opposite
/// basis.
pub fn void_components(
    layout: &PatchLayout,
    check_basis: CheckBasis,
    is_live_data: &dyn Fn(Coord) -> bool,
    is_live_face: &dyn Fn(Coord) -> bool,
) -> Vec<VoidComponent> {
    let (w, h) = (2 * layout.width() as i32, 2 * layout.height() as i32);
    // Domain: all check-basis-colored sites in the extended range that
    // are not live *full* checks. Live gauge faces of the check basis
    // participate as connector nodes (mediator paths may end on them;
    // composing two such mediators hops across), but they are not void.
    let mut site_index: BTreeMap<Coord, usize> = BTreeMap::new();
    let mut sites: Vec<Coord> = Vec::new();
    let mut is_void: Vec<bool> = Vec::new();
    let mut x = -2;
    while x <= w + 2 {
        let mut y = -2;
        while y <= h + 2 {
            let c = Coord::new(x, y);
            if c.face_basis() == check_basis {
                site_index.insert(c, sites.len());
                sites.push(c);
                is_void.push(!is_live_face(c));
            }
            y += 2;
        }
        x += 2;
    }
    let mut parent: Vec<usize> = (0..sites.len()).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let r = find(parent, parent[i]);
            parent[i] = r;
        }
        parent[i]
    }
    // Mediation: multiplying a chain by a live opposite-basis face
    // moves its endpoint between the *ends* of the face's qubit path:
    // the check-basis sites where the face's live qubits have odd
    // degree. Full faces form closed loops (no ends); reduced faces
    // contribute one end pair.
    let mut fx = 0;
    while fx <= w {
        let mut fy = 0;
        while fy <= h {
            let f = Coord::new(fx, fy);
            fy += 2;
            if f.face_basis() == check_basis || !is_live_face(f) {
                continue;
            }
            let mut degree: BTreeMap<Coord, usize> = BTreeMap::new();
            for q in layout.face_support(f) {
                if is_live_data(q) {
                    for s in q.face_sites_of_basis(check_basis) {
                        *degree.entry(s).or_insert(0) += 1;
                    }
                }
            }
            let ends: Vec<usize> = degree
                .iter()
                .filter(|&(_, &deg)| deg % 2 == 1)
                .filter_map(|(s, _)| site_index.get(s).copied())
                .collect();
            debug_assert!(
                ends.len() <= 2,
                "face {f} has {} path ends; live support {:?}",
                ends.len(),
                layout
                    .face_support(f)
                    .into_iter()
                    .filter(|&q| is_live_data(q))
                    .collect::<Vec<_>>()
            );
            for pair in ends.windows(2) {
                let (a, b) = (find(&mut parent, pair[0]), find(&mut parent, pair[1]));
                if a != b {
                    parent[a] = b;
                }
            }
            // A live check-basis face never appears as an end of a
            // commuting mediator; ends on gauge sites hop through the
            // connector nodes included in the domain above.
        }
        fx += 2;
    }
    // Reachability: live data adjacent to a *void* site of a component.
    let mut adjacency: BTreeMap<usize, Vec<Coord>> = BTreeMap::new();
    for d in layout.data_sites() {
        if !is_live_data(d) {
            continue;
        }
        for s in d.face_sites_of_basis(check_basis) {
            if let Some(&i) = site_index.get(&s) {
                if is_void[i] {
                    let root = find(&mut parent, i);
                    adjacency.entry(root).or_default().push(d);
                }
            }
        }
    }
    let mut comp_sites: BTreeMap<usize, Vec<Coord>> = BTreeMap::new();
    for i in 0..sites.len() {
        if is_void[i] {
            let root = find(&mut parent, i);
            comp_sites.entry(root).or_default().push(sites[i]);
        }
    }
    let mut comps: Vec<VoidComponent> = Vec::new();
    for (root, mut data) in adjacency {
        data.sort_unstable();
        data.dedup();
        let sites = comp_sites.remove(&root).unwrap_or_default();
        let touches_boundary = sites
            .iter()
            .any(|s| s.x <= 0 || s.y <= 0 || s.x >= w || s.y >= h);
        comps.push(VoidComponent {
            sites,
            adjacent_live_data: data,
            touches_boundary,
        });
    }
    // Genuine boundary components first (then largest first) so callers
    // can keep the expected ones and excise the rest.
    comps.sort_by(|a, b| {
        b.touches_boundary
            .cmp(&a.touches_boundary)
            .then(b.sites.len().cmp(&a.sites.len()))
    });
    comps
}

/// Expected number of reachable void components of the `check_basis`
/// lattice for a defect-free patch: the number of circular runs of
/// boundary sides whose color differs from `check_basis`.
pub fn expected_void_components(layout: &PatchLayout, check_basis: CheckBasis) -> usize {
    use crate::coords::Side;
    // Sides in cyclic order around the patch.
    let cycle = [Side::Top, Side::Right, Side::Bottom, Side::Left];
    let void: Vec<bool> = cycle
        .iter()
        .map(|&s| layout.boundary().of(s) != check_basis)
        .collect();
    if void.iter().all(|&v| v) {
        return 1;
    }
    let mut runs = 0;
    for i in 0..4 {
        if void[i] && !void[(i + 3) % 4] {
            runs += 1;
        }
    }
    runs
}

/// An endpoint of a chain edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Endpoint {
    /// A check node (full face or cluster super-stabilizer).
    Check(u32),
    /// A reachable void component.
    Void(u32),
}

/// The matching-style graph of one check basis of an adapted patch:
/// nodes are checks (full faces, super-stabilizers) and void
/// components; edges are live data qubits.
#[derive(Debug, Clone)]
pub struct CheckGraph {
    check_basis: CheckBasis,
    num_checks: usize,
    /// Check ids below this are full faces; the rest are super nodes.
    num_full: usize,
    num_voids: usize,
    /// Edges as (qubit, endpoint a, endpoint b).
    edges: Vec<(Coord, Endpoint, Endpoint)>,
}

impl CheckGraph {
    /// Builds the check graph of `check_basis` for an adapted patch.
    ///
    /// # Errors
    ///
    /// Returns an error if the patch is degenerate, a qubit's errors
    /// flip no check (should be prevented by adaptation rule R5), or
    /// the void structure does not match the layout's expectation.
    pub fn build(patch: &AdaptedPatch, check_basis: CheckBasis) -> Result<Self, CoreError> {
        if !patch.is_valid() {
            let reason = match patch.status() {
                crate::adapt::AdaptStatus::Degenerate(r) => r.clone(),
                crate::adapt::AdaptStatus::Valid => unreachable!(),
            };
            return Err(CoreError::DegeneratePatch { reason });
        }
        let layout = patch.layout();
        let comps = void_components(layout, check_basis, &|c| patch.is_live_data(c), &|c| {
            patch.is_live_face(c)
        });
        let expected = expected_void_components(layout, check_basis);
        if comps.len() != expected {
            return Err(CoreError::MalformedSyndromeGraph {
                detail: format!(
                    "{} reachable void components, expected {expected}",
                    comps.len()
                ),
            });
        }
        // Site -> void component id.
        let mut void_of_site: BTreeMap<Coord, u32> = BTreeMap::new();
        for (i, comp) in comps.iter().enumerate() {
            for &s in &comp.sites {
                void_of_site.insert(s, i as u32);
            }
        }
        // Check nodes: full faces of this basis, then cluster supers.
        let mut check_of_face: BTreeMap<Coord, u32> = BTreeMap::new();
        let mut num_checks = 0u32;
        for &f in patch.full_faces() {
            if f.face_basis() == check_basis {
                check_of_face.insert(f, num_checks);
                num_checks += 1;
            }
        }
        let num_full = num_checks as usize;
        let mut super_of_cluster: BTreeMap<u32, u32> = BTreeMap::new();
        for (id, cluster) in patch.clusters().iter().enumerate() {
            let gauges = match check_basis {
                CheckBasis::X => &cluster.x_gauges,
                CheckBasis::Z => &cluster.z_gauges,
            };
            if !gauges.is_empty() {
                super_of_cluster.insert(id as u32, num_checks);
                num_checks += 1;
            }
        }

        let mut edges = Vec::new();
        for q in layout.data_sites() {
            if !patch.is_live_data(q) {
                continue;
            }
            let mut ends: Vec<Endpoint> = Vec::with_capacity(2);
            let mut cluster_parity: BTreeMap<u32, usize> = BTreeMap::new();
            for s in q.face_sites_of_basis(check_basis) {
                if patch.is_live_face(s) {
                    match patch.gauge_cluster_of(s) {
                        None => ends.push(Endpoint::Check(check_of_face[&s])),
                        Some(c) => *cluster_parity.entry(c).or_insert(0) += 1,
                    }
                } else if let Some(&v) = void_of_site.get(&s) {
                    ends.push(Endpoint::Void(v));
                } else {
                    return Err(CoreError::MalformedSyndromeGraph {
                        detail: format!("site {s} adjacent to live {q} is neither live nor void"),
                    });
                }
            }
            for (c, n) in cluster_parity {
                if n % 2 == 1 {
                    ends.push(Endpoint::Check(super_of_cluster[&c]));
                }
            }
            match ends.len() {
                2 => edges.push((q, ends[0], ends[1])),
                0 => {
                    return Err(CoreError::MalformedSyndromeGraph {
                        detail: format!("qubit {q} flips no {check_basis:?} check"),
                    })
                }
                _ => {
                    return Err(CoreError::MalformedSyndromeGraph {
                        detail: format!("qubit {q} has {} attachments", ends.len()),
                    })
                }
            }
        }
        Ok(CheckGraph {
            check_basis,
            num_checks: num_checks as usize,
            num_full,
            num_voids: comps.len(),
            edges,
        })
    }

    /// The basis of the checks in this graph.
    pub fn check_basis(&self) -> CheckBasis {
        self.check_basis
    }

    /// Number of reachable void components.
    pub fn num_void_components(&self) -> usize {
        self.num_voids
    }

    /// The code distance along this graph — the weight of the shortest
    /// chain connecting the two void components — together with the
    /// number of distinct shortest chains. `None` when the lattice has
    /// fewer than two void components (e.g. stability layouts).
    pub fn distance_and_count(&self) -> Option<(u32, f64)> {
        if self.num_voids < 2 {
            return None;
        }
        let (dist, ways, _) = self.bfs(false)?;
        Some((dist, ways))
    }

    /// The support of one shortest logical chain that avoids
    /// super-stabilizer nodes, usable as a commuting logical operator
    /// representative for circuit observables.
    pub fn gauge_free_logical_support(&self) -> Option<Vec<Coord>> {
        let (_, _, path) = self.bfs(true)?;
        Some(path)
    }

    /// BFS between void components 0 and 1. Returns (distance, number
    /// of shortest paths, one shortest path's qubits). When
    /// `avoid_supers`, edges incident to super-stabilizer nodes are
    /// skipped (super node ids are >= the full-face count, but we do not
    /// track that split here; instead super nodes are identified by the
    /// builder ordering — full faces first).
    fn bfs(&self, avoid_supers: bool) -> Option<(u32, f64, Vec<Coord>)> {
        if self.num_voids < 2 {
            return None;
        }
        // Node numbering: checks 0..num_checks, then voids.
        let nv = self.num_checks + self.num_voids;
        let node_of = |e: Endpoint| -> usize {
            match e {
                Endpoint::Check(c) => c as usize,
                Endpoint::Void(v) => self.num_checks + v as usize,
            }
        };
        let full_face_count = self.full_face_count();
        let usable = |e: Endpoint| -> bool {
            !avoid_supers
                || match e {
                    Endpoint::Check(c) => (c as usize) < full_face_count,
                    Endpoint::Void(_) => true,
                }
        };
        let mut adj: Vec<Vec<(usize, Coord)>> = vec![Vec::new(); nv];
        for &(q, a, b) in &self.edges {
            if !usable(a) || !usable(b) {
                continue;
            }
            let (na, nb) = (node_of(a), node_of(b));
            if na == nb {
                continue; // trivial chain within one component
            }
            adj[na].push((nb, q));
            adj[nb].push((na, q));
        }
        let src = self.num_checks;
        let dst = self.num_checks + 1;
        let mut dist = vec![u32::MAX; nv];
        let mut ways = vec![0.0f64; nv];
        let mut pred: Vec<Option<(usize, Coord)>> = vec![None; nv];
        dist[src] = 0;
        ways[src] = 1.0;
        let mut frontier = vec![src];
        let mut d = 0;
        while !frontier.is_empty() && dist[dst] == u32::MAX {
            let mut next = Vec::new();
            for &u in &frontier {
                for &(v, q) in &adj[u] {
                    if dist[v] == u32::MAX {
                        dist[v] = d + 1;
                        pred[v] = Some((u, q));
                        next.push(v);
                    }
                    if dist[v] == d + 1 {
                        ways[v] += ways[u];
                    }
                }
            }
            frontier = next;
            d += 1;
        }
        if dist[dst] == u32::MAX {
            return None;
        }
        let mut path = Vec::new();
        let mut cur = dst;
        while cur != src {
            let (p, q) = pred[cur].expect("predecessor exists on path");
            path.push(q);
            cur = p;
        }
        Some((dist[dst], ways[dst], path))
    }

    fn full_face_count(&self) -> usize {
        self.num_full
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defect::DefectSet;

    fn patch(l: u32, defects: &DefectSet) -> AdaptedPatch {
        AdaptedPatch::new(PatchLayout::memory(l), defects)
    }

    #[test]
    fn defect_free_distances() {
        for l in [3u32, 5, 7, 9] {
            let p = patch(l, &DefectSet::new());
            for basis in [CheckBasis::Z, CheckBasis::X] {
                let g = CheckGraph::build(&p, basis).unwrap();
                assert_eq!(g.num_void_components(), 2);
                let (d, n) = g.distance_and_count().unwrap();
                assert_eq!(d, l, "basis {basis:?} distance");
                assert!(n >= 1.0);
            }
        }
    }

    #[test]
    fn defect_free_shortest_count_grows_with_l() {
        let c3 = CheckGraph::build(&patch(3, &DefectSet::new()), CheckBasis::Z)
            .unwrap()
            .distance_and_count()
            .unwrap()
            .1;
        let c7 = CheckGraph::build(&patch(7, &DefectSet::new()), CheckBasis::Z)
            .unwrap()
            .distance_and_count()
            .unwrap()
            .1;
        assert!(
            c7 > c3,
            "more symmetry, more shortest logicals: {c3} vs {c7}"
        );
    }

    #[test]
    fn fig1a_distance_drops_to_four() {
        // l=5 with a central broken data qubit: d = 4 both directions
        // (paper Fig 1a).
        let mut d = DefectSet::new();
        d.add_data(Coord::new(5, 5));
        let p = patch(5, &d);
        let gz = CheckGraph::build(&p, CheckBasis::Z).unwrap();
        let gx = CheckGraph::build(&p, CheckBasis::X).unwrap();
        assert_eq!(gz.distance_and_count().unwrap().0, 4);
        assert_eq!(gx.distance_and_count().unwrap().0, 4);
    }

    #[test]
    fn fig1b_distance_is_five() {
        // l=7 with a broken interior syndrome qubit: d = 5 (paper).
        let mut d = DefectSet::new();
        d.add_synd(Coord::new(6, 6));
        let p = patch(7, &d);
        let gz = CheckGraph::build(&p, CheckBasis::Z).unwrap();
        let gx = CheckGraph::build(&p, CheckBasis::X).unwrap();
        let dz = gz.distance_and_count().unwrap().0;
        let dx = gx.distance_and_count().unwrap().0;
        assert_eq!(dz.min(dx), 5, "dz={dz} dx={dx}");
    }

    #[test]
    fn gauge_free_path_avoids_cluster() {
        let mut d = DefectSet::new();
        d.add_data(Coord::new(5, 5));
        let p = patch(5, &d);
        let g = CheckGraph::build(&p, CheckBasis::X).unwrap();
        let path = g.gauge_free_logical_support().unwrap();
        assert!(!path.is_empty());
        // The path must not touch the defect's gauge faces' qubits in a
        // way that anticommutes; at minimum it avoids the dead qubit.
        assert!(!path.contains(&Coord::new(5, 5)));
    }

    #[test]
    fn expected_void_counts() {
        let mem = PatchLayout::memory(5);
        assert_eq!(expected_void_components(&mem, CheckBasis::Z), 2);
        assert_eq!(expected_void_components(&mem, CheckBasis::X), 2);
        let stab = PatchLayout::stability(6, 6);
        assert_eq!(expected_void_components(&stab, CheckBasis::Z), 1);
        assert_eq!(expected_void_components(&stab, CheckBasis::X), 0);
    }

    #[test]
    fn stability_void_structure() {
        let p = AdaptedPatch::new(PatchLayout::stability(6, 6), &DefectSet::new());
        let comps_z = void_components(p.layout(), CheckBasis::Z, &|c| p.is_live_data(c), &|c| {
            p.is_live_face(c)
        });
        assert_eq!(comps_z.len(), 1, "all-X boundary: one surrounding Z void");
        let comps_x = void_components(p.layout(), CheckBasis::X, &|c| p.is_live_data(c), &|c| {
            p.is_live_face(c)
        });
        assert!(comps_x.is_empty(), "Z chains cannot terminate");
    }
}
