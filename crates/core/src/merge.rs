//! Lattice-surgery merge analysis (paper Figs. 14–15).
//!
//! Merging two patches across an edge produces one long patch; boundary
//! deformations near the merging edges can shorten the undetectable
//! chains that cross the seam region, dropping the merged code distance
//! below the individual patches' distances (Fig. 14). This module
//! builds the merged patch — the defective patch joined through a seam
//! column/row to a defect-free partner — adapts it, and reports the
//! distance transverse to the merge.

use crate::adapt::AdaptedPatch;
use crate::coords::{Coord, Side};
use crate::defect::DefectSet;
use crate::graphs::CheckGraph;
use crate::layout::PatchLayout;
use dqec_sim::circuit::CheckBasis;

/// Whether any disabled cell lies within the two outermost layers of
/// the given edge — the paper's "deformation on this boundary" notion
/// (standards 1 and 2 of Fig. 15).
pub fn edge_deformed(patch: &AdaptedPatch, side: Side) -> bool {
    let layout = patch.layout();
    patch
        .dead_data()
        .keys()
        .chain(patch.dead_faces().keys())
        .any(|&c| layout.distance_to_side(c, side) <= 2)
}

/// The code distance transverse to a lattice-surgery merge of the
/// defective `l x l` patch with a defect-free partner across `side`.
///
/// Returns `None` when the merged patch fails to adapt (counts as not
/// supporting surgery on that edge).
///
/// # Examples
///
/// ```
/// use dqec_core::coords::Side;
/// use dqec_core::defect::DefectSet;
/// use dqec_core::merge::merged_distance;
///
/// // A defect-free patch merges at full distance on every edge.
/// for side in Side::ALL {
///     assert_eq!(merged_distance(&DefectSet::new(), 5, side), Some(5));
/// }
/// ```
pub fn merged_distance(defects: &DefectSet, l: u32, side: Side) -> Option<u32> {
    let li = l as i32;
    // The merged patch spans 2l+1 data columns (or rows): patch A, one
    // seam column, patch B.
    let (layout, dx, dy) = match side {
        Side::Right => (
            PatchLayout::new(2 * l + 1, l, *PatchLayout::memory(l).boundary()),
            0,
            0,
        ),
        Side::Left => (
            PatchLayout::new(2 * l + 1, l, *PatchLayout::memory(l).boundary()),
            2 * (li + 1),
            0,
        ),
        Side::Bottom => (
            PatchLayout::new(l, 2 * l + 1, *PatchLayout::memory(l).boundary()),
            0,
            0,
        ),
        Side::Top => (
            PatchLayout::new(l, 2 * l + 1, *PatchLayout::memory(l).boundary()),
            0,
            2 * (li + 1),
        ),
    };
    let mut moved = DefectSet::new();
    for &c in &defects.data {
        moved.add_data(Coord::new(c.x + dx, c.y + dy));
    }
    for &c in &defects.synd {
        moved.add_synd(Coord::new(c.x + dx, c.y + dy));
    }
    for &(d, f) in &defects.links {
        moved.add_link(
            Coord::new(d.x + dx, d.y + dy),
            Coord::new(f.x + dx, f.y + dy),
        );
    }
    let merged = AdaptedPatch::new(layout, &moved);
    if !merged.is_valid() {
        return None;
    }
    // Transverse distance: for horizontal merges the vertical (X
    // logical) distance; for vertical merges the horizontal one.
    let basis = match side {
        Side::Left | Side::Right => CheckBasis::Z,
        Side::Top | Side::Bottom => CheckBasis::X,
    };
    let graph = CheckGraph::build(&merged, basis).ok()?;
    graph.distance_and_count().map(|(d, _)| d)
}

/// The paper's four boundary-quality standards (Fig. 15).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum BoundaryStandard {
    /// Standard 1: no deformation on any boundary.
    NoDeformationAnywhere,
    /// Standard 2: at least one X-edge and one Z-edge without
    /// deformation.
    NoDeformationTwoTypes,
    /// Standard 3: every edge supports lattice surgery without
    /// decreasing the code distance below the target.
    FullSurgeryEverywhere,
    /// Standard 4: at least one X-edge and one Z-edge support surgery
    /// without decreasing distance.
    FullSurgeryTwoTypes,
}

impl BoundaryStandard {
    /// All four standards in paper order.
    pub const ALL: [BoundaryStandard; 4] = [
        BoundaryStandard::NoDeformationAnywhere,
        BoundaryStandard::NoDeformationTwoTypes,
        BoundaryStandard::FullSurgeryEverywhere,
        BoundaryStandard::FullSurgeryTwoTypes,
    ];

    /// Evaluates the standard on an `l x l` defective patch with the
    /// given surgery distance target.
    pub fn satisfied(self, patch: &AdaptedPatch, defects: &DefectSet, l: u32, target: u32) -> bool {
        let x_edges = [Side::Top, Side::Bottom];
        let z_edges = [Side::Left, Side::Right];
        match self {
            BoundaryStandard::NoDeformationAnywhere => {
                Side::ALL.iter().all(|&s| !edge_deformed(patch, s))
            }
            BoundaryStandard::NoDeformationTwoTypes => {
                x_edges.iter().any(|&s| !edge_deformed(patch, s))
                    && z_edges.iter().any(|&s| !edge_deformed(patch, s))
            }
            BoundaryStandard::FullSurgeryEverywhere => Side::ALL
                .iter()
                .all(|&s| merged_distance(defects, l, s).is_some_and(|d| d >= target)),
            BoundaryStandard::FullSurgeryTwoTypes => {
                x_edges
                    .iter()
                    .any(|&s| merged_distance(defects, l, s).is_some_and(|d| d >= target))
                    && z_edges
                        .iter()
                        .any(|&s| merged_distance(defects, l, s).is_some_and(|d| d >= target))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defect_free_passes_all_standards() {
        let l = 5;
        let defects = DefectSet::new();
        let patch = AdaptedPatch::new(PatchLayout::memory(l), &defects);
        for std in BoundaryStandard::ALL {
            assert!(std.satisfied(&patch, &defects, l, l));
        }
    }

    #[test]
    fn edge_deformation_detection() {
        let l = 7;
        let mut defects = DefectSet::new();
        defects.add_data(Coord::new(7, 1)); // top edge defect
        let patch = AdaptedPatch::new(PatchLayout::memory(l), &defects);
        assert!(edge_deformed(&patch, Side::Top));
        assert!(!edge_deformed(&patch, Side::Bottom));
        assert!(!BoundaryStandard::NoDeformationAnywhere.satisfied(&patch, &defects, l, l));
        // Bottom + left/right are clean, so standard 2 holds.
        assert!(BoundaryStandard::NoDeformationTwoTypes.satisfied(&patch, &defects, l, l));
    }

    #[test]
    fn interior_defect_does_not_deform_edges() {
        let l = 9;
        let mut defects = DefectSet::new();
        defects.add_data(Coord::new(9, 9));
        let patch = AdaptedPatch::new(PatchLayout::memory(l), &defects);
        for side in Side::ALL {
            assert!(!edge_deformed(&patch, side));
        }
    }

    #[test]
    fn merge_distance_drops_with_seam_deformation() {
        // Fig 14: a deformation on the merging edge lowers the merged
        // distance below the standalone distance.
        let l = 7;
        let mut defects = DefectSet::new();
        defects.add_data(Coord::new(13, 7)); // right-edge column defect
        let standalone = standalone_distance(&defects, l);
        let merged = merged_distance(&defects, l, Side::Right).unwrap();
        assert!(
            merged <= standalone,
            "merged {merged} should not exceed standalone {standalone}"
        );
        // Merging on the far (left) edge keeps the transverse distance.
        let far = merged_distance(&defects, l, Side::Left).unwrap();
        assert!(far >= merged);
    }

    fn standalone_distance(defects: &DefectSet, l: u32) -> u32 {
        crate::indicators::PatchIndicators::of(&AdaptedPatch::new(PatchLayout::memory(l), defects))
            .distance()
    }

    #[test]
    fn vertical_merges_work() {
        let l = 5;
        let defects = DefectSet::new();
        assert_eq!(merged_distance(&defects, l, Side::Top), Some(5));
        assert_eq!(merged_distance(&defects, l, Side::Bottom), Some(5));
    }
}
