//! Error types for defect-adapted code construction.

use std::error::Error;
use std::fmt;

/// Error raised while building experiments on adapted patches.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// The patch is degenerate (adaptation failed) and cannot host an
    /// experiment.
    DegeneratePatch {
        /// Human-readable degeneracy reason.
        reason: String,
    },
    /// No logical-operator path avoiding gauge clusters exists, so a
    /// commuting observable cannot be routed.
    NoObservablePath,
    /// The requested round count is too small for the patch's gauge
    /// schedule.
    TooFewRounds {
        /// Rounds requested.
        requested: u32,
        /// Minimum rounds needed (two full gauge blocks).
        needed: u32,
    },
    /// The patch's syndrome graph does not have the expected boundary
    /// structure (e.g. the defects cut the patch in two).
    MalformedSyndromeGraph {
        /// Description of the anomaly.
        detail: String,
    },
    /// A Monte-Carlo sweep could not be orchestrated: checkpoint I/O
    /// failed, a state file did not parse, or a resumed state does not
    /// match the plan being run. Raised by the `dqec_sweep` engine,
    /// which shares this error type with the experiment pipeline it
    /// drives.
    Sweep {
        /// Description of the failure.
        detail: String,
    },
    /// Circuit synthesis emitted an operation the simulator rejected
    /// (out-of-range qubit, duplicated pair, dangling measurement
    /// record). Always a generator bug rather than a bad input, but
    /// surfaced as a typed error so callers report it instead of
    /// unwinding mid-build.
    CircuitBuild {
        /// The simulator's rejection, plus where in the schedule it
        /// happened.
        detail: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::DegeneratePatch { reason } => {
                write!(f, "patch is degenerate: {reason}")
            }
            CoreError::NoObservablePath => {
                write!(f, "no gauge-free path exists for the logical observable")
            }
            CoreError::TooFewRounds { requested, needed } => {
                write!(
                    f,
                    "{requested} rounds requested but the gauge schedule needs {needed}"
                )
            }
            CoreError::MalformedSyndromeGraph { detail } => {
                write!(f, "malformed syndrome graph: {detail}")
            }
            CoreError::Sweep { detail } => {
                write!(f, "sweep orchestration failed: {detail}")
            }
            CoreError::CircuitBuild { detail } => {
                write!(f, "circuit synthesis failed: {detail}")
            }
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = CoreError::TooFewRounds {
            requested: 1,
            needed: 4,
        };
        assert!(e.to_string().contains("4"));
        let e = CoreError::DegeneratePatch { reason: "x".into() };
        assert!(e.to_string().contains("degenerate"));
    }

    #[test]
    fn is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<CoreError>();
    }
}
