//! Figures of merit for defective patches (paper §4.2).
//!
//! The paper identifies the adapted code distance as the primary
//! post-selection indicator and the number of minimum-weight logical
//! operators as the tie-breaking secondary indicator, and evaluates
//! several alternatives (number of faulty qubits, fraction of disabled
//! data qubits, largest disabled-cluster diameter) that this module
//! also computes (Figs. 5–11).

use crate::adapt::AdaptedPatch;
use crate::graphs::CheckGraph;
use dqec_sim::circuit::CheckBasis;

/// All per-patch indicators used in the paper's evaluation.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PatchIndicators {
    /// Whether the patch hosts a usable code at all; when false every
    /// distance is reported as 0.
    pub valid: bool,
    /// Distance of the X logical (vertical; computed on the Z-check
    /// lattice).
    pub dist_x: u32,
    /// Number of weight-`dist_x` logical X operators.
    pub count_x: f64,
    /// Distance of the Z logical.
    pub dist_z: u32,
    /// Number of weight-`dist_z` logical Z operators.
    pub count_z: f64,
    /// Fabrication-faulty qubits (data + syndrome; the Fig. 10 baseline
    /// indicator).
    pub num_faulty: usize,
    /// Disabled data qubits after adaptation.
    pub num_disabled_data: usize,
    /// Disabled faces after adaptation.
    pub num_disabled_faces: usize,
    /// Fraction of data qubits disabled (Fig. 8 indicator).
    pub proportion_disabled_data: f64,
    /// Diameter of the largest disabled cluster in qubit units (Fig. 9).
    pub largest_cluster_diameter: f64,
}

impl PatchIndicators {
    /// Computes the indicators of an adapted patch.
    pub fn of(patch: &AdaptedPatch) -> PatchIndicators {
        let num_data = patch.layout().data_sites().count();
        let mut out = PatchIndicators {
            valid: patch.is_valid(),
            dist_x: 0,
            count_x: 0.0,
            dist_z: 0,
            count_z: 0.0,
            num_faulty: patch.defects().num_faulty(),
            num_disabled_data: patch.dead_data().len(),
            num_disabled_faces: patch.dead_faces().len(),
            proportion_disabled_data: patch.dead_data().len() as f64 / num_data as f64,
            largest_cluster_diameter: patch
                .clusters()
                .iter()
                .map(|c| c.diameter() as f64)
                .fold(0.0, f64::max),
        };
        if !patch.is_valid() {
            return out;
        }
        if let Ok(g) = CheckGraph::build(patch, CheckBasis::Z) {
            if let Some((d, n)) = g.distance_and_count() {
                out.dist_x = d;
                out.count_x = n;
            }
        }
        if let Ok(g) = CheckGraph::build(patch, CheckBasis::X) {
            if let Some((d, n)) = g.distance_and_count() {
                out.dist_z = d;
                out.count_z = n;
            }
        }
        if out.dist_x == 0 || out.dist_z == 0 {
            out.valid = false;
        }
        out
    }

    /// The code distance: the minimum over both logical directions
    /// (0 when the patch is unusable).
    pub fn distance(&self) -> u32 {
        if !self.valid {
            return 0;
        }
        self.dist_x.min(self.dist_z)
    }

    /// Number of minimum-weight logical operators at [`distance`], the
    /// paper's tie-breaking indicator: counts from whichever directions
    /// attain the minimum.
    ///
    /// [`distance`]: PatchIndicators::distance
    pub fn shortest_logical_count(&self) -> f64 {
        let d = self.distance();
        if d == 0 {
            return 0.0;
        }
        let mut n = 0.0;
        if self.dist_x == d {
            n += self.count_x;
        }
        if self.dist_z == d {
            n += self.count_z;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coords::Coord;
    use crate::defect::DefectSet;
    use crate::layout::PatchLayout;

    #[test]
    fn defect_free_indicators() {
        let p = AdaptedPatch::new(PatchLayout::memory(5), &DefectSet::new());
        let ind = PatchIndicators::of(&p);
        assert!(ind.valid);
        assert_eq!(ind.distance(), 5);
        assert_eq!((ind.dist_x, ind.dist_z), (5, 5));
        assert_eq!(ind.num_faulty, 0);
        assert_eq!(ind.proportion_disabled_data, 0.0);
        assert!(ind.shortest_logical_count() >= 2.0, "both directions tie");
    }

    #[test]
    fn single_defect_indicators() {
        let mut d = DefectSet::new();
        d.add_data(Coord::new(5, 5));
        let p = AdaptedPatch::new(PatchLayout::memory(5), &d);
        let ind = PatchIndicators::of(&p);
        assert!(ind.valid);
        assert_eq!(ind.distance(), 4);
        assert_eq!(ind.num_faulty, 1);
        assert_eq!(ind.num_disabled_data, 1);
        assert!(ind.largest_cluster_diameter >= 1.0);
    }

    #[test]
    fn defective_patch_has_fewer_shortest_logicals_than_defect_free_same_d() {
        // Paper: defective patches with distance d have fewer shortest
        // logicals than a defect-free distance-d patch (less symmetry).
        let free = PatchIndicators::of(&AdaptedPatch::new(
            PatchLayout::memory(4),
            &DefectSet::new(),
        ));
        let mut d = DefectSet::new();
        d.add_data(Coord::new(5, 5));
        let defective = PatchIndicators::of(&AdaptedPatch::new(PatchLayout::memory(5), &d));
        assert_eq!(free.distance(), defective.distance());
        assert!(
            defective.shortest_logical_count() < free.shortest_logical_count(),
            "defective {} !< defect-free {}",
            defective.shortest_logical_count(),
            free.shortest_logical_count()
        );
    }

    #[test]
    fn degenerate_patch_has_zero_distance() {
        let mut d = DefectSet::new();
        for site in PatchLayout::memory(3).data_sites() {
            d.add_data(site);
        }
        let p = AdaptedPatch::new(PatchLayout::memory(3), &d);
        let ind = PatchIndicators::of(&p);
        assert!(!ind.valid);
        assert_eq!(ind.distance(), 0);
        assert_eq!(ind.shortest_logical_count(), 0.0);
    }

    #[test]
    fn asymmetric_distances_reported_separately() {
        // A defect near one boundary affects one direction more.
        let mut d = DefectSet::new();
        d.add_data(Coord::new(5, 1));
        let p = AdaptedPatch::new(PatchLayout::memory(9), &d);
        let ind = PatchIndicators::of(&p);
        assert!(ind.valid);
        assert!(ind.dist_x <= 9 && ind.dist_z <= 9);
        assert_eq!(ind.distance(), ind.dist_x.min(ind.dist_z));
    }
}
