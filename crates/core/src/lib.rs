//! # dqec-core
//!
//! The primary contribution of the ASPLOS'24 paper "Codesign of quantum
//! error-correcting codes and modular chiplets in the presence of
//! defects" (Lin et al.): an automated method adapting the rotated
//! surface code to a grid with an arbitrary distribution of fabrication
//! defects.
//!
//! * [`layout`] — rotated surface code patches with parametric boundary
//!   types (memory and stability layouts);
//! * [`defect`] — fabrication defect sets and the chiplet orientation
//!   (data/syndrome swap) transform;
//! * [`adapt`] — the adaptation algorithm: interior defects become
//!   super-stabilizer gauge clusters, near-boundary defects deform the
//!   boundary (paper §3, Figs. 1 and 3);
//! * [`graphs`] — syndrome-lattice analysis: boundary void components,
//!   code distance, and counting of minimum-weight logicals;
//! * [`indicators`] — the paper's post-selection figures of merit
//!   (§4.2, Figs. 5–11);
//! * [`circuit_gen`] — memory and stability experiment circuits with
//!   gauge measurement schedules and detector annotations;
//! * [`merge`] — lattice-surgery merge distances and the four boundary
//!   standards (Figs. 14–15).
//!
//! # Examples
//!
//! Adapting a patch to a broken data qubit and reading its indicators:
//!
//! ```
//! use dqec_core::adapt::AdaptedPatch;
//! use dqec_core::coords::Coord;
//! use dqec_core::defect::DefectSet;
//! use dqec_core::indicators::PatchIndicators;
//! use dqec_core::layout::PatchLayout;
//!
//! let mut defects = DefectSet::new();
//! defects.add_data(Coord::new(5, 5));
//! let patch = AdaptedPatch::new(PatchLayout::memory(5), &defects);
//! let ind = PatchIndicators::of(&patch);
//! assert_eq!(ind.distance(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapt;
pub mod circuit_gen;
pub mod coords;
pub mod defect;
mod error;
pub mod graphs;
pub mod indicators;
pub mod layout;
pub mod merge;
pub mod render;

pub use adapt::{AdaptStatus, AdaptedPatch, Cluster, DeadReason};
pub use circuit_gen::{memory_z, stability, ExperimentCircuit};
pub use coords::{Coord, Side};
pub use defect::DefectSet;
pub use error::CoreError;
pub use graphs::CheckGraph;
pub use indicators::PatchIndicators;
pub use layout::{BoundarySpec, PatchLayout};
