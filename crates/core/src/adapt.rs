//! Adapting a rotated surface code to a defective qubit grid.
//!
//! This implements the paper's §3 algorithm: fabrication defects in the
//! interior are handled by disabling qubits and measuring the reduced
//! faces around the resulting hole as *gauge operators* whose products
//! form super-stabilizers; defects too close to a boundary are handled
//! by *deforming* the boundary to excise them. The two mechanisms
//! interact through an iterative kill-cascade:
//!
//! * **R1** — a face left with ≤ 1 active data qubit is disabled.
//! * **R2** — a face left with exactly 2 active data qubits on one of
//!   its diagonals is disabled along with those two qubits (paper §3).
//! * **R3** — a data qubit with no active X-face or no active Z-face is
//!   disabled (its errors of one type would be locally invisible).
//! * **R4** — a faulty syndrome qubit disables its data neighbours: all
//!   of them in the interior (forming the Fig. 1b super-stabilizer), or
//!   only its boundary-side neighbours when within one step of a
//!   boundary (the Fig. 1c/d deformations).
//! * **R5** — a data qubit whose X (Z) error flips no Z-type (X-type)
//!   check — counting super-stabilizer parity — is disabled.
//!
//! Reduced faces that anticommute (share exactly one active qubit) are
//! gauge operators; they are grouped into clusters around the connected
//! dead regions. A cluster is *gaugeable* if its X-gauge product
//! commutes with every Z gauge and vice versa; otherwise the boundary is
//! deformed: the anticommuting face whose color differs from the nearest
//! boundary is disabled (with shadow excision as an escalation), and the
//! cascade reruns.

use crate::coords::{Coord, Side};
use crate::defect::DefectSet;
use crate::layout::PatchLayout;
use dqec_sim::circuit::CheckBasis;
use dqec_sim::f2::SymplecticSpace;
use std::collections::{BTreeMap, BTreeSet};

/// Why a qubit or face was disabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DeadReason {
    /// Fabrication-faulty (or disabled by a faulty link).
    Faulty,
    /// Disabled because a neighbouring faulty syndrome qubit required it.
    Propagated,
    /// R1: face left with ≤ 1 active data qubit.
    WeightRule,
    /// R2: face left with two active data qubits on a diagonal.
    DiagonalRule,
    /// R3/R5: data qubit with unprotected errors.
    Coverage,
    /// Removed by a boundary deformation.
    Deformation,
}

/// A connected cluster of disabled cells and its gauge operators.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Cluster {
    /// The disabled data/face cells in this cluster.
    pub cells: Vec<Coord>,
    /// X-type gauge faces around the cluster.
    pub x_gauges: Vec<Coord>,
    /// Z-type gauge faces around the cluster.
    pub z_gauges: Vec<Coord>,
    /// Gauge-block length: measure one basis this many rounds before
    /// switching (the paper sets it to the cluster diameter).
    pub repetitions: u32,
}

impl Cluster {
    /// Cluster diameter in qubit units (1 = single cell).
    pub fn diameter(&self) -> u32 {
        let mut max = 0;
        for (i, a) in self.cells.iter().enumerate() {
            for b in &self.cells[i + 1..] {
                max = max.max(a.chebyshev(*b));
            }
        }
        (max / 2 + 1) as u32
    }

    /// Whether this cluster measures any gauge operators.
    pub fn has_gauges(&self) -> bool {
        !self.x_gauges.is_empty() || !self.z_gauges.is_empty()
    }
}

/// Whether the adaptation produced a usable code.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum AdaptStatus {
    /// The patch passed all structural checks.
    Valid,
    /// The defects destroyed the patch (no valid code remains). Such
    /// patches count as failed chiplets with distance 0.
    Degenerate(String),
}

/// A rotated surface code adapted to a set of fabrication defects.
///
/// # Examples
///
/// ```
/// use dqec_core::adapt::AdaptedPatch;
/// use dqec_core::coords::Coord;
/// use dqec_core::defect::DefectSet;
/// use dqec_core::layout::PatchLayout;
///
/// // Fig. 1a: one broken data qubit in the interior of a 5x5 patch.
/// let mut defects = DefectSet::new();
/// defects.add_data(Coord::new(5, 5));
/// let patch = AdaptedPatch::new(PatchLayout::memory(5), &defects);
/// assert!(patch.is_valid());
/// assert_eq!(patch.clusters().len(), 1);
/// // One weight-6 X and one weight-6 Z super-stabilizer from 2+2 gauges.
/// assert_eq!(patch.clusters()[0].x_gauges.len(), 2);
/// assert_eq!(patch.clusters()[0].z_gauges.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct AdaptedPatch {
    layout: PatchLayout,
    defects: DefectSet,
    dead_data: BTreeMap<Coord, DeadReason>,
    dead_faces: BTreeMap<Coord, DeadReason>,
    full_faces: Vec<Coord>,
    clusters: Vec<Cluster>,
    gauge_cluster: BTreeMap<Coord, u32>,
    status: AdaptStatus,
}

impl AdaptedPatch {
    /// Adapts `layout` to `defects` (clamped to the layout first).
    pub fn new(layout: PatchLayout, defects: &DefectSet) -> Self {
        let defects = defects.clamp_to(&layout);
        Adapter::new(layout, defects).run()
    }

    /// The underlying layout.
    pub fn layout(&self) -> &PatchLayout {
        &self.layout
    }

    /// The (clamped) defects the patch was adapted to.
    pub fn defects(&self) -> &DefectSet {
        &self.defects
    }

    /// Whether the adaptation succeeded structurally.
    pub fn is_valid(&self) -> bool {
        self.status == AdaptStatus::Valid
    }

    /// The adaptation status.
    pub fn status(&self) -> &AdaptStatus {
        &self.status
    }

    /// Disabled data qubits with their reasons.
    pub fn dead_data(&self) -> &BTreeMap<Coord, DeadReason> {
        &self.dead_data
    }

    /// Disabled faces with their reasons.
    pub fn dead_faces(&self) -> &BTreeMap<Coord, DeadReason> {
        &self.dead_faces
    }

    /// Whether a data qubit is active.
    pub fn is_live_data(&self, c: Coord) -> bool {
        self.layout.contains_data(c) && !self.dead_data.contains_key(&c)
    }

    /// Whether a face is active (full stabilizer or gauge).
    pub fn is_live_face(&self, c: Coord) -> bool {
        self.layout.contains_face(c) && !self.dead_faces.contains_key(&c)
    }

    /// Active data qubits, ascending.
    pub fn live_data(&self) -> Vec<Coord> {
        self.layout
            .data_sites()
            .filter(|&c| self.is_live_data(c))
            .collect()
    }

    /// Faces measured as full stabilizers, ascending.
    pub fn full_faces(&self) -> &[Coord] {
        &self.full_faces
    }

    /// The gauge clusters.
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// The cluster id a gauge face belongs to, if it is a gauge.
    pub fn gauge_cluster_of(&self, face: Coord) -> Option<u32> {
        self.gauge_cluster.get(&face).copied()
    }

    /// The active data qubits a live face acts on.
    pub fn face_live_support(&self, face: Coord) -> Vec<Coord> {
        self.layout
            .face_support(face)
            .into_iter()
            .filter(|&d| self.is_live_data(d))
            .collect()
    }

    /// Number of active data qubits.
    pub fn num_live_data(&self) -> usize {
        self.layout.data_sites().count() - self.dead_data.len()
    }

    /// Verifies the adapted code with exact F2 symplectic arithmetic:
    /// the measured checks must encode exactly the layout's expected
    /// number of logical qubits. Quadratic in patch size — intended for
    /// tests and debugging, not for the sampling hot path.
    ///
    /// Returns `Err` with a description when inconsistent.
    pub fn verify_code_consistency(&self) -> Result<(), String> {
        if !self.is_valid() {
            return Err("patch is degenerate".into());
        }
        let live: Vec<Coord> = self.live_data();
        let index: BTreeMap<Coord, usize> = live.iter().enumerate().map(|(i, &c)| (c, i)).collect();
        let mut space = SymplecticSpace::new(live.len());
        let push_face = |f: Coord, space: &mut SymplecticSpace| {
            let support: Vec<usize> = self.face_live_support(f).iter().map(|c| index[c]).collect();
            match f.face_basis() {
                CheckBasis::X => space.push_support(&support, &[]),
                CheckBasis::Z => space.push_support(&[], &support),
            }
        };
        for &f in &self.full_faces {
            push_face(f, &mut space);
        }
        for cluster in &self.clusters {
            for &g in cluster.x_gauges.iter().chain(&cluster.z_gauges) {
                push_face(g, &mut space);
            }
        }
        let k = space.logical_qubit_count();
        let expected = self.layout.expected_logicals();
        if k != expected {
            return Err(format!(
                "code encodes {k} logical qubits, expected {expected}"
            ));
        }
        // Full faces must commute with everything measured: verified
        // implicitly by gauge classification; double-check pairwise.
        for (i, &f) in self.full_faces.iter().enumerate() {
            let _ = i;
            if self.gauge_cluster.contains_key(&f) {
                return Err(format!("face {f} is both full and gauge"));
            }
        }
        Ok(())
    }
}

/// Pair of data sites between two orthogonally adjacent faces.
fn shared_sites(f: Coord, g: Coord) -> [Coord; 2] {
    debug_assert_eq!(f.chebyshev(g), 2);
    debug_assert!((f.x == g.x) ^ (f.y == g.y));
    if f.y == g.y {
        let x = (f.x + g.x) / 2;
        [Coord::new(x, f.y - 1), Coord::new(x, f.y + 1)]
    } else {
        let y = (f.y + g.y) / 2;
        [Coord::new(f.x - 1, y), Coord::new(f.x + 1, y)]
    }
}

/// The four orthogonal face-lattice neighbours of a face.
fn orthogonal_faces(f: Coord) -> [Coord; 4] {
    [
        Coord::new(f.x - 2, f.y),
        Coord::new(f.x + 2, f.y),
        Coord::new(f.x, f.y - 2),
        Coord::new(f.x, f.y + 2),
    ]
}

struct Adapter {
    layout: PatchLayout,
    defects: DefectSet,
    dead_data: BTreeMap<Coord, DeadReason>,
    dead_faces: BTreeMap<Coord, DeadReason>,
    r4_done: BTreeSet<Coord>,
}

struct Analysis {
    clusters: Vec<Cluster>,
    gauge_cluster: BTreeMap<Coord, u32>,
    /// (x_face, z_face) anticommuting pairs per cluster.
    pairs: Vec<Vec<(Coord, Coord)>>,
    invalid: Vec<u32>,
}

enum VoidOutcome {
    Consistent,
    Excised,
    Broken(String),
}

impl Adapter {
    fn new(layout: PatchLayout, defects: DefectSet) -> Self {
        Adapter {
            layout,
            defects,
            dead_data: BTreeMap::new(),
            dead_faces: BTreeMap::new(),
            r4_done: BTreeSet::new(),
        }
    }

    fn is_live_data(&self, c: Coord) -> bool {
        self.layout.contains_data(c) && !self.dead_data.contains_key(&c)
    }

    fn is_live_face(&self, c: Coord) -> bool {
        self.layout.contains_face(c) && !self.dead_faces.contains_key(&c)
    }

    fn live_support(&self, f: Coord) -> Vec<Coord> {
        self.layout
            .face_support(f)
            .into_iter()
            .filter(|&d| self.is_live_data(d))
            .collect()
    }

    fn kill_data(&mut self, c: Coord, reason: DeadReason) -> bool {
        if self.is_live_data(c) {
            self.dead_data.insert(c, reason);
            true
        } else {
            false
        }
    }

    fn kill_face(&mut self, c: Coord, reason: DeadReason) -> bool {
        if self.is_live_face(c) {
            self.dead_faces.insert(c, reason);
            true
        } else {
            false
        }
    }

    /// Seeds the dead sets from the defect list.
    fn seed(&mut self) {
        for &s in self.defects.synd.clone().iter() {
            self.kill_face(s, DeadReason::Faulty);
        }
        for &d in self.defects.data.clone().iter() {
            self.kill_data(d, DeadReason::Faulty);
        }
        // A faulty link disables the attached data qubit, unless the
        // syndrome qubit at the other end is already disabled (paper §4).
        for &(d, s) in self.defects.links.clone().iter() {
            if self.is_live_face(s) {
                self.kill_data(d, DeadReason::Faulty);
            }
        }
    }

    /// R1–R3 to fixed point. Returns whether anything changed.
    fn cascade(&mut self) -> bool {
        let faces: Vec<Coord> = self.layout.face_sites().collect();
        let data: Vec<Coord> = self.layout.data_sites().collect();
        let mut changed_any = false;
        loop {
            let mut changed = false;
            for &f in &faces {
                if !self.is_live_face(f) {
                    continue;
                }
                let sup = self.live_support(f);
                if sup.len() <= 1 {
                    changed |= self.kill_face(f, DeadReason::WeightRule);
                } else if sup.len() == 2
                    && (sup[0].x - sup[1].x).abs() == 2
                    && (sup[0].y - sup[1].y).abs() == 2
                {
                    changed |= self.kill_face(f, DeadReason::DiagonalRule);
                    changed |= self.kill_data(sup[0], DeadReason::DiagonalRule);
                    changed |= self.kill_data(sup[1], DeadReason::DiagonalRule);
                }
            }
            for &d in &data {
                if !self.is_live_data(d) {
                    continue;
                }
                for basis in [CheckBasis::X, CheckBasis::Z] {
                    let covered = d
                        .face_sites_of_basis(basis)
                        .into_iter()
                        .any(|f| self.is_live_face(f));
                    if !covered {
                        changed |= self.kill_data(d, DeadReason::Coverage);
                        break;
                    }
                }
            }
            changed_any |= changed;
            if !changed {
                return changed_any;
            }
        }
    }

    /// R4: each faulty face disables data neighbours — all of them in
    /// the interior, boundary-side ones near a boundary. Fires once per
    /// faulty face. Returns whether anything changed.
    fn handle_faulty_faces(&mut self) -> bool {
        let faulty: Vec<Coord> = self
            .dead_faces
            .iter()
            .filter(|(c, r)| **r == DeadReason::Faulty && !self.r4_done.contains(*c))
            .map(|(&c, _)| c)
            .collect();
        let mut changed = false;
        for f in faulty {
            self.r4_done.insert(f);
            let (side, dist) = self.layout.nearest_side(f);
            let neighbors: Vec<Coord> = self
                .layout
                .face_support(f)
                .into_iter()
                .filter(|&d| self.is_live_data(d))
                .collect();
            if dist == 0 {
                for d in neighbors {
                    changed |= self.kill_data(d, DeadReason::Deformation);
                }
            } else if dist <= 2 && f.face_basis() != self.layout.boundary().of(side) {
                // Fig 1d: a face of different color than the nearby
                // boundary only loses its boundary-side neighbours.
                let fd = self.layout.distance_to_side(f, side);
                for d in neighbors {
                    if self.layout.distance_to_side(d, side) < fd {
                        changed |= self.kill_data(d, DeadReason::Deformation);
                    }
                }
            } else if dist <= 2 {
                // Fig 1c: same color as the boundary — more qubits must
                // be excluded. Disable all neighbours; the deformation
                // escalation then trims the opposite-type faces so the
                // notch merges into the boundary.
                for d in neighbors {
                    changed |= self.kill_data(d, DeadReason::Deformation);
                }
            } else {
                for d in neighbors {
                    changed |= self.kill_data(d, DeadReason::Propagated);
                }
            }
        }
        changed
    }

    /// R5: data whose X (Z) errors flip no Z-type (X-type) check. Needs
    /// cluster info for super-stabilizer parity. Returns changes.
    fn unprotected_rule(&mut self, analysis: &Analysis) -> bool {
        let mut to_kill = Vec::new();
        for d in self.layout.data_sites() {
            if !self.is_live_data(d) {
                continue;
            }
            for check_basis in [CheckBasis::Z, CheckBasis::X] {
                let mut attachments = 0usize;
                let mut cluster_parity: BTreeMap<u32, usize> = BTreeMap::new();
                for s in d.face_sites_of_basis(check_basis) {
                    if self.is_live_face(s) {
                        match analysis.gauge_cluster.get(&s) {
                            None => attachments += 1,
                            Some(&c) => *cluster_parity.entry(c).or_insert(0) += 1,
                        }
                    } else {
                        // void termination counts as an attachment
                        attachments += 1;
                    }
                }
                attachments += cluster_parity.values().filter(|&&n| n % 2 == 1).count();
                if attachments == 0 {
                    to_kill.push(d);
                    break;
                }
            }
        }
        let mut changed = false;
        for d in to_kill {
            changed |= self.kill_data(d, DeadReason::Coverage);
        }
        changed
    }

    /// Identifies gauge faces, clusters, and per-cluster validity.
    fn analyze(&self) -> Analysis {
        // Anticommuting (X, Z) face pairs: orthogonal neighbours sharing
        // exactly one live data qubit.
        let mut gauge_faces: BTreeSet<Coord> = BTreeSet::new();
        let mut raw_pairs: Vec<(Coord, Coord)> = Vec::new();
        for f in self.layout.face_sites() {
            if !self.is_live_face(f) {
                continue;
            }
            for g in orthogonal_faces(f) {
                if g <= f || !self.is_live_face(g) {
                    continue;
                }
                let live = shared_sites(f, g)
                    .into_iter()
                    .filter(|&d| self.is_live_data(d))
                    .count();
                if live == 1 {
                    let (xf, zf) = if f.face_basis() == CheckBasis::X {
                        (f, g)
                    } else {
                        (g, f)
                    };
                    gauge_faces.insert(f);
                    gauge_faces.insert(g);
                    raw_pairs.push((xf, zf));
                }
            }
        }

        // Clusters: connected components of dead cells (Chebyshev <= 2).
        let cells: Vec<Coord> = self
            .dead_data
            .keys()
            .chain(self.dead_faces.keys())
            .copied()
            .collect();
        let mut comp: Vec<usize> = (0..cells.len()).collect();
        fn find(comp: &mut Vec<usize>, i: usize) -> usize {
            if comp[i] != i {
                let r = find(comp, comp[i]);
                comp[i] = r;
            }
            comp[i]
        }
        for i in 0..cells.len() {
            for j in i + 1..cells.len() {
                if cells[i].chebyshev(cells[j]) <= 2 {
                    let (a, b) = (find(&mut comp, i), find(&mut comp, j));
                    if a != b {
                        comp[a] = b;
                    }
                }
            }
        }
        let mut cluster_of_root: BTreeMap<usize, u32> = BTreeMap::new();
        let mut clusters: Vec<Cluster> = Vec::new();
        for (i, &cell) in cells.iter().enumerate() {
            let root = find(&mut comp, i);
            let id = *cluster_of_root.entry(root).or_insert_with(|| {
                clusters.push(Cluster {
                    cells: Vec::new(),
                    x_gauges: Vec::new(),
                    z_gauges: Vec::new(),
                    repetitions: 1,
                });
                clusters.len() as u32 - 1
            });
            clusters[id as usize].cells.push(cell);
        }

        // Assign gauge faces to the cluster of an adjacent dead cell.
        let cell_cluster: BTreeMap<Coord, u32> = clusters
            .iter()
            .enumerate()
            .flat_map(|(id, c)| c.cells.iter().map(move |&cell| (cell, id as u32)))
            .collect();
        let mut gauge_cluster: BTreeMap<Coord, u32> = BTreeMap::new();
        for &g in &gauge_faces {
            let id = g
                .diagonal_neighbors()
                .into_iter()
                .find_map(|d| cell_cluster.get(&d).copied());
            if let Some(id) = id {
                gauge_cluster.insert(g, id);
                match g.face_basis() {
                    CheckBasis::X => clusters[id as usize].x_gauges.push(g),
                    CheckBasis::Z => clusters[id as usize].z_gauges.push(g),
                }
            }
            // A gauge face with no adjacent dead cell cannot happen (it
            // must have lost a neighbour); leave unassigned and let the
            // validity check fail defensively if it does.
        }
        for c in clusters.iter_mut() {
            c.repetitions = c.diameter();
        }

        // Pairs per cluster.
        let mut pairs: Vec<Vec<(Coord, Coord)>> = vec![Vec::new(); clusters.len()];
        let mut orphan_pair = false;
        for (xf, zf) in raw_pairs {
            match (gauge_cluster.get(&xf), gauge_cluster.get(&zf)) {
                (Some(&a), Some(&b)) if a == b => pairs[a as usize].push((xf, zf)),
                _ => orphan_pair = true,
            }
        }

        // Validity: super-stabilizer products must commute with every
        // opposite gauge.
        let mut invalid = Vec::new();
        for (id, cluster) in clusters.iter().enumerate() {
            if !self.cluster_is_gaugeable(cluster) {
                invalid.push(id as u32);
            }
        }
        if orphan_pair {
            // Force another deformation round via a pseudo-invalid flag
            // on every cluster with gauges (conservative, rare).
            for (id, cluster) in clusters.iter().enumerate() {
                if cluster.has_gauges() && !invalid.contains(&(id as u32)) {
                    invalid.push(id as u32);
                }
            }
        }
        Analysis {
            clusters,
            gauge_cluster,
            pairs,
            invalid,
        }
    }

    fn cluster_is_gaugeable(&self, cluster: &Cluster) -> bool {
        let product_support = |faces: &[Coord]| -> BTreeSet<Coord> {
            let mut s: BTreeSet<Coord> = BTreeSet::new();
            for &f in faces {
                for d in self.live_support(f) {
                    if !s.remove(&d) {
                        s.insert(d);
                    }
                }
            }
            s
        };
        let xs = product_support(&cluster.x_gauges);
        for &z in &cluster.z_gauges {
            let overlap = self
                .live_support(z)
                .iter()
                .filter(|d| xs.contains(d))
                .count();
            if overlap % 2 == 1 {
                return false;
            }
        }
        let zs = product_support(&cluster.z_gauges);
        for &x in &cluster.x_gauges {
            let overlap = self
                .live_support(x)
                .iter()
                .filter(|d| zs.contains(d))
                .count();
            if overlap % 2 == 1 {
                return false;
            }
        }
        true
    }

    /// Checks reachable void component counts per basis; excises data
    /// around spurious extra components. Returns after the first basis
    /// that needed excision so the cascade reruns before the other
    /// basis is inspected.
    fn void_feedback(&mut self) -> VoidOutcome {
        for basis in [CheckBasis::Z, CheckBasis::X] {
            let comps = crate::graphs::void_components(
                &self.layout,
                basis,
                &|c| self.is_live_data(c),
                &|c| self.is_live_face(c),
            );
            let expected = crate::graphs::expected_void_components(&self.layout, basis);
            if comps.len() < expected {
                return VoidOutcome::Broken(format!(
                    "{} reachable {basis:?} void components, expected {expected}",
                    comps.len()
                ));
            }
            // `void_components` sorts largest-first; treat the smallest
            // surplus components as spurious.
            let to_kill: Vec<Coord> = comps[expected..]
                .iter()
                .flat_map(|c| c.adjacent_live_data.iter().copied())
                .collect();
            let mut excised = false;
            for d in to_kill {
                excised |= self.kill_data(d, DeadReason::Deformation);
            }
            if excised {
                return VoidOutcome::Excised;
            }
        }
        VoidOutcome::Consistent
    }

    /// One deformation step on an invalid cluster. Returns whether
    /// anything was killed.
    fn deform(&mut self, cluster: &Cluster, pairs: &[(Coord, Coord)]) -> bool {
        let (side, dist) = cluster
            .cells
            .iter()
            .map(|&c| self.layout.nearest_side(c))
            .min_by_key(|&(_, d)| d)
            .unwrap_or((Side::Top, 0));
        if dist > 2 {
            // Interior cluster whose gauge shell does not close: the
            // hole has concave corners (e.g. two holes pinched together
            // diagonally). Convexify: disable live data qubits with at
            // least three disabled neighbours in this cluster, and let
            // the shell re-form around the rounded hole.
            let cluster_data: Vec<Coord> = cluster
                .cells
                .iter()
                .copied()
                .filter(|c| c.is_data_site())
                .collect();
            let mut changed = false;
            for q in self.layout.data_sites().collect::<Vec<_>>() {
                if !self.is_live_data(q) {
                    continue;
                }
                let dead_neighbors = cluster_data.iter().filter(|c| c.chebyshev(q) <= 2).count();
                if dead_neighbors >= 3 {
                    changed |= self.kill_data(q, DeadReason::Deformation);
                }
            }
            if changed {
                return true;
            }
            // Fallback: grow the hole by one ring.
            for &cell in &cluster.cells {
                for d in cell.diagonal_neighbors() {
                    changed |= self.kill_data(d, DeadReason::Deformation);
                }
            }
            return changed;
        }
        let boundary_color = self.layout.boundary().of(side);
        let mut changed = false;

        // Strategy 1: disable anticommuting faces of the wrong color
        // near the boundary.
        for &(xf, zf) in pairs {
            let wrong = if boundary_color == CheckBasis::X {
                zf
            } else {
                xf
            };
            if self.layout.distance_to_side(wrong, side) <= 2 {
                changed |= self.kill_face(wrong, DeadReason::Deformation);
            }
        }
        if changed {
            return true;
        }
        // Strategy 2: disable all wrong-color anticommuting faces of the
        // cluster regardless of position.
        for &(xf, zf) in pairs {
            let wrong = if boundary_color == CheckBasis::X {
                zf
            } else {
                xf
            };
            changed |= self.kill_face(wrong, DeadReason::Deformation);
        }
        if changed {
            return true;
        }
        // Strategy 3: excise the shadow between the cluster and the
        // boundary.
        for &cell in &cluster.cells {
            let toward: Vec<Coord> = self
                .layout
                .data_sites()
                .filter(|&d| {
                    self.is_live_data(d)
                        && match side {
                            Side::Top => (d.x - cell.x).abs() <= 1 && d.y < cell.y,
                            Side::Bottom => (d.x - cell.x).abs() <= 1 && d.y > cell.y,
                            Side::Left => (d.y - cell.y).abs() <= 1 && d.x < cell.x,
                            Side::Right => (d.y - cell.y).abs() <= 1 && d.x > cell.x,
                        }
                })
                .collect();
            for d in toward {
                changed |= self.kill_data(d, DeadReason::Deformation);
            }
        }
        if changed {
            return true;
        }
        // Strategy 4: grow the hole by one ring.
        for &cell in &cluster.cells.clone() {
            for d in cell.diagonal_neighbors() {
                changed |= self.kill_data(d, DeadReason::Deformation);
            }
        }
        changed
    }

    fn run(mut self) -> AdaptedPatch {
        self.seed();
        let max_iters = (4 * (self.layout.width() + self.layout.height()) + 32) as usize;
        let mut status = AdaptStatus::Valid;
        let mut analysis;
        let mut iters = 0;
        loop {
            iters += 1;
            if iters > max_iters {
                status = AdaptStatus::Degenerate("deformation did not converge".into());
                analysis = self.analyze();
                break;
            }
            self.cascade();
            if self.handle_faulty_faces() {
                continue;
            }
            analysis = self.analyze();
            if self.unprotected_rule(&analysis) {
                continue;
            }
            if analysis.invalid.is_empty() {
                // Void feedback: every syndrome lattice must have
                // exactly the expected number of reachable boundary
                // components. An isolated extra component is a spurious
                // logical degree of freedom introduced by a pileup of
                // deformations; excise the data around it so it merges
                // with a boundary or seals off.
                match self.void_feedback() {
                    VoidOutcome::Consistent => break,
                    VoidOutcome::Excised => continue,
                    VoidOutcome::Broken(detail) => {
                        status = AdaptStatus::Degenerate(detail);
                        break;
                    }
                }
            }
            let mut killed = false;
            for &id in &analysis.invalid {
                let cluster = analysis.clusters[id as usize].clone();
                let pairs = analysis.pairs[id as usize].clone();
                killed |= self.deform(&cluster, &pairs);
            }
            if !killed {
                status = AdaptStatus::Degenerate("invalid cluster could not be deformed".into());
                break;
            }
        }

        // A patch with no live data is unusable.
        let live_count = self.layout.data_sites().count() - self.dead_data.len();
        if live_count == 0 && status == AdaptStatus::Valid {
            status = AdaptStatus::Degenerate("no active data qubits remain".into());
        }

        let full_faces: Vec<Coord> = self
            .layout
            .face_sites()
            .filter(|&f| self.is_live_face(f) && !analysis.gauge_cluster.contains_key(&f))
            .collect();
        let mut patch = AdaptedPatch {
            layout: self.layout,
            defects: self.defects,
            dead_data: self.dead_data,
            dead_faces: self.dead_faces,
            full_faces,
            clusters: analysis.clusters,
            gauge_cluster: analysis.gauge_cluster,
            status,
        };
        // Post-validation: both check graphs must build, and for
        // layouts encoding a logical qubit the two boundary components
        // must be connected by live qubits (defects can split the patch
        // into islands that encode nothing).
        if patch.is_valid() {
            for basis in [CheckBasis::Z, CheckBasis::X] {
                match crate::graphs::CheckGraph::build(&patch, basis) {
                    Err(e) => {
                        patch.status = AdaptStatus::Degenerate(e.to_string());
                        break;
                    }
                    Ok(g) => {
                        let needs_logical =
                            crate::graphs::expected_void_components(&patch.layout, basis) == 2;
                        if needs_logical && g.distance_and_count().is_none() {
                            patch.status = AdaptStatus::Degenerate(format!(
                                "no {basis:?} logical path remains"
                            ));
                            break;
                        }
                    }
                }
            }
        }
        patch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn memory_patch(l: u32, defects: &DefectSet) -> AdaptedPatch {
        AdaptedPatch::new(PatchLayout::memory(l), defects)
    }

    #[test]
    fn defect_free_patch_is_unchanged() {
        let patch = memory_patch(5, &DefectSet::new());
        assert!(patch.is_valid());
        assert!(patch.dead_data().is_empty());
        assert!(patch.dead_faces().is_empty());
        assert_eq!(patch.full_faces().len(), 24);
        assert!(patch.clusters().is_empty());
        patch.verify_code_consistency().unwrap();
    }

    #[test]
    fn fig1a_interior_data_defect() {
        // Single broken data qubit in the interior: weight-6
        // super-stabilizers from two weight-3 gauges each.
        let mut d = DefectSet::new();
        d.add_data(Coord::new(5, 5));
        let patch = memory_patch(5, &d);
        assert!(patch.is_valid());
        assert_eq!(patch.dead_data().len(), 1);
        assert!(patch.dead_faces().is_empty());
        assert_eq!(patch.clusters().len(), 1);
        let c = &patch.clusters()[0];
        assert_eq!(c.x_gauges.len(), 2);
        assert_eq!(c.z_gauges.len(), 2);
        assert_eq!(c.repetitions, 1, "single-cell cluster alternates XZXZ");
        patch.verify_code_consistency().unwrap();
    }

    #[test]
    fn fig1b_interior_syndrome_defect() {
        // Broken syndrome qubit in the interior of a 7x7 patch: all four
        // data neighbours disabled, super-stabilizers of 3-4 gauges.
        let mut d = DefectSet::new();
        d.add_synd(Coord::new(6, 6));
        let patch = memory_patch(7, &d);
        assert!(patch.is_valid());
        assert_eq!(patch.dead_data().len(), 4);
        assert_eq!(patch.clusters().len(), 1);
        let c = &patch.clusters()[0];
        assert_eq!(c.x_gauges.len() + c.z_gauges.len(), 8);
        assert_eq!(c.repetitions, 2, "diameter-2 cluster measures XXZZ");
        patch.verify_code_consistency().unwrap();
    }

    #[test]
    fn corner_data_defect_excludes_one_face() {
        let mut d = DefectSet::new();
        d.add_data(Coord::new(1, 1));
        let patch = memory_patch(5, &d);
        assert!(patch.is_valid());
        assert_eq!(patch.dead_data().len(), 1);
        assert_eq!(patch.dead_faces().len(), 1, "only the corner face dies");
        assert!(patch.clusters().iter().all(|c| !c.has_gauges()));
        patch.verify_code_consistency().unwrap();
    }

    #[test]
    fn edge_data_defect_deforms_boundary() {
        // Data qubit on the top row: Fig 1d-style deformation removing
        // two data qubits, one Z face, one X face.
        let mut d = DefectSet::new();
        d.add_data(Coord::new(5, 1));
        let patch = memory_patch(5, &d);
        assert!(patch.is_valid(), "status: {:?}", patch.status());
        assert_eq!(patch.dead_data().len(), 2);
        assert_eq!(patch.dead_faces().len(), 2);
        assert!(patch.clusters().iter().all(|c| !c.has_gauges()));
        patch.verify_code_consistency().unwrap();
    }

    #[test]
    fn near_boundary_syndrome_defect_different_color() {
        // Z face one step from the top (X) boundary: kills the two
        // boundary-side data qubits and cascades (Fig 1d right).
        let mut d = DefectSet::new();
        d.add_synd(Coord::new(6, 2));
        let patch = memory_patch(5, &d);
        assert!(patch.is_valid());
        assert_eq!(patch.dead_data().len(), 2);
        // The faulty face plus the orphaned boundary X face.
        assert_eq!(patch.dead_faces().len(), 2);
        patch.verify_code_consistency().unwrap();
    }

    #[test]
    fn near_boundary_syndrome_defect_same_color() {
        // X face one step from the top (X) boundary (Fig 1c left).
        let mut d = DefectSet::new();
        d.add_synd(Coord::new(4, 2));
        let patch = memory_patch(5, &d);
        assert!(patch.is_valid(), "status: {:?}", patch.status());
        patch.verify_code_consistency().unwrap();
        // Deformation excises the shadow toward the boundary plus
        // coverage cascades.
        assert!(patch.dead_data().len() >= 2);
    }

    #[test]
    fn boundary_face_defect_on_own_boundary() {
        // Faulty weight-2 Z face on the left (Z) boundary.
        let mut d = DefectSet::new();
        d.add_synd(Coord::new(0, 4));
        let patch = memory_patch(5, &d);
        assert!(patch.is_valid());
        patch.verify_code_consistency().unwrap();
    }

    #[test]
    fn diagonal_pair_forms_single_cluster() {
        let mut d = DefectSet::new();
        d.add_data(Coord::new(5, 5));
        d.add_data(Coord::new(7, 7));
        let patch = memory_patch(7, &d);
        assert!(patch.is_valid(), "status: {:?}", patch.status());
        assert_eq!(patch.clusters().len(), 1);
        patch.verify_code_consistency().unwrap();
    }

    #[test]
    fn adjacent_pair_cluster() {
        let mut d = DefectSet::new();
        d.add_data(Coord::new(5, 5));
        d.add_data(Coord::new(7, 5));
        let patch = memory_patch(7, &d);
        assert!(patch.is_valid());
        assert_eq!(patch.clusters().len(), 1);
        patch.verify_code_consistency().unwrap();
    }

    #[test]
    fn link_defect_disables_data_qubit() {
        let mut d = DefectSet::new();
        d.add_link(Coord::new(5, 5), Coord::new(4, 4));
        let patch = memory_patch(7, &d);
        assert!(patch.is_valid());
        assert!(patch.dead_data().contains_key(&Coord::new(5, 5)));
        patch.verify_code_consistency().unwrap();
    }

    #[test]
    fn link_to_dead_face_is_ignored() {
        let mut d = DefectSet::new();
        d.add_synd(Coord::new(4, 4));
        d.add_link(Coord::new(5, 5), Coord::new(4, 4));
        let patch = memory_patch(7, &d);
        assert!(patch.is_valid());
        // (5,5) dies anyway via R4 (all four neighbours of the dead
        // ancilla die), but the reason is propagation, not the link.
        assert_eq!(patch.dead_data()[&Coord::new(5, 5)], DeadReason::Propagated);
        patch.verify_code_consistency().unwrap();
    }

    #[test]
    fn two_separate_clusters() {
        let mut d = DefectSet::new();
        d.add_data(Coord::new(3, 3));
        d.add_data(Coord::new(15, 15));
        let patch = memory_patch(9, &d);
        assert!(patch.is_valid());
        assert_eq!(patch.clusters().len(), 2);
        patch.verify_code_consistency().unwrap();
    }

    #[test]
    fn stability_patch_with_center_defect() {
        let mut d = DefectSet::new();
        d.add_data(Coord::new(5, 5));
        let patch = AdaptedPatch::new(PatchLayout::stability(6, 6), &d);
        assert!(patch.is_valid(), "status: {:?}", patch.status());
        patch.verify_code_consistency().unwrap();
    }

    #[test]
    fn totally_destroyed_patch_is_degenerate() {
        let mut d = DefectSet::new();
        for site in PatchLayout::memory(3).data_sites() {
            d.add_data(site);
        }
        let patch = memory_patch(3, &d);
        assert!(!patch.is_valid());
    }

    #[test]
    fn random_defects_always_produce_consistent_codes() {
        use crate::graphs::CheckGraph;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2024);
        let mut degenerate = 0;
        let mut total = 0;
        for (l, rate, trials) in [(5u32, 0.03, 150), (9, 0.02, 250), (11, 0.015, 120)] {
            let layout = PatchLayout::memory(l);
            let data: Vec<Coord> = layout.data_sites().collect();
            let faces: Vec<Coord> = layout.face_sites().collect();
            let links = layout.links();
            for _ in 0..trials {
                total += 1;
                let mut d = DefectSet::new();
                for &c in &data {
                    if rng.gen_bool(rate) {
                        d.add_data(c);
                    }
                }
                for &c in &faces {
                    if rng.gen_bool(rate) {
                        d.add_synd(c);
                    }
                }
                for &(dq, f) in &links {
                    if rng.gen_bool(rate / 2.0) {
                        d.add_link(dq, f);
                    }
                }
                let patch = memory_patch(l, &d);
                if !patch.is_valid() {
                    degenerate += 1;
                    continue;
                }
                patch
                    .verify_code_consistency()
                    .unwrap_or_else(|e| panic!("inconsistent code for l={l} defects {d:?}: {e}"));
                // The check graphs must build and give sane distances.
                for basis in [CheckBasis::X, CheckBasis::Z] {
                    let g = CheckGraph::build(&patch, basis).unwrap_or_else(|e| {
                        panic!("graph build failed for l={l} defects {d:?}: {e}")
                    });
                    let (dist, count) = g.distance_and_count().unwrap();
                    assert!(dist >= 1 && dist <= l, "distance {dist} out of range");
                    assert!(count >= 1.0);
                }
            }
        }
        assert!(
            degenerate * 10 < total,
            "too many degenerate patches: {degenerate}/{total}"
        );
    }
}
