//! Fabrication defect sets and the chiplet orientation transform.

use crate::coords::Coord;
use crate::layout::PatchLayout;
use std::collections::BTreeSet;

/// A set of fabrication defects on a chiplet.
///
/// Coordinates outside the layout, or links that do not exist, are
/// ignored by [`DefectSet::clamp_to`] — sampling code may generate
/// defects for the full fabricated grid.
///
/// # Examples
///
/// ```
/// use dqec_core::coords::Coord;
/// use dqec_core::defect::DefectSet;
///
/// let mut defects = DefectSet::new();
/// defects.add_data(Coord::new(5, 5));
/// assert_eq!(defects.num_faulty(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DefectSet {
    /// Faulty data qubits.
    pub data: BTreeSet<Coord>,
    /// Faulty syndrome qubits (faces).
    pub synd: BTreeSet<Coord>,
    /// Faulty couplers, stored as (data, face) pairs.
    pub links: BTreeSet<(Coord, Coord)>,
}

impl DefectSet {
    /// An empty (defect-free) set.
    pub fn new() -> Self {
        DefectSet::default()
    }

    /// Adds a faulty data qubit.
    pub fn add_data(&mut self, c: Coord) {
        self.data.insert(c);
    }

    /// Adds a faulty syndrome qubit.
    pub fn add_synd(&mut self, c: Coord) {
        self.synd.insert(c);
    }

    /// Adds a faulty link between a data qubit and a face.
    pub fn add_link(&mut self, data: Coord, face: Coord) {
        self.links.insert((data, face));
    }

    /// Whether there are no defects.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty() && self.synd.is_empty() && self.links.is_empty()
    }

    /// Total number of faulty qubits (data + syndrome; links excluded).
    pub fn num_faulty(&self) -> usize {
        self.data.len() + self.synd.len()
    }

    /// Total number of faulty components including links.
    pub fn num_faulty_components(&self) -> usize {
        self.num_faulty() + self.links.len()
    }

    /// Restricts the defect set to elements that exist in `layout`.
    pub fn clamp_to(&self, layout: &PatchLayout) -> DefectSet {
        DefectSet {
            data: self
                .data
                .iter()
                .copied()
                .filter(|&c| layout.contains_data(c))
                .collect(),
            synd: self
                .synd
                .iter()
                .copied()
                .filter(|&c| layout.contains_face(c))
                .collect(),
            links: self
                .links
                .iter()
                .copied()
                .filter(|&(d, f)| {
                    layout.contains_data(d) && layout.contains_face(f) && d.chebyshev(f) == 1
                })
                .collect(),
        }
    }

    /// The orientation-swapped defect set for an `l x l` chiplet.
    ///
    /// The paper's chiplet design allows exchanging the data/syndrome
    /// role assignment by rotating the chiplet 180° (equivalently,
    /// translating the logical patch by one physical site). Under the
    /// point reflection `(x, y) -> (2l-1-x, 2l-1-y)` data sites map to
    /// face sites and vice versa; defects landing outside the new patch
    /// are harmless and dropped.
    pub fn swapped_orientation(&self, l: u32) -> DefectSet {
        let c = 2 * l as i32 - 1;
        let t = |p: Coord| Coord::new(c - p.x, c - p.y);
        let layout = PatchLayout::memory(l);
        let mut out = DefectSet::new();
        for &d in &self.data {
            let f = t(d);
            if layout.contains_face(f) {
                out.add_synd(f);
            }
        }
        for &s in &self.synd {
            let d = t(s);
            if layout.contains_data(d) {
                out.add_data(d);
            }
        }
        for &(d, s) in &self.links {
            let (nd, nf) = (t(s), t(d));
            if layout.contains_data(nd) && layout.contains_face(nf) && nd.chebyshev(nf) == 1 {
                out.add_link(nd, nf);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_drops_outside_defects() {
        let layout = PatchLayout::memory(3);
        let mut d = DefectSet::new();
        d.add_data(Coord::new(1, 1));
        d.add_data(Coord::new(9, 9)); // outside 3x3 patch
        d.add_synd(Coord::new(4, 0)); // not a kept boundary face
        d.add_synd(Coord::new(2, 0)); // kept
        let c = d.clamp_to(&layout);
        assert_eq!(c.data.len(), 1);
        assert_eq!(c.synd.len(), 1);
    }

    #[test]
    fn swap_maps_data_to_faces() {
        let l = 5;
        let mut d = DefectSet::new();
        d.add_data(Coord::new(3, 3));
        let s = d.swapped_orientation(l);
        assert!(s.data.is_empty());
        assert_eq!(s.synd.len(), 1);
        let f = *s.synd.iter().next().unwrap();
        assert!(f.is_face_site());
        assert_eq!(f, Coord::new(6, 6));
    }

    #[test]
    fn swap_is_involution_for_interior_defects() {
        let l = 7;
        let mut d = DefectSet::new();
        d.add_data(Coord::new(5, 7));
        d.add_synd(Coord::new(6, 6));
        let back = d.swapped_orientation(l).swapped_orientation(l);
        assert_eq!(back, d);
    }

    #[test]
    fn swap_drops_out_of_range_images() {
        let l = 3;
        let mut d = DefectSet::new();
        // Face at (0, 4) maps to data (5, 1)? t(0,4) = (5,1): in range.
        d.add_synd(Coord::new(0, 4));
        // Face at (6, 2) -> (-1, 3): out of range -> dropped.
        d.add_synd(Coord::new(6, 2));
        let s = d.swapped_orientation(l);
        assert_eq!(s.data.len(), 1);
        assert!(s.data.contains(&Coord::new(5, 1)));
    }

    #[test]
    fn link_defects_transform_with_adjacency() {
        let l = 5;
        let mut d = DefectSet::new();
        d.add_link(Coord::new(3, 3), Coord::new(4, 4));
        let s = d.swapped_orientation(l);
        assert_eq!(s.links.len(), 1);
        let (nd, nf) = *s.links.iter().next().unwrap();
        assert_eq!(nd.chebyshev(nf), 1);
        assert!(nd.is_data_site() && nf.is_face_site());
    }
}
