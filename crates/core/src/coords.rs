//! Doubled coordinates for the rotated surface code.
//!
//! Data qubits sit at odd–odd positions `(x, y)`; stabilizer faces
//! (syndrome/ancilla qubits) at even–even positions. A face's color is
//! determined by the parity of `p = (x + y) / 2`: even parity is a
//! Z-type face, odd parity an X-type face, so colors checkerboard and
//! the two Z-faces (X-faces) of a data qubit lie on one diagonal of it.

use dqec_sim::circuit::CheckBasis;

/// A position in the doubled coordinate system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Coord {
    /// Horizontal position (grows rightward).
    pub x: i32,
    /// Vertical position (grows downward).
    pub y: i32,
}

impl Coord {
    /// Creates a coordinate.
    pub const fn new(x: i32, y: i32) -> Self {
        Coord { x, y }
    }

    /// Whether this is a data-qubit site (both coordinates odd).
    pub fn is_data_site(self) -> bool {
        self.x.rem_euclid(2) == 1 && self.y.rem_euclid(2) == 1
    }

    /// Whether this is a face (syndrome-qubit) site (both even).
    pub fn is_face_site(self) -> bool {
        self.x.rem_euclid(2) == 0 && self.y.rem_euclid(2) == 0
    }

    /// The stabilizer basis of a face at this site.
    ///
    /// # Panics
    ///
    /// Panics if this is not a face site.
    pub fn face_basis(self) -> CheckBasis {
        assert!(self.is_face_site(), "{self:?} is not a face site");
        if ((self.x + self.y) / 2).rem_euclid(2) == 0 {
            CheckBasis::Z
        } else {
            CheckBasis::X
        }
    }

    /// The four diagonal neighbours (data of a face, faces of a data).
    pub fn diagonal_neighbors(self) -> [Coord; 4] {
        [
            Coord::new(self.x - 1, self.y - 1),
            Coord::new(self.x + 1, self.y - 1),
            Coord::new(self.x - 1, self.y + 1),
            Coord::new(self.x + 1, self.y + 1),
        ]
    }

    /// The two face sites of the given basis adjacent to this data site.
    ///
    /// # Panics
    ///
    /// Panics if this is not a data site.
    pub fn face_sites_of_basis(self, basis: CheckBasis) -> [Coord; 2] {
        assert!(self.is_data_site(), "{self:?} is not a data site");
        let diag = self.diagonal_neighbors();
        let mut out = [Coord::new(0, 0); 2];
        let mut n = 0;
        for c in diag {
            if c.face_basis() == basis {
                out[n] = c;
                n += 1;
            }
        }
        assert_eq!(n, 2, "every data site has two faces of each basis");
        out
    }

    /// Chebyshev (L-infinity) distance to another coordinate.
    pub fn chebyshev(self, other: Coord) -> i32 {
        (self.x - other.x).abs().max((self.y - other.y).abs())
    }
}

impl std::fmt::Display for Coord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// The four sides of a patch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Side {
    /// y = 0 boundary.
    Top,
    /// y = 2·height boundary.
    Bottom,
    /// x = 0 boundary.
    Left,
    /// x = 2·width boundary.
    Right,
}

impl Side {
    /// All four sides in deterministic order.
    pub const ALL: [Side; 4] = [Side::Top, Side::Bottom, Side::Left, Side::Right];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_classification() {
        assert!(Coord::new(1, 3).is_data_site());
        assert!(!Coord::new(1, 2).is_data_site());
        assert!(Coord::new(2, 4).is_face_site());
        assert!(!Coord::new(2, 3).is_face_site());
    }

    #[test]
    fn face_colors_checkerboard() {
        assert_eq!(Coord::new(2, 2).face_basis(), CheckBasis::Z);
        assert_eq!(Coord::new(4, 2).face_basis(), CheckBasis::X);
        assert_eq!(Coord::new(2, 4).face_basis(), CheckBasis::X);
        assert_eq!(Coord::new(4, 4).face_basis(), CheckBasis::Z);
        assert_eq!(Coord::new(0, 0).face_basis(), CheckBasis::Z);
    }

    #[test]
    fn data_faces_split_by_diagonal() {
        let d = Coord::new(3, 3);
        let z = d.face_sites_of_basis(CheckBasis::Z);
        let x = d.face_sites_of_basis(CheckBasis::X);
        // Z faces of (3,3) are its even-parity diagonal pair (2,2), (4,4).
        assert!(z.contains(&Coord::new(2, 2)) && z.contains(&Coord::new(4, 4)));
        assert!(x.contains(&Coord::new(4, 2)) && x.contains(&Coord::new(2, 4)));
        for f in z {
            assert_eq!(f.face_basis(), CheckBasis::Z);
        }
        for f in x {
            assert_eq!(f.face_basis(), CheckBasis::X);
        }
    }

    #[test]
    fn chebyshev_distance() {
        assert_eq!(Coord::new(0, 0).chebyshev(Coord::new(3, -4)), 4);
        assert_eq!(Coord::new(1, 1).chebyshev(Coord::new(1, 1)), 0);
    }

    #[test]
    fn negative_coords_classify_correctly() {
        assert!(Coord::new(-1, 1).is_data_site());
        assert!(Coord::new(-2, 0).is_face_site());
        assert_eq!(Coord::new(-2, 0).face_basis(), CheckBasis::X);
    }
}
