//! Typed experiment records and output sinks.
//!
//! Every reproduction binary used to hand-roll its own `println!` TSV
//! pipeline. Instead, experiments now emit typed [`Record`]s through a
//! [`Sink`]: the same run can render as human-readable TSV
//! ([`TsvSink`]), machine-readable JSON ([`JsonSink`]), be captured for
//! tests ([`MemorySink`]), or be discarded ([`NullSink`]).

use crate::experiment::{LerPoint, SlopeFit};
use std::io::Write;

/// One cell of a tabular [`Record::Row`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Free text.
    Text(String),
    /// A floating-point quantity (rendered compactly in TSV).
    Num(f64),
    /// An integer quantity.
    Int(i64),
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Num(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Int(v as i64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

/// Formats an `f64` compactly for TSV outputs (fixed point in a
/// readable range, scientific elsewhere).
pub fn fmt_compact(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 0.01 && v.abs() < 1e6 {
        format!("{v:.4}")
    } else {
        format!("{v:.3e}")
    }
}

impl Value {
    /// The TSV rendering of this cell.
    pub fn tsv(&self) -> String {
        match self {
            Value::Text(s) => s.clone(),
            Value::Num(v) => fmt_compact(*v),
            Value::Int(v) => v.to_string(),
        }
    }
}

/// One logical-error-rate measurement of a labelled series.
#[derive(Debug, Clone, PartialEq)]
pub struct LerRecord {
    /// Series label (e.g. `"d=7"` or `"faulty p=0.08"`).
    pub series: String,
    /// The measured point.
    pub point: LerPoint,
}

/// One log-log slope fit of a labelled series.
#[derive(Debug, Clone, PartialEq)]
pub struct SlopeFitRecord {
    /// Series label.
    pub series: String,
    /// The fit.
    pub fit: SlopeFit,
}

/// One chiplet-yield measurement of a labelled series: either a
/// Monte-Carlo estimate with accept/fabricate counts
/// ([`YieldRecord::sampled`]) or a closed-form probability
/// ([`YieldRecord::analytic`]).
#[derive(Debug, Clone, PartialEq)]
pub struct YieldRecord {
    /// Series label (e.g. `"l=13"`).
    pub series: String,
    /// Fabrication defect rate.
    pub rate: f64,
    /// `(kept, fabricated)` counts for sampled estimates.
    pub counts: Option<(usize, usize)>,
    /// The yield fraction.
    pub yield_fraction: f64,
    /// Resource overhead factor at this point, when meaningful.
    pub overhead: Option<f64>,
}

impl YieldRecord {
    /// A Monte-Carlo yield estimate: `kept` of `samples` chiplets
    /// accepted. An empty population yields 0, not NaN.
    pub fn sampled(series: impl Into<String>, rate: f64, kept: usize, samples: usize) -> Self {
        YieldRecord {
            series: series.into(),
            rate,
            counts: Some((kept, samples)),
            yield_fraction: if samples == 0 {
                0.0
            } else {
                kept as f64 / samples as f64
            },
            overhead: None,
        }
    }

    /// A closed-form yield (e.g. the defect-intolerant baseline's
    /// defect-free probability).
    pub fn analytic(series: impl Into<String>, rate: f64, yield_fraction: f64) -> Self {
        YieldRecord {
            series: series.into(),
            rate,
            counts: None,
            yield_fraction,
            overhead: None,
        }
    }

    /// Attaches a resource overhead factor.
    pub fn with_overhead(mut self, overhead: f64) -> Self {
        self.overhead = Some(overhead);
        self
    }

    /// The yield fraction.
    pub fn fraction(&self) -> f64 {
        self.yield_fraction
    }
}

/// A typed experiment output record.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// Run header: binary name, description, and effective parameters.
    Meta {
        /// Binary / experiment name (e.g. `"fig06"`).
        name: String,
        /// One-line description.
        what: String,
        /// `"full"` or `"quick"`.
        mode: String,
        /// Chiplet samples per sweep point.
        samples: usize,
        /// Monte-Carlo shots per LER point.
        shots: usize,
        /// Base RNG seed.
        seed: u64,
    },
    /// A section title (`## ...` in TSV).
    Section(String),
    /// Commentary (`# ...` in TSV), e.g. the paper's expected findings.
    Note(String),
    /// Column names for subsequent [`Record::Row`]s.
    Columns(Vec<String>),
    /// One row of tabular data.
    Row(Vec<Value>),
    /// A logical-error-rate point.
    Ler(LerRecord),
    /// A log-log slope fit.
    Slope(SlopeFitRecord),
    /// A yield point.
    Yield(YieldRecord),
}

impl Record {
    /// Convenience constructor for a [`Record::Row`].
    pub fn row<I: IntoIterator<Item = Value>>(cells: I) -> Record {
        Record::Row(cells.into_iter().collect())
    }
}

/// A destination for experiment [`Record`]s.
pub trait Sink {
    /// Consumes one record.
    fn emit(&mut self, record: &Record);

    /// Finalizes the output (e.g. closes a JSON array). Must be called
    /// once after the last `emit`; implementations should tolerate
    /// repeated calls.
    fn finish(&mut self) {}
}

/// Discards every record (for callers that only want return values).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Sink for NullSink {
    fn emit(&mut self, _record: &Record) {}
}

/// Captures records in memory (for tests and aggregation).
#[derive(Debug, Default, Clone)]
pub struct MemorySink {
    /// Everything emitted so far.
    pub records: Vec<Record>,
}

impl Sink for MemorySink {
    fn emit(&mut self, record: &Record) {
        self.records.push(record.clone());
    }
}

/// Which typed-record header a [`TsvSink`] last wrote, so repeated
/// records of one kind share a single header line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TsvHeader {
    None,
    Ler,
    Slope,
    Yield,
}

/// Renders records as tab-separated values — the format the seed's
/// binaries printed, now driven by typed records.
#[derive(Debug)]
pub struct TsvSink<W: Write> {
    out: W,
    header: TsvHeader,
}

impl<W: Write> TsvSink<W> {
    /// Creates a TSV sink writing to `out`.
    pub fn new(out: W) -> Self {
        TsvSink {
            out,
            header: TsvHeader::None,
        }
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.out
    }

    fn typed_header(&mut self, kind: TsvHeader, columns: &str) {
        if self.header != kind {
            writeln!(self.out, "{columns}").expect("sink write");
            self.header = kind;
        }
    }
}

impl<W: Write> Sink for TsvSink<W> {
    fn emit(&mut self, record: &Record) {
        match record {
            Record::Meta {
                name,
                what,
                mode,
                samples,
                shots,
                seed,
            } => {
                writeln!(self.out, "# {name}: {what}").expect("sink write");
                writeln!(
                    self.out,
                    "# mode={} samples={samples} shots={shots} seed={seed}",
                    if mode == "full" {
                        "full (paper-scale)"
                    } else {
                        "quick (shape-reproduction)"
                    },
                )
                .expect("sink write");
            }
            Record::Section(title) => {
                writeln!(self.out, "\n## {title}").expect("sink write");
                self.header = TsvHeader::None;
            }
            Record::Note(text) => writeln!(self.out, "# {text}").expect("sink write"),
            Record::Columns(cols) => {
                writeln!(self.out, "{}", cols.join("\t")).expect("sink write");
                self.header = TsvHeader::None;
            }
            Record::Row(cells) => {
                let line: Vec<String> = cells.iter().map(Value::tsv).collect();
                writeln!(self.out, "{}", line.join("\t")).expect("sink write");
                self.header = TsvHeader::None;
            }
            Record::Ler(r) => {
                self.typed_header(
                    TsvHeader::Ler,
                    "series\tp\tshots\tfailures\tler\tci_lo\tci_hi",
                );
                let (lo, hi) = r.point.ci95();
                writeln!(
                    self.out,
                    "{}\t{}\t{}\t{}\t{}\t{}\t{}",
                    r.series,
                    fmt_compact(r.point.p),
                    r.point.shots,
                    r.point.failures,
                    fmt_compact(r.point.ler()),
                    fmt_compact(lo),
                    fmt_compact(hi)
                )
                .expect("sink write");
            }
            Record::Slope(r) => {
                self.typed_header(TsvHeader::Slope, "series\tslope\tintercept\tpoints_used");
                writeln!(
                    self.out,
                    "{}\t{}\t{}\t{}",
                    r.series,
                    fmt_compact(r.fit.slope),
                    fmt_compact(r.fit.intercept),
                    r.fit.points_used
                )
                .expect("sink write");
            }
            Record::Yield(r) => {
                self.typed_header(
                    TsvHeader::Yield,
                    "series\trate\tkept\tsamples\tyield\toverhead",
                );
                let (kept, samples) = r.counts.map_or(("-".into(), "-".into()), |(k, n)| {
                    (k.to_string(), n.to_string())
                });
                writeln!(
                    self.out,
                    "{}\t{}\t{kept}\t{samples}\t{}\t{}",
                    r.series,
                    fmt_compact(r.rate),
                    fmt_compact(r.fraction()),
                    r.overhead.map_or_else(|| "-".into(), fmt_compact)
                )
                .expect("sink write");
            }
        }
    }

    fn finish(&mut self) {
        self.out.flush().expect("sink flush");
    }
}

/// Renders records as one JSON array of objects (`--json` output).
#[derive(Debug)]
pub struct JsonSink<W: Write> {
    out: W,
    count: usize,
    finished: bool,
}

impl<W: Write> JsonSink<W> {
    /// Creates a JSON sink writing to `out`.
    pub fn new(out: W) -> Self {
        JsonSink {
            out,
            count: 0,
            finished: false,
        }
    }

    /// Consumes the sink, returning the writer. Call
    /// [`Sink::finish`] first or the array stays unterminated.
    pub fn into_inner(self) -> W {
        self.out
    }
}

/// Escapes a string for a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders an `f64` as a JSON number (`null` for non-finite values).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        // `{:?}` round-trips f64 exactly and always includes a decimal
        // point or exponent, keeping the value unambiguously a float.
        format!("{v:?}")
    } else {
        "null".into()
    }
}

fn json_value(v: &Value) -> String {
    match v {
        Value::Text(s) => json_str(s),
        Value::Num(n) => json_num(*n),
        Value::Int(i) => i.to_string(),
    }
}

impl<W: Write> Sink for JsonSink<W> {
    fn emit(&mut self, record: &Record) {
        let object = match record {
            Record::Meta {
                name,
                what,
                mode,
                samples,
                shots,
                seed,
            } => format!(
                "{{\"type\":\"meta\",\"name\":{},\"what\":{},\"mode\":{},\"samples\":{samples},\"shots\":{shots},\"seed\":{seed}}}",
                json_str(name),
                json_str(what),
                json_str(mode)
            ),
            Record::Section(title) => {
                format!("{{\"type\":\"section\",\"title\":{}}}", json_str(title))
            }
            Record::Note(text) => format!("{{\"type\":\"note\",\"text\":{}}}", json_str(text)),
            Record::Columns(cols) => {
                let cells: Vec<String> = cols.iter().map(|c| json_str(c)).collect();
                format!("{{\"type\":\"columns\",\"columns\":[{}]}}", cells.join(","))
            }
            Record::Row(cells) => {
                let cells: Vec<String> = cells.iter().map(json_value).collect();
                format!("{{\"type\":\"row\",\"cells\":[{}]}}", cells.join(","))
            }
            Record::Ler(r) => {
                let (lo, hi) = r.point.ci95();
                format!(
                    "{{\"type\":\"ler\",\"series\":{},\"p\":{},\"shots\":{},\"failures\":{},\"ler\":{},\"ci95\":[{},{}]}}",
                    json_str(&r.series),
                    json_num(r.point.p),
                    r.point.shots,
                    r.point.failures,
                    json_num(r.point.ler()),
                    json_num(lo),
                    json_num(hi)
                )
            }
            Record::Slope(r) => format!(
                "{{\"type\":\"slope\",\"series\":{},\"slope\":{},\"intercept\":{},\"points_used\":{}}}",
                json_str(&r.series),
                json_num(r.fit.slope),
                json_num(r.fit.intercept),
                r.fit.points_used
            ),
            Record::Yield(r) => {
                let (kept, samples) = r.counts.map_or(("null".into(), "null".into()), |(k, n)| {
                    (k.to_string(), n.to_string())
                });
                format!(
                    "{{\"type\":\"yield\",\"series\":{},\"rate\":{},\"kept\":{kept},\"samples\":{samples},\"yield\":{},\"overhead\":{}}}",
                    json_str(&r.series),
                    json_num(r.rate),
                    json_num(r.fraction()),
                    r.overhead.map_or_else(|| "null".into(), json_num)
                )
            }
        };
        let sep = if self.count == 0 { "[" } else { "," };
        writeln!(self.out, "{sep}{object}").expect("sink write");
        self.count += 1;
    }

    fn finish(&mut self) {
        if !self.finished {
            if self.count == 0 {
                writeln!(self.out, "[]").expect("sink write");
            } else {
                writeln!(self.out, "]").expect("sink write");
            }
            self.finished = true;
        }
        self.out.flush().expect("sink flush");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<Record> {
        vec![
            Record::Meta {
                name: "figXX".into(),
                what: "demo \"quoted\"".into(),
                mode: "quick".into(),
                samples: 2,
                shots: 100,
                seed: 7,
            },
            Record::Section("panel".into()),
            Record::Columns(vec!["a".into(), "b".into()]),
            Record::row([Value::from(1.5), Value::from("x")]),
            Record::Ler(LerRecord {
                series: "d=3".into(),
                point: LerPoint {
                    p: 1e-3,
                    shots: 100,
                    failures: 3,
                },
            }),
            Record::Yield(YieldRecord::sampled("l=13", 0.002, 8, 10)),
            Record::Note("done".into()),
        ]
    }

    #[test]
    fn tsv_sink_renders_rows_and_headers() {
        let mut sink = TsvSink::new(Vec::new());
        for r in sample_records() {
            sink.emit(&r);
        }
        sink.finish();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert!(text.contains("# figXX: demo"));
        assert!(text.contains("## panel"));
        assert!(text.contains("a\tb"));
        assert!(text.contains("series\tp\tshots\tfailures\tler\tci_lo\tci_hi"));
        assert!(text.contains("d=3\t"));
        assert!(text.contains("l=13\t"));
    }

    #[test]
    fn tsv_sink_writes_one_header_per_run_of_typed_records() {
        let mut sink = TsvSink::new(Vec::new());
        let ler = |p: f64| {
            Record::Ler(LerRecord {
                series: "s".into(),
                point: LerPoint {
                    p,
                    shots: 10,
                    failures: 1,
                },
            })
        };
        sink.emit(&ler(1e-3));
        sink.emit(&ler(2e-3));
        sink.finish();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(text.matches("series\tp").count(), 1);
    }

    #[test]
    fn json_sink_emits_a_parseable_array() {
        let mut sink = JsonSink::new(Vec::new());
        for r in sample_records() {
            sink.emit(&r);
        }
        sink.finish();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        // Structural sanity without a JSON parser: one array, balanced
        // braces, escaped quote survived.
        assert!(text.starts_with('['));
        assert!(text.trim_end().ends_with(']'));
        assert_eq!(text.matches('{').count(), text.matches('}').count());
        assert!(text.contains("\\\"quoted\\\""));
        assert!(text.contains("\"type\":\"ler\""));
        assert!(text.contains("\"overhead\":null"));
    }

    #[test]
    fn empty_json_sink_finishes_as_empty_array() {
        let mut sink = JsonSink::new(Vec::new());
        sink.finish();
        assert_eq!(String::from_utf8(sink.into_inner()).unwrap().trim(), "[]");
    }

    #[test]
    fn fmt_compact_is_compact() {
        assert_eq!(fmt_compact(0.0), "0");
        assert_eq!(fmt_compact(0.5), "0.5000");
        assert!(fmt_compact(1e-7).contains('e'));
    }
}
