//! Device assembly from a stream of fabricated chiplets (paper §4.2).
//!
//! The modular architecture fabricates chiplets, post-selects the ones
//! whose adapted code meets the quality target, and arranges the
//! survivors into a grid of logical qubits. This module simulates that
//! assembly line: it reports how many chiplets had to be fabricated to
//! fill a device — the *realized* resource overhead that the expected
//! `1/yield` factor approximates — together with the surgery quality of
//! the assembled patches' edges.

use crate::criteria::QualityTarget;
use crate::defect_model::DefectModel;
use dqec_core::adapt::AdaptedPatch;
use dqec_core::coords::Side;
use dqec_core::indicators::PatchIndicators;
use dqec_core::layout::PatchLayout;
use dqec_core::merge::merged_distance;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Parameters of a device assembly run.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DeviceSpec {
    /// Logical qubits needed (grid slots to fill).
    pub logical_qubits: usize,
    /// Chiplet width.
    pub l: u32,
    /// Defect model and rate.
    pub model: DefectModel,
    /// Per-component fabrication error rate.
    pub rate: f64,
    /// Quality target each chiplet must meet.
    pub target: QualityTarget,
    /// Whether chiplets may be rotated (data/syndrome swap) to pass.
    pub orientation_freedom: bool,
    /// Cap on fabricated chiplets before giving up (guards zero-yield
    /// parameter choices).
    pub fabrication_cap: usize,
}

/// The outcome of assembling one device.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AssemblyReport {
    /// Slots filled with accepted chiplets.
    pub placed: usize,
    /// Total chiplets fabricated (accepted + discarded).
    pub fabricated: usize,
    /// Total physical qubits fabricated.
    pub qubits_fabricated: u64,
    /// Realized overhead factor relative to the ideal
    /// `logical_qubits x (2 d_target^2 - 1)` cost.
    pub overhead: f64,
    /// Distances of the accepted patches.
    pub distances: Vec<u32>,
    /// Among accepted chiplets, how many support full-target lattice
    /// surgery on all four edges (paper Fig. 15 standard 3).
    pub surgery_clean: usize,
}

impl AssemblyReport {
    /// Realized yield of the assembly run.
    pub fn yield_fraction(&self) -> f64 {
        if self.fabricated == 0 {
            0.0
        } else {
            self.placed as f64 / self.fabricated as f64
        }
    }
}

/// Simulates fabricating chiplets until `spec.logical_qubits` accepted
/// ones have been placed (or the fabrication cap is hit).
pub fn assemble_device(spec: &DeviceSpec, seed: u64) -> AssemblyReport {
    let layout = PatchLayout::memory(spec.l);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut report = AssemblyReport {
        placed: 0,
        fabricated: 0,
        qubits_fabricated: 0,
        overhead: f64::INFINITY,
        distances: Vec::new(),
        surgery_clean: 0,
    };
    let qubits_per_chiplet = layout.num_qubits() as u64;
    while report.placed < spec.logical_qubits && report.fabricated < spec.fabrication_cap {
        report.fabricated += 1;
        report.qubits_fabricated += qubits_per_chiplet;
        let defects = spec.model.sample(&layout, spec.rate, &mut rng);
        let mut accepted = None;
        let patch = AdaptedPatch::new(layout.clone(), &defects);
        if spec.target.accepts(&PatchIndicators::of(&patch)) {
            accepted = Some((patch, defects.clone()));
        } else if spec.orientation_freedom {
            let swapped = defects.swapped_orientation(spec.l);
            let patch = AdaptedPatch::new(layout.clone(), &swapped);
            if spec.target.accepts(&PatchIndicators::of(&patch)) {
                accepted = Some((patch, swapped));
            }
        }
        let Some((patch, defects)) = accepted else {
            continue;
        };
        report.placed += 1;
        report
            .distances
            .push(PatchIndicators::of(&patch).distance());
        let clean = Side::ALL.iter().all(|&s| {
            merged_distance(&defects, spec.l, s).is_some_and(|d| d >= spec.target.distance)
        });
        if clean {
            report.surgery_clean += 1;
        }
    }
    let ideal = spec.logical_qubits as u64
        * (2 * spec.target.distance as u64 * spec.target.distance as u64 - 1);
    report.overhead = report.qubits_fabricated as f64 / ideal as f64;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(rate: f64) -> DeviceSpec {
        DeviceSpec {
            logical_qubits: 20,
            l: 7,
            model: DefectModel::LinkAndQubit,
            rate,
            target: QualityTarget::defect_free(5),
            orientation_freedom: false,
            fabrication_cap: 5_000,
        }
    }

    #[test]
    fn perfect_fabrication_needs_exactly_the_grid() {
        let report = assemble_device(&spec(0.0), 1);
        assert_eq!(report.placed, 20);
        assert_eq!(report.fabricated, 20);
        assert_eq!(report.yield_fraction(), 1.0);
        assert_eq!(report.surgery_clean, 20);
        // l=7 chiplets for a d=5 target cost 97/49 qubits each.
        assert!((report.overhead - 97.0 / 49.0).abs() < 1e-12);
    }

    #[test]
    fn defects_increase_fabrication_count() {
        let report = assemble_device(&spec(0.01), 2);
        assert_eq!(report.placed, 20);
        assert!(report.fabricated > 20, "some chiplets must be discarded");
        assert!(report.distances.iter().all(|&d| d >= 5));
    }

    #[test]
    fn orientation_freedom_reduces_fabrication() {
        let base = assemble_device(&spec(0.015), 3);
        let mut with = spec(0.015);
        with.orientation_freedom = true;
        let rot = assemble_device(&with, 3);
        assert!(
            rot.fabricated <= base.fabricated + 5,
            "rotation should not require more chiplets: {} vs {}",
            rot.fabricated,
            base.fabricated
        );
    }

    #[test]
    fn cap_stops_hopeless_assembly() {
        let mut s = spec(0.35);
        s.fabrication_cap = 50;
        let report = assemble_device(&s, 4);
        assert_eq!(report.fabricated, 50);
        assert!(report.placed < s.logical_qubits);
    }

    #[test]
    fn surgery_clean_count_is_bounded_by_placed() {
        let report = assemble_device(&spec(0.01), 5);
        assert!(report.surgery_clean <= report.placed);
    }
}
