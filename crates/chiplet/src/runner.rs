//! The unified experiment pipeline: declarative [`ExperimentSpec`]s run
//! by a [`Runner`] that caches the compiled circuit and decoding graph
//! across a whole error-rate sweep.
//!
//! The paper's Monte-Carlo evaluation is one pipeline — adapt patch →
//! generate circuit → apply noise → frame-sample → decode → fit — swept
//! over physical error rates. Rebuilding the decoder at every sweep
//! point (the old `memory_ler_curve` behaviour) re-extracts the
//! detector error model and re-runs all-pairs shortest paths per point;
//! the runner instead compiles the clean circuit *once* per patch,
//! builds the decoder once at the sweep's largest `p`, and only
//! [`reweights`](dqec_matching::Decoder::reweight) its edges per point.
//!
//! # Examples
//!
//! ```
//! use dqec_chiplet::record::NullSink;
//! use dqec_chiplet::runner::{ExperimentSpec, Runner};
//! use dqec_core::adapt::AdaptedPatch;
//! use dqec_core::layout::PatchLayout;
//! use dqec_core::DefectSet;
//!
//! let patch = AdaptedPatch::new(PatchLayout::memory(3), &DefectSet::new());
//! let spec = ExperimentSpec::memory(patch)
//!     .ps(&[4e-3, 6e-3])
//!     .shots(2_000)
//!     .seed(7)
//!     .fit(true);
//! let outcome = Runner::new().run(&spec, &mut NullSink)?;
//! assert_eq!(outcome.points.len(), 2);
//! # Ok::<(), dqec_core::CoreError>(())
//! ```

use crate::experiment::{fit_loglog, LerPoint, SlopeFit};
use crate::record::{LerRecord, Record, Sink, SlopeFitRecord};
use dqec_core::adapt::AdaptedPatch;
use dqec_core::circuit_gen::{memory_z, stability};
use dqec_core::{Coord, CoreError};
use dqec_matching::{DecodeStats, Decoder, MwpmDecoder, UfDecoder};
use dqec_sim::circuit::Circuit;
use dqec_sim::frame::FrameSampler;
use dqec_sim::noise::NoiseModel;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use std::sync::Arc;

/// Which syndrome-extraction protocol a spec runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Z-memory: initialize, repeat syndrome rounds, read out data.
    Memory,
    /// Stability: the paper's §6 experiment distinguishing a kept bad
    /// qubit from a disabled one.
    Stability,
}

/// Builds a [`Decoder`] for a clean circuit under a noise model; the
/// seam through which alternative decoders plug into the runner.
pub type DecoderBuilder = Arc<dyn Fn(&Circuit, &NoiseModel) -> Box<dyn Decoder> + Send + Sync>;

/// The built-in decoder backends selectable by name (the `--decoder`
/// flag of the reproduction binaries). Custom implementations can still
/// be plugged in directly through [`ExperimentSpec::decoder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DecoderChoice {
    /// Exact minimum-weight perfect matching ([`MwpmDecoder`]).
    #[default]
    Mwpm,
    /// Almost-linear-time weighted union-find ([`UfDecoder`]): several
    /// times faster at low physical error rates, slightly less
    /// accurate.
    Uf,
}

impl DecoderChoice {
    /// Every selectable backend, in help-text order.
    pub const ALL: &'static [DecoderChoice] = &[DecoderChoice::Mwpm, DecoderChoice::Uf];

    /// The command-line name of this backend.
    pub fn name(self) -> &'static str {
        match self {
            DecoderChoice::Mwpm => "mwpm",
            DecoderChoice::Uf => "uf",
        }
    }

    /// Parses a command-line name.
    ///
    /// # Errors
    ///
    /// Returns a message listing the valid choices when `name` is not
    /// one of them.
    pub fn parse(name: &str) -> Result<Self, String> {
        Self::ALL
            .iter()
            .copied()
            .find(|c| c.name() == name)
            .ok_or_else(|| {
                let valid: Vec<&str> = Self::ALL.iter().map(|c| c.name()).collect();
                format!(
                    "unknown decoder {name:?}; valid choices: {}",
                    valid.join(", ")
                )
            })
    }

    /// The [`DecoderBuilder`] constructing this backend (reweightable:
    /// built from the clean circuit via the decoder's `from_clean`).
    pub fn builder(self) -> DecoderBuilder {
        match self {
            DecoderChoice::Mwpm => Arc::new(|c, n| Box::new(MwpmDecoder::from_clean(c, n))),
            DecoderChoice::Uf => Arc::new(|c, n| Box::new(UfDecoder::from_clean(c, n))),
        }
    }
}

impl std::fmt::Display for DecoderChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A declarative logical-error-rate experiment: one adapted patch, one
/// protocol, a sweep of physical error rates, and sampling parameters.
///
/// Construct with [`ExperimentSpec::memory`] or
/// [`ExperimentSpec::stability`] and chain builder methods; run with
/// [`Runner::run`].
#[derive(Clone)]
pub struct ExperimentSpec {
    patch: AdaptedPatch,
    protocol: Protocol,
    ps: Vec<f64>,
    rounds: Option<u32>,
    shots: usize,
    seed: u64,
    label: String,
    fit: bool,
    bad_qubit: Option<(Coord, f64)>,
    decoder: Option<DecoderBuilder>,
}

impl std::fmt::Debug for ExperimentSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExperimentSpec")
            .field("protocol", &self.protocol)
            .field("label", &self.label)
            .field("ps", &self.ps)
            .field("rounds", &self.rounds)
            .field("shots", &self.shots)
            .field("seed", &self.seed)
            .field("fit", &self.fit)
            .field("bad_qubit", &self.bad_qubit)
            .field("custom_decoder", &self.decoder.is_some())
            .finish()
    }
}

impl ExperimentSpec {
    fn new(patch: AdaptedPatch, protocol: Protocol, label: &str) -> Self {
        ExperimentSpec {
            patch,
            protocol,
            ps: Vec::new(),
            rounds: None,
            shots: 20_000,
            seed: 0,
            label: label.to_string(),
            fit: false,
            bad_qubit: None,
            decoder: None,
        }
    }

    /// A Z-memory experiment on `patch`.
    pub fn memory(patch: AdaptedPatch) -> Self {
        Self::new(patch, Protocol::Memory, "memory")
    }

    /// A stability experiment on `patch`.
    pub fn stability(patch: AdaptedPatch) -> Self {
        Self::new(patch, Protocol::Stability, "stability")
    }

    /// The physical error rates to sweep (in the given order).
    pub fn ps(mut self, ps: &[f64]) -> Self {
        self.ps = ps.to_vec();
        self
    }

    /// Sweeps a single physical error rate.
    pub fn p(mut self, p: f64) -> Self {
        self.ps = vec![p];
        self
    }

    /// Overrides the number of syndrome rounds. The default is the
    /// patch's natural round count: its width, bounded below by the
    /// gauge-schedule requirement (see [`default_rounds`]).
    pub fn rounds(mut self, rounds: u32) -> Self {
        self.rounds = Some(rounds);
        self
    }

    /// Monte-Carlo shots per sweep point (default 20 000).
    pub fn shots(mut self, shots: usize) -> Self {
        self.shots = shots;
        self
    }

    /// Base RNG seed (default 0). Each sweep point perturbs it by its
    /// index; each 4096-shot batch gets its own ChaCha8 stream, so
    /// results are a pure function of the spec — independent of thread
    /// count and machine.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Series label carried into emitted [`Record`]s.
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Also emit a log-log slope fit over the sweep (default off).
    pub fn fit(mut self, fit: bool) -> Self {
        self.fit = fit;
        self
    }

    /// Gives the data qubit at `coord` an elevated *absolute* two-qubit
    /// error rate (the paper's §6 cutoff-fidelity study).
    pub fn bad_qubit(mut self, coord: Coord, p_bad: f64) -> Self {
        self.bad_qubit = Some((coord, p_bad));
        self
    }

    /// Plugs in an alternative decoder implementation; the default
    /// builds a reweightable [`MwpmDecoder`].
    pub fn decoder(mut self, builder: DecoderBuilder) -> Self {
        self.decoder = Some(builder);
        self
    }

    /// The series label.
    pub fn series(&self) -> &str {
        &self.label
    }

    /// The effective syndrome-round count.
    pub fn effective_rounds(&self) -> u32 {
        self.rounds.unwrap_or_else(|| default_rounds(&self.patch))
    }

    /// The physical error rates this spec sweeps, in sweep order.
    pub fn sweep_ps(&self) -> &[f64] {
        &self.ps
    }

    /// The Monte-Carlo shot target per sweep point.
    pub fn target_shots(&self) -> usize {
        self.shots
    }

    /// The base RNG seed.
    pub fn base_seed(&self) -> u64 {
        self.seed
    }

    /// Whether a log-log slope fit over the sweep was requested.
    pub fn wants_fit(&self) -> bool {
        self.fit
    }

    /// The adapted patch the experiment runs on.
    pub fn patch(&self) -> &AdaptedPatch {
        &self.patch
    }

    /// A stable 64-bit digest of everything that determines this spec's
    /// Monte-Carlo tallies: protocol, patch geometry and defects, sweep
    /// points, rounds, shots, seed, label, and the bad-qubit override.
    /// Sweep checkpoints persist it so a state file is never resumed
    /// against a different plan. (The decoder backend is *not* covered
    /// — builders are opaque closures — so callers mix a backend tag
    /// into their own fingerprints.)
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.word(match self.protocol {
            Protocol::Memory => 1,
            Protocol::Stability => 2,
        });
        h.bytes(self.label.as_bytes());
        let layout = self.patch.layout();
        h.word(u64::from(layout.width()) << 32 | u64::from(layout.height()));
        let defects = self.patch.defects();
        for c in &defects.data {
            h.word(coord_word(*c));
        }
        h.word(0x5e9a_4a7e);
        for c in &defects.synd {
            h.word(coord_word(*c));
        }
        h.word(0x5e9a_4a7f);
        for (a, b) in &defects.links {
            h.word(coord_word(*a));
            h.word(coord_word(*b));
        }
        h.word(self.ps.len() as u64);
        for p in &self.ps {
            h.word(p.to_bits());
        }
        h.word(u64::from(self.effective_rounds()));
        h.word(self.shots as u64);
        h.word(self.seed);
        h.word(u64::from(self.fit));
        if let Some((c, p_bad)) = self.bad_qubit {
            h.word(coord_word(c));
            h.word(p_bad.to_bits());
        }
        h.finish()
    }
}

/// Packs a coordinate into one hash word.
fn coord_word(c: Coord) -> u64 {
    ((c.x as u32 as u64) << 32) | c.y as u32 as u64
}

/// Incremental FNV-1a over words and byte strings — the hash behind
/// [`ExperimentSpec::fingerprint`], shared with the sweep/bench layers
/// for checkpoint salts so every fingerprint ingredient mixes through
/// one implementation.
#[derive(Debug, Clone)]
pub struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv {
    /// A hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    /// Mixes one 64-bit word (little-endian byte order).
    pub fn word(&mut self, w: u64) {
        for b in w.to_le_bytes() {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    /// Mixes a length-prefixed byte string.
    pub fn bytes(&mut self, bs: &[u8]) {
        self.word(bs.len() as u64);
        for &b in bs {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Syndrome rounds used for a patch's experiment by default: its
/// width, bounded below by the gauge-schedule requirement (each
/// super-stabilizer needs `2 × repetitions` rounds to commute through
/// its gauge schedule).
pub fn default_rounds(patch: &AdaptedPatch) -> u32 {
    let need = patch
        .clusters()
        .iter()
        .filter(|c| c.has_gauges())
        .map(|c| 2 * c.repetitions)
        .max()
        .unwrap_or(1);
    patch.layout().width().max(need)
}

/// What a [`Runner::run`] measured.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// One LER point per swept physical error rate, in sweep order.
    pub points: Vec<LerPoint>,
    /// The log-log slope fit, when requested and measurable.
    pub fit: Option<SlopeFit>,
}

/// The per-batch ChaCha8 stream seed for a sweep point: `point_seed` is
/// the point's base seed (spec seed + point index) and `batch` its
/// fixed-size batch index. One batch = one independent seeded stream,
/// which is what makes tallies a pure function of the spec — and lets
/// the sweep engine extend a point's tally batch-by-batch (its
/// checkpoint cursor is the next batch index) bit-exactly.
pub fn batch_seed(point_seed: u64, batch: u64) -> u64 {
    point_seed ^ (batch + 1).wrapping_mul(0xd134_2543_de82_ef95)
}

/// An [`ExperimentSpec`] compiled for repeated sampling: the clean
/// circuit generated once, the decoder built once (at the sweep's
/// largest `p`) and reweighted per point, and batch-granular sampling
/// with the standard per-batch seeding.
///
/// [`Runner::run`] is a thin loop over this seam; the `dqec_sweep`
/// engine drives it directly so adaptive shot allocation can revisit a
/// point across allocation rounds without recompiling anything.
pub struct CompiledExperiment {
    spec: ExperimentSpec,
    circuit: Circuit,
    bad: Option<(u32, f64)>,
    build: DecoderBuilder,
    decoder: Box<dyn Decoder>,
    noisy: Option<Circuit>,
    current_point: Option<usize>,
    warned_rebuild: bool,
}

impl std::fmt::Debug for CompiledExperiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledExperiment")
            .field("spec", &self.spec)
            .field("current_point", &self.current_point)
            .finish_non_exhaustive()
    }
}

impl CompiledExperiment {
    /// Compiles `spec`: generates the clean circuit, resolves the
    /// bad-qubit override, and builds the decoder at the sweep's
    /// largest `p` (a template built at `p = 0` would have no
    /// mechanisms to reweight).
    ///
    /// # Errors
    ///
    /// Propagates circuit-generation failures (degenerate patch, no
    /// observable path, too few rounds) and rejects a `bad_qubit`
    /// coordinate that is not an active circuit qubit.
    pub fn new(spec: &ExperimentSpec) -> Result<Self, CoreError> {
        let _span = dqec_obs::trace::span("chiplet.compile");
        let rounds = spec.effective_rounds();
        let exp = match spec.protocol {
            Protocol::Memory => memory_z(&spec.patch, rounds)?,
            Protocol::Stability => stability(&spec.patch, rounds)?,
        };
        let bad = match spec.bad_qubit {
            None => None,
            Some((coord, p_bad)) => {
                let q = *exp
                    .qubit_of
                    .get(&coord)
                    .ok_or(CoreError::MalformedSyndromeGraph {
                        detail: format!("bad qubit {coord} is not an active circuit qubit"),
                    })?;
                Some((q, p_bad))
            }
        };
        let template_p = spec.ps.iter().fold(0.0f64, |a, &b| a.max(b));
        let build: DecoderBuilder = spec
            .decoder
            .clone()
            .unwrap_or_else(|| Arc::new(|c, n| Box::new(MwpmDecoder::from_clean(c, n))));
        let template_noise = match bad {
            Some((q, p_bad)) => NoiseModel::new(template_p).with_bad_qubit(q, p_bad),
            None => NoiseModel::new(template_p),
        };
        let decoder = build(&exp.circuit, &template_noise);
        Ok(CompiledExperiment {
            spec: spec.clone(),
            circuit: exp.circuit,
            bad,
            build,
            decoder,
            noisy: None,
            current_point: None,
            warned_rebuild: false,
        })
    }

    /// The spec this experiment was compiled from.
    pub fn spec(&self) -> &ExperimentSpec {
        &self.spec
    }

    /// The number of sweep points.
    pub fn num_points(&self) -> usize {
        self.spec.ps.len()
    }

    /// The base RNG seed of sweep point `point` (each point perturbs
    /// the spec seed by its index).
    pub fn point_seed(&self, point: usize) -> u64 {
        self.spec.seed.wrapping_add(point as u64)
    }

    fn noise_at(&self, p: f64) -> NoiseModel {
        let model = NoiseModel::new(p);
        match self.bad {
            Some((q, p_bad)) => model.with_bad_qubit(q, p_bad),
            None => model,
        }
    }

    /// Retargets the decoder and noisy circuit at sweep point `point`:
    /// reweights the decoder in place, rebuilding it from the clean
    /// circuit when it declines (surfaced on stderr once per compiled
    /// experiment, since the fallback silently multiplies sweep time by
    /// the decoder-construction cost).
    ///
    /// # Panics
    ///
    /// Panics if `point` is out of range.
    pub fn select_point(&mut self, point: usize) {
        assert!(point < self.spec.ps.len(), "sweep point out of range");
        if self.current_point == Some(point) {
            return;
        }
        let p = self.spec.ps[point];
        let noise = self.noise_at(p);
        if !self.decoder.reweight(&noise) {
            if !self.warned_rebuild {
                self.warned_rebuild = true;
                eprintln!(
                    "[runner] series {:?}: decoder declined reweighting at p={p}; \
                     rebuilding the decoder at every sweep point",
                    self.spec.label
                );
            }
            self.decoder = (self.build)(&self.circuit, &noise);
        }
        self.noisy = Some(noise.apply(&self.circuit));
        self.current_point = Some(point);
    }

    /// Samples and decodes batches `batches` of the currently selected
    /// point's shot stream, in parallel, and returns the merged tally.
    ///
    /// Batch `b` covers shots `[b·batch, (b+1)·batch)` of the point's
    /// conceptual shot stream, truncated by `shots_bound` (the total
    /// shot target; pass `usize::MAX` for untruncated full batches).
    /// Each batch is an independent ChaCha8 stream via [`batch_seed`],
    /// so any union of disjoint batch ranges tallies exactly like one
    /// uninterrupted run — the foundation of checkpoint/resume.
    ///
    /// # Panics
    ///
    /// Panics if no point is selected ([`Self::select_point`]).
    pub fn sample_batches(
        &self,
        batches: std::ops::Range<u64>,
        batch: usize,
        shots_bound: usize,
    ) -> DecodeStats {
        let point = self.current_point.expect("select_point before sampling");
        self.sample_batches_with_seed(batches, batch, shots_bound, self.point_seed(point))
    }

    /// [`Self::sample_batches`] with an explicit point seed instead of
    /// the spec-derived one. This is the decode-service entry point: a
    /// cached compiled experiment (compiled under a normalized spec so
    /// requests differing only in seed/shots share one entry) serves
    /// each request under that request's own seed, and tallies stay a
    /// pure function of `(circuit, decoder, seed, batch ranges)` — byte
    /// -identical to a one-shot [`Runner`] run with the same seed.
    ///
    /// # Panics
    ///
    /// Panics if no point is selected ([`Self::select_point`]).
    pub fn sample_batches_with_seed(
        &self,
        batches: std::ops::Range<u64>,
        batch: usize,
        shots_bound: usize,
        seed: u64,
    ) -> DecodeStats {
        let _span = dqec_obs::trace::span("chiplet.sample");
        assert!(self.current_point.is_some(), "select_point before sampling");
        let noisy = self.noisy.as_ref().expect("noisy circuit built");
        let batch = batch.max(1);
        let decoder = self.decoder.as_ref();
        let results: Vec<DecodeStats> = batches
            .into_par_iter()
            .map(|b| {
                let lo = (b as usize).saturating_mul(batch);
                let n = batch.min(shots_bound.saturating_sub(lo));
                if n == 0 {
                    return DecodeStats::new(decoder.num_observables());
                }
                let sampler = FrameSampler::new(noisy);
                let mut rng = ChaCha8Rng::seed_from_u64(batch_seed(seed, b));
                decoder.decode_batch(&sampler.sample(n, &mut rng))
            })
            .collect();
        let mut stats = DecodeStats::new(self.decoder.num_observables());
        for s in &results {
            stats.merge(s);
        }
        stats
    }
}

/// Executes [`ExperimentSpec`]s with circuit and decoding-graph reuse.
///
/// The runner compiles the spec's circuit once, builds the decoder once
/// at the sweep's largest `p`, and per sweep point only reweights the
/// decoder's edges (falling back to a rebuild if the decoder declines),
/// samples shots in parallel 4096-shot ChaCha8-seeded batches, and
/// emits a typed [`Record`] per point through the given [`Sink`].
#[derive(Debug, Clone)]
pub struct Runner {
    batch: usize,
}

impl Default for Runner {
    fn default() -> Self {
        Runner { batch: 4096 }
    }
}

impl Runner {
    /// A runner with the default 4096-shot batch size.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the per-thread batch size (mainly for tests).
    pub fn batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Runs `spec`, emitting one [`Record::Ler`] per sweep point (plus
    /// a [`Record::Slope`] when the spec requests a fit) and returning
    /// the measured points.
    ///
    /// # Errors
    ///
    /// Propagates circuit-generation failures (degenerate patch, no
    /// observable path, too few rounds) and rejects a `bad_qubit`
    /// coordinate that is not an active circuit qubit.
    pub fn run(&self, spec: &ExperimentSpec, sink: &mut dyn Sink) -> Result<RunOutcome, CoreError> {
        let mut compiled = CompiledExperiment::new(spec)?;
        let mut points = Vec::with_capacity(spec.ps.len());
        for (i, &p) in spec.ps.iter().enumerate() {
            compiled.select_point(i);
            let num_batches = spec.shots.div_ceil(self.batch.max(1)) as u64;
            let stats = compiled.sample_batches(0..num_batches, self.batch, spec.shots);
            let point = LerPoint {
                p,
                shots: stats.shots,
                failures: stats.failures.first().copied().unwrap_or(0),
            };
            sink.emit(&Record::Ler(LerRecord {
                series: spec.label.clone(),
                point,
            }));
            points.push(point);
        }

        let fit = if spec.fit {
            let fit = fit_loglog(&points);
            if let Some(fit) = fit {
                sink.emit(&Record::Slope(SlopeFitRecord {
                    series: spec.label.clone(),
                    fit,
                }));
            }
            fit
        } else {
            None
        };
        Ok(RunOutcome { points, fit })
    }

    /// Runs `spec` without emitting records (for callers that aggregate
    /// the returned points themselves).
    ///
    /// # Errors
    ///
    /// Same as [`Runner::run`].
    pub fn collect(&self, spec: &ExperimentSpec) -> Result<RunOutcome, CoreError> {
        self.run(spec, &mut crate::record::NullSink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{memory_ler, stability_ler};
    use crate::record::MemorySink;
    use dqec_core::defect::DefectSet;
    use dqec_core::layout::PatchLayout;

    fn patch(l: u32) -> AdaptedPatch {
        AdaptedPatch::new(PatchLayout::memory(l), &DefectSet::new())
    }

    #[test]
    fn runner_sweep_matches_per_point_experiments_statistically() {
        // The runner reuses one decoder across the sweep; the legacy
        // path rebuilds per point (and seeds differently), so compare
        // rates, not raw tallies.
        let ps = [8e-3, 1.2e-2];
        let spec = ExperimentSpec::memory(patch(3))
            .ps(&ps)
            .rounds(3)
            .shots(20_000)
            .seed(5);
        let outcome = Runner::new().collect(&spec).unwrap();
        for (pt, &p) in outcome.points.iter().zip(&ps) {
            let legacy = memory_ler(&patch(3), p, 3, 20_000, 99).unwrap();
            let (lo, hi) = legacy.ci95();
            let (plo, phi) = pt.ci95();
            assert!(
                phi > lo && plo < hi,
                "runner CI ({plo}, {phi}) disjoint from legacy ({lo}, {hi}) at p={p}"
            );
        }
    }

    #[test]
    fn runner_emits_one_ler_record_per_point_plus_fit() {
        let spec = ExperimentSpec::memory(patch(3))
            .ps(&[1e-2, 2e-2])
            .rounds(3)
            .shots(4_000)
            .seed(1)
            .label("d=3")
            .fit(true);
        let mut sink = MemorySink::default();
        let outcome = Runner::new().run(&spec, &mut sink).unwrap();
        let lers = sink
            .records
            .iter()
            .filter(|r| matches!(r, Record::Ler(_)))
            .count();
        assert_eq!(lers, 2);
        if outcome.fit.is_some() {
            assert!(sink
                .records
                .iter()
                .any(|r| matches!(r, Record::Slope(s) if s.series == "d=3")));
        }
    }

    #[test]
    fn runner_is_deterministic_for_a_spec() {
        let spec = ExperimentSpec::memory(patch(3))
            .ps(&[5e-3, 1e-2])
            .rounds(3)
            .shots(8_000)
            .seed(42);
        let a = Runner::new().collect(&spec).unwrap();
        let b = Runner::new().collect(&spec).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn stability_spec_with_bad_qubit_behaves_like_legacy() {
        let p = AdaptedPatch::new(PatchLayout::stability(4, 4), &DefectSet::new());
        let bad = Coord::new(3, 3);
        let spec = ExperimentSpec::stability(p.clone())
            .p(4e-3)
            .rounds(8)
            .shots(20_000)
            .seed(7)
            .bad_qubit(bad, 0.25);
        let outcome = Runner::new().collect(&spec).unwrap();
        let legacy = stability_ler(&p, 4e-3, Some((bad, 0.25)), 8, 20_000, 7).unwrap();
        // Both should see the elevated failure rate of the bad qubit.
        assert!(outcome.points[0].ler() > 0.01, "{:?}", outcome.points);
        assert!(legacy.ler() > 0.01);
    }

    #[test]
    fn bad_qubit_off_patch_is_rejected() {
        let spec = ExperimentSpec::stability(AdaptedPatch::new(
            PatchLayout::stability(4, 4),
            &DefectSet::new(),
        ))
        .p(4e-3)
        .rounds(8)
        .shots(100)
        .bad_qubit(Coord::new(999, 999), 0.1);
        assert!(Runner::new().collect(&spec).is_err());
    }

    #[test]
    fn decoder_choice_parses_and_lists_valid_names() {
        assert_eq!(DecoderChoice::parse("mwpm").unwrap(), DecoderChoice::Mwpm);
        assert_eq!(DecoderChoice::parse("uf").unwrap(), DecoderChoice::Uf);
        let err = DecoderChoice::parse("blossom5").unwrap_err();
        assert!(err.contains("mwpm") && err.contains("uf"), "{err}");
        assert_eq!(DecoderChoice::default(), DecoderChoice::Mwpm);
    }

    #[test]
    fn uf_decoder_choice_runs_a_sweep_end_to_end() {
        // The union-find backend rides the same runner path: compiled
        // once, reweighted per point, statistically consistent with the
        // MWPM backend on the same spec.
        let ps = [8e-3, 1.2e-2];
        let spec = ExperimentSpec::memory(patch(3))
            .ps(&ps)
            .rounds(3)
            .shots(20_000)
            .seed(5);
        let uf = Runner::new()
            .collect(&spec.clone().decoder(DecoderChoice::Uf.builder()))
            .unwrap();
        let mwpm = Runner::new()
            .collect(&spec.decoder(DecoderChoice::Mwpm.builder()))
            .unwrap();
        for (u, m) in uf.points.iter().zip(&mwpm.points) {
            let (ulo, uhi) = u.ci95();
            let (mlo, mhi) = m.ci95();
            assert!(
                uhi > mlo && ulo < mhi,
                "uf CI ({ulo}, {uhi}) disjoint from mwpm ({mlo}, {mhi}) at p={}",
                u.p
            );
        }
    }

    #[test]
    fn sweep_including_p_zero_is_noiseless_there() {
        let spec = ExperimentSpec::memory(patch(3))
            .ps(&[0.0, 1e-2])
            .rounds(3)
            .shots(2_000)
            .seed(3);
        let outcome = Runner::new().collect(&spec).unwrap();
        assert_eq!(outcome.points[0].failures, 0, "p=0 must never fail");
        assert!(outcome.points[1].failures > 0, "p=1e-2 should fail some");
    }
}
