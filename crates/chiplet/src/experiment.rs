//! Monte-Carlo logical-error-rate experiments and log-log slope fits.
//!
//! Runs the paper's memory and stability experiments on adapted
//! patches: generate the syndrome circuit, apply the circuit-level
//! noise model, sample shots with the Pauli-frame simulator, decode
//! with MWPM, and estimate the logical error rate. The "slope" of
//! log(LER) versus log(p) over a low-p window is the paper's measure of
//! effective distance (Figs. 5–11).

use dqec_core::adapt::AdaptedPatch;
use dqec_core::circuit_gen::{memory_z, stability};
use dqec_core::CoreError;
use dqec_matching::{DecodeStats, Decoder, MwpmDecoder};
use dqec_sim::circuit::Circuit;
use dqec_sim::frame::FrameSampler;
use dqec_sim::noise::NoiseModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Samples `shots` executions of the noisy circuit and decodes them
/// with `decoder`, spreading `batch`-sized chunks over CPU cores. Each
/// chunk's RNG comes from `make_rng(chunk_index)`, so results are
/// independent of thread count for any deterministic seeding policy.
pub fn sample_and_decode_with<D, R, F>(
    noisy: &Circuit,
    decoder: &D,
    shots: usize,
    batch: usize,
    make_rng: F,
) -> DecodeStats
where
    D: Decoder + ?Sized,
    R: Rng,
    F: Fn(u64) -> R + Sync,
{
    let batch = batch.max(1);
    let num_batches = shots.div_ceil(batch);
    let results: Vec<DecodeStats> = (0..num_batches)
        .into_par_iter()
        .map(|b| {
            let sampler = FrameSampler::new(noisy);
            let n = batch.min(shots - b * batch);
            let mut rng = make_rng(b as u64);
            let shot_batch = sampler.sample(n, &mut rng);
            decoder.decode_batch(&shot_batch)
        })
        .collect();
    let mut stats = DecodeStats::new(decoder.num_observables());
    for s in &results {
        stats.merge(s);
    }
    stats
}

/// Samples `shots` noisy executions of `clean` under `noise` and
/// decodes them, spreading work over CPU cores. Each 4096-shot batch
/// is seeded by its index, so results are independent of thread count.
///
/// Builds a fresh [`MwpmDecoder`] per call; sweeps over many `p` values
/// on one circuit should use `crate::runner::Runner`, which reuses the
/// decoding graph across the sweep.
pub fn sample_and_decode(
    clean: &Circuit,
    noise: &NoiseModel,
    shots: usize,
    seed: u64,
) -> DecodeStats {
    let noisy = noise.apply(clean);
    let decoder = MwpmDecoder::new(&noisy);
    sample_and_decode_with(&noisy, &decoder, shots, 4096, |b| {
        StdRng::seed_from_u64(seed ^ (b + 1).wrapping_mul(0xd134_2543_de82_ef95))
    })
}

/// One logical-error-rate measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LerPoint {
    /// Physical (two-qubit gate) error rate.
    pub p: f64,
    /// Shots sampled.
    pub shots: usize,
    /// Logical failures observed.
    pub failures: usize,
}

impl LerPoint {
    /// The logical error rate estimate (0 when no shots were sampled,
    /// so degenerate sweep points render as a rate instead of NaN).
    pub fn ler(&self) -> f64 {
        if self.shots == 0 {
            0.0
        } else {
            self.failures as f64 / self.shots as f64
        }
    }

    /// The 95% Wilson confidence interval of the logical error rate, so
    /// curves carry error bars like the paper's plots. With no shots
    /// the interval is vacuous: `(0, 1)`.
    pub fn ci95(&self) -> (f64, f64) {
        if self.shots == 0 {
            return (0.0, 1.0);
        }
        let n = self.shots as f64;
        let p = self.failures as f64 / n;
        let z = 1.96f64;
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
        ((center - half).max(0.0), (center + half).min(1.0))
    }
}

/// Runs a Z-memory experiment at one physical error rate.
///
/// # Errors
///
/// Propagates circuit-generation failures (degenerate patch, no
/// observable path, too few rounds).
pub fn memory_ler(
    patch: &AdaptedPatch,
    p: f64,
    rounds: u32,
    shots: usize,
    seed: u64,
) -> Result<LerPoint, CoreError> {
    let exp = memory_z(patch, rounds)?;
    let stats = sample_and_decode(&exp.circuit, &NoiseModel::new(p), shots, seed);
    Ok(LerPoint {
        p,
        shots: stats.shots,
        failures: stats.failures[0],
    })
}

/// Runs a stability experiment; `bad_qubit` optionally assigns one data
/// qubit an elevated absolute two-qubit error rate (paper §6).
///
/// # Errors
///
/// Propagates circuit-generation failures.
pub fn stability_ler(
    patch: &AdaptedPatch,
    p: f64,
    bad_qubit: Option<(dqec_core::Coord, f64)>,
    rounds: u32,
    shots: usize,
    seed: u64,
) -> Result<LerPoint, CoreError> {
    let exp = stability(patch, rounds)?;
    let mut noise = NoiseModel::new(p);
    if let Some((coord, p_bad)) = bad_qubit {
        let q = *exp
            .qubit_of
            .get(&coord)
            .ok_or(CoreError::MalformedSyndromeGraph {
                detail: format!("bad qubit {coord} is not an active circuit qubit"),
            })?;
        noise = noise.with_bad_qubit(q, p_bad);
    }
    let stats = sample_and_decode(&exp.circuit, &noise, shots, seed);
    Ok(LerPoint {
        p,
        shots: stats.shots,
        failures: stats.failures[0],
    })
}

/// Sweeps a memory experiment over physical error rates.
///
/// # Errors
///
/// Propagates circuit-generation failures.
pub fn memory_ler_curve(
    patch: &AdaptedPatch,
    ps: &[f64],
    rounds: u32,
    shots: usize,
    seed: u64,
) -> Result<Vec<LerPoint>, CoreError> {
    ps.iter()
        .enumerate()
        .map(|(i, &p)| memory_ler(patch, p, rounds, shots, seed.wrapping_add(i as u64)))
        .collect()
}

/// A least-squares line through log-log LER data.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SlopeFit {
    /// Gradient of ln(LER) vs ln(p) — the paper's "slope", ≈ αd.
    pub slope: f64,
    /// Intercept of the fit.
    pub intercept: f64,
    /// Points used (zero-failure points are skipped).
    pub points_used: usize,
}

/// Fits `ln(LER) = slope · ln(p) + intercept`, skipping points with no
/// observed failures. Returns `None` with fewer than two usable points.
pub fn fit_loglog(points: &[LerPoint]) -> Option<SlopeFit> {
    let usable: Vec<(f64, f64)> = points
        .iter()
        .filter(|pt| pt.failures > 0 && pt.p > 0.0)
        .map(|pt| (pt.p.ln(), pt.ler().ln()))
        .collect();
    if usable.len() < 2 {
        return None;
    }
    let n = usable.len() as f64;
    let sx: f64 = usable.iter().map(|(x, _)| x).sum();
    let sy: f64 = usable.iter().map(|(_, y)| y).sum();
    let sxx: f64 = usable.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = usable.iter().map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    Some(SlopeFit {
        slope,
        intercept,
        points_used: usable.len(),
    })
}

/// Estimates a patch's slope over a p-window (the paper samples
/// 5·10⁻⁴ ≤ p ≤ 2·10⁻³; scaled-down runs use a higher window so
/// failures are observable with fewer shots).
///
/// # Errors
///
/// Propagates circuit-generation failures.
pub fn patch_slope(
    patch: &AdaptedPatch,
    ps: &[f64],
    rounds: u32,
    shots: usize,
    seed: u64,
) -> Result<Option<SlopeFit>, CoreError> {
    let curve = memory_ler_curve(patch, ps, rounds, shots, seed)?;
    Ok(fit_loglog(&curve))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqec_core::defect::DefectSet;
    use dqec_core::layout::PatchLayout;
    use dqec_core::Coord;

    fn patch(l: u32) -> AdaptedPatch {
        AdaptedPatch::new(PatchLayout::memory(l), &DefectSet::new())
    }

    #[test]
    fn noiseless_memory_never_fails() {
        let pt = memory_ler(&patch(3), 0.0, 3, 2000, 1).unwrap();
        assert_eq!(pt.failures, 0);
    }

    #[test]
    fn memory_ler_is_reasonable_at_high_p() {
        let pt = memory_ler(&patch(3), 0.02, 3, 4000, 2).unwrap();
        let ler = pt.ler();
        assert!(ler > 0.0 && ler < 0.5, "ler={ler}");
    }

    #[test]
    fn d5_beats_d3_below_threshold() {
        let p = 0.004;
        let l3 = memory_ler(&patch(3), p, 3, 30_000, 3).unwrap().ler();
        let l5 = memory_ler(&patch(5), p, 5, 30_000, 4).unwrap().ler();
        assert!(l5 < l3, "d=5 ({l5}) should beat d=3 ({l3}) at p={p}");
    }

    #[test]
    fn defective_patch_decodes() {
        let mut d = DefectSet::new();
        d.add_data(Coord::new(5, 5));
        let p = AdaptedPatch::new(PatchLayout::memory(5), &d);
        let pt = memory_ler(&p, 0.01, 4, 8000, 5).unwrap();
        assert!(pt.ler() < 0.5);
    }

    #[test]
    fn stability_runs_and_fails_rarely_at_low_p() {
        let p = AdaptedPatch::new(PatchLayout::stability(4, 4), &DefectSet::new());
        let pt = stability_ler(&p, 0.002, None, 8, 8000, 6).unwrap();
        assert!(pt.ler() < 0.2, "ler={}", pt.ler());
    }

    #[test]
    fn stability_with_bad_qubit_fails_more() {
        let p = AdaptedPatch::new(PatchLayout::stability(4, 4), &DefectSet::new());
        let clean = stability_ler(&p, 0.004, None, 8, 20_000, 7).unwrap().ler();
        let bad = stability_ler(&p, 0.004, Some((Coord::new(3, 3), 0.25)), 8, 20_000, 7)
            .unwrap()
            .ler();
        assert!(bad > clean, "bad qubit should hurt: {clean} vs {bad}");
    }

    #[test]
    fn fit_loglog_recovers_synthetic_slope() {
        let points: Vec<LerPoint> = [1e-3, 2e-3, 4e-3]
            .iter()
            .map(|&p: &f64| LerPoint {
                p,
                shots: 1_000_000,
                failures: (1e6 * 30.0 * p.powi(2)) as usize,
            })
            .collect();
        let fit = fit_loglog(&points).unwrap();
        assert!((fit.slope - 2.0).abs() < 0.05, "slope={}", fit.slope);
    }

    #[test]
    fn zero_shot_point_has_zero_ler_and_vacuous_interval() {
        let pt = LerPoint {
            p: 1e-3,
            shots: 0,
            failures: 0,
        };
        assert_eq!(pt.ler(), 0.0);
        assert_eq!(pt.ci95(), (0.0, 1.0));
    }

    #[test]
    fn ci95_brackets_the_estimate() {
        let pt = LerPoint {
            p: 1e-3,
            shots: 1000,
            failures: 37,
        };
        let (lo, hi) = pt.ci95();
        assert!(lo < pt.ler() && pt.ler() < hi);
        assert!(lo > 0.02 && hi < 0.06);
    }

    #[test]
    fn fit_skips_zero_failure_points() {
        let points = vec![
            LerPoint {
                p: 1e-3,
                shots: 100,
                failures: 0,
            },
            LerPoint {
                p: 2e-3,
                shots: 100,
                failures: 1,
            },
        ];
        assert!(fit_loglog(&points).is_none());
    }
}
