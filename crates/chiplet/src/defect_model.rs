//! Fabrication defect models (paper §4).
//!
//! Two models: faulty links only (fixed-frequency transmons with fixed
//! couplers, where frequency collisions dominate), and links and qubits
//! faulty at the same rate (tunable transmons, where couplers are as
//! intricate as qubits).

use dqec_core::defect::DefectSet;
use dqec_core::layout::PatchLayout;
use rand::Rng;

/// Which components can be fabrication-faulty.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DefectModel {
    /// Only links (couplers) fail.
    LinkOnly,
    /// Links and qubits (data and syndrome) fail at the same rate.
    LinkAndQubit,
}

impl DefectModel {
    /// Samples a defect set for one fabricated chiplet.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not in `[0, 1]`.
    pub fn sample<R: Rng>(self, layout: &PatchLayout, rate: f64, rng: &mut R) -> DefectSet {
        assert!((0.0..=1.0).contains(&rate), "rate {rate} out of range");
        let mut defects = DefectSet::new();
        if rate == 0.0 {
            return defects;
        }
        for (d, f) in layout.links() {
            if rng.gen_bool(rate) {
                defects.add_link(d, f);
            }
        }
        if self == DefectModel::LinkAndQubit {
            for d in layout.data_sites() {
                if rng.gen_bool(rate) {
                    defects.add_data(d);
                }
            }
            for f in layout.face_sites() {
                if rng.gen_bool(rate) {
                    defects.add_synd(f);
                }
            }
        }
        defects
    }

    /// The probability that a chiplet is completely defect-free — the
    /// yield of the defect-intolerant baseline, in closed form.
    pub fn defect_free_probability(self, layout: &PatchLayout, rate: f64) -> f64 {
        let links = layout.links().len() as f64;
        let qubits = layout.num_qubits() as f64;
        match self {
            DefectModel::LinkOnly => (1.0 - rate).powf(links),
            DefectModel::LinkAndQubit => (1.0 - rate).powf(links + qubits),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_rate_means_no_defects() {
        let layout = PatchLayout::memory(5);
        let mut rng = StdRng::seed_from_u64(1);
        let d = DefectModel::LinkAndQubit.sample(&layout, 0.0, &mut rng);
        assert!(d.is_empty());
    }

    #[test]
    fn link_only_never_marks_qubits() {
        let layout = PatchLayout::memory(7);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let d = DefectModel::LinkOnly.sample(&layout, 0.05, &mut rng);
            assert!(d.data.is_empty() && d.synd.is_empty());
        }
    }

    #[test]
    fn sampled_density_matches_rate() {
        let layout = PatchLayout::memory(9);
        let mut rng = StdRng::seed_from_u64(3);
        let rate = 0.02;
        let mut total_links = 0usize;
        let trials = 2000;
        for _ in 0..trials {
            total_links += DefectModel::LinkOnly
                .sample(&layout, rate, &mut rng)
                .links
                .len();
        }
        let expect = rate * layout.links().len() as f64 * trials as f64;
        let got = total_links as f64;
        assert!(
            (got - expect).abs() < 0.1 * expect,
            "got {got}, expect {expect}"
        );
    }

    #[test]
    fn defect_free_probability_matches_paper_l27() {
        // Paper Table 1: l=27, rate 0.1% on qubits+links -> yield 1.4%.
        let layout = PatchLayout::memory(27);
        let y = DefectModel::LinkAndQubit.defect_free_probability(&layout, 0.001);
        assert!((y - 0.014).abs() < 0.001, "got {y}");
    }

    #[test]
    fn defect_free_probability_monotone_in_rate() {
        let layout = PatchLayout::memory(11);
        let y1 = DefectModel::LinkOnly.defect_free_probability(&layout, 0.001);
        let y2 = DefectModel::LinkOnly.defect_free_probability(&layout, 0.01);
        assert!(y1 > y2);
    }
}
