//! Post-selection criteria for defective chiplets (paper §4.2).
//!
//! The paper's chosen criterion uses the adapted code distance as the
//! primary indicator and the number of minimum-weight logical operators
//! as a tie-breaker against the defect-free reference: a chiplet is
//! kept when it performs at least as well as a defect-free patch of the
//! target distance. The baseline criterion ranks chiplets by their raw
//! faulty-qubit count (Fig. 10/11).

use dqec_core::adapt::AdaptedPatch;
use dqec_core::defect::DefectSet;
use dqec_core::indicators::PatchIndicators;
use dqec_core::layout::PatchLayout;

/// A quality target: "performs as well as the defect-free distance-d
/// patch".
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct QualityTarget {
    /// Required code distance.
    pub distance: u32,
    /// Number of shortest logical operators of the defect-free
    /// reference; equal-distance chiplets must not exceed it.
    pub max_shortest: f64,
}

impl QualityTarget {
    /// Builds the target from the defect-free distance-`d` reference
    /// patch.
    ///
    /// # Panics
    ///
    /// Panics if `d < 2`.
    pub fn defect_free(d: u32) -> QualityTarget {
        let reference = PatchIndicators::of(&AdaptedPatch::new(
            PatchLayout::memory(d),
            &DefectSet::new(),
        ));
        QualityTarget {
            distance: d,
            max_shortest: reference.shortest_logical_count(),
        }
    }

    /// Whether a chiplet with the given indicators meets the target:
    /// strictly larger distance always passes; equal distance passes
    /// when the chiplet has no more shortest logicals than the
    /// defect-free reference (defective patches generally have fewer —
    /// less symmetry — and correspondingly better low-p performance).
    pub fn accepts(&self, ind: &PatchIndicators) -> bool {
        if !ind.valid {
            return false;
        }
        let d = ind.distance();
        d > self.distance
            || (d == self.distance && ind.shortest_logical_count() <= self.max_shortest)
    }
}

/// Ranks chiplets for proportional selection (Fig. 11): smaller rank =
/// better chiplet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ranking {
    /// The paper's chosen indicators: distance descending, then number
    /// of shortest logicals ascending.
    ChosenIndicators,
    /// Baseline: number of faulty qubits ascending.
    FaultyCount,
}

impl Ranking {
    /// Sorts indices of `patches` from best to worst under this ranking.
    pub fn order(self, patches: &[PatchIndicators]) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..patches.len()).collect();
        match self {
            Ranking::ChosenIndicators => idx.sort_by(|&a, &b| {
                patches[b].distance().cmp(&patches[a].distance()).then(
                    patches[a]
                        .shortest_logical_count()
                        .total_cmp(&patches[b].shortest_logical_count()),
                )
            }),
            Ranking::FaultyCount => {
                idx.sort_by_key(|&a| patches[a].num_faulty);
            }
        }
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqec_core::coords::Coord;

    fn indicators(defects: &DefectSet, l: u32) -> PatchIndicators {
        PatchIndicators::of(&AdaptedPatch::new(PatchLayout::memory(l), defects))
    }

    #[test]
    fn defect_free_reference_accepts_itself() {
        let t = QualityTarget::defect_free(5);
        assert!(t.accepts(&indicators(&DefectSet::new(), 5)));
    }

    #[test]
    fn larger_patch_passes_smaller_target() {
        let t = QualityTarget::defect_free(5);
        assert!(t.accepts(&indicators(&DefectSet::new(), 7)));
    }

    #[test]
    fn equal_distance_defective_patch_passes() {
        // l=5 with center defect has d=4 and fewer shortest logicals
        // than the defect-free d=4 patch.
        let t = QualityTarget::defect_free(4);
        let mut d = DefectSet::new();
        d.add_data(Coord::new(5, 5));
        assert!(t.accepts(&indicators(&d, 5)));
    }

    #[test]
    fn short_distance_fails() {
        let t = QualityTarget::defect_free(9);
        let mut d = DefectSet::new();
        d.add_data(Coord::new(5, 5));
        assert!(!t.accepts(&indicators(&d, 5)));
    }

    #[test]
    fn invalid_patch_fails() {
        let t = QualityTarget::defect_free(3);
        let mut d = DefectSet::new();
        for site in PatchLayout::memory(3).data_sites() {
            d.add_data(site);
        }
        assert!(!t.accepts(&indicators(&d, 3)));
    }

    #[test]
    fn rankings_prefer_better_patches() {
        let good = indicators(&DefectSet::new(), 5);
        let mut dd = DefectSet::new();
        dd.add_data(Coord::new(5, 5));
        let worse = indicators(&dd, 5);
        let patches = vec![worse.clone(), good.clone()];
        assert_eq!(Ranking::ChosenIndicators.order(&patches)[0], 1);
        assert_eq!(Ranking::FaultyCount.order(&patches)[0], 1);
    }
}
