//! Chiplet sampling, yield estimation and resource overhead (paper §5).
//!
//! Yield = fraction of fabricated chiplets whose adapted code meets the
//! quality target. The resource overhead of a design point is the
//! average number of fabricated physical qubits per *accepted* logical
//! qubit, reported relative to the ideal defect-free cost
//! (`2 d_target² − 1`).

use crate::criteria::QualityTarget;
use crate::defect_model::DefectModel;
use dqec_core::adapt::AdaptedPatch;
use dqec_core::indicators::PatchIndicators;
use dqec_core::layout::PatchLayout;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

/// Parameters of one chiplet sampling run.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SampleConfig {
    /// Chiplet width (patch is `l x l`).
    pub l: u32,
    /// Defect model.
    pub model: DefectModel,
    /// Per-component fabrication error rate.
    pub rate: f64,
    /// Number of chiplets to fabricate.
    pub samples: usize,
    /// RNG seed.
    pub seed: u64,
    /// Whether the architecture may swap data/syndrome roles by
    /// rotating the chiplet (paper §4.1, Fig. 16): each chiplet is
    /// evaluated in both orientations and the better one is used.
    pub orientation_freedom: bool,
}

impl SampleConfig {
    /// A default configuration for the given size/model/rate.
    pub fn new(l: u32, model: DefectModel, rate: f64) -> Self {
        SampleConfig {
            l,
            model,
            rate,
            samples: 2000,
            seed: 0x5eed,
            orientation_freedom: false,
        }
    }
}

/// Samples `config.samples` chiplets and returns each one's indicators
/// (of the better orientation when `orientation_freedom` is set).
///
/// Work is spread over available CPU cores. Each chiplet gets its own
/// ChaCha8 stream keyed by `(seed, sample index)`, so the sampled
/// population is a pure function of the config — independent of thread
/// count and machine.
pub fn sample_indicators(config: &SampleConfig) -> Vec<PatchIndicators> {
    sample_indicators_range(config, 0..config.samples)
}

/// Samples only the chiplets with indices in `range` — a bit-exact
/// slice of the population [`sample_indicators`] draws, because every
/// index owns an independent ChaCha8 stream keyed by `(seed, index)`.
/// Adaptive callers grow their sample count incrementally
/// (`0..n`, then `n..m`, ...) and the concatenation equals a single
/// `0..m` draw; `config.samples` is ignored here.
pub fn sample_indicators_range(
    config: &SampleConfig,
    range: std::ops::Range<usize>,
) -> Vec<PatchIndicators> {
    let layout = PatchLayout::memory(config.l);
    range
        .into_par_iter()
        .map(|i| {
            let mut rng = ChaCha8Rng::seed_from_u64(
                config.seed ^ (i as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            );
            evaluate_chiplet(&layout, config, &mut rng)
        })
        .collect()
}

fn evaluate_chiplet(
    layout: &PatchLayout,
    config: &SampleConfig,
    rng: &mut impl Rng,
) -> PatchIndicators {
    let defects = config.model.sample(layout, config.rate, rng);
    let primary = PatchIndicators::of(&AdaptedPatch::new(layout.clone(), &defects));
    if !config.orientation_freedom {
        return primary;
    }
    let swapped = defects.swapped_orientation(config.l);
    let secondary = PatchIndicators::of(&AdaptedPatch::new(layout.clone(), &swapped));
    better(primary, secondary)
}

fn better(a: PatchIndicators, b: PatchIndicators) -> PatchIndicators {
    let key = |p: &PatchIndicators| (p.distance(), -p.shortest_logical_count());
    if key(&b).partial_cmp(&key(&a)) == Some(std::cmp::Ordering::Greater) {
        b
    } else {
        a
    }
}

/// A yield estimate from sampled chiplets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct YieldEstimate {
    /// Accepted chiplets.
    pub kept: usize,
    /// Fabricated chiplets.
    pub total: usize,
}

impl YieldEstimate {
    /// The yield fraction.
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.kept as f64 / self.total as f64
        }
    }
}

/// Computes the yield of a sampled population under a quality target.
pub fn yield_from_indicators(
    indicators: &[PatchIndicators],
    target: &QualityTarget,
) -> YieldEstimate {
    YieldEstimate {
        kept: indicators.iter().filter(|i| target.accepts(i)).count(),
        total: indicators.len(),
    }
}

/// Average fabricated physical qubits per accepted logical qubit.
///
/// Returns infinity at zero yield.
pub fn cost_per_logical(l: u32, yield_fraction: f64) -> f64 {
    let qubits = (2 * l * l - 1) as f64;
    if yield_fraction <= 0.0 {
        f64::INFINITY
    } else {
        qubits / yield_fraction
    }
}

/// Overhead factor relative to the ideal defect-free cost of a
/// distance-`d_target` logical qubit (`2 d² − 1` physical qubits).
pub fn overhead_factor(l: u32, yield_fraction: f64, d_target: u32) -> f64 {
    cost_per_logical(l, yield_fraction) / (2 * d_target * d_target - 1) as f64
}

/// Sweeps chiplet sizes and returns `(best_l, best_overhead_factor)`
/// for a target distance, including the defect-intolerant `l = d`
/// baseline in the candidates.
pub fn optimal_chiplet_size(
    model: DefectModel,
    rate: f64,
    d_target: u32,
    candidate_ls: &[u32],
    samples: usize,
    seed: u64,
    orientation_freedom: bool,
) -> (u32, f64) {
    let target = QualityTarget::defect_free(d_target);
    let mut best = (d_target, f64::INFINITY);
    for &l in candidate_ls {
        let y = if l == d_target {
            // Only the defect-free chiplets qualify at l = d.
            model.defect_free_probability(&PatchLayout::memory(l), rate)
        } else {
            let config = SampleConfig {
                l,
                model,
                rate,
                samples,
                seed,
                orientation_freedom,
            };
            let inds = sample_indicators(&config);
            yield_from_indicators(&inds, &target).fraction()
        };
        let f = overhead_factor(l, y, d_target);
        if f < best.1 {
            best = (l, f);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_gives_full_yield() {
        let config = SampleConfig {
            samples: 50,
            ..SampleConfig::new(5, DefectModel::LinkAndQubit, 0.0)
        };
        let inds = sample_indicators(&config);
        let y = yield_from_indicators(&inds, &QualityTarget::defect_free(5));
        assert_eq!(y.fraction(), 1.0);
    }

    #[test]
    fn yield_decreases_with_rate() {
        let target = QualityTarget::defect_free(5);
        let mut fractions = Vec::new();
        for rate in [0.002, 0.02] {
            let config = SampleConfig {
                samples: 400,
                ..SampleConfig::new(7, DefectModel::LinkAndQubit, rate)
            };
            let inds = sample_indicators(&config);
            fractions.push(yield_from_indicators(&inds, &target).fraction());
        }
        assert!(fractions[0] > fractions[1], "{fractions:?}");
    }

    #[test]
    fn larger_chiplets_tolerate_defects_for_fixed_target() {
        // At a visible defect rate the l=7 chiplet has higher yield for
        // a d=5 target than the intolerant l=5 chiplet.
        let target = QualityTarget::defect_free(5);
        let rate = 0.01;
        let config = SampleConfig {
            samples: 400,
            ..SampleConfig::new(7, DefectModel::LinkAndQubit, rate)
        };
        let y7 = yield_from_indicators(&sample_indicators(&config), &target).fraction();
        let y5 = DefectModel::LinkAndQubit.defect_free_probability(&PatchLayout::memory(5), rate);
        assert!(y7 > y5, "y7={y7} y5={y5}");
    }

    #[test]
    fn orientation_freedom_never_hurts() {
        let target = QualityTarget::defect_free(5);
        let base = SampleConfig {
            samples: 300,
            ..SampleConfig::new(7, DefectModel::LinkAndQubit, 0.01)
        };
        let with = SampleConfig {
            orientation_freedom: true,
            ..base
        };
        let y0 = yield_from_indicators(&sample_indicators(&base), &target).fraction();
        let y1 = yield_from_indicators(&sample_indicators(&with), &target).fraction();
        assert!(
            y1 + 0.03 >= y0,
            "orientation freedom reduced yield: {y0} -> {y1}"
        );
    }

    #[test]
    fn overhead_factor_at_full_yield_is_size_ratio() {
        let f = overhead_factor(9, 1.0, 9);
        assert!((f - 1.0).abs() < 1e-12);
        let f = overhead_factor(11, 1.0, 9);
        assert!((f - (241.0 / 161.0)).abs() < 1e-12);
    }

    #[test]
    fn range_sampling_concatenates_to_the_full_draw() {
        // The property adaptive callers rely on: stitching together
        // disjoint index ranges reproduces the one-shot population
        // bit-exactly, regardless of where the cuts fall.
        let config = SampleConfig {
            samples: 48,
            ..SampleConfig::new(5, DefectModel::LinkAndQubit, 0.02)
        };
        let whole = sample_indicators(&config);
        for cut in [0usize, 1, 17, 47, 48] {
            let mut stitched = sample_indicators_range(&config, 0..cut);
            stitched.extend(sample_indicators_range(&config, cut..48));
            assert_eq!(stitched, whole, "cut at {cut} changed the population");
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let config = SampleConfig {
            samples: 64,
            ..SampleConfig::new(5, DefectModel::LinkAndQubit, 0.02)
        };
        let a: Vec<u32> = sample_indicators(&config)
            .iter()
            .map(|i| i.distance())
            .collect();
        let b: Vec<u32> = sample_indicators(&config)
            .iter()
            .map(|i| i.distance())
            .collect();
        assert_eq!(a, b);
    }
}
