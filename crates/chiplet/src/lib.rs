//! # dqec-chiplet
//!
//! Modular chiplet architecture evaluation for defect-adapted surface
//! codes (paper §4–5): fabrication defect models, post-selection
//! criteria, yield and resource-overhead estimation, and Monte-Carlo
//! logical-error-rate experiments with slope fits.
//!
//! Experiments are described declaratively with [`ExperimentSpec`] and
//! executed by a [`Runner`] that compiles the circuit and decoding
//! graph once per patch, reweighting per swept error rate; results flow
//! as typed [`Record`]s into a [`Sink`] (TSV, JSON, memory, or null).
//!
//! # Examples
//!
//! Estimating the yield of l = 7 chiplets against a d = 5 target:
//!
//! ```
//! use dqec_chiplet::criteria::QualityTarget;
//! use dqec_chiplet::defect_model::DefectModel;
//! use dqec_chiplet::yields::{sample_indicators, yield_from_indicators, SampleConfig};
//!
//! let config = SampleConfig {
//!     samples: 200,
//!     ..SampleConfig::new(7, DefectModel::LinkAndQubit, 0.005)
//! };
//! let indicators = sample_indicators(&config);
//! let y = yield_from_indicators(&indicators, &QualityTarget::defect_free(5));
//! assert!(y.fraction() > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod criteria;
pub mod defect_model;
pub mod device;
pub mod experiment;
pub mod record;
pub mod runner;
pub mod yields;

pub use criteria::{QualityTarget, Ranking};
pub use defect_model::DefectModel;
pub use device::{assemble_device, AssemblyReport, DeviceSpec};
pub use experiment::{fit_loglog, memory_ler, stability_ler, LerPoint, SlopeFit};
pub use record::{
    fmt_compact, JsonSink, LerRecord, MemorySink, NullSink, Record, Sink, SlopeFitRecord, TsvSink,
    Value, YieldRecord,
};
pub use runner::{default_rounds, DecoderChoice, ExperimentSpec, Protocol, RunOutcome, Runner};
pub use yields::{
    cost_per_logical, overhead_factor, sample_indicators, yield_from_indicators, SampleConfig,
    YieldEstimate,
};
