//! Runner determinism: the same spec + seed must produce identical
//! records regardless of how many worker threads execute the batches.
//!
//! Per-batch ChaCha8 streams are keyed by `(seed, batch index)` and the
//! rayon shim preserves input order, so the outcome is a pure function
//! of the spec. To actually vary the thread count we exploit the shim's
//! process-wide worker budget: runs launched from inside an outer
//! parallel fan-out find the budget exhausted and execute sequentially,
//! while a top-level run uses every core.

use dqec_chiplet::record::MemorySink;
use dqec_chiplet::runner::{ExperimentSpec, Runner};
use dqec_core::adapt::AdaptedPatch;
use dqec_core::layout::PatchLayout;
use dqec_core::{Coord, DefectSet};
use rayon::prelude::*;

fn spec() -> ExperimentSpec {
    let mut defects = DefectSet::new();
    defects.add_data(Coord::new(5, 5));
    let patch = AdaptedPatch::new(PatchLayout::memory(5), &defects);
    ExperimentSpec::memory(patch)
        .ps(&[6e-3, 9e-3])
        .shots(10_000)
        .seed(1234)
        .label("determinism")
        .fit(true)
}

#[test]
fn identical_records_across_thread_counts() {
    // Top-level: parallel across the machine's cores.
    let mut parallel_sink = MemorySink::default();
    let parallel = Runner::new()
        .run(&spec(), &mut parallel_sink)
        .expect("circuit builds");

    // Nested: each run competes for the exhausted worker budget, so its
    // batches run (mostly or fully) sequentially.
    let nested: Vec<_> = (0..4u32)
        .into_par_iter()
        .map(|_| {
            let mut sink = MemorySink::default();
            let outcome = Runner::new()
                .run(&spec(), &mut sink)
                .expect("circuit builds");
            (outcome, sink.records)
        })
        .collect();

    for (outcome, records) in nested {
        assert_eq!(outcome, parallel, "outcome must not depend on threading");
        assert_eq!(records, parallel_sink.records, "records must match too");
    }
}

#[test]
fn repeated_runs_are_bit_identical() {
    let a = Runner::new().collect(&spec()).expect("circuit builds");
    let b = Runner::new().collect(&spec()).expect("circuit builds");
    assert_eq!(a, b);
}
