//! `dqec-lint` CLI: scans the workspace sources and exits non-zero on
//! any violation not covered by the ratcheted allowlist.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    dqec_lint::cli(&args)
}
